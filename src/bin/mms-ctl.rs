//! `mms-ctl` — command-line driver for the fault-tolerant multimedia
//! server library.
//!
//! ```text
//! mms-ctl table <C>                          the Table 2/3 metrics at any C
//! mms-ctl simulate [options]                 run a failure scenario
//!   --scheme sr|sg|nc|ib   (default sr)
//!   --disks N              (default 10; IB default 8)
//!   --group C              (default 5)
//!   --viewers N            (default 4)
//!   --tracks N             (default 500)
//!   --fail DISK@CYCLE      (repeatable)
//!   --repair DISK@CYCLE    (repeatable)
//!   --rebuild DISK@CYCLE   (repeatable; parity rebuild)
//!   --cycles N             (default: run until streams finish)
//! mms-ctl mttf <D> <C> [options]             reliability summary
//!   --mc TRIALS            Monte-Carlo validation of Eqs. 4-5 (default off)
//!   --threads N|auto|seq   worker pool for the trials (default auto)
//! mms-ctl design <streams> [options]         cheapest feasible design
//!   --threads N|auto|seq   worker pool for the sweep (default auto)
//! mms-ctl scenario <name|all|list> [options]  run the fault-injection corpus
//!   --quick                shorten the stochastic soak (CI smoke mode)
//!   --threads N|auto|seq   worker pool for the scheme fan-out (default auto)
//!   --fast-forward         event-horizon execution (identical reports, faster)
//! mms-ctl workload [options]                 heavy-traffic session engine
//!   --scheme sr|sg|nc|ib   (default sr)
//!   --disks N              (default 10; IB default 8)
//!   --group C              (default 5)
//!   --movies N             catalog size (default 8)
//!   --tracks N             tracks per movie (default 200)
//!   --cycles N             (default 1000)
//!   --theta F              Zipf skew (default 0.271, the video-store fit)
//!   --rate F               Poisson arrivals per cycle (default 2.0)
//!   --burst Q:B:PIN:POUT   MMPP instead: quiet/burst rates + switch probs
//!   --policy P             reject|degrade|queue (default reject)
//!   --threshold F          degrade above this utilization (default 0.8)
//!   --quality F            degraded duration multiplier (default 0.5)
//!   --max-wait N           queue patience in cycles (default 10)
//!   --vbr A,B,…            bitrate-ladder hold multipliers
//!   --abandon F            viewer abandonment probability (default 0)
//!   --fail DISK@CYCLE      (repeatable; run degraded)
//!   --seed N               (default 1995)
//!   --fast-forward         event-horizon execution (identical results, faster)
//! mms-ctl fleet [corpus|list|<case>] [options]  sharded multi-node tier
//!   (no positional: run a fleet under traffic with scripted node faults)
//!   --nodes N              fleet size (default 4)
//!   --scheme sr|sg|nc|ib   per-node scheme (default sr)
//!   --disks N              per-node disks (default 10; IB default 8)
//!   --group C              (default 5)
//!   --movies N             global catalog size (default 8)
//!   --tracks N             tracks per movie (default 200)
//!   --cycles N             (default 400)
//!   --rate F               Poisson arrivals per cycle (default 2.0)
//!   --theta F              Zipf skew (default 0.271)
//!   --fail-node N@CYCLE    (repeatable; whole-node failure)
//!   --repair-node N@CYCLE  (repeatable; node returns, catalog re-syncs)
//!   --seed N               (default 1995)
//!   --mttf TRIALS          Monte-Carlo fleet MTTF/MTTDS (default off)
//!   --node-mttf-h H        node MTTF hours for --mttf (default 100000)
//!   --node-mttr-h H        node MTTR hours for --mttf (default 24)
//!   corpus [--quick]       run the fleet fault corpus (nonzero exit on violation)
//!   list                   list the fleet corpus cases
//! mms-ctl trace <flight.jsonl> [options]     walk a flight-recorder dump
//!   --session ID           only records mentioning this stream/session
//! ```
//!
//! Every run-style subcommand (`simulate`, `mttf`, `scenario`,
//! `workload`, `fleet`) shares one [`RunConfig`]: the worker pool
//! (`--threads N|auto|seq`), the step mode (`--fast-forward` selects
//! event-horizon execution — identical results, faster), and the
//! observability flags:
//!
//! ```text
//!   --telemetry PATH.jsonl export events + final metric snapshot as JSONL
//!   --log-level LEVEL      error|warn|info|debug|trace (default info)
//!   --dash                 print the ASCII metrics dashboard at the end
//!   --flight-recorder PATH dump the newest events as a replayable black box
//!   --flight-capacity N    flight-recorder ring size (default 4096)
//!   --prom-out PATH        write the metric snapshot in Prometheus text format
//!   --perfetto-out PATH    write the event stream as Chrome/Perfetto trace JSON
//!   --slo                  print the HealthModel SLO panel at the end
//! ```
//!
//! The config is parsed once per invocation and handed to builders
//! directly (`ServerBuilder::run_config`, `FleetBuilder::run_config`).
//!
//! The flight recorder arms itself on the first `error`-level record
//! (data loss, check violations); `--flight-recorder` also dumps on a
//! clean run with trigger `requested`. Replay a dump with `mms-ctl
//! trace`.
//!
//! `--threads` is purely a performance knob: every command's output is
//! bit-identical for any setting (see `mms_exec`); this holds with
//! telemetry enabled too, for records at `debug` and below.

use ft_media_server::analysis::{
    design_space_par, table_rows, CostModel, SchemeParams, SystemParams,
};
use ft_media_server::disk::{DiskId, ReliabilityParams};
use ft_media_server::fleet::{fleet_mttds, fleet_mttf, FleetBuilder, FleetEvent};
use ft_media_server::layout::{BandwidthClass, MediaObject, ObjectId};
use ft_media_server::reliability::{formulas, CatastropheRule, MonteCarlo, PoolMarkov};
use ft_media_server::scenario;
use ft_media_server::sim::{
    AdmissionPolicy, ArrivalProcess, DataMode, FailureEvent, SessionEngine, SplitMix64, StepMode,
};
use ft_media_server::telemetry::{FlightSnapshot, Recorder};
use ft_media_server::{RunConfig, Scheme, ServerBuilder, ServerError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("table") => cmd_table(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("mttf") => cmd_mttf(&args[1..]),
        Some("design") => cmd_design(&args[1..]),
        Some("scenario") => cmd_scenario(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        _ => {
            eprintln!(
                "usage: mms-ctl <table|simulate|mttf|design|scenario|workload|fleet|trace> …  (see --help in source)"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_table(args: &[String]) -> CmdResult {
    let c: usize = args.first().map_or(Ok(5), |s| s.parse())?;
    if !(2..=50).contains(&c) {
        return Err("parity group size must be in 2..=50".into());
    }
    let sys = SystemParams::paper_table1();
    println!("metrics at C = {c}, D = {} (Table 1 parameters)\n", sys.d);
    println!(
        "{:<20} {:>9} {:>9} {:>12} {:>14} {:>8} {:>9}",
        "scheme", "stor ovhd", "bw ovhd", "MTTF (yr)", "MTTDS (yr)", "streams", "buffers"
    );
    for row in table_rows(&sys, &SchemeParams::paper_tables(c)) {
        println!(
            "{:<20} {:>8.1}% {:>8.1}% {:>12.1} {:>14.1} {:>8} {:>9}",
            row.scheme.to_string(),
            row.storage_overhead * 100.0,
            row.bandwidth_overhead * 100.0,
            row.mttf_years,
            row.mttds_years,
            row.streams,
            row.buffers_tracks
        );
    }
    Ok(())
}

fn parse_events(args: &[String], flag: &str) -> Result<Vec<(u32, u64)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            let spec = it
                .next()
                .ok_or_else(|| format!("{flag} needs DISK@CYCLE"))?;
            let (d, c) = spec
                .split_once('@')
                .ok_or_else(|| format!("bad {flag} spec '{spec}': want DISK@CYCLE"))?;
            out.push((
                d.parse().map_err(|_| format!("bad disk '{d}'"))?,
                c.parse().map_err(|_| format!("bad cycle '{c}'"))?,
            ));
        }
    }
    Ok(out)
}

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    for w in args.windows(2) {
        if w[0] == flag {
            return w[1]
                .parse()
                .map_err(|_| format!("bad value for {flag}: '{}'", w[1]));
        }
    }
    Ok(default)
}

/// Parse `--scheme` plus the per-scheme default disk count.
fn parse_scheme(args: &[String]) -> Result<(Scheme, usize), String> {
    let scheme = match flag_value(args, "--scheme", "sr".to_string())?.as_str() {
        "sr" => Scheme::StreamingRaid,
        "sg" => Scheme::StaggeredGroup,
        "nc" => Scheme::NonClustered,
        "ib" => Scheme::ImprovedBandwidth,
        other => return Err(format!("unknown scheme '{other}'")),
    };
    let default_disks = if scheme == Scheme::ImprovedBandwidth {
        8
    } else {
        10
    };
    Ok((scheme, default_disks))
}

fn cmd_simulate(args: &[String]) -> CmdResult {
    let (scheme, default_disks) = parse_scheme(args)?;
    let disks: usize = flag_value(args, "--disks", default_disks)?;
    let group: usize = flag_value(args, "--group", 5)?;
    let viewers: usize = flag_value(args, "--viewers", 4)?;
    let tracks: u64 = flag_value(args, "--tracks", 500)?;
    let cycles: u64 = flag_value(args, "--cycles", 0)?;
    let fails = parse_events(args, "--fail")?;
    let repairs = parse_events(args, "--repair")?;
    let rebuilds = parse_events(args, "--rebuild")?;
    let cfg = RunConfig::from_args(args)?;
    let recorder = cfg.recorder();
    let _guard = recorder.as_ref().map(Recorder::install);

    let mut server = ServerBuilder::new(scheme)
        .disks(disks)
        .parity_group(group)
        .object(MediaObject::new(
            ObjectId(0),
            "movie",
            tracks,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::Verified { track_bytes: 128 })
        .build()?;
    println!(
        "{} | {} disks, C = {group}, {} slots/disk/cycle, capacity {} streams",
        server.scheme(),
        disks,
        server.cycle_config().slots_per_disk(),
        server.stream_capacity()
    );
    for _ in 0..viewers {
        server.admit(ObjectId(0))?;
        server.step()?;
    }

    let horizon = if cycles > 0 { cycles } else { u64::MAX };
    let mut t = server.simulator().cycle();
    while t < horizon && (server.active_streams() > 0 || t < cycles) {
        for &(d, at) in &fails {
            if at == t {
                match server.inject(FailureEvent::fail(t, DiskId(d))) {
                    Ok(r) => println!(
                        "cycle {t}: disk {d} FAILED (dropped: {})",
                        r.dropped_streams.len()
                    ),
                    Err(ServerError::DataLoss { tracks }) => {
                        println!("cycle {t}: disk {d} FAILED — DATA LOSS ({tracks} track(s))");
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        for &(d, at) in &repairs {
            if at == t {
                server.inject(FailureEvent::repair(t, DiskId(d)))?;
                println!("cycle {t}: disk {d} repaired");
            }
        }
        for &(d, at) in &rebuilds {
            if at == t {
                server.start_parity_rebuild(DiskId(d))?;
                println!("cycle {t}: parity rebuild of disk {d} started");
            }
        }
        server.step()?;
        t = server.simulator().cycle();
        if cycles == 0 && server.active_streams() == 0 {
            break;
        }
    }

    let m = server.metrics();
    println!("\ncycles simulated   : {}", m.cycles);
    println!("streams finished   : {}", m.streams_finished);
    println!(
        "tracks delivered   : {} (verified {})",
        m.delivered, m.verified
    );
    println!("reconstructed      : {}", m.reconstructed);
    println!(
        "hiccups            : {} (failed-disk {}, displaced {}, mid-cycle {}, DoS {})",
        m.total_hiccups(),
        m.hiccups_failed_disk,
        m.hiccups_displaced,
        m.hiccups_mid_cycle,
        m.service_degradations
    );
    println!("rebuilds completed : {}", m.rebuilds_completed);
    println!("buffer peak        : {} tracks", m.buffer_peak);
    println!("catastrophes       : {}", m.catastrophes);
    if let Some(recorder) = recorder {
        cfg.finish(recorder, scheme.abbrev())?;
    }
    Ok(())
}

fn cmd_mttf(args: &[String]) -> CmdResult {
    let pos: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let d: usize = pos.first().map_or(Ok(1000), |s| s.parse())?;
    let c: usize = pos.get(1).map_or(Ok(10), |s| s.parse())?;
    let mc_trials: usize = flag_value(args, "--mc", 0)?;
    let cfg = RunConfig::from_args(args)?;
    let par = cfg.threads;
    let recorder = cfg.recorder();
    let _guard = recorder.as_ref().map(Recorder::install);
    let rel = ReliabilityParams::paper();
    println!("reliability for D = {d}, C = {c} (MTTF 300,000 h, MTTR 1 h)\n");
    println!(
        "first failure anywhere      : {:>12.1} hours",
        formulas::mttf_single_pool(d, rel).as_hours()
    );
    println!(
        "catastrophic, SR/SG/NC      : {:>12.1} years (Eq. 4)",
        formulas::mttf_raid(d, c, rel).as_years()
    );
    println!(
        "catastrophic, IB            : {:>12.1} years (Eq. 5)",
        formulas::mttf_improved(d, c, rel).as_years()
    );
    for k in [1usize, 2, 4] {
        let exact = PoolMarkov::new(d, k, rel).mean_time_to_exhaustion();
        println!(
            "DoS masking {k} failure(s)    : {:>12.3e} years (Eq. 6: {:.3e}; exact chain includes the k! factor)",
            exact.as_years(),
            formulas::mttds_shared(d, k, rel).as_years()
        );
    }
    if mc_trials >= 2 {
        println!(
            "\nMonte-Carlo validation: {mc_trials} trials on {} thread(s), seed 1995",
            par.thread_count()
        );
        let mut rng = StdRng::seed_from_u64(1995);
        for (label, rule) in [
            ("SR/SG/NC", CatastropheRule::SameCluster { c }),
            ("IB", CatastropheRule::SameOrAdjacentCluster { c }),
        ] {
            let stats = MonteCarlo { d, rel, rule }.run_par(&mut rng, mc_trials, par);
            println!(
                "measured, {label:<8}          : {:>12.1} ± {:.1} years (95% CI)",
                stats.mean.as_years(),
                stats.ci95().as_years()
            );
        }
    }
    if let Some(recorder) = recorder {
        cfg.finish(recorder, "all")?;
    }
    Ok(())
}

fn cmd_scenario(args: &[String]) -> CmdResult {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .ok_or("usage: mms-ctl scenario <name|all|list> [--quick] [--threads N|auto|seq]")?;
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = RunConfig::from_args(args)?;
    if name == "list" {
        for case in scenario::corpus(quick) {
            println!("{:<26} {}", case.scenario.name, case.scenario.summary);
        }
        return Ok(());
    }
    let only = (name != "all").then_some(name.as_str());
    if only.is_some() && scenario::find(&name, quick).is_none() {
        return Err(format!("unknown scenario '{name}' (try `mms-ctl scenario list`)").into());
    }
    let recorder = cfg.recorder();
    let _guard = recorder.as_ref().map(Recorder::install);
    let fast_forward = cfg.step_mode == StepMode::EventHorizon;
    let (text, ok) = scenario::run_corpus_rendered(cfg.threads, quick, only, fast_forward);
    print!("{text}");
    if let Some(recorder) = recorder {
        cfg.finish(recorder, "all")?;
    }
    if ok {
        Ok(())
    } else {
        Err("scenario invariants violated".into())
    }
}

fn cmd_design(args: &[String]) -> CmdResult {
    let pos: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let required: f64 = pos.first().map_or(Ok(1200.0), |s| s.parse())?;
    let par = RunConfig::from_args(args)?.threads;
    let sys = SystemParams::paper_table1();
    let model = CostModel::paper_fig9();
    let best = design_space_par(&sys, &model, 2..=10, SchemeParams::paper_fig9, par)
        .into_iter()
        .find(|p| p.streams >= required);
    match best {
        Some(p) => println!(
            "cheapest for {required:.0} streams: {} at C = {} — ${:.0} \
             ({:.1} disks, {:.0} buffer tracks, {:.0} streams)",
            p.scheme, p.c, p.cost, p.disks, p.buffer_tracks, p.streams
        ),
        None => println!("no configuration reaches {required:.0} streams at W = 100 GB"),
    }
    Ok(())
}

fn cmd_workload(args: &[String]) -> CmdResult {
    let (scheme, default_disks) = parse_scheme(args)?;
    let disks: usize = flag_value(args, "--disks", default_disks)?;
    let group: usize = flag_value(args, "--group", 5)?;
    let movies: usize = flag_value(args, "--movies", 8)?;
    let tracks: u64 = flag_value(args, "--tracks", 200)?;
    let cycles: u64 = flag_value(args, "--cycles", 1000)?;
    let theta: f64 = flag_value(args, "--theta", 0.271)?;
    let abandon: f64 = flag_value(args, "--abandon", 0.0)?;
    let seed: u64 = flag_value(args, "--seed", 1995)?;
    let mut fails = parse_events(args, "--fail")?;
    fails.sort_by_key(|&(_, at)| at);
    let cfg = RunConfig::from_args(args)?;
    let recorder = cfg.recorder();
    let _guard = recorder.as_ref().map(Recorder::install);

    let arrivals = match args.windows(2).find(|w| w[0] == "--burst") {
        Some(w) => {
            let parts: Result<Vec<f64>, _> = w[1].split(':').map(str::parse).collect();
            match parts.as_deref() {
                Ok([quiet, burst, p_enter, p_exit]) => {
                    ArrivalProcess::bursty(*quiet, *burst, *p_enter, *p_exit)
                }
                _ => {
                    return Err(format!(
                        "bad --burst spec '{}': want QUIET:BURST:P_ENTER:P_EXIT",
                        w[1]
                    )
                    .into())
                }
            }
        }
        None => ArrivalProcess::poisson(flag_value(args, "--rate", 2.0)?),
    };
    let policy = match flag_value(args, "--policy", "reject".to_string())?.as_str() {
        "reject" => AdmissionPolicy::Reject,
        "degrade" => AdmissionPolicy::Degrade {
            threshold: flag_value(args, "--threshold", 0.8)?,
            quality: flag_value(args, "--quality", 0.5)?,
        },
        "queue" => AdmissionPolicy::Queue {
            max_wait: flag_value(args, "--max-wait", 10)?,
        },
        other => return Err(format!("unknown policy '{other}' (reject|degrade|queue)").into()),
    };

    let mut builder = ServerBuilder::new(scheme)
        .disks(disks)
        .parity_group(group)
        .data_mode(DataMode::MetadataOnly)
        .run_config(&cfg);
    for m in 0..movies.max(1) {
        builder = builder.object(MediaObject::new(
            ObjectId(m as u64),
            format!("movie-{m}"),
            tracks,
            BandwidthClass::Mpeg1,
        ));
    }
    let mut server = builder.build()?;
    // A session's nominal slot-hold time: one read cycle per group,
    // spaced k/k' cycles apart.
    let cyc = server.cycle_config();
    let nominal = tracks.div_ceil(cyc.k as u64) * cyc.read_period() as u64;
    let catalog: Vec<(ObjectId, u64)> = server.objects().iter().map(|&o| (o, nominal)).collect();
    let mut engine = SessionEngine::new(catalog, theta, arrivals, policy).with_abandonment(abandon);
    if let Some(w) = args.windows(2).find(|w| w[0] == "--vbr") {
        let ladder: Vec<f64> = w[1]
            .split(',')
            .map(|s| s.trim().parse())
            .collect::<Result<_, _>>()
            .map_err(|_| format!("bad --vbr ladder '{}'", w[1]))?;
        engine = engine.with_vbr(ladder);
    }
    println!(
        "{} | {} disks, C = {group}, capacity {} streams, {} movies x {} tracks (~{} cycles/session)",
        server.scheme(),
        disks,
        server.stream_capacity(),
        movies.max(1),
        tracks,
        nominal,
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0u64;
    for &(d, at) in &fails {
        if at >= cycles {
            break;
        }
        server.run_sessions(at - now, &mut engine, &mut rng)?;
        now = at;
        match server.inject(FailureEvent::fail(now, DiskId(d))) {
            Ok(r) => println!(
                "cycle {now}: disk {d} FAILED (dropped: {})",
                r.dropped_streams.len()
            ),
            Err(ServerError::DataLoss { tracks }) => {
                println!("cycle {now}: disk {d} FAILED — DATA LOSS ({tracks} track(s))");
            }
            Err(e) => return Err(e.into()),
        }
    }
    server.run_sessions(cycles - now, &mut engine, &mut rng)?;

    let s = engine.stats();
    println!("\nsessions offered   : {}", s.offered);
    println!(
        "admitted           : {} ({} degraded, {} released early)",
        s.admitted, s.degraded, s.released_early
    );
    println!(
        "denied             : {} rejected, {} balked ({:.2}% blocking)",
        s.rejected,
        s.balked,
        s.blocking_rate() * 100.0
    );
    if s.queued > 0 {
        let p = |q: &ft_media_server::telemetry::P2Quantile| q.value().unwrap_or(0.0);
        println!(
            "queueing           : {} queued, {} still waiting; wait p50/p95/p99 = {:.1}/{:.1}/{:.1} cycles",
            s.queued,
            engine.queue_len(),
            p(&s.wait_p50),
            p(&s.wait_p95),
            p(&s.wait_p99)
        );
    }
    let m = server.metrics();
    println!("\ncycles simulated   : {}", m.cycles);
    println!("active at end      : {}", server.active_streams());
    println!("tracks delivered   : {}", m.delivered);
    println!(
        "hiccups            : {} (delivery rate {:.4})",
        m.total_hiccups(),
        m.delivery_rate()
    );
    println!(
        "disk utilization   : {:.1}%",
        m.utilization(server.cycle_config().t_cyc(), disks) * 100.0
    );
    if let Some(recorder) = recorder {
        cfg.finish(recorder, scheme.abbrev())?;
    }
    Ok(())
}

fn cmd_fleet(args: &[String]) -> CmdResult {
    let sub = args.first().filter(|a| !a.starts_with("--")).cloned();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = RunConfig::from_args(args)?;
    match sub.as_deref() {
        Some("list") => {
            for case in ft_media_server::fleet::scenario::corpus(quick) {
                println!("{:<28} {}", case.name, case.summary);
            }
            return Ok(());
        }
        Some("corpus") => {
            let recorder = cfg.recorder();
            let _guard = recorder.as_ref().map(Recorder::install);
            let (text, ok) =
                ft_media_server::fleet::scenario::run_corpus_rendered(cfg.threads, quick, None);
            print!("{text}");
            if let Some(recorder) = recorder {
                cfg.finish(recorder, "fleet")?;
            }
            return if ok {
                Ok(())
            } else {
                Err("fleet corpus invariants violated".into())
            };
        }
        Some(name) => {
            if ft_media_server::fleet::scenario::find(name, quick).is_none() {
                return Err(
                    format!("unknown fleet case '{name}' (try `mms-ctl fleet list`)").into(),
                );
            }
            let recorder = cfg.recorder();
            let _guard = recorder.as_ref().map(Recorder::install);
            let (text, ok) = ft_media_server::fleet::scenario::run_corpus_rendered(
                cfg.threads,
                quick,
                Some(name),
            );
            print!("{text}");
            if let Some(recorder) = recorder {
                cfg.finish(recorder, "fleet")?;
            }
            return if ok {
                Ok(())
            } else {
                Err("fleet case invariants violated".into())
            };
        }
        None => {}
    }

    // No positional: run a fleet under traffic with scripted node faults.
    let nodes: usize = flag_value(args, "--nodes", 4)?;
    let (scheme, default_disks) = parse_scheme(args)?;
    let disks: usize = flag_value(args, "--disks", default_disks)?;
    let group: usize = flag_value(args, "--group", 5)?;
    let movies: usize = flag_value(args, "--movies", 8)?;
    let tracks: u64 = flag_value(args, "--tracks", 200)?;
    let cycles: u64 = flag_value(args, "--cycles", 400)?;
    let rate: f64 = flag_value(args, "--rate", 2.0)?;
    let theta: f64 = flag_value(args, "--theta", 0.271)?;
    let seed: u64 = flag_value(args, "--seed", 1995)?;
    let mttf_trials: usize = flag_value(args, "--mttf", 0)?;
    let node_fails = parse_events(args, "--fail-node")?;
    let node_repairs = parse_events(args, "--repair-node")?;
    let recorder = cfg.recorder();
    let _guard = recorder.as_ref().map(Recorder::install);

    let mut fleet = FleetBuilder::new(nodes)
        .scheme(scheme)
        .disks(disks)
        .parity_group(group)
        .catalog(movies, tracks)
        .control_seed(seed)
        .run_config(&cfg)
        .build()?;
    println!(
        "fleet | {nodes} nodes x ({} disks, C = {group}, {}), {} movies x {tracks} tracks, \
         chained declustering + replicated control plane",
        disks,
        scheme.abbrev(),
        movies.max(1),
    );
    for &(n, at) in &node_fails {
        fleet.inject(FleetEvent::fail_node(at, n as usize))?;
        println!("scheduled: node {n} fails at cycle {at}");
    }
    for &(n, at) in &node_repairs {
        fleet.inject(FleetEvent::repair_node(at, n as usize))?;
        println!("scheduled: node {n} repaired at cycle {at}");
    }

    let mut rng = SplitMix64::new(seed);
    let report = fleet.run_with_traffic(cycles, rate, theta, &mut rng)?;
    let m = *fleet.metrics();
    let cs = fleet.control_stats();
    println!("\ncycles simulated   : {}", fleet.cycle());
    println!(
        "sessions offered   : {} ({} admitted, {} rejected, {} unavailable)",
        report.offered, report.admitted, report.rejected, report.unavailable
    );
    println!(
        "re-routed          : {} admissions, {} live streams (failovers: {})",
        m.re_routed_admissions, m.re_routed_streams, m.failovers
    );
    println!(
        "failover gap       : max {} cycle(s), {} hiccup-cycle(s) total",
        m.max_failover_gap, m.failover_hiccup_cycles
    );
    println!(
        "node events        : {} failure(s), {} repair(s); stalled streams {}",
        m.node_failures,
        m.node_repairs,
        fleet.stalled_sessions()
    );
    println!(
        "data loss          : {} track(s) in {} event(s)",
        m.tracks_lost, m.data_loss_events
    );
    println!(
        "control plane      : {} decree(s), {} election(s), {} message(s), epoch {}",
        cs.decrees,
        cs.elections,
        cs.messages,
        fleet.control().epoch()
    );

    if mttf_trials >= 2 {
        let rel = ReliabilityParams {
            mttf: ft_media_server::disk::Time::from_hours(flag_value(
                args,
                "--node-mttf-h",
                100_000.0,
            )?),
            mttr: ft_media_server::disk::Time::from_hours(flag_value(args, "--node-mttr-h", 24.0)?),
        };
        let mut rng = SplitMix64::new(seed);
        let mttf = fleet_mttf(nodes, rel, &mut rng, mttf_trials, cfg.threads);
        let mttds = fleet_mttds(nodes, rel, &mut rng, mttf_trials, cfg.threads);
        println!(
            "\nfleet MTTF (adjacent pair)  : {:>12.1} h ± {:.1} ({mttf_trials} trials)",
            mttf.mean.as_hours(),
            mttf.ci95().as_hours()
        );
        println!(
            "fleet MTTDS (quorum loss)   : {:>12.1} h ± {:.1}",
            mttds.mean.as_hours(),
            mttds.ci95().as_hours()
        );
    }
    if let Some(recorder) = recorder {
        cfg.finish(recorder, "fleet")?;
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> CmdResult {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: mms-ctl trace <flight.jsonl> [--session ID]")?;
    let session = match args.windows(2).find(|w| w[0] == "--session") {
        Some(w) => Some(
            w[1].parse::<u64>()
                .map_err(|_| format!("bad --session id '{}'", w[1]))?,
        ),
        None => None,
    };
    let text = std::fs::read_to_string(path)?;
    let snap = FlightSnapshot::parse(&text)?;
    println!(
        "flight dump {path}: {} record(s) kept of {} seen (capacity {}), trigger '{}'",
        snap.len,
        snap.recorded,
        snap.capacity,
        snap.trigger.as_deref().unwrap_or("none"),
    );
    let mut shown = 0usize;
    for r in &snap.records {
        if let Some(id) = session {
            if !r.mentions_stream(id) {
                continue;
            }
        }
        shown += 1;
        let mut line = format!(
            "cycle {:>6} seq {:>4}  {:<5} {:<10} {}",
            r.cycle, r.seq, r.level, r.kind, r.name
        );
        for (k, v) in &r.fields {
            line.push_str(&format!("  {k}={v}"));
        }
        println!("{line}");
    }
    match session {
        Some(id) => println!("{shown} record(s) mention stream/session {id}"),
        None => println!("{shown} record(s)"),
    }
    Ok(())
}
