//! # ft-media-server
//!
//! A production-quality Rust reproduction of *Berson, Golubchik & Muntz,
//! "Fault Tolerant Design of Multimedia Servers" (SIGMOD 1995)*: four
//! parity-based fault-tolerance schemes for continuous-media disk arrays
//! (Streaming RAID, Staggered-group, Non-clustered with buffer pool, and
//! Improved-bandwidth), the cycle-based scheduling model they share, the
//! paper's complete analytical evaluation, and a discrete-event simulator
//! that exercises the whole stack with real XOR parity over synthetic
//! media tracks.
//!
//! This crate re-exports the workspace's public API; see
//! [`mms_server`](https://docs.rs/mms-server) for the facade and the
//! `examples/` directory for runnable scenarios:
//!
//! * `quickstart` — build a server, play a movie, survive a disk failure.
//! * `video_on_demand` — a Zipf/Poisson movie-on-demand workload across
//!   all four schemes.
//! * `failure_drill` — the paper's Figure 6/7 transition scenarios,
//!   narrated cycle by cycle.
//! * `capacity_planning` — the Section 5 design exercise: pick the
//!   cheapest scheme and parity-group size for a target stream count.

#![forbid(unsafe_code)]

pub use mms_server::*;

/// The sharded multi-node serving tier ([`mms_fleet`]): chained-
/// declustered placement, deterministic replicated control plane, and
/// whole-node failover.
pub use mms_fleet as fleet;
