//! The worker pool's contract, tested end to end: every parallelized
//! workload produces bit-identical results at 1, 2, and 8 threads, and
//! batch results depend only on each input — never on batch order or
//! scheduling.

use ft_media_server::analysis::{design_space_par, CostModel, SchemeParams, SystemParams};
use ft_media_server::disk::{ReliabilityParams, Time};
use ft_media_server::exec::{par_map_indexed, Parallelism, SeedSequence};
use ft_media_server::reliability::{CatastropheRule, MonteCarlo, TrialStats};
use ft_media_server::sim::run_batch;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn thread_settings() -> [Parallelism; 3] {
    [
        Parallelism::Sequential,
        Parallelism::threads(2),
        Parallelism::threads(8),
    ]
}

fn fast_rel() -> ReliabilityParams {
    ReliabilityParams {
        mttf: Time::from_hours(1_000.0),
        mttr: Time::from_hours(1.0),
    }
}

fn exact_bits(stats: &TrialStats) -> (usize, u64, u64) {
    (
        stats.trials,
        stats.mean.as_secs().to_bits(),
        stats.std_error.as_secs().to_bits(),
    )
}

#[test]
fn montecarlo_mttf_is_identical_at_1_2_and_8_threads() {
    for rule in [
        CatastropheRule::SameCluster { c: 5 },
        CatastropheRule::SameOrAdjacentCluster { c: 5 },
        CatastropheRule::AnyConcurrent { k: 1 },
    ] {
        let mc = MonteCarlo {
            d: 20,
            rel: fast_rel(),
            rule,
        };
        let results: Vec<_> = thread_settings()
            .iter()
            .map(|&par| exact_bits(&mc.run_par(&mut StdRng::seed_from_u64(2026), 96, par)))
            .collect();
        assert_eq!(results[0], results[1], "{rule:?}: 2 threads diverged");
        assert_eq!(results[0], results[2], "{rule:?}: 8 threads diverged");
    }
}

#[test]
fn design_space_sweep_is_identical_at_1_2_and_8_threads() {
    let sys = SystemParams::paper_table1();
    let model = CostModel::paper_fig9();
    let sweeps: Vec<_> = thread_settings()
        .iter()
        .map(|&par| design_space_par(&sys, &model, 2..=10, SchemeParams::paper_fig9, par))
        .collect();
    for other in &sweeps[1..] {
        assert_eq!(other.len(), sweeps[0].len());
        for (a, b) in sweeps[0].iter().zip(other) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.c, b.c);
            assert_eq!(a.disks.to_bits(), b.disks.to_bits());
            assert_eq!(a.streams.to_bits(), b.streams.to_bits());
            assert_eq!(a.buffer_tracks.to_bits(), b.buffer_tracks.to_bits());
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
    }
}

#[test]
fn seed_sequence_advances_caller_rng_exactly_once() {
    // Interleaving a parallel run between two caller draws must not
    // perturb the second draw relative to a single skipped u64.
    let mc = MonteCarlo {
        d: 10,
        rel: fast_rel(),
        rule: CatastropheRule::SameCluster { c: 5 },
    };
    let mut used = StdRng::seed_from_u64(5);
    let _ = mc.run_par(&mut used, 8, Parallelism::Sequential);
    let mut reference = StdRng::seed_from_u64(5);
    let _ = SeedSequence::from_rng(&mut reference);
    assert_eq!(
        rand::Rng::gen::<u64>(&mut used),
        rand::Rng::gen::<u64>(&mut reference)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch results are a pure per-input function: any permutation of
    /// the batch, at any thread count, yields each input's same result.
    #[test]
    fn batch_results_are_independent_of_batch_order(
        inputs in proptest::collection::vec((4u64..40, 2u64..9), 1..24),
        rotation in 0usize..24,
        thread_ix in 0usize..3,
    ) {
        let job = |&(tracks, c): &(u64, u64)| {
            // A small deterministic compute: event count of a toy
            // failure/repair walk keyed on the input.
            let mut x = tracks.wrapping_mul(0x9E37_79B9).wrapping_add(c);
            let mut acc = 0u64;
            for _ in 0..(tracks * c) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                acc = acc.wrapping_add(x);
            }
            acc
        };
        let par = thread_settings()[thread_ix];
        let baseline = run_batch(Parallelism::Sequential, &inputs, job);
        // Same batch, parallel: identical vector.
        prop_assert_eq!(&run_batch(par, &inputs, job), &baseline);
        // Rotated batch: each input still maps to its same result.
        let r = rotation % inputs.len();
        let mut rotated = inputs.clone();
        rotated.rotate_left(r);
        let rotated_out = run_batch(par, &rotated, job);
        for (i, out) in rotated_out.iter().enumerate() {
            prop_assert_eq!(*out, baseline[(i + r) % inputs.len()]);
        }
    }

    /// The pool itself: index-ordered output at arbitrary sizes and
    /// thread counts, with per-index seeds that do not depend on either.
    #[test]
    fn par_map_indexed_matches_sequential(n in 0usize..200, threads in 1usize..9, base in any::<u64>()) {
        let seq = SeedSequence::new(base);
        let job = |i: usize| {
            let mut rng = StdRng::seed_from_u64(seq.seed(i as u64));
            rand::Rng::gen::<u64>(&mut rng)
        };
        let expect: Vec<u64> = (0..n).map(job).collect();
        let got = par_map_indexed(Parallelism::threads(threads), n, job);
        prop_assert_eq!(got, expect);
    }
}
