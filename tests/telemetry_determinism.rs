//! Telemetry must not break the worker pool's determinism contract:
//! with a collector installed, a parallelized workload's JSONL export —
//! events *and* final metric snapshot — is byte-identical at 1, 2, and
//! 8 threads. (Only `trace`-level records are exempt; they carry
//! scheduling-dependent pool diagnostics by design.)

use ft_media_server::disk::{ReliabilityParams, Time};
use ft_media_server::exec::Parallelism;
use ft_media_server::layout::{BandwidthClass, MediaObject, ObjectId};
use ft_media_server::reliability::{CatastropheRule, MonteCarlo};
use ft_media_server::sim::{
    run_batch_seeded, AdmissionPolicy, ArrivalProcess, DataMode, SessionEngine,
};
use ft_media_server::telemetry::{jsonl, Level, Recorder};
use ft_media_server::{Scheme, ServerBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_rel() -> ReliabilityParams {
    ReliabilityParams {
        mttf: Time::from_hours(1_000.0),
        mttr: Time::from_hours(1.0),
    }
}

/// Run the Monte-Carlo fan-out under a recorder and export everything
/// it collected as JSONL bytes.
fn traced_run(par: Parallelism, level: Level) -> Vec<u8> {
    let recorder = Recorder::new(level);
    let guard = recorder.install();
    let mc = MonteCarlo {
        d: 20,
        rel: fast_rel(),
        rule: CatastropheRule::SameCluster { c: 5 },
    };
    let stats = mc.run_par(&mut StdRng::seed_from_u64(2026), 96, par);
    assert_eq!(stats.trials, 96);
    drop(guard);

    let mut out = Vec::new();
    jsonl::write_all(&mut out, &recorder.take_events(), &recorder.snapshot()).unwrap();
    out
}

#[test]
fn montecarlo_jsonl_is_byte_identical_at_1_2_and_8_threads() {
    let seq = traced_run(Parallelism::Sequential, Level::Debug);
    assert!(!seq.is_empty(), "debug run must produce records");
    // One "mc.trial" event per trial, absorbed in index order.
    let trials = seq
        .split(|&b| b == b'\n')
        .filter(|l| l.windows(10).any(|w| w == b"\"mc.trial\""))
        .count();
    assert_eq!(trials, 96);

    for threads in [2, 8] {
        let par = Parallelism::threads(threads);
        assert_eq!(
            seq,
            traced_run(par, Level::Debug),
            "{threads}-thread JSONL diverged from sequential"
        );
    }
}

/// A fan-out of session-engine runs (one per scheme, stochastic
/// arrivals, VBR, abandonment) under a recorder, exported as JSONL.
fn traced_workload_run(par: Parallelism) -> Vec<u8> {
    let recorder = Recorder::new(Level::Debug);
    let guard = recorder.install();
    let grid: Vec<(Scheme, f64)> = vec![
        (Scheme::StreamingRaid, 2.0),
        (Scheme::StaggeredGroup, 0.6),
        (Scheme::NonClustered, 0.6),
        (Scheme::ImprovedBandwidth, 2.0),
    ];
    let offered = run_batch_seeded(
        par,
        &mut StdRng::seed_from_u64(7),
        &grid,
        |&(scheme, rate), mut rng| {
            let disks = if scheme == Scheme::ImprovedBandwidth {
                8
            } else {
                10
            };
            let mut server = ServerBuilder::new(scheme)
                .disks(disks)
                .parity_group(5)
                .object(MediaObject::new(
                    ObjectId(0),
                    "m",
                    80,
                    BandwidthClass::Mpeg1,
                ))
                .data_mode(DataMode::MetadataOnly)
                .build()
                .expect("server builds");
            let cfg = server.cycle_config();
            let nominal = 80u64.div_ceil(cfg.k as u64) * cfg.read_period() as u64;
            let mut engine = SessionEngine::new(
                vec![(ObjectId(0), nominal)],
                0.271,
                ArrivalProcess::poisson(rate),
                AdmissionPolicy::Reject,
            )
            .with_vbr(vec![0.75, 1.0, 1.25])
            .with_abandonment(0.2);
            server
                .run_sessions(120, &mut engine, &mut rng)
                .expect("run");
            engine.stats().offered
        },
    );
    assert!(offered.iter().sum::<u64>() > 100, "workload barely ran");
    drop(guard);

    let mut out = Vec::new();
    jsonl::write_all(&mut out, &recorder.take_events(), &recorder.snapshot()).unwrap();
    out
}

#[test]
fn workload_jsonl_is_byte_identical_at_1_2_and_8_threads() {
    let seq = traced_workload_run(Parallelism::threads(1));
    assert!(!seq.is_empty(), "workload run must produce records");
    for threads in [2, 8] {
        assert_eq!(
            seq,
            traced_workload_run(Parallelism::threads(threads)),
            "{threads}-thread workload JSONL diverged from 1-thread"
        );
    }
}

#[test]
fn metrics_survive_even_below_event_level() {
    // At Error level no debug events are kept, but the registry still
    // aggregates — and stays thread-count independent.
    let seq = traced_run(Parallelism::Sequential, Level::Error);
    let text = String::from_utf8(seq.clone()).unwrap();
    assert!(
        text.contains("\"mc.ttf_secs\""),
        "histogram missing from snapshot"
    );
    assert!(
        !text.contains("\"mc.trial\""),
        "events above the collection level leaked"
    );
    assert_eq!(seq, traced_run(Parallelism::threads(8), Level::Error));
}
