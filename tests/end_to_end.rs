//! End-to-end integration tests: every scheme, with verified synthetic
//! data, through failures, repairs, and the failure patterns that define
//! each scheme's limits (Section 5's "what pattern of failures the system
//! can withstand").

use ft_media_server::disk::DiskId;
use ft_media_server::layout::BandwidthClass;
use ft_media_server::sched::{SchemeScheduler, TransitionPolicy};
use ft_media_server::sim::{DataMode, FailureEvent};
use ft_media_server::{MultimediaServer, Scheme, ServerBuilder, ServerError};

/// Inject a cycle-boundary failure effective now.
fn fail_now(
    s: &mut MultimediaServer,
    disk: u32,
) -> Result<ft_media_server::sched::FailureReport, ServerError> {
    s.inject(FailureEvent::fail(s.cycle(), DiskId(disk)))
}

fn server(scheme: Scheme, disks: usize, c: usize) -> MultimediaServer {
    ServerBuilder::new(scheme)
        .disks(disks)
        .parity_group(c)
        .movie("feature", 1.0, BandwidthClass::Mpeg1)
        .movie("short", 0.3, BandwidthClass::Mpeg1)
        .data_mode(DataMode::Verified { track_bytes: 128 })
        .build()
        .expect("valid configuration")
}

#[test]
fn all_schemes_play_concurrent_movies_with_byte_verification() {
    for scheme in Scheme::ALL {
        let disks = if scheme == Scheme::ImprovedBandwidth {
            8
        } else {
            10
        };
        let mut s = server(scheme, disks, 5);
        let (a, b) = (s.objects()[0], s.objects()[1]);
        s.admit(a).unwrap();
        s.admit(b).unwrap();
        s.run(3).unwrap();
        s.admit(a).unwrap(); // a second viewer of the same movie
        while s.active_streams() > 0 {
            s.step().unwrap();
        }
        let m = s.metrics();
        assert_eq!(m.streams_finished, 3, "{scheme:?}");
        assert_eq!(m.total_hiccups(), 0, "{scheme:?}");
        assert_eq!(m.delivered, m.verified, "{scheme:?}: every byte checked");
        // feature = 225 tracks, short = 68 tracks (MPEG-1, 50 KB tracks).
        assert_eq!(m.delivered, 225 * 2 + 68, "{scheme:?}");
    }
}

#[test]
fn failure_and_repair_cycle_leaves_no_residue() {
    for scheme in Scheme::ALL {
        let disks = if scheme == Scheme::ImprovedBandwidth {
            8
        } else {
            10
        };
        let mut s = server(scheme, disks, 5);
        let movie = s.objects()[0];
        s.admit(movie).unwrap();
        s.run(5).unwrap();
        fail_now(&mut s, 2).unwrap();
        s.run(20).unwrap();
        s.repair_disk(DiskId(2)).unwrap();
        while s.active_streams() > 0 {
            s.step().unwrap();
        }
        let m = s.metrics();
        assert_eq!(m.streams_finished, 1, "{scheme:?}");
        // After the stream ends, no buffers may remain charged.
        assert_eq!(
            s.simulator().scheduler().buffer_in_use(),
            0,
            "{scheme:?}: buffer leak"
        );
        assert_eq!(m.catastrophes, 0, "{scheme:?}");
        assert_eq!(m.delivered, m.verified, "{scheme:?}");
    }
}

#[test]
fn clustered_schemes_tolerate_one_failure_per_cluster() {
    // "a Streaming RAID or disk-at-a-time system with K clusters can
    // withstand up to K failures, as long as there is no more than one
    // failure per cluster."
    for scheme in [Scheme::StreamingRaid, Scheme::StaggeredGroup] {
        let mut s = server(scheme, 10, 5);
        let movie = s.objects()[0];
        s.admit(movie).unwrap();
        let r1 = fail_now(&mut s, 0).unwrap(); // cluster 0
        let r2 = fail_now(&mut s, 7).unwrap(); // cluster 1
        assert!(!r1.catastrophic && !r2.catastrophic, "{scheme:?}");
        while s.active_streams() > 0 {
            s.step().unwrap();
        }
        let m = s.metrics();
        assert_eq!(m.total_hiccups(), 0, "{scheme:?}");
        assert!(m.reconstructed > 0, "{scheme:?}");
        assert_eq!(m.delivered, m.verified, "{scheme:?}");
    }
}

#[test]
fn second_failure_in_one_cluster_is_catastrophic_for_clustered() {
    for scheme in [
        Scheme::StreamingRaid,
        Scheme::StaggeredGroup,
        Scheme::NonClustered,
    ] {
        let mut s = server(scheme, 10, 5);
        let movie = s.objects()[0];
        s.admit(movie).unwrap();
        assert!(!fail_now(&mut s, 0).unwrap().catastrophic, "{scheme:?}");
        let err = fail_now(&mut s, 3).unwrap_err();
        assert!(
            matches!(err, ServerError::DataLoss { tracks } if tracks > 0),
            "{scheme:?}: {err}"
        );
        assert_eq!(s.metrics().catastrophes, 1, "{scheme:?}");
    }
}

#[test]
fn improved_bandwidth_is_catastrophic_on_adjacent_clusters() {
    // "In the improved bandwidth scheme, a failure in each of two
    // adjacent clusters causes data to be lost."
    let mut s = server(Scheme::ImprovedBandwidth, 12, 5); // 3 clusters of 4
    assert!(!fail_now(&mut s, 0).unwrap().catastrophic); // cluster 0
    let err = fail_now(&mut s, 5).unwrap_err(); // cluster 1: adjacent
    assert!(
        matches!(err, ServerError::DataLoss { tracks } if tracks > 0),
        "{err}"
    );
}

#[test]
fn improved_bandwidth_tolerates_non_adjacent_failures() {
    // With K clusters it "can possibly withstand up to K/2 failures" —
    // alternating clusters stay safe. 16 disks = 4 clusters of 4.
    let mut s = server(Scheme::ImprovedBandwidth, 16, 5);
    let movie = s.objects()[0];
    s.admit(movie).unwrap();
    assert!(!fail_now(&mut s, 0).unwrap().catastrophic); // cluster 0
    assert!(!fail_now(&mut s, 9).unwrap().catastrophic); // cluster 2
    while s.active_streams() > 0 {
        s.step().unwrap();
    }
    let m = s.metrics();
    assert_eq!(m.total_hiccups(), 0);
    assert!(m.reconstructed > 0);
    assert_eq!(m.delivered, m.verified);
}

#[test]
fn nonclustered_buffer_server_exhaustion_degrades_service() {
    // K_NC = 1 buffer server, failures in two different clusters: the
    // second degraded cluster finds no server and its streams are
    // dropped — the Eq. 6 degradation-of-service event.
    let mut s = ServerBuilder::new(Scheme::NonClustered)
        .disks(10)
        .parity_group(5)
        .buffer_servers(1)
        .movie("feature", 1.0, BandwidthClass::Mpeg1)
        .build()
        .unwrap();
    let movie = s.objects()[0];
    s.admit(movie).unwrap();
    s.admit(movie).unwrap();
    s.run(6).unwrap();
    let r1 = fail_now(&mut s, 1).unwrap(); // cluster 0 -> server attached
    assert!(r1.dropped_streams.is_empty());
    let r2 = fail_now(&mut s, 6).unwrap(); // cluster 1 -> no server left
    assert!(
        !r2.dropped_streams.is_empty(),
        "second degraded cluster must shed streams"
    );
    assert!(s.metrics().service_degradations > 0);
}

#[test]
fn nc_policies_agree_on_steady_state_but_not_transition() {
    // Same failure, same movie: the delayed policy never loses more than
    // the simple one, and both recover to hiccup-free degraded mode.
    let mut losses = Vec::new();
    for policy in [TransitionPolicy::Simple, TransitionPolicy::Delayed] {
        let mut s = ServerBuilder::new(Scheme::NonClustered)
            .disks(10)
            .parity_group(5)
            .transition_policy(policy)
            .movie("feature", 1.0, BandwidthClass::Mpeg1)
            .data_mode(DataMode::Verified { track_bytes: 128 })
            .build()
            .unwrap();
        let movie = s.objects()[0];
        s.admit(movie).unwrap();
        s.run(6).unwrap();
        fail_now(&mut s, 2).unwrap();
        while s.active_streams() > 0 {
            s.step().unwrap();
        }
        let m = s.metrics();
        assert_eq!(m.streams_finished, 1, "{policy:?}");
        assert_eq!(m.delivered, m.verified, "{policy:?}");
        losses.push(m.total_hiccups());
    }
    assert!(
        losses[1] <= losses[0],
        "delayed {} vs simple {}",
        losses[1],
        losses[0]
    );
}

#[test]
fn midcycle_failure_only_hurts_improved_bandwidth() {
    // SR/SG read parity alongside data, so even a mid-cycle failure is
    // masked; IB cannot mask the in-flight cycle (Section 4).
    for scheme in [
        Scheme::StreamingRaid,
        Scheme::StaggeredGroup,
        Scheme::ImprovedBandwidth,
    ] {
        let disks = if scheme == Scheme::ImprovedBandwidth {
            8
        } else {
            10
        };
        let mut s = server(scheme, disks, 5);
        let movie = s.objects()[0];
        s.admit(movie).unwrap();
        s.run(4).unwrap();
        s.inject(FailureEvent::fail_mid_cycle(s.cycle(), DiskId(1)))
            .unwrap();
        while s.active_streams() > 0 {
            s.step().unwrap();
        }
        let m = s.metrics();
        match scheme {
            Scheme::ImprovedBandwidth => {
                assert_eq!(m.hiccups_mid_cycle, 1, "{scheme:?}");
            }
            _ => assert_eq!(m.total_hiccups(), 0, "{scheme:?}"),
        }
    }
}
