//! Property-based equivalence of the event-horizon fast path: random
//! admit/release/run/fail/repair scripts drive two copies of the same
//! system — one stepping cycle by cycle, one in `StepMode::EventHorizon`
//! — and every observable outcome must match exactly, for all six
//! schedulers (the four server schemes plus the grouped and unprotected
//! baseline schedulers at the `Simulator` level).
//!
//! `Op::Run(1)` is over-weighted so the horizon-1 degeneracy — a limit
//! one cycle away, where the fast path must decline and fall back to a
//! plain step — is exercised in nearly every script.

use ft_media_server::disk::{Bandwidth, DiskId, DiskParams};
use ft_media_server::layout::{
    BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};
use ft_media_server::sched::{
    BaselineScheduler, CycleConfig, GroupedScheduler, SchemeScheduler, StreamId,
};
use ft_media_server::sim::{DataMode, FailureEvent, Metrics, ObjectDirectory, Simulator, StepMode};
use ft_media_server::{MultimediaServer, Scheme, ServerBuilder};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Advance the clock; `Run(1)` is the horizon-1 degeneracy.
    Run(u64),
    /// Admit a viewer on the catalog object at this index (mod catalog).
    Admit(u8),
    /// Release the live stream at this index (mod live count).
    Release(u8),
    /// Fail this disk (mod array width), if the array is healthy.
    Fail(u8),
    /// Repair the one failed disk, if any.
    Repair,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        // The vendored `prop_oneof!` is unweighted; repeated entries
        // skew the mix toward clock advances and the Run(1) degeneracy.
        prop_oneof![
            (1u64..=40).prop_map(Op::Run),
            (1u64..=40).prop_map(Op::Run),
            (1u64..=40).prop_map(Op::Run),
            Just(Op::Run(1)),
            Just(Op::Run(1)),
            any::<u8>().prop_map(Op::Admit),
            any::<u8>().prop_map(Op::Admit),
            any::<u8>().prop_map(Op::Release),
            any::<u8>().prop_map(Op::Fail),
            Just(Op::Repair),
        ],
        1..24,
    )
}

/// Everything a run can be observed to have computed.
fn observe(m: &Metrics, cycle: u64) -> (u64, Vec<u64>, u64, usize) {
    (
        cycle,
        vec![
            m.cycles,
            m.tracks_read,
            m.delivered,
            m.reconstructed,
            m.verified,
            m.hiccups_failed_disk,
            m.hiccups_displaced,
            m.hiccups_mid_cycle,
            m.service_degradations,
            m.streams_finished,
            m.catastrophes,
            m.rebuild_reads,
            m.rebuilds_completed,
        ],
        m.disk_busy.as_secs().to_bits(),
        m.buffer_peak,
    )
}

/// Run a script against a server, recording each op's outcome so the
/// two step modes can be compared decision by decision, not just on
/// final metrics.
fn drive_server(server: &mut MultimediaServer, ops: &[Op], disks: u32) -> Vec<String> {
    let mut live: Vec<StreamId> = Vec::new();
    let mut down: Option<DiskId> = None;
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Run(n) => server.run(*n).expect("run never fails without data loss"),
            Op::Admit(i) => {
                let obj = server.objects()[*i as usize % server.objects().len()];
                match server.admit(obj) {
                    Ok(id) => {
                        live.push(id);
                        trace.push(format!("admit {id:?}"));
                    }
                    Err(e) => trace.push(format!("admit err {e:?}")),
                }
            }
            Op::Release(i) => {
                if !live.is_empty() {
                    let id = live.remove(*i as usize % live.len());
                    trace.push(format!("release {id:?} {}", server.release(id)));
                }
            }
            Op::Fail(d) => {
                if down.is_none() {
                    let disk = DiskId(u32::from(*d) % disks);
                    let ok = server
                        .inject(FailureEvent::fail(server.cycle(), disk))
                        .is_ok();
                    trace.push(format!("fail {disk:?} {ok}"));
                    if ok {
                        down = Some(disk);
                    }
                }
            }
            Op::Repair => {
                if let Some(disk) = down.take() {
                    let ok = server
                        .inject(FailureEvent::repair(server.cycle(), disk))
                        .is_ok();
                    trace.push(format!("repair {disk:?} {ok}"));
                }
            }
        }
    }
    trace
}

/// Same script driver for a bare `Simulator` (grouped / baseline).
fn drive_sim<S: SchemeScheduler>(sim: &mut Simulator<S>, ops: &[Op], disks: u32) -> Vec<String> {
    let mut live: Vec<StreamId> = Vec::new();
    let mut down: Option<DiskId> = None;
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Run(n) => sim.run(*n).expect("run never fails without data loss"),
            Op::Admit(_) => match sim.admit(ObjectId(0)) {
                Ok(id) => {
                    live.push(id);
                    trace.push(format!("admit {id:?}"));
                }
                Err(e) => trace.push(format!("admit err {e:?}")),
            },
            Op::Release(i) => {
                if !live.is_empty() {
                    let id = live.remove(*i as usize % live.len());
                    trace.push(format!("release {id:?} {}", sim.release(id)));
                }
            }
            Op::Fail(d) => {
                if down.is_none() {
                    let disk = DiskId(u32::from(*d) % disks);
                    let ok = sim.fail_disk_now(disk, false).is_ok();
                    trace.push(format!("fail {disk:?} {ok}"));
                    if ok {
                        down = Some(disk);
                    }
                }
            }
            Op::Repair => {
                if let Some(disk) = down.take() {
                    let ok = sim.repair_disk_now(disk).is_ok();
                    trace.push(format!("repair {disk:?} {ok}"));
                }
            }
        }
    }
    trace
}

fn build_server(scheme: Scheme, mode: StepMode) -> MultimediaServer {
    let disks = if scheme == Scheme::ImprovedBandwidth {
        8
    } else {
        10
    };
    let mut server = ServerBuilder::new(scheme)
        .disks(disks)
        .parity_group(5)
        .data_mode(DataMode::MetadataOnly)
        .movie("short", 0.02, BandwidthClass::Mpeg1)
        .movie("long", 0.2, BandwidthClass::Mpeg1)
        .build()
        .expect("fixed geometry builds");
    server.set_step_mode(mode);
    server
}

/// A `Simulator` over a clustered catalog for the schedulers the
/// server builder does not expose (grouped `k' | C−1`, baseline
/// `k = k' = 1`).
fn build_sim<S, F>(tracks: u64, k: usize, k_prime: usize, make: F, mode: StepMode) -> Simulator<S>
where
    S: SchemeScheduler,
    F: FnOnce(CycleConfig, Catalog<ClusteredLayout>) -> S,
{
    let geo = Geometry::clustered(10, 5).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
    catalog
        .add(MediaObject::new(
            ObjectId(0),
            "m",
            tracks,
            BandwidthClass::Mpeg1,
        ))
        .unwrap();
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabits(1.5),
        k,
        k_prime,
    );
    let dir = ObjectDirectory::new([(ObjectId(0), tracks)], 4);
    let mut sim = Simulator::new(
        make(cfg, catalog),
        DiskParams::paper_table1(),
        10,
        DataMode::MetadataOnly,
        dir,
    );
    sim.set_step_mode(mode);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SR, SG, NC, and IB: a random script drives a cycle-by-cycle and
    /// an event-horizon server to bit-identical outcomes.
    #[test]
    fn random_scripts_are_mode_independent_for_server_schemes(ops in arb_ops()) {
        for scheme in Scheme::ALL {
            let disks = if scheme == Scheme::ImprovedBandwidth { 8 } else { 10 };
            let mut slow = build_server(scheme, StepMode::CycleByCycle);
            let mut fast = build_server(scheme, StepMode::EventHorizon);
            let t_slow = drive_server(&mut slow, &ops, disks);
            let t_fast = drive_server(&mut fast, &ops, disks);
            prop_assert_eq!(&t_slow, &t_fast, "{:?}: op outcomes diverged", scheme);
            prop_assert_eq!(
                observe(slow.metrics(), slow.cycle()),
                observe(fast.metrics(), fast.cycle()),
                "{:?}: observables diverged",
                scheme
            );
        }
    }

    /// The grouped and unprotected-baseline schedulers, driven at the
    /// `Simulator` level, are mode-independent too.
    #[test]
    fn random_scripts_are_mode_independent_for_grouped_and_baseline(ops in arb_ops()) {
        let grouped = |cfg, cat| GroupedScheduler::new(cfg, cat);
        let mut slow = build_sim(120, 4, 2, grouped, StepMode::CycleByCycle);
        let mut fast = build_sim(120, 4, 2, grouped, StepMode::EventHorizon);
        let t_slow = drive_sim(&mut slow, &ops, 10);
        let t_fast = drive_sim(&mut fast, &ops, 10);
        prop_assert_eq!(&t_slow, &t_fast, "grouped: op outcomes diverged");
        prop_assert_eq!(
            observe(slow.metrics(), slow.cycle()),
            observe(fast.metrics(), fast.cycle()),
            "grouped: observables diverged"
        );

        let baseline = |cfg, cat| BaselineScheduler::new(cfg, cat);
        let mut slow = build_sim(120, 1, 1, baseline, StepMode::CycleByCycle);
        let mut fast = build_sim(120, 1, 1, baseline, StepMode::EventHorizon);
        let t_slow = drive_sim(&mut slow, &ops, 10);
        let t_fast = drive_sim(&mut fast, &ops, 10);
        prop_assert_eq!(&t_slow, &t_fast, "baseline: op outcomes diverged");
        prop_assert_eq!(
            observe(slow.metrics(), slow.cycle()),
            observe(fast.metrics(), fast.cycle()),
            "baseline: observables diverged"
        );
    }
}
