//! Rebuild mode — the third operating mode the paper defines (Section 1)
//! but defers: restoring a failed disk's contents onto a spare, either
//! from parity (fast, consumes only idle array slots) or from tertiary
//! storage (slow; "many tapes may need to be referenced").

use ft_media_server::disk::{DiskId, DiskState};
use ft_media_server::layout::{BandwidthClass, MediaObject, ObjectId};
use ft_media_server::sim::{DataMode, FailureEvent};
use ft_media_server::{MultimediaServer, Scheme, ServerBuilder};

fn server(scheme: Scheme) -> MultimediaServer {
    let disks = if scheme == Scheme::ImprovedBandwidth {
        8
    } else {
        10
    };
    ServerBuilder::new(scheme)
        .disks(disks)
        .parity_group(5)
        .object(MediaObject::new(
            ObjectId(0),
            "m",
            200,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::Verified { track_bytes: 64 })
        .build()
        .unwrap()
}

#[test]
fn parity_rebuild_returns_disk_to_service_for_every_scheme() {
    for scheme in Scheme::ALL {
        let mut s = server(scheme);
        let movie = s.objects()[0];
        s.admit(movie).unwrap();
        s.run(3).unwrap();
        s.inject(FailureEvent::fail(s.cycle(), DiskId(1))).unwrap();
        s.run(2).unwrap();
        s.start_parity_rebuild(DiskId(1)).unwrap();
        assert!(matches!(
            s.simulator().disks().disk(DiskId(1)).unwrap().state(),
            DiskState::Rebuilding { .. }
        ));
        // Idle bandwidth is plentiful with one active stream: the rebuild
        // must complete well within the movie's playback.
        let mut completed_at = None;
        for t in 0..400 {
            s.step().unwrap();
            if s.metrics().rebuilds_completed > 0 && completed_at.is_none() {
                completed_at = Some(t);
            }
        }
        assert!(completed_at.is_some(), "{scheme:?}: rebuild never finished");
        assert!(
            s.simulator().disks().is_operational(DiskId(1)),
            "{scheme:?}: disk not back in service"
        );
        assert!(s.metrics().rebuild_reads > 0, "{scheme:?}");
        // After rebuild completion, later groups read normally again: the
        // stream finishes with no further reconstructions than before.
        let m = s.metrics();
        assert_eq!(m.delivered, m.verified, "{scheme:?}");
    }
}

#[test]
fn rebuild_never_delays_streams() {
    // The rebuild uses only idle slots, so deliveries are identical to a
    // run without any rebuild.
    let mut with = server(Scheme::StreamingRaid);
    let movie = with.objects()[0];
    with.admit(movie).unwrap();
    with.run(3).unwrap();
    with.inject(FailureEvent::fail(with.cycle(), DiskId(2)))
        .unwrap();
    with.start_parity_rebuild(DiskId(2)).unwrap();
    while with.active_streams() > 0 {
        with.step().unwrap();
    }

    let mut without = server(Scheme::StreamingRaid);
    let movie = without.objects()[0];
    without.admit(movie).unwrap();
    without.run(3).unwrap();
    without
        .inject(FailureEvent::fail(without.cycle(), DiskId(2)))
        .unwrap();
    while without.active_streams() > 0 {
        without.step().unwrap();
    }

    assert_eq!(with.metrics().delivered, without.metrics().delivered);
    assert_eq!(with.metrics().total_hiccups(), 0);
    assert_eq!(without.metrics().total_hiccups(), 0);
    // The rebuilt run must have stopped reconstructing once the disk
    // returned, so it reconstructs no more than the non-rebuilt run.
    assert!(with.metrics().reconstructed <= without.metrics().reconstructed);
    assert!(with.metrics().rebuilds_completed == 1);
}

#[test]
fn tertiary_rebuild_is_slower_but_needs_no_array_bandwidth() {
    let mut s = server(Scheme::StreamingRaid);
    let movie = s.objects()[0];
    s.admit(movie).unwrap();
    s.inject(FailureEvent::fail(s.cycle(), DiskId(1))).unwrap();
    // Tape speed: the paper's footnote prices a tape drive at ~4 Mb/s =
    // 1 track (50 KB) per second ≈ 1 track per cycle at MPEG-1 T_cyc.
    s.start_tertiary_rebuild(DiskId(1), 1).unwrap();
    let total = {
        let r = &s.simulator().rebuilds().active()[0];
        assert!(r.total_tracks > 0);
        r.total_tracks
    };
    let mut cycles = 0u64;
    while s.metrics().rebuilds_completed == 0 {
        s.step().unwrap();
        cycles += 1;
        assert!(cycles < total + 10, "tertiary rebuild too slow");
    }
    // Exactly one track per cycle: duration == track count (±1 warmup).
    assert!(cycles >= total, "{cycles} < {total}");
    // No array reads were spent on the rebuild.
    assert_eq!(s.metrics().rebuild_reads, 0);
}

#[test]
fn rebuild_progress_is_observable() {
    // A long object so the rebuild spans several cycles even on an idle
    // array (disk 3 holds ~250 tracks; 52 idle slots per cycle).
    let mut s = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(5)
        .object(MediaObject::new(
            ObjectId(0),
            "long",
            2_000,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::MetadataOnly)
        .build()
        .unwrap();
    s.inject(FailureEvent::fail(s.cycle(), DiskId(3))).unwrap();
    s.start_parity_rebuild(DiskId(3)).unwrap();
    s.run(1).unwrap();
    let r = &s.simulator().rebuilds().active()[0];
    assert!(r.progress() > 0.0 && r.progress() < 1.0, "{}", r.progress());
    assert!(r.to_string().contains("rebuild disk 3"));
    s.run(10).unwrap();
    assert_eq!(s.metrics().rebuilds_completed, 1);
}
