//! The scenario engine end to end: typed data loss on double faults,
//! the paper's loss invariants through the full corpus, bit-identical
//! corpus output at any thread count, and a reliability cross-check of
//! the simulated catastrophe condition against `mms-reliability`'s
//! closed-form rule.

use ft_media_server::disk::DiskId;
use ft_media_server::reliability::CatastropheRule;
use ft_media_server::scenario::{corpus, find, run_corpus_rendered, ScenarioRunner};
use ft_media_server::sched::SchemeKind;
use ft_media_server::sim::FailureEvent;
use ft_media_server::{Parallelism, Scheme, ServerBuilder, ServerError};
use std::num::NonZeroUsize;

fn threads(n: usize) -> Parallelism {
    Parallelism::Threads(NonZeroUsize::new(n).unwrap())
}

#[test]
fn second_fault_in_degraded_group_is_typed_data_loss_for_every_scheme() {
    for scheme in Scheme::ALL {
        let disks = if scheme == Scheme::ImprovedBandwidth {
            8
        } else {
            10
        };
        let mut s = ServerBuilder::new(scheme)
            .disks(disks)
            .parity_group(5)
            .movie(
                "feature",
                1.0,
                ft_media_server::layout::BandwidthClass::Mpeg1,
            )
            .build()
            .unwrap();
        let movie = s.objects()[0];
        s.admit(movie).unwrap();
        s.run(3).unwrap();
        s.inject(FailureEvent::fail(s.cycle(), DiskId(1))).unwrap();
        s.run(3).unwrap();
        // Disk 2 shares disk 1's parity group (cluster 0) in every
        // scheme at these geometries.
        let err = s
            .inject(FailureEvent::fail(s.cycle(), DiskId(2)))
            .unwrap_err();
        match err {
            ServerError::DataLoss { tracks } => {
                assert!(tracks > 0, "{scheme:?}: loss must count real data tracks");
            }
            other => panic!("{scheme:?}: expected DataLoss, got {other}"),
        }
        // The failure was still applied: the server is in catastrophic
        // mode but alive, and stepping never panics.
        s.run(3).unwrap();
        assert_eq!(s.metrics().catastrophes, 1, "{scheme:?}");
    }
}

#[test]
fn corpus_invariants_hold_for_every_scheme() {
    let (text, ok) = run_corpus_rendered(Parallelism::Sequential, true, None, false);
    assert!(ok, "corpus violations:\n{text}");
}

/// Fast-forwarded corpus runs render bit-identically to per-cycle runs
/// — every loss count (including the exact Figures 6/7 NC transition
/// losses), every metric line, every verdict.
#[test]
fn corpus_output_is_bit_identical_with_fast_forward() {
    let (slow, ok) = run_corpus_rendered(Parallelism::Sequential, true, None, false);
    assert!(ok);
    let (fast, ok) = run_corpus_rendered(Parallelism::Sequential, true, None, true);
    assert!(ok);
    assert_eq!(slow, fast, "fast-forward changed the corpus output");
}

#[test]
fn nc_figure_scenarios_reproduce_exact_transition_losses() {
    for (name, expected) in [("nc-transition-simple", 6), ("nc-transition-delayed", 3)] {
        let case = find(name, true).unwrap();
        let runner = ScenarioRunner::new(Parallelism::Sequential);
        let report = runner.run(&case, SchemeKind::NonClustered);
        assert!(report.passed(), "{name}: {:?}", report.violations);
        assert_eq!(report.tracks_lost, expected, "{name}");
    }
}

#[test]
fn corpus_output_is_bit_identical_across_thread_counts() {
    let (seq, ok) = run_corpus_rendered(Parallelism::Sequential, true, None, false);
    assert!(ok);
    for n in [2, 8] {
        let (par, ok) = run_corpus_rendered(threads(n), true, None, false);
        assert!(ok);
        assert_eq!(seq, par, "corpus diverged at {n} threads");
    }
}

/// The simulated catastrophe condition agrees with the closed-form
/// [`CatastropheRule`] that `mms-reliability`'s Monte-Carlo layer uses:
/// for every ordered pair of distinct disks, injecting both faults is a
/// typed `DataLoss` exactly when the rule says the pair is terminal.
#[test]
fn simulated_catastrophes_match_the_reliability_rule() {
    let c = 5;
    for scheme in Scheme::ALL {
        let (disks, rule) = match scheme {
            // 16 disks = 4 IB clusters: both adjacent (catastrophic) and
            // alternating (safe) pairs exist.
            Scheme::ImprovedBandwidth => (16, CatastropheRule::SameOrAdjacentCluster { c }),
            _ => (10, CatastropheRule::SameCluster { c }),
        };
        for first in 0..disks {
            for second in 0..disks {
                if first == second {
                    continue;
                }
                let predicted = rule.is_catastrophic([first], second, disks);
                let mut s = ServerBuilder::new(scheme)
                    .disks(disks)
                    .parity_group(c)
                    .movie("m", 0.2, ft_media_server::layout::BandwidthClass::Mpeg1)
                    .build()
                    .unwrap();
                s.inject(FailureEvent::fail(0, DiskId(first as u32)))
                    .unwrap();
                let outcome = s.inject(FailureEvent::fail(0, DiskId(second as u32)));
                let observed = matches!(outcome, Err(ServerError::DataLoss { .. }));
                assert_eq!(
                    predicted, observed,
                    "{scheme:?}: disks {first},{second} predicted {predicted}"
                );
            }
        }
    }
}

#[test]
fn every_corpus_scenario_runs_for_each_of_its_schemes() {
    let runner = ScenarioRunner::new(Parallelism::Sequential);
    for case in corpus(true) {
        let reports = runner.run_case(&case);
        assert_eq!(reports.len(), case.schemes.len());
        for report in reports {
            assert!(
                report.passed(),
                "{}/{:?}: {:?}",
                case.scenario.name,
                report.scheme,
                report.violations
            );
            assert!(report.cycles > 0, "{}", case.scenario.name);
        }
    }
}

/// The unified `inject(FailureEvent)` surface covers everything the
/// old per-method fault API did: immediate faults (with the typed
/// `DataLoss` verdict on the second fault in a degraded group),
/// repair, and scheduled future failures.
#[test]
fn inject_covers_immediate_scheduled_and_repair_faults() {
    let mut s = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(5)
        .movie("m", 0.2, ft_media_server::layout::BandwidthClass::Mpeg1)
        .build()
        .unwrap();
    let movie = s.objects()[0];
    s.admit(movie).unwrap();
    let report = s.inject(FailureEvent::fail(s.cycle(), DiskId(1))).unwrap();
    assert!(!report.catastrophic);
    // The second fault in the degraded group is the typed verdict.
    assert!(matches!(
        s.inject(FailureEvent::fail(s.cycle(), DiskId(2))),
        Err(ServerError::DataLoss { .. })
    ));
    s.repair_disk(DiskId(1)).unwrap();
    let mut s2 = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(5)
        .movie("m", 0.2, ft_media_server::layout::BandwidthClass::Mpeg1)
        .build()
        .unwrap();
    // A future-dated event queues (empty report) and fires during `run`.
    let report = s2.inject(FailureEvent::fail(2, DiskId(0))).unwrap();
    assert!(!report.catastrophic && report.lost.is_empty());
    let movie = s2.objects()[0];
    s2.admit(movie).unwrap();
    s2.run(4).unwrap();
    assert!(s2.metrics().reconstructed > 0);
}
