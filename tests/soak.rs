//! Soak test: a long stochastic run with accelerated disk failures and
//! repairs, Poisson arrivals, and byte verification — the closest thing
//! to the production duty cycle the paper's server would face.

use ft_media_server::disk::{ReliabilityParams, Time};
use ft_media_server::layout::{BandwidthClass, MediaObject, ObjectId};
use ft_media_server::sched::SchemeScheduler;
use ft_media_server::sim::{DataMode, FailureSchedule, WorkloadGen};
use ft_media_server::{Scheme, ServerBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CYCLES: u64 = 1_500;

#[test]
fn stochastic_soak_across_all_schemes() {
    let mut rng = StdRng::seed_from_u64(0x51_6D0D);
    for scheme in Scheme::ALL {
        let disks = if scheme == Scheme::ImprovedBandwidth {
            8
        } else {
            10
        };
        let mut builder = ServerBuilder::new(scheme)
            .disks(disks)
            .parity_group(5)
            .data_mode(DataMode::Verified { track_bytes: 48 });
        for i in 0..4u64 {
            builder = builder.object(MediaObject::new(
                ObjectId(i),
                format!("title{i}"),
                40 + 12 * i,
                BandwidthClass::Mpeg1,
            ));
        }
        let mut server = builder.build().unwrap();

        // Accelerated failures: each disk fails a few times over the
        // horizon and is repaired within ~20 cycles (the paper's 1-hour
        // MTTR would outlast this compressed horizon entirely).
        let t_cyc = server.cycle_config().t_cyc();
        let rel = ReliabilityParams {
            mttf: ReliabilityParams::paper().mttf,
            mttr: Time::from_secs(t_cyc.as_secs() * 20.0),
        };
        let schedule = FailureSchedule::stochastic(&mut rng, disks, rel, t_cyc, CYCLES, 2.0e6);
        let injected = schedule.remaining();
        server.simulator_mut().set_failures(schedule);

        let workload = WorkloadGen::new(server.objects().to_vec(), 0.271, 0.15);
        let mut wrng = StdRng::seed_from_u64(7 + disks as u64);
        // Catastrophes (two overlapping failures) are possible under the
        // acceleration; the run must stay consistent regardless.
        server
            .run_with_workload(CYCLES, &workload, &mut wrng)
            .unwrap();

        let m = server.metrics().clone();
        assert!(injected > 0, "{scheme:?}: the soak needs failures");
        assert!(
            m.streams_finished > 20,
            "{scheme:?}: {}",
            m.streams_finished
        );
        assert_eq!(m.delivered, m.verified, "{scheme:?}: all bytes checked");
        // Even with repeated failures, the overwhelming majority of
        // deliveries succeed.
        assert!(
            m.delivery_rate() > 0.97,
            "{scheme:?}: delivery rate {}",
            m.delivery_rate()
        );
        // Buffers never leak across the whole horizon.
        let residual = server.simulator().scheduler().buffer_in_use();
        let active = server.active_streams();
        assert!(
            active > 0 || residual == 0,
            "{scheme:?}: {residual} tracks leaked with no active streams"
        );
    }
}
