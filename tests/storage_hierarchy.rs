//! The full Figure-1 storage hierarchy: objects live on tertiary storage,
//! stage onto the disk farm at tape speed, play with parity protection,
//! and get purged (LRU) when the disks fill.

use ft_media_server::layout::{BandwidthClass, CatalogError, MediaObject, ObjectId};
use ft_media_server::sched::RetireError;
use ft_media_server::sim::DataMode;
use ft_media_server::{Scheme, ServerBuilder, ServerError};

fn movie(id: u64, tracks: u64) -> MediaObject {
    MediaObject::new(
        ObjectId(id),
        format!("m{id}"),
        tracks,
        BandwidthClass::Mpeg1,
    )
}

#[test]
fn staged_object_becomes_playable_and_verifies() {
    let mut s = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(5)
        .object(movie(0, 8))
        .data_mode(DataMode::Verified { track_bytes: 64 })
        .build()
        .unwrap();
    s.set_tape_rate(4);
    s.request_from_tertiary(movie(1, 16)).unwrap();
    assert!(!s.is_resident(ObjectId(1)));
    assert!(s.staging().is_staging(ObjectId(1)));
    // 16 tracks at 4/cycle: resident after 4 cycles.
    for _ in 0..4 {
        s.step().unwrap();
    }
    assert!(s.is_resident(ObjectId(1)));
    // Play the staged movie to completion with byte verification.
    s.admit(ObjectId(1)).unwrap();
    while s.active_streams() > 0 {
        s.step().unwrap();
    }
    let m = s.metrics();
    assert_eq!(m.delivered, 16);
    assert_eq!(m.delivered, m.verified);
}

#[test]
fn duplicate_requests_are_rejected() {
    let mut s = ServerBuilder::new(Scheme::StreamingRaid)
        .object(movie(0, 8))
        .build()
        .unwrap();
    // Already resident.
    assert!(matches!(
        s.request_from_tertiary(movie(0, 8)),
        Err(ServerError::Catalog(CatalogError::Duplicate { .. }))
    ));
    // Already queued.
    s.request_from_tertiary(movie(1, 8)).unwrap();
    assert!(matches!(
        s.request_from_tertiary(movie(1, 8)),
        Err(ServerError::Catalog(CatalogError::Duplicate { .. }))
    ));
}

#[test]
fn purge_refuses_objects_with_viewers() {
    let mut s = ServerBuilder::new(Scheme::StreamingRaid)
        .object(movie(0, 40))
        .build()
        .unwrap();
    s.admit(ObjectId(0)).unwrap();
    assert!(matches!(
        s.purge_object(ObjectId(0)),
        Err(ServerError::Retire(RetireError::InUse { streams: 1, .. }))
    ));
    while s.active_streams() > 0 {
        s.step().unwrap();
    }
    s.purge_object(ObjectId(0)).unwrap();
    assert!(!s.is_resident(ObjectId(0)));
    assert!(matches!(
        s.purge_object(ObjectId(0)),
        Err(ServerError::Retire(RetireError::NotFound { .. }))
    ));
}

#[test]
fn full_disks_block_staging_until_lru_purge() {
    // Tiny disks: capacity 10 tracks each. Two 32-track objects fill the
    // farm (each takes 2 tracks/disk × C/(C−1)); a third must wait until
    // one is purged.
    let params = ft_media_server::disk::DiskParams {
        capacity: ft_media_server::disk::Size::from_kb(50.0 * 10.0),
        ..ft_media_server::disk::DiskParams::paper_table1()
    };
    let mut s = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(5)
        .disk_params(params)
        .object(movie(0, 32))
        .object(movie(1, 32))
        .data_mode(DataMode::MetadataOnly)
        .build()
        .unwrap();
    s.set_tape_rate(100);
    s.request_from_tertiary(movie(2, 32)).unwrap();
    // The tape finishes immediately but placement fails: blocked.
    for _ in 0..3 {
        s.step().unwrap();
    }
    assert!(!s.is_resident(ObjectId(2)));
    assert!(s.staging().queue()[0].blocked);

    // Use object 1 so object 0 is the LRU victim.
    s.admit(ObjectId(1)).unwrap();
    let victim = s.purge_lru().expect("something must be purgeable");
    assert_eq!(victim, ObjectId(0), "LRU victim is the never-used object");
    // Unblocked: the staged object lands on the next step.
    s.step().unwrap();
    assert!(s.is_resident(ObjectId(2)));
    // And it is immediately playable.
    s.admit(ObjectId(2)).unwrap();
    for _ in 0..40 {
        s.step().unwrap();
    }
    assert_eq!(s.metrics().total_hiccups(), 0);
    assert_eq!(s.metrics().streams_finished, 2);
}

#[test]
fn purge_lru_skips_busy_objects() {
    let mut s = ServerBuilder::new(Scheme::StreamingRaid)
        .object(movie(0, 40))
        .object(movie(1, 40))
        .build()
        .unwrap();
    s.admit(ObjectId(0)).unwrap();
    // Object 0 is busy; LRU must pick object 1 even though 0 is older.
    assert_eq!(s.purge_lru(), Some(ObjectId(1)));
    // Only the busy object remains: nothing purgeable.
    assert_eq!(s.purge_lru(), None);
}
