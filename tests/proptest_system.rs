//! Property-based whole-system tests: random geometries, movie lengths,
//! failure times, and schemes — the invariants of Section 5 must hold in
//! every case.

use ft_media_server::disk::DiskId;
use ft_media_server::layout::{BandwidthClass, MediaObject, ObjectId};
use ft_media_server::sched::{SchemeScheduler, TransitionPolicy};
use ft_media_server::sim::{DataMode, FailureEvent};
use ft_media_server::{MultimediaServer, Scheme, ServerBuilder, ServerError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    scheme: Scheme,
    c: usize,
    clusters: usize,
    tracks: u64,
    viewers: usize,
    fail_disk: Option<u32>,
    fail_after: u64,
    policy: TransitionPolicy,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![
            Just(Scheme::StreamingRaid),
            Just(Scheme::StaggeredGroup),
            Just(Scheme::NonClustered),
            Just(Scheme::ImprovedBandwidth),
        ],
        3usize..=7, // parity-group size
        2usize..=4, // clusters
        4u64..=60,  // object tracks
        1usize..=3, // viewers
        prop_oneof![Just(None), (0u32..8).prop_map(Some)],
        0u64..8, // failure timing
        prop_oneof![
            Just(TransitionPolicy::Simple),
            Just(TransitionPolicy::Delayed)
        ],
    )
        .prop_map(
            |(scheme, c, clusters, tracks, viewers, fail_disk, fail_after, policy)| Scenario {
                scheme,
                c,
                clusters,
                tracks,
                viewers,
                fail_disk,
                fail_after,
                policy,
            },
        )
}

fn build(sc: &Scenario) -> MultimediaServer {
    let width = if sc.scheme == Scheme::ImprovedBandwidth {
        sc.c - 1
    } else {
        sc.c
    };
    ServerBuilder::new(sc.scheme)
        .disks(width * sc.clusters)
        .parity_group(sc.c)
        .transition_policy(sc.policy)
        .object(MediaObject::new(
            ObjectId(0),
            "m",
            sc.tracks,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::Verified { track_bytes: 64 })
        .build()
        .expect("valid scenario")
}

/// Pinned regression from `proptest_system.proptest-regressions`: the
/// shrunk case `Scenario { scheme: StreamingRaid, c: 5, clusters: 2,
/// tracks: 4, viewers: 2, fail_disk: None, fail_after: 0, policy:
/// Simple }` once violated the conservation invariant. The seed file
/// stays checked in as the historical record; this test replays the
/// exact case deterministically on every run (the vendored proptest
/// harness does not replay regression files itself).
#[test]
fn regression_streaming_raid_c5_two_clusters_short_movie() {
    let sc = Scenario {
        scheme: Scheme::StreamingRaid,
        c: 5,
        clusters: 2,
        tracks: 4,
        viewers: 2,
        fail_disk: None,
        fail_after: 0,
        policy: TransitionPolicy::Simple,
    };
    let mut s = build(&sc);
    let movie = s.objects()[0];
    let mut admitted = 0u64;
    for _ in 0..sc.viewers {
        if s.admit(movie).is_ok() {
            admitted += 1;
        }
        s.step().unwrap();
    }
    s.run(sc.fail_after).unwrap();
    let horizon = (sc.tracks + 8) * (sc.c as u64) * (sc.viewers as u64 + 2) + 64;
    let mut steps = 0;
    while s.active_streams() > 0 {
        s.step().unwrap();
        steps += 1;
        assert!(steps < horizon, "stream never finished");
    }
    let m = s.metrics();
    assert_eq!(
        m.streams_finished + m.service_degradations,
        admitted,
        "finished + dropped = admitted"
    );
    assert_eq!(m.delivered, m.verified);
    assert!(m.total_hiccups() <= (sc.c * sc.c) as u64 * sc.viewers as u64);
    assert_eq!(s.simulator().scheduler().buffer_in_use(), 0, "buffer leak");
    assert_eq!(m.catastrophes, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Conservation: every scheduled track is either delivered (and
    /// byte-verified) or accounted as a hiccup; buffers drain to zero;
    /// single failures are never catastrophic.
    #[test]
    fn tracks_are_conserved_and_buffers_drain(sc in arb_scenario()) {
        let mut s = build(&sc);
        let movie = s.objects()[0];
        let mut admitted = 0u64;
        for _ in 0..sc.viewers {
            // Capacity is ample in these geometries; spread admissions.
            if s.admit(movie).is_ok() {
                admitted += 1;
            }
            s.step().unwrap();
        }
        s.run(sc.fail_after).unwrap();
        let mut catastrophic = false;
        if let Some(d) = sc.fail_disk {
            let disks = s.simulator().disks().len() as u32;
            catastrophic = match s.inject(FailureEvent::fail(s.cycle(), DiskId(d % disks))) {
                Ok(report) => report.catastrophic,
                Err(ServerError::DataLoss { .. }) => true,
                Err(e) => panic!("unexpected error: {e}"),
            };
        }
        // Generous horizon: every stream must terminate.
        let horizon = (sc.tracks + 8) * (sc.c as u64) * (sc.viewers as u64 + 2) + 64;
        let mut steps = 0;
        while s.active_streams() > 0 {
            s.step().unwrap();
            steps += 1;
            prop_assert!(steps < horizon, "stream never finished");
        }
        let m = s.metrics();
        // Dropped streams (degradation of service) never "finish".
        prop_assert_eq!(
            m.streams_finished + m.service_degradations,
            admitted,
            "finished + dropped = admitted"
        );
        prop_assert_eq!(m.delivered, m.verified);
        if !catastrophic {
            // Without a catastrophe, a single failure loses at most the
            // NC transition set: strictly fewer than C(C-1)/2 + C tracks
            // per affected stream.
            let bound = (sc.c * sc.c) as u64 * sc.viewers as u64;
            prop_assert!(m.total_hiccups() <= bound);
        }
        prop_assert_eq!(s.simulator().scheduler().buffer_in_use(), 0, "buffer leak");
        prop_assert_eq!(m.catastrophes > 0, catastrophic);
    }

    /// The delayed NC transition never loses more tracks than the simple
    /// one, across arbitrary failure positions and timings.
    #[test]
    fn delayed_transition_dominates_simple(
        c in 3usize..=7,
        clusters in 1usize..=3,
        tracks in 8u64..=40,
        fail_disk in 0u32..8,
        fail_after in 1u64..12,
    ) {
        let mut losses = Vec::new();
        for policy in [TransitionPolicy::Simple, TransitionPolicy::Delayed] {
            let mut s = ServerBuilder::new(Scheme::NonClustered)
                .disks(c * clusters)
                .parity_group(c)
                .transition_policy(policy)
                .object(MediaObject::new(ObjectId(0), "m", tracks, BandwidthClass::Mpeg1))
                .data_mode(DataMode::Verified { track_bytes: 32 })
                .build()
                .unwrap();
            let movie = s.objects()[0];
            s.admit(movie).unwrap();
            s.run(fail_after).unwrap();
            let disks = s.simulator().disks().len() as u32;
            s.inject(FailureEvent::fail(s.cycle(), DiskId(fail_disk % disks)))
                .unwrap();
            let mut steps = 0u64;
            while s.active_streams() > 0 {
                s.step().unwrap();
                steps += 1;
                prop_assert!(steps < 10_000);
            }
            losses.push(s.metrics().total_hiccups());
        }
        prop_assert!(
            losses[1] <= losses[0],
            "delayed {} > simple {}",
            losses[1],
            losses[0]
        );
    }

    /// Admission honors capacity: admitting far beyond `stream_capacity`
    /// never over-subscribes a disk (no plan ever exceeds slot budgets —
    /// the simulator would error on overload).
    #[test]
    fn admission_never_oversubscribes(
        scheme_ix in 0usize..4,
        c in 3usize..=6,
        burst in 1usize..40,
    ) {
        let scheme = Scheme::ALL[scheme_ix];
        let width = if scheme == Scheme::ImprovedBandwidth { c - 1 } else { c };
        let mut s = ServerBuilder::new(scheme)
            .disks(width * 2)
            .parity_group(c)
            .object(MediaObject::new(ObjectId(0), "m", 24, BandwidthClass::Mpeg1))
            .data_mode(DataMode::MetadataOnly)
            .build()
            .unwrap();
        let movie = s.objects()[0];
        let cap = s.stream_capacity();
        let mut admitted = 0;
        for _ in 0..burst {
            if s.admit(movie).is_ok() {
                admitted += 1;
            }
        }
        prop_assert!(admitted <= cap);
        // Running must never hit a disk overload (SimError).
        for _ in 0..60 {
            s.step().unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Section 5 single-fault invariants, sharply: one
    /// cycle-boundary failure is fully masked by SR, SG, and IB (zero
    /// lost tracks), while NC loses at most the Section 4.3 transition
    /// set — C(C−1)/2 tracks per viewer in the worst (simple-policy)
    /// case.
    #[test]
    fn single_fault_loss_is_zero_or_bounded_by_scheme(
        sc in arb_scenario(),
        d in 0u32..64,
    ) {
        let mut s = build(&sc);
        let movie = s.objects()[0];
        let mut admitted = 0u64;
        for _ in 0..sc.viewers {
            if s.admit(movie).is_ok() {
                admitted += 1;
            }
            s.step().unwrap();
        }
        prop_assume!(admitted > 0);
        s.run(sc.fail_after).unwrap();
        let disks = s.simulator().disks().len() as u32;
        s.inject(FailureEvent::fail(s.cycle(), DiskId(d % disks)))
            .unwrap();
        let horizon = (sc.tracks + 8) * (sc.c as u64) * (sc.viewers as u64 + 2) + 64;
        let mut steps = 0;
        while s.active_streams() > 0 {
            s.step().unwrap();
            steps += 1;
            prop_assert!(steps < horizon, "stream never finished");
        }
        let m = s.metrics();
        prop_assert_eq!(m.catastrophes, 0, "single fault must never be catastrophic");
        match sc.scheme {
            Scheme::NonClustered => {
                let bound = (sc.c * (sc.c - 1) / 2) as u64 * admitted;
                prop_assert!(
                    m.total_hiccups() <= bound,
                    "NC lost {} > bound {}", m.total_hiccups(), bound
                );
            }
            _ => prop_assert_eq!(
                m.total_hiccups(), 0,
                "{:?} must mask a cycle-boundary failure", sc.scheme
            ),
        }
    }
}
