//! End-to-end tests of the `mms-ctl` command-line driver.

use std::process::Command;

fn ctl(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mms-ctl"))
        .args(args)
        .output()
        .expect("run mms-ctl");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn table_command_prints_table2() {
    let (stdout, _, ok) = ctl(&["table", "5"]);
    assert!(ok);
    assert!(stdout.contains("Streaming RAID"), "{stdout}");
    assert!(stdout.contains("1041"), "{stdout}");
    assert!(stdout.contains("2612"), "{stdout}");
}

#[test]
fn simulate_masks_a_failure() {
    let (stdout, _, ok) = ctl(&[
        "simulate",
        "--scheme",
        "sr",
        "--tracks",
        "60",
        "--viewers",
        "2",
        "--fail",
        "1@5",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("disk 1 FAILED"), "{stdout}");
    assert!(stdout.contains("hiccups            : 0"), "{stdout}");
    assert!(stdout.contains("streams finished   : 2"), "{stdout}");
}

#[test]
fn simulate_runs_a_rebuild() {
    let (stdout, _, ok) = ctl(&[
        "simulate",
        "--scheme",
        "nc",
        "--tracks",
        "120",
        "--fail",
        "2@8",
        "--rebuild",
        "2@20",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rebuilds completed : 1"), "{stdout}");
}

#[test]
fn mttf_command_reports_equations() {
    let (stdout, _, ok) = ctl(&["mttf", "1000", "10"]);
    assert!(ok);
    assert!(stdout.contains("1141.6"), "{stdout}");
    assert!(stdout.contains("540.7"), "{stdout}");
}

#[test]
fn design_command_picks_ib_for_1500() {
    let (stdout, _, ok) = ctl(&["design", "1500"]);
    assert!(ok);
    assert!(stdout.contains("Improved-bandwidth"), "{stdout}");
}

#[test]
fn bad_arguments_fail_gracefully() {
    let (_, stderr, ok) = ctl(&["simulate", "--scheme", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scheme"), "{stderr}");
    let (_, stderr, ok) = ctl(&["nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
    let (_, stderr, ok) = ctl(&["simulate", "--fail", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("DISK@CYCLE"), "{stderr}");
}
