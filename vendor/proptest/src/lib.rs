//! Vendored, API-compatible subset of `proptest` for offline builds.
//!
//! Implements the strategy combinators and macros this workspace uses —
//! ranges, tuples, [`Just`], [`any`], `prop_oneof!`, `prop_map`,
//! `prop_flat_map`, `collection::vec`, and the `proptest!` test macro with
//! `prop_assert*` / `prop_assume!` — over the vendored `rand` crate.
//!
//! Differences from upstream, by design:
//! * **No shrinking.** A failing case reports its exact generated inputs
//!   (which are reproducible: generation is deterministic per test name,
//!   or per `PROPTEST_SEED` when set), but is not minimized.
//! * **Regression files are not replayed.** `*.proptest-regressions`
//!   files remain valuable documentation of historical failures; the
//!   cases they describe are pinned as explicit unit tests instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: seeded from the test's full path so runs
/// are reproducible, with `PROPTEST_SEED` as an override for exploring
/// new parts of the space.
#[must_use]
pub fn rng_for(test_path: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = s.parse::<u64>() {
            h = h.wrapping_add(rand::splitmix64_mix(extra));
        }
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values of one type.
///
/// Unlike upstream there is no value tree: `generate` draws a concrete
/// value directly and failures are reported unshrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from a strategy
    /// built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one alternative.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let ix = (rng.gen::<u64>() % self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen::<u64>() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.gen::<u64>() as $t;
                }
                lo + (rng.gen::<u64>() % (span + 1)) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.gen::<u64>() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.gen::<u64>() as $t;
                }
                lo.wrapping_add((rng.gen::<u64>() % (span + 1)) as $t)
            }
        }
    )+};
}

signed_range_strategy!(i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.gen::<f64>() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.gen::<f64>() as $t;
                lo + u * (hi - lo)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $ix:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )+};
}

arbitrary_via_standard!(u8, u32, u64, usize, bool, f64);

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (rng.gen::<u32>() >> 16) as u16
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as i64
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: exact or ranged.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over an element strategy and a size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.gen::<u64>() % (span + 1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Define property tests (subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let __config = $config;
                let mut __rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __case: u32 = 0;
                let mut __rejects: u32 = 0;
                while __case < __config.cases {
                    let __vals = ( $( $crate::Strategy::generate(&($strat), &mut __rng), )+ );
                    let __repr = format!("{:?}", &__vals);
                    let __result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        let ( $($pat,)+ ) = __vals;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => __case += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            __rejects += 1;
                            assert!(
                                __rejects < 16 * __config.cases + 1024,
                                "proptest: too many prop_assume! rejections \
                                 ({} for {} accepted cases)",
                                __rejects,
                                __case
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case #{} failed: {}\n    input: {}",
                                __case, __msg, __repr
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Assert inside a `proptest!` body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` — {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::rng_for("self::ranges");
        for _ in 0..1000 {
            let v = (3usize..=7).generate(&mut rng);
            assert!((3..=7).contains(&v));
            let w = (0u32..8).generate(&mut rng);
            assert!(w < 8);
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::rng_for("self::oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = crate::collection::vec(any::<u8>(), 1..5);
        let mut rng = crate::rng_for("self::vec");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: patterns, maps, assume, and assertions.
        #[test]
        fn macro_end_to_end((a, b) in (0u64..100, 0u64..100).prop_map(|(x, y)| (x, x + y))) {
            prop_assume!(a > 0);
            prop_assert!(b >= a, "b {b} < a {a}");
            prop_assert_eq!(b - (b - a), a);
        }
    }
}
