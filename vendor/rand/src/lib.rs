//! Vendored, API-compatible subset of `rand` 0.8 for offline builds.
//!
//! The workspace only needs a seedable, statistically sound uniform
//! source: `Rng::gen::<f64>()` / `gen::<u64>()`, `SeedableRng::{from_seed,
//! seed_from_u64}`, and `rngs::StdRng`. This crate provides exactly that
//! surface over a xoshiro256** generator seeded through SplitMix64 —
//! the construction recommended by the xoshiro authors. Sequences are
//! *not* bit-compatible with upstream `StdRng` (ChaCha12); every consumer
//! in this workspace asserts statistical properties or same-seed
//! reproducibility, never upstream-exact streams.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types producible from a uniform bit stream via `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches the
    /// upstream `Standard` distribution's construction).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators reproducible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded with SplitMix64 (the expansion
    /// upstream `rand` uses for the same method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            chunk.copy_from_slice(&splitmix64_mix(state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// The SplitMix64 output mix: a bijective avalanche over one 64-bit word.
#[inline]
#[must_use]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64_mix, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// 256 bits of state, passes BigCrush, and is cheap enough that the
    /// Monte-Carlo reliability trials are never RNG-bound.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; remix it.
            if s == [0, 0, 0, 0] {
                s = [
                    splitmix64_mix(1),
                    splitmix64_mix(2),
                    splitmix64_mix(3),
                    splitmix64_mix(4),
                ];
            }
            StdRng { s }
        }
    }

    /// Alias used by some callers; identical to [`StdRng`] here.
    pub type SmallRng = StdRng;
}

/// `rand::prelude`-style re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.gen::<u64>(), 0);
        assert_ne!(rng.gen::<u64>(), rng.gen::<u64>());
    }
}
