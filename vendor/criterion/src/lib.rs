//! Vendored, API-compatible subset of `criterion` for offline builds.
//!
//! Provides the measurement entry points this workspace's benches use —
//! `bench_function`, `benchmark_group`, `bench_with_input`, `iter`,
//! `iter_batched` — with a simple wall-clock harness: warm up briefly,
//! run timed batches for a fixed budget, report the median batch rate.
//! No statistical analysis, plotting, or baseline storage. When invoked
//! by `cargo test` (which passes `--test` to `harness = false` bench
//! targets), each bench runs a single iteration as a smoke test.

// Wall-clock timing is this shim's whole purpose; the workspace-wide
// `disallowed-methods` ban on `Instant::now` targets result-bearing
// code, not the bench harness.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use self::measurement::black_box;

mod measurement {
    /// Re-export of the standard opaque-value hint.
    pub use std::hint::black_box;
}

/// How `iter_batched` amortizes setup cost (ignored by this harness —
/// every batch re-runs setup untimed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group (recorded, printed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring upstream's display form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured for the last run.
    ns_per_iter: f64,
    smoke_only: bool,
}

impl Bencher {
    /// Time `routine` repeatedly and record the median rate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            black_box(routine());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm-up and calibration: find an iteration count that takes
        // ~10 ms per batch, then run batches for ~300 ms.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 30 {
                break;
            }
            n = n.saturating_mul(if elapsed.as_micros() < 100 { 16 } else { 2 });
        }
        let mut samples = Vec::new();
        let budget = Instant::now();
        while budget.elapsed() < Duration::from_millis(300) || samples.len() < 3 {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / n as f64);
            if samples.len() >= 100 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }

    /// Time `routine` over fresh untimed `setup` output each batch.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke_only {
            black_box(routine(setup()));
            self.ns_per_iter = 0.0;
            return;
        }
        let mut samples = Vec::new();
        let budget = Instant::now();
        while budget.elapsed() < Duration::from_millis(300) || samples.len() < 8 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_secs_f64());
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    smoke_only: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        smoke_only,
    };
    f(&mut b);
    if smoke_only {
        println!("bench {label:<42} ok (smoke)");
        return;
    }
    let mut line = format!("bench {label:<42} {:>12}/iter", human_time(b.ns_per_iter));
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(n) => format!(
                "{:.1} MiB/s",
                n as f64 / (b.ns_per_iter * 1e-9) / (1 << 20) as f64
            ),
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / (b.ns_per_iter * 1e-9)),
        };
        line.push_str(&format!("  {per_sec:>14}"));
    }
    println!("{line}");
}

/// The top-level benchmark driver.
pub struct Criterion {
    smoke_only: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness = false bench targets with `--test`;
        // `cargo bench` passes `--bench`. Positional args act as filters.
        let mut smoke_only = false;
        let mut filter = None;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => smoke_only = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { smoke_only, filter }
    }
}

impl Criterion {
    /// Upstream-compatible no-op configuration hook.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn selected(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.selected(name) {
            run_one(name, None, self.smoke_only, &mut f);
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Upstream calls this after all groups; nothing to finalize here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: BenchName, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        if self.criterion.selected(&label) {
            run_one(&label, self.throughput, self.criterion.smoke_only, &mut f);
        }
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<N: BenchName, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        if self.criterion.selected(&label) {
            run_one(
                &label,
                self.throughput,
                self.criterion.smoke_only,
                &mut |b| f(b, input),
            );
        }
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Things usable as a benchmark name: strings or [`BenchmarkId`].
pub trait BenchName {
    /// The display label.
    fn into_label(self) -> String;
}

impl BenchName for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl BenchName for String {
    fn into_label(self) -> String {
        self
    }
}

impl BenchName for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

/// Collect bench functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bencher_runs_once() {
        let mut count = 0u32;
        let mut b = Bencher {
            ns_per_iter: 0.0,
            smoke_only: true,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("encode", 4).name, "encode/4");
    }

    #[test]
    fn batched_smoke_runs_setup_and_routine() {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            smoke_only: true,
        };
        let mut total = 0usize;
        b.iter_batched(
            || vec![1, 2, 3],
            |v| total += v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(total, 3);
    }
}
