//! System and scheme parameters (Table 1 and the Section 5 knobs).

use mms_disk::{Bandwidth, DiskParams, ReliabilityParams};

/// The system-wide parameters of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct SystemParams {
    /// Disk model (`B`, `τ_seek`, `τ_trk`, `s_d`).
    pub disk: DiskParams,
    /// Object bandwidth `b₀`.
    pub b0: Bandwidth,
    /// Total disks `D`.
    pub d: usize,
    /// Per-disk failure/repair parameters.
    pub rel: ReliabilityParams,
}

impl SystemParams {
    /// Table 1 exactly: `b₀` = 1.5 Mb/s, `B` = 50 KB, `τ_seek` = 25 ms,
    /// `τ_trk` = 20 ms, `D` = 100, MTTF = 300 000 h, MTTR = 1 h.
    #[must_use]
    pub fn paper_table1() -> Self {
        SystemParams {
            disk: DiskParams::paper_table1(),
            b0: Bandwidth::from_megabits(1.5),
            d: 100,
            rel: ReliabilityParams::paper(),
        }
    }

    /// The Section 2 worked example (`τ_seek` = 30 ms, `τ_trk` = 10 ms,
    /// `B` = 100 KB) at the given object bandwidth.
    #[must_use]
    pub fn section2(b0: Bandwidth) -> Self {
        SystemParams {
            disk: DiskParams::section2_example(),
            b0,
            d: 100,
            rel: ReliabilityParams::paper(),
        }
    }

    /// The paper's data disks `D'` for a clustered scheme:
    /// `D' = D·(C−1)/C` (dedicated parity disks do not serve data).
    #[must_use]
    pub fn data_disks_clustered(&self, c: usize) -> f64 {
        self.d as f64 * (c as f64 - 1.0) / c as f64
    }
}

/// The per-scheme knobs swept in Section 5.
#[derive(Debug, Clone, Copy)]
pub struct SchemeParams {
    /// Parity-group size `C` (data blocks + parity).
    pub c: usize,
    /// `K_NC`: buffer servers provisioned for the Non-clustered scheme.
    pub k_nc: usize,
    /// `K_IB`: disks' worth of bandwidth reserved for the
    /// Improved-bandwidth scheme.
    pub k_ib: usize,
    /// `k` in Eq. 6's product: concurrent failures masked before
    /// degradation of service (the published tables evaluate Eq. 6 with
    /// this set to 2 even while quoting `K = 5` in the Figure 9 prose —
    /// see DESIGN.md).
    pub k_mttds: usize,
}

impl SchemeParams {
    /// The parameter choices that reproduce the published Tables 2 and 3:
    /// `K_NC = K_IB = 3` and Eq. 6 evaluated with `k = 2`.
    #[must_use]
    pub fn paper_tables(c: usize) -> Self {
        SchemeParams {
            c,
            k_nc: 3,
            k_ib: 3,
            k_mttds: 2,
        }
    }

    /// The Figure 9 prose parameters: `K_NC = K_IB = 5`.
    #[must_use]
    pub fn paper_fig9(c: usize) -> Self {
        SchemeParams {
            c,
            k_nc: 5,
            k_ib: 5,
            k_mttds: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let p = SystemParams::paper_table1();
        assert_eq!(p.d, 100);
        assert!((p.b0.as_megabits() - 1.5).abs() < 1e-12);
        assert!((p.disk.track_size.as_kb() - 50.0).abs() < 1e-9);
        assert!((p.disk.seek.as_millis() - 25.0).abs() < 1e-9);
        assert!((p.disk.track_time.as_millis() - 20.0).abs() < 1e-9);
        assert!((p.rel.mttf.as_hours() - 300_000.0).abs() < 1e-6);
    }

    #[test]
    fn data_disks_fraction() {
        let p = SystemParams::paper_table1();
        assert!((p.data_disks_clustered(5) - 80.0).abs() < 1e-9);
        assert!((p.data_disks_clustered(7) - 600.0 / 7.0).abs() < 1e-9);
    }
}
