//! The total-cost model of Section 5 (Eqs. 16–19 and Figure 9).
//!
//! For a fixed working set `W`, the minimum disk complement is
//! `D(W, C) = (W/s_d) · C/(C−1)` (parity inflates the raw requirement by
//! `C/(C−1)` for every scheme, Eq. 1), and the total cost is
//!
//! ```text
//! Cost_p(C) = c_b · BF_p(MB) + c_d · D(W,C) · s_d
//! ```
//!
//! with `c_b` the price of memory and `c_d` the price of disk, in $/MB.
//! The paper's Figure 9 uses 1995 prices it does not state explicitly;
//! the defaults here (`c_b` = 100 $/MB RAM, `c_d` = 1 $/MB disk) bracket
//! that era and reproduce the figure's *shape*: cost ordering
//! NC < SG < SR at fixed C, Improved-bandwidth cost increasing in C, and
//! the stream-capacity crossover that makes IB "the scheme of choice
//! when bandwidth is scarce".

use crate::buffers;
use crate::params::{SchemeParams, SystemParams};
use crate::streams;
use mms_sched::SchemeKind;

/// Price model for Figure 9.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Memory price `c_b` in $/MB.
    pub cb_per_mb: f64,
    /// Disk price `c_d` in $/MB.
    pub cd_per_mb: f64,
    /// Working set `W` in MB of real data.
    pub working_set_mb: f64,
    /// Round the disk complement up to whole drives.
    pub whole_disks: bool,
}

impl CostModel {
    /// The Figure 9 configuration: `W` = 100 000 MB over 1000 MB drives,
    /// with the default 1995-era prices.
    #[must_use]
    pub fn paper_fig9() -> Self {
        CostModel {
            cb_per_mb: 100.0,
            cd_per_mb: 1.0,
            working_set_mb: 100_000.0,
            whole_disks: false,
        }
    }

    /// `D(W, C)`: disks needed to hold the working set plus its parity.
    #[must_use]
    pub fn disks_for_working_set(&self, sys: &SystemParams, c: usize) -> f64 {
        let raw = self.working_set_mb / sys.disk.capacity.as_mb();
        let d = raw * c as f64 / (c as f64 - 1.0);
        if self.whole_disks {
            d.ceil()
        } else {
            d
        }
    }

    /// Eqs. 16–19: total system cost in dollars for scheme `p` at parity
    /// group size `C`, sized to hold the working set.
    #[must_use]
    pub fn total_cost(&self, sys: &SystemParams, scheme: SchemeKind, p: &SchemeParams) -> f64 {
        let d = self.disks_for_working_set(sys, p.c);
        let n = streams::max_streams_fractional(sys, scheme, p, d);
        let buffer_tracks = buffers::buffer_tracks_fractional(scheme, p, n, d);
        let buffer_mb = buffer_tracks * sys.disk.track_size.as_mb();
        self.cb_per_mb * buffer_mb + self.cd_per_mb * d * sys.disk.capacity.as_mb()
    }

    /// The stream capacity at the working-set-sized disk complement
    /// (Figure 9(b)).
    #[must_use]
    pub fn streams_at_working_set(
        &self,
        sys: &SystemParams,
        scheme: SchemeKind,
        p: &SchemeParams,
    ) -> f64 {
        let d = self.disks_for_working_set(sys, p.c);
        streams::max_streams_fractional(sys, scheme, p, d)
    }

    /// The cheapest parity-group size (and its cost) that supports at
    /// least `required_streams`, if any `C` in `c_range` does — the
    /// paper's "required number of streams is 1200" exercise.
    #[must_use]
    pub fn cheapest_for_streams(
        &self,
        sys: &SystemParams,
        scheme: SchemeKind,
        c_range: std::ops::RangeInclusive<usize>,
        required_streams: f64,
        make_params: impl Fn(usize) -> SchemeParams,
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for c in c_range {
            let p = make_params(c);
            if self.streams_at_working_set(sys, scheme, &p) < required_streams {
                continue;
            }
            let cost = self.total_cost(sys, scheme, &p);
            if best.map(|(_, b)| cost < b).unwrap_or(true) {
                best = Some((c, cost));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemParams, CostModel) {
        (SystemParams::paper_table1(), CostModel::paper_fig9())
    }

    #[test]
    fn disk_complement_shrinks_with_cluster_size() {
        let (sys, m) = setup();
        // W = 100 000 MB on 1000 MB disks: 100 data disks + parity.
        assert!((m.disks_for_working_set(&sys, 2) - 200.0).abs() < 1e-9);
        assert!((m.disks_for_working_set(&sys, 5) - 125.0).abs() < 1e-9);
        assert!((m.disks_for_working_set(&sys, 10) - 111.11).abs() < 0.01);
    }

    #[test]
    fn whole_disk_rounding() {
        let (sys, mut m) = setup();
        m.whole_disks = true;
        assert!((m.disks_for_working_set(&sys, 10) - 112.0).abs() < 1e-9);
    }

    #[test]
    fn fig9a_cost_orderings() {
        // At every C, the memory-light schemes are cheaper:
        // NC < SG < SR (same disks, less memory).
        let (sys, m) = setup();
        for c in 3..=10 {
            let p = SchemeParams::paper_fig9(c);
            let sr = m.total_cost(&sys, SchemeKind::StreamingRaid, &p);
            let sg = m.total_cost(&sys, SchemeKind::StaggeredGroup, &p);
            let nc = m.total_cost(&sys, SchemeKind::NonClustered, &p);
            assert!(nc < sg, "C={c}");
            assert!(sg < sr, "C={c}");
        }
    }

    #[test]
    fn fig9a_improved_bandwidth_cost_rises_once_memory_dominates() {
        // The paper: IB "cost … increases with the cluster size (due to
        // main memory buffer increases)". Under Eqs. 16–19 as printed,
        // the disk savings of larger C outweigh memory up to C = 4 with
        // 1995 commodity prices, after which the curve rises steeply —
        // and with memory prices high enough to dominate (c_b ≥ 500
        // $/MB) the curve is monotone from C = 2, matching the paper's
        // "cluster size will always be 2" conclusion. Both regimes are
        // pinned here; EXPERIMENTS.md records the discrepancy.
        let (sys, m) = setup();
        let mut prev = f64::NEG_INFINITY;
        for c in 4..=10 {
            let p = SchemeParams::paper_fig9(c);
            let cost = m.total_cost(&sys, SchemeKind::ImprovedBandwidth, &p);
            assert!(cost > prev, "C={c}");
            prev = cost;
        }
        let pricey = CostModel {
            cb_per_mb: 500.0,
            ..m
        };
        let mut prev = f64::NEG_INFINITY;
        for c in 2..=10 {
            let p = SchemeParams::paper_fig9(c);
            let cost = pricey.total_cost(&sys, SchemeKind::ImprovedBandwidth, &p);
            assert!(cost > prev, "C={c} (memory-dominated)");
            prev = cost;
        }
    }

    #[test]
    fn fig9a_clustered_schemes_have_interior_minima() {
        // Larger C buys storage efficiency (fewer disks) but more
        // memory. SG and NC fall steeply from C = 2 and flatten near
        // C = 6–8 (the paper's curves bottom out around $146.6k /
        // $128.6k at C = 10; ours reach $145k / $138k); SR's heavier
        // 2C-per-stream memory turns its curve back up after C = 4 (the
        // paper's $173.4k minimum; ours $185k).
        let (sys, m) = setup();
        for scheme in [
            SchemeKind::StreamingRaid,
            SchemeKind::StaggeredGroup,
            SchemeKind::NonClustered,
        ] {
            let costs: Vec<f64> = (2..=10)
                .map(|c| m.total_cost(&sys, scheme, &SchemeParams::paper_fig9(c)))
                .collect();
            let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
            // The curve falls from C = 2 to an interior minimum well
            // below it (for SR the far end C = 10 climbs back above
            // C = 2 — its memory term grows as 2C per stream).
            assert!(min < 0.9 * costs[0], "{scheme:?}");
        }
        // For the memory-light schemes C = 2 is the most expensive point.
        for scheme in [SchemeKind::StaggeredGroup, SchemeKind::NonClustered] {
            let costs: Vec<f64> = (2..=10)
                .map(|c| m.total_cost(&sys, scheme, &SchemeParams::paper_fig9(c)))
                .collect();
            let max = costs.iter().cloned().fold(0.0, f64::max);
            assert_eq!(costs[0], max, "{scheme:?}");
        }
        // SR's minimum is at C = 4 and the curve rises visibly after it.
        let sr: Vec<f64> = (2..=10)
            .map(|c| {
                m.total_cost(
                    &sys,
                    SchemeKind::StreamingRaid,
                    &SchemeParams::paper_fig9(c),
                )
            })
            .collect();
        let (argmin, _) = sr
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(argmin + 2, 4, "SR minimum at C = 4");
        assert!(sr[8] > 1.2 * sr[2]);
        // SG/NC stay within 7% of their minimum from C = 5 on (flat
        // tail, as in the figure).
        for scheme in [SchemeKind::StaggeredGroup, SchemeKind::NonClustered] {
            let costs: Vec<f64> = (5..=10)
                .map(|c| m.total_cost(&sys, scheme, &SchemeParams::paper_fig9(c)))
                .collect();
            let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
            for c in &costs {
                assert!(*c < 1.07 * min, "{scheme:?}");
            }
        }
    }

    #[test]
    fn fig9b_stream_shapes() {
        let (sys, m) = setup();
        // IB streams decrease with C (fewer disks as C grows); SR stays
        // nearly flat; SG/NC flat. IB dominates everywhere.
        let p2 = SchemeParams::paper_fig9(2);
        let p10 = SchemeParams::paper_fig9(10);
        let ib2 = m.streams_at_working_set(&sys, SchemeKind::ImprovedBandwidth, &p2);
        let ib10 = m.streams_at_working_set(&sys, SchemeKind::ImprovedBandwidth, &p10);
        assert!(ib2 > ib10);
        for c in 2..=10 {
            let p = SchemeParams::paper_fig9(c);
            let ib = m.streams_at_working_set(&sys, SchemeKind::ImprovedBandwidth, &p);
            let sr = m.streams_at_working_set(&sys, SchemeKind::StreamingRaid, &p);
            let sg = m.streams_at_working_set(&sys, SchemeKind::StaggeredGroup, &p);
            // At C = 2 the SR and SG brackets coincide (k = C−1 = 1).
            assert!(ib > sr && sr >= sg, "C={c}");
            if c > 2 {
                assert!(sr > sg, "C={c}");
            }
        }
    }

    #[test]
    fn section5_1200_vs_1500_stream_requirement() {
        // "Since the Improved-bandwidth scheme does so well with stream
        // capacity, it will generally be the scheme of choice when
        // bandwidth is scarce (e.g., if the required number of streams …
        // was 1500). However … if the required number of streams is only
        // 1200 then the other schemes can meet the requirements at a
        // lower cost."
        let (sys, m) = setup();
        let mk = SchemeParams::paper_fig9;

        // 1500 streams: only IB can serve them at the working-set sizing.
        for scheme in [
            SchemeKind::StreamingRaid,
            SchemeKind::StaggeredGroup,
            SchemeKind::NonClustered,
        ] {
            assert!(
                m.cheapest_for_streams(&sys, scheme, 2..=10, 1500.0, mk)
                    .is_none(),
                "{scheme:?} should not reach 1500 streams"
            );
        }
        assert!(m
            .cheapest_for_streams(&sys, SchemeKind::ImprovedBandwidth, 2..=10, 1500.0, mk)
            .is_some());

        // 1200 streams: a clustered scheme is cheaper than IB's cheapest.
        let (_, ib_cost) = m
            .cheapest_for_streams(&sys, SchemeKind::ImprovedBandwidth, 2..=10, 1200.0, mk)
            .unwrap();
        let (_, nc_cost) = m
            .cheapest_for_streams(&sys, SchemeKind::NonClustered, 2..=10, 1200.0, mk)
            .unwrap();
        assert!(nc_cost < ib_cost);
    }

    #[test]
    fn paper_scheme_choices_for_1200_streams() {
        // The paper: SR needs C = 4 for ≈1200 streams; SG and NC need
        // C = 10. Verify the same feasibility thresholds.
        let (sys, m) = setup();
        let mk = SchemeParams::paper_fig9;
        let (sr_c, _) = m
            .cheapest_for_streams(&sys, SchemeKind::StreamingRaid, 2..=10, 1200.0, mk)
            .unwrap();
        assert_eq!(sr_c, 4, "SR's cheapest feasible group size is C = 4");
        // The paper picks C = 10 for SG/NC; under Eqs. 16–19 as printed
        // their cost curves are nearly flat past C = 7, so the cheapest
        // feasible size lands in that flat tail.
        for scheme in [SchemeKind::StaggeredGroup, SchemeKind::NonClustered] {
            let (c, _) = m
                .cheapest_for_streams(&sys, scheme, 2..=10, 1200.0, mk)
                .unwrap();
            assert!(c >= 7, "{scheme:?} prefers large group sizes, got {c}");
        }
    }
}
