//! # mms-analysis — the paper's analytical model
//!
//! Closed-form implementations of every equation in *Berson, Golubchik &
//! Muntz (SIGMOD 1995)*, parameterized the way Section 5 sweeps them:
//!
//! * [`params`] — Table 1's system parameters and the per-scheme knobs
//!   (`C`, `K_NC`, `K_IB`).
//! * [`overhead`] — disk storage and bandwidth overheads (Eqs. 1–3).
//! * [`streams`] — the Section 2 streams-per-disk bound and the
//!   per-scheme maximum stream counts `N_p` (Eqs. 7–11).
//! * [`buffers`] — buffer-space requirements `BF_p` (Eqs. 12–15).
//! * [`cost`] — the total-cost model `Cost_p(C)` and working-set disk
//!   sizing `D(W, C)` (Eqs. 16–19, Figure 9).
//! * [`tables`] — typed generators for the Section 2 in-text table,
//!   Tables 2 and 3, and the Figure 9 sweeps.
//! * [`sweep`] — design-space exploration and the Section 1 multi-class
//!   farm-partitioning arithmetic.
//!
//! Reliability columns delegate to `mms-reliability`. Where the paper's
//! published tables are internally inconsistent (see DESIGN.md), the
//! presets here use the parameter choices that reproduce the published
//! numbers, and the tests pin those numbers exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffers;
pub mod cost;
pub mod overhead;
pub mod params;
pub mod streams;
pub mod sweep;
pub mod tables;

pub use cost::CostModel;
pub use params::{SchemeParams, SystemParams};
pub use sweep::{
    best_design, design_space, design_space_par, partition_classes, ClassDemand, DesignPoint,
};
pub use tables::{fig9_rows, section2_rows, table_rows, Fig9Row, Section2Row, TableRow};

/// Re-export of the scheme discriminator shared with the schedulers.
pub use mms_sched::SchemeKind;
