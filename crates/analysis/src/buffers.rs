//! Buffer-space requirements `BF_p` (Eqs. 12–15).
//!
//! The equations in the paper express buffer space in megabytes (the
//! stream-count bracket times `B`); the result tables report **tracks**.
//! We compute in tracks and convert.

use crate::params::{SchemeParams, SystemParams};
use crate::streams;
use mms_disk::Size;
use mms_sched::SchemeKind;

/// Buffer tracks per stream in normal operation, as counted by the
/// paper's equations: `2C` for Streaming RAID (double-buffered groups
/// including parity), `C(C+1)/2 / (C−1)` for Staggered-group (the
/// Figure 4 staircase), 2 for Non-clustered, `2(C−1)` for
/// Improved-bandwidth (double-buffered groups, no parity).
#[must_use]
pub fn tracks_per_stream(scheme: SchemeKind, c: usize) -> f64 {
    let c = c as f64;
    match scheme {
        SchemeKind::StreamingRaid => 2.0 * c,
        SchemeKind::StaggeredGroup => c * (c + 1.0) / (2.0 * (c - 1.0)),
        SchemeKind::NonClustered => 2.0,
        SchemeKind::ImprovedBandwidth => 2.0 * (c - 1.0),
    }
}

/// `BF_p` in tracks with an explicit (possibly fractional) stream count
/// and disk count — the form the cost model needs for the Figure 9
/// sweep.
#[must_use]
pub fn buffer_tracks_fractional(
    scheme: SchemeKind,
    p: &SchemeParams,
    n_streams: f64,
    d: f64,
) -> f64 {
    match scheme {
        SchemeKind::StreamingRaid | SchemeKind::StaggeredGroup | SchemeKind::ImprovedBandwidth => {
            tracks_per_stream(scheme, p.c) * n_streams
        }
        SchemeKind::NonClustered => {
            // Eq. 14: 2 tracks per stream plus K_NC buffer servers, each
            // sized for one degraded cluster's staggered-group profile:
            // BF_SG / (D'/C) where D' = D(C−1)/C.
            let c = p.c as f64;
            let bf_sg = tracks_per_stream(SchemeKind::StaggeredGroup, p.c) * n_streams;
            let d_prime_over_c = d * (c - 1.0) / c / c;
            2.0 * n_streams + bf_sg / d_prime_over_c * p.k_nc as f64
        }
    }
}

/// Eqs. 12–15 — `BF_p` in whole tracks at the scheme's own maximum
/// stream count `N_p` (the tables' "Buffers (in tracks)" rows; the paper
/// rounds up).
#[must_use]
pub fn buffer_tracks(sys: &SystemParams, scheme: SchemeKind, p: &SchemeParams) -> usize {
    let n = match scheme {
        // The NC row is computed from the *floored* stream counts (this
        // is what reproduces the published 2612/3254).
        SchemeKind::NonClustered => streams::max_streams(sys, scheme, p) as f64,
        _ => streams::max_streams(sys, scheme, p) as f64,
    };
    let tracks = buffer_tracks_fractional(scheme, p, n, sys.d as f64);
    (tracks - 1e-9).ceil() as usize
}

/// `BF_p` in bytes.
#[must_use]
pub fn buffer_bytes(sys: &SystemParams, scheme: SchemeKind, p: &SchemeParams) -> Size {
    sys.disk.track_size * buffer_tracks(sys, scheme, p) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_buffer_rows_c5() {
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(5);
        assert_eq!(buffer_tracks(&sys, SchemeKind::StreamingRaid, &p), 10_410);
        assert_eq!(buffer_tracks(&sys, SchemeKind::StaggeredGroup, &p), 3_623);
        assert_eq!(buffer_tracks(&sys, SchemeKind::NonClustered, &p), 2_612);
        assert_eq!(
            buffer_tracks(&sys, SchemeKind::ImprovedBandwidth, &p),
            10_104
        );
    }

    #[test]
    fn table3_buffer_rows_c7() {
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(7);
        assert_eq!(buffer_tracks(&sys, SchemeKind::StreamingRaid, &p), 15_750);
        assert_eq!(buffer_tracks(&sys, SchemeKind::StaggeredGroup, &p), 4_830);
        assert_eq!(buffer_tracks(&sys, SchemeKind::NonClustered, &p), 3_254);
        assert_eq!(
            buffer_tracks(&sys, SchemeKind::ImprovedBandwidth, &p),
            15_276
        );
    }

    #[test]
    fn per_stream_counts_match_measured_schedulers() {
        // The scheduler tests measure exactly these peaks: SR 2C = 10,
        // SG staircase C(C+1)/2 per C−1 streams, NC 2, IB 2(C−1) = 8.
        assert!((tracks_per_stream(SchemeKind::StreamingRaid, 5) - 10.0).abs() < 1e-12);
        assert!((tracks_per_stream(SchemeKind::StaggeredGroup, 5) - 3.75).abs() < 1e-12);
        assert!((tracks_per_stream(SchemeKind::NonClustered, 5) - 2.0).abs() < 1e-12);
        assert!((tracks_per_stream(SchemeKind::ImprovedBandwidth, 5) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn staggered_is_roughly_half_of_streaming_raid() {
        // "it requires approximately 1/2 the memory compared with
        // Streaming RAID" — per stream: (C+1)/(4(C-1))·2C vs 2C.
        for c in 3..=10 {
            let sr = tracks_per_stream(SchemeKind::StreamingRaid, c);
            let sg = tracks_per_stream(SchemeKind::StaggeredGroup, c);
            let ratio = sg / sr;
            assert!((0.25..=0.55).contains(&ratio), "C={c} ratio {ratio}");
        }
    }

    #[test]
    fn nonclustered_needs_least_memory() {
        let sys = SystemParams::paper_table1();
        for c in 3..=10 {
            let p = SchemeParams::paper_tables(c);
            let nc = buffer_tracks(&sys, SchemeKind::NonClustered, &p);
            for s in [
                SchemeKind::StreamingRaid,
                SchemeKind::StaggeredGroup,
                SchemeKind::ImprovedBandwidth,
            ] {
                assert!(nc < buffer_tracks(&sys, s, &p), "C={c} vs {s:?}");
            }
        }
    }

    #[test]
    fn buffer_bytes_conversion() {
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(5);
        let b = buffer_bytes(&sys, SchemeKind::StreamingRaid, &p);
        // 10 410 tracks × 50 KB = 520.5 MB.
        assert!((b.as_mb() - 520.5).abs() < 1e-6);
    }
}
