//! Typed generators for every table and figure in the paper.

use crate::buffers;
use crate::cost::CostModel;
use crate::overhead;
use crate::params::{SchemeParams, SystemParams};
use crate::streams;
use mms_disk::Bandwidth;
use mms_reliability::formulas;
use mms_sched::SchemeKind;

/// One row of the Section 2 in-text table: the streams-per-disk bound at
/// a given `k` (with `k = k'`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Section2Row {
    /// Tracks read per read cycle.
    pub k: usize,
    /// The bound `N/D'`.
    pub streams_per_disk: f64,
}

/// Generate the Section 2 in-text table for a bandwidth class.
#[must_use]
pub fn section2_rows(b0: Bandwidth, ks: &[usize]) -> Vec<Section2Row> {
    let sys = SystemParams::section2(b0);
    ks.iter()
        .map(|&k| Section2Row {
            k,
            streams_per_disk: streams::streams_per_disk_bound(&sys.disk, sys.b0, k, k),
        })
        .collect()
}

/// One row of Table 2 / Table 3: all six metrics for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// The scheme.
    pub scheme: SchemeKind,
    /// Disk storage overhead, fraction.
    pub storage_overhead: f64,
    /// Disk bandwidth overhead, fraction.
    pub bandwidth_overhead: f64,
    /// Mean time to catastrophic failure, years.
    pub mttf_years: f64,
    /// Mean time to degradation of service, years.
    pub mttds_years: f64,
    /// Maximum concurrent streams.
    pub streams: usize,
    /// Buffer requirement in tracks.
    pub buffers_tracks: usize,
}

/// Generate the four rows of Table 2 (`c = 5`) or Table 3 (`c = 7`) — or
/// any other parity-group size.
#[must_use]
pub fn table_rows(sys: &SystemParams, p: &SchemeParams) -> Vec<TableRow> {
    SchemeKind::ALL
        .into_iter()
        .map(|scheme| {
            let mttf = match scheme {
                SchemeKind::ImprovedBandwidth => formulas::mttf_improved(sys.d, p.c, sys.rel),
                _ => formulas::mttf_raid(sys.d, p.c, sys.rel),
            };
            // SR/SG degrade exactly when they lose data; NC/IB push
            // degradation out to the exhaustion of the shared reserves.
            let mttds = match scheme {
                SchemeKind::StreamingRaid | SchemeKind::StaggeredGroup => mttf,
                SchemeKind::NonClustered | SchemeKind::ImprovedBandwidth => {
                    formulas::mttds_shared(sys.d, p.k_mttds, sys.rel)
                }
            };
            TableRow {
                scheme,
                storage_overhead: overhead::storage_overhead_fraction(p.c),
                bandwidth_overhead: overhead::bandwidth_overhead_fraction(sys, scheme, p),
                mttf_years: mttf.as_years(),
                mttds_years: mttds.as_years(),
                streams: streams::max_streams(sys, scheme, p),
                buffers_tracks: buffers::buffer_tracks(sys, scheme, p),
            }
        })
        .collect()
}

/// One point of the Figure 9 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Parity-group size.
    pub c: usize,
    /// Disks required for the working set.
    pub disks: f64,
    /// Total cost per scheme, dollars, in `SchemeKind::ALL` order.
    pub cost: [f64; 4],
    /// Stream capacity per scheme, in `SchemeKind::ALL` order.
    pub streams: [f64; 4],
}

/// Generate the Figure 9(a)+(b) sweep over parity-group sizes.
#[must_use]
pub fn fig9_rows(
    sys: &SystemParams,
    model: &CostModel,
    c_range: std::ops::RangeInclusive<usize>,
) -> Vec<Fig9Row> {
    c_range
        .map(|c| {
            let p = SchemeParams::paper_fig9(c);
            let mut cost = [0.0; 4];
            let mut streams = [0.0; 4];
            for (i, scheme) in SchemeKind::ALL.into_iter().enumerate() {
                cost[i] = model.total_cost(sys, scheme, &p);
                streams[i] = model.streams_at_working_set(sys, scheme, &p);
            }
            Fig9Row {
                c,
                disks: model.disks_for_working_set(sys, c),
                cost,
                streams,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper, transcribed.
    const TABLE2: [(SchemeKind, f64, f64, f64, f64, usize, usize); 4] = [
        (
            SchemeKind::StreamingRaid,
            0.20,
            0.20,
            25_684.9,
            25_684.9,
            1041,
            10_410,
        ),
        (
            SchemeKind::StaggeredGroup,
            0.20,
            0.20,
            25_684.9,
            25_684.9,
            966,
            3_623,
        ),
        (
            SchemeKind::NonClustered,
            0.20,
            0.20,
            25_684.9,
            3_176_862.3,
            966,
            2_612,
        ),
        (
            SchemeKind::ImprovedBandwidth,
            0.20,
            0.03,
            11_415.5,
            3_176_862.3,
            1263,
            10_104,
        ),
    ];

    /// Table 3 of the paper, transcribed.
    const TABLE3: [(SchemeKind, f64, f64, f64, f64, usize, usize); 4] = [
        (
            SchemeKind::StreamingRaid,
            1.0 / 7.0,
            1.0 / 7.0,
            17_123.3,
            17_123.3,
            1125,
            15_750,
        ),
        (
            SchemeKind::StaggeredGroup,
            1.0 / 7.0,
            1.0 / 7.0,
            17_123.3,
            17_123.3,
            1035,
            4_830,
        ),
        (
            SchemeKind::NonClustered,
            1.0 / 7.0,
            1.0 / 7.0,
            17_123.3,
            3_176_862.3,
            1035,
            3_254,
        ),
        (
            SchemeKind::ImprovedBandwidth,
            1.0 / 7.0,
            0.03,
            7_903.1,
            3_176_862.3,
            1273,
            15_276,
        ),
    ];

    fn check(c: usize, expected: &[(SchemeKind, f64, f64, f64, f64, usize, usize); 4]) {
        let sys = SystemParams::paper_table1();
        let rows = table_rows(&sys, &SchemeParams::paper_tables(c));
        for (row, exp) in rows.iter().zip(expected) {
            assert_eq!(row.scheme, exp.0);
            assert!(
                (row.storage_overhead - exp.1).abs() < 1e-6,
                "{:?}",
                row.scheme
            );
            assert!(
                (row.bandwidth_overhead - exp.2).abs() < 1e-6,
                "{:?}",
                row.scheme
            );
            assert!(
                (row.mttf_years - exp.3).abs() < 0.5,
                "{:?} mttf {} vs {}",
                row.scheme,
                row.mttf_years,
                exp.3
            );
            assert!(
                (row.mttds_years - exp.4).abs() < 0.5,
                "{:?} mttds {} vs {}",
                row.scheme,
                row.mttds_years,
                exp.4
            );
            assert_eq!(row.streams, exp.5, "{:?} streams", row.scheme);
            assert_eq!(row.buffers_tracks, exp.6, "{:?} buffers", row.scheme);
        }
    }

    #[test]
    fn table2_reproduced_exactly() {
        check(5, &TABLE2);
    }

    #[test]
    fn table3_reproduced_exactly() {
        check(7, &TABLE3);
    }

    #[test]
    fn section2_rows_both_bandwidths() {
        let mpeg1 = section2_rows(Bandwidth::from_megabits(1.5), &[1, 2, 10]);
        assert_eq!(mpeg1.len(), 3);
        assert!((mpeg1[0].streams_per_disk - 50.333).abs() < 0.01);
        let mpeg2 = section2_rows(Bandwidth::from_megabits(4.5), &[1, 2, 10]);
        assert!((mpeg2[0].streams_per_disk - 14.777).abs() < 0.01);
        assert!((mpeg2[2].streams_per_disk - 17.477).abs() < 0.01);
    }

    #[test]
    fn fig9_sweep_is_complete() {
        let sys = SystemParams::paper_table1();
        let rows = fig9_rows(&sys, &CostModel::paper_fig9(), 2..=10);
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].c, 2);
        assert!((rows[0].disks - 200.0).abs() < 1e-9);
        for row in &rows {
            for i in 0..4 {
                assert!(row.cost[i] > 0.0);
                assert!(row.streams[i] > 0.0);
            }
        }
    }
}
