//! Maximum concurrent streams (Section 2 bound and Eqs. 7–11).

use crate::params::{SchemeParams, SystemParams};
use mms_disk::{Bandwidth, DiskParams};
use mms_sched::SchemeKind;

/// The Section 2 bound on streams per data disk:
///
/// ```text
/// N/D' ≤ B·k' / (b₀·τ_trk·k) − τ_seek / (τ_trk·k)
/// ```
///
/// For `k = k'` (Streaming RAID style) this is
/// `B/(b₀·τ_trk) − τ_seek/(τ_trk·k)` — the expression behind the paper's
/// in-text table showing ≈5% variation at 1.5 Mb/s and ≈15% at 4.5 Mb/s.
#[must_use]
pub fn streams_per_disk_bound(disk: &DiskParams, b0: Bandwidth, k: usize, k_prime: usize) -> f64 {
    let b = disk.track_size.as_mb();
    let b0 = b0.as_megabytes();
    let trk = disk.track_time.as_secs();
    let seek = disk.seek.as_secs();
    b * k_prime as f64 / (b0 * trk * k as f64) - seek / (trk * k as f64)
}

/// Floor with a tolerance for floating-point dust: the paper's Table 3
/// SR entry is exactly 1125, which naive flooring of `1124.999…` breaks.
fn floor_eps(x: f64) -> usize {
    (x + 1e-9).floor().max(0.0) as usize
}

/// The *unfloored* stream capacity of a scheme, `N_p` (Eqs. 8–11),
/// evaluated with a possibly fractional disk count `d` (the Figure 9
/// sweep sizes `D` from the working set, which is not integral).
#[must_use]
pub fn max_streams_fractional(
    sys: &SystemParams,
    scheme: SchemeKind,
    p: &SchemeParams,
    d: f64,
) -> f64 {
    let c = p.c as f64;
    let per_disk_group = streams_per_disk_bound(&sys.disk, sys.b0, p.c - 1, p.c - 1);
    let per_disk_single = streams_per_disk_bound(&sys.disk, sys.b0, 1, 1);
    match scheme {
        // Eq. 8: [B/(b0 τ) − τ_seek/(τ(C−1))] · D(C−1)/C.
        SchemeKind::StreamingRaid => per_disk_group * d * (c - 1.0) / c,
        // Eq. 9 and Eq. 10: [B/(b0 τ) − τ_seek/τ] · D(C−1)/C.
        SchemeKind::StaggeredGroup | SchemeKind::NonClustered => {
            per_disk_single * d * (c - 1.0) / c
        }
        // Eq. 11: [B/(b0 τ) − τ_seek/(τ(C−1))] · (D − K_IB).
        SchemeKind::ImprovedBandwidth => per_disk_group * (d - p.k_ib as f64),
    }
}

/// Eqs. 8–11 floored to whole streams at the system's integral `D`.
#[must_use]
pub fn max_streams(sys: &SystemParams, scheme: SchemeKind, p: &SchemeParams) -> usize {
    floor_eps(max_streams_fractional(sys, scheme, p, sys.d as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section2_intext_table_mpeg1() {
        // τ_seek = 30 ms, τ_trk = 10 ms, B = 100 KB, b0 = 1.5 Mb/s:
        // bound = 53.33 − 3/k; variation k=1→10 is about 5%.
        let sys = SystemParams::section2(Bandwidth::from_megabits(1.5));
        let f = |k| streams_per_disk_bound(&sys.disk, sys.b0, k, k);
        assert!((f(1) - 50.333).abs() < 0.01, "{}", f(1));
        assert!((f(2) - 51.833).abs() < 0.01);
        assert!((f(10) - 53.033).abs() < 0.01);
        let variation = (f(10) - f(1)) / f(10);
        assert!((variation - 0.05).abs() < 0.01, "variation {variation}");
    }

    #[test]
    fn section2_intext_table_mpeg2() {
        // b0 = 4.5 Mb/s: 14.7 / 16.2 / 17.4 and ≈15% variation.
        let sys = SystemParams::section2(Bandwidth::from_megabits(4.5));
        let f = |k| streams_per_disk_bound(&sys.disk, sys.b0, k, k);
        assert!((f(1) - 14.777).abs() < 0.01, "{}", f(1));
        assert!((f(2) - 16.277).abs() < 0.01);
        assert!((f(10) - 17.477).abs() < 0.01);
        let variation = (f(10) - f(1)) / f(10);
        assert!((variation - 0.15).abs() < 0.01, "variation {variation}");
    }

    #[test]
    fn table2_stream_counts_c5() {
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(5);
        assert_eq!(max_streams(&sys, SchemeKind::StreamingRaid, &p), 1041);
        assert_eq!(max_streams(&sys, SchemeKind::StaggeredGroup, &p), 966);
        assert_eq!(max_streams(&sys, SchemeKind::NonClustered, &p), 966);
        assert_eq!(max_streams(&sys, SchemeKind::ImprovedBandwidth, &p), 1263);
    }

    #[test]
    fn table3_stream_counts_c7() {
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(7);
        assert_eq!(max_streams(&sys, SchemeKind::StreamingRaid, &p), 1125);
        assert_eq!(max_streams(&sys, SchemeKind::StaggeredGroup, &p), 1035);
        assert_eq!(max_streams(&sys, SchemeKind::NonClustered, &p), 1035);
        assert_eq!(max_streams(&sys, SchemeKind::ImprovedBandwidth, &p), 1273);
    }

    #[test]
    fn sr_dominates_sg_and_ib_dominates_sr() {
        // Orderings the paper's comparison relies on: SR > SG = NC
        // (bigger k amortizes the seek) and IB > SR (no idle parity
        // disks) for the Table 1 regime.
        let sys = SystemParams::paper_table1();
        for c in 3..=10 {
            let p = SchemeParams::paper_tables(c);
            let sr = max_streams(&sys, SchemeKind::StreamingRaid, &p);
            let sg = max_streams(&sys, SchemeKind::StaggeredGroup, &p);
            let nc = max_streams(&sys, SchemeKind::NonClustered, &p);
            let ib = max_streams(&sys, SchemeKind::ImprovedBandwidth, &p);
            assert!(sr >= sg, "C={c}");
            assert_eq!(sg, nc, "C={c}");
            assert!(ib > sr, "C={c}");
        }
    }

    #[test]
    fn scheduler_capacity_is_within_one_slot_per_cluster_of_eq8() {
        // The discrete scheduler floors slots per class; Eq. 8 floors the
        // aggregate product. The gap is at most one stream per cluster.
        use mms_layout::{Catalog, ClusteredLayout, Geometry};
        use mms_sched::{CycleConfig, SchemeScheduler, StreamingRaidScheduler};
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(5);
        let analytic = max_streams(&sys, SchemeKind::StreamingRaid, &p);
        let layout = ClusteredLayout::new(Geometry::clustered(100, 5).unwrap());
        let catalog = Catalog::new(layout, sys.disk.tracks_per_disk());
        let cfg = CycleConfig::new(sys.disk, sys.b0, 4, 4);
        let sched = StreamingRaidScheduler::new(cfg, catalog);
        let discrete = sched.stream_capacity();
        let clusters = 20;
        assert!(discrete <= analytic);
        assert!(analytic - discrete <= clusters, "{analytic} vs {discrete}");
    }
}
