//! Design-space exploration beyond the paper's fixed tables.
//!
//! Section 5 closes with "some simple system design work"; this module
//! turns that into a reusable tool: sweep scheme × parity-group size ×
//! bandwidth class, rank feasible designs by cost, and split a disk farm
//! between bandwidth classes the way Section 1 sizes "6500 concurrent
//! MPEG-2 users or 20,000 MPEG-1 users or some combination of the two".

use crate::buffers;
use crate::cost::CostModel;
use crate::params::{SchemeParams, SystemParams};
use crate::streams;
use mms_disk::Bandwidth;
use mms_exec::{par_map, Parallelism};
use mms_sched::SchemeKind;

/// One evaluated point of the design space.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The scheme.
    pub scheme: SchemeKind,
    /// Parity-group size.
    pub c: usize,
    /// Disks required for the working set.
    pub disks: f64,
    /// Stream capacity at that disk complement.
    pub streams: f64,
    /// Buffer requirement in tracks at that capacity.
    pub buffer_tracks: f64,
    /// Total cost in dollars.
    pub cost: f64,
}

/// Enumerate every (scheme, C) point of the design space for a working
/// set, sorted by cost.
#[must_use]
pub fn design_space(
    sys: &SystemParams,
    model: &CostModel,
    c_range: std::ops::RangeInclusive<usize>,
    make_params: impl Fn(usize) -> SchemeParams + Sync,
) -> Vec<DesignPoint> {
    design_space_par(sys, model, c_range, make_params, Parallelism::Sequential)
}

/// [`design_space`] fanned out across a worker pool: each (C, scheme)
/// point is evaluated independently, then the points are sorted by cost
/// with a stable tie-break on the enumeration order — so the output is
/// identical to the sequential sweep for any [`Parallelism`].
#[must_use]
pub fn design_space_par(
    sys: &SystemParams,
    model: &CostModel,
    c_range: std::ops::RangeInclusive<usize>,
    make_params: impl Fn(usize) -> SchemeParams + Sync,
    par: Parallelism,
) -> Vec<DesignPoint> {
    let grid: Vec<(usize, SchemeKind)> = c_range
        .flat_map(|c| SchemeKind::ALL.into_iter().map(move |s| (c, s)))
        .collect();
    let mut out = par_map(par, &grid, |&(c, scheme)| {
        let p = make_params(c);
        let disks = model.disks_for_working_set(sys, c);
        let streams = streams::max_streams_fractional(sys, scheme, &p, disks);
        let buffer_tracks = buffers::buffer_tracks_fractional(scheme, &p, streams, disks);
        DesignPoint {
            scheme,
            c,
            disks,
            streams,
            buffer_tracks,
            cost: model.total_cost(sys, scheme, &p),
        }
    });
    // `par_map` returns grid order; the stable sort then yields one
    // canonical cost ranking regardless of thread count.
    out.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    out
}

/// The cheapest feasible design for a stream requirement, if any.
#[must_use]
pub fn best_design(
    sys: &SystemParams,
    model: &CostModel,
    c_range: std::ops::RangeInclusive<usize>,
    required_streams: f64,
    make_params: impl Fn(usize) -> SchemeParams + Sync,
) -> Option<DesignPoint> {
    design_space(sys, model, c_range, make_params)
        .into_iter()
        .find(|p| p.streams >= required_streams)
}

/// A bandwidth class sharing a partitioned farm (one logical server per
/// class, as the cycle model requires a single `b₀` per server).
#[derive(Debug, Clone, Copy)]
pub struct ClassDemand {
    /// The class's delivery rate.
    pub b0: Bandwidth,
    /// Concurrent streams the class must support.
    pub required_streams: f64,
}

/// A per-class slice of the farm.
#[derive(Debug, Clone, Copy)]
pub struct ClassAllocation {
    /// The class's delivery rate.
    pub b0: Bandwidth,
    /// Streams requested.
    pub required_streams: f64,
    /// Data disks (`D'`) the class needs under the given scheme.
    pub data_disks: f64,
    /// Total disks including parity.
    pub total_disks: f64,
}

/// Split a farm between bandwidth classes under one scheme and group
/// size: each class gets the disks its stream demand requires by the
/// Section 2 bound. This reproduces the paper's Section 1 arithmetic —
/// 1000 disks ≈ 6500 MPEG-2 or 20 000 MPEG-1 streams — and generalizes it
/// to "some combination of the two".
#[must_use]
pub fn partition_classes(
    sys: &SystemParams,
    scheme: SchemeKind,
    p: &SchemeParams,
    demands: &[ClassDemand],
) -> Vec<ClassAllocation> {
    let c = p.c;
    demands
        .iter()
        .map(|d| {
            // Streams per data disk under this scheme's (k, k') at this
            // class's rate — the Section 2 bound (Eqs. 8–11 brackets).
            let per_data_disk = match scheme {
                SchemeKind::StreamingRaid | SchemeKind::ImprovedBandwidth => {
                    streams::streams_per_disk_bound(&sys.disk, d.b0, c - 1, c - 1)
                }
                SchemeKind::StaggeredGroup | SchemeKind::NonClustered => {
                    streams::streams_per_disk_bound(&sys.disk, d.b0, 1, 1)
                }
            };
            let data_disks = d.required_streams / per_data_disk.max(1e-12);
            // Parity inflation: dedicated parity disks for the clustered
            // schemes; the bandwidth reserve for Improved-bandwidth
            // (Eq. 11: N = bracket · (D − K) ⇒ D = N/bracket + K).
            let total_disks = match scheme {
                SchemeKind::ImprovedBandwidth => data_disks + p.k_ib as f64,
                _ => data_disks * c as f64 / (c as f64 - 1.0),
            };
            ClassAllocation {
                b0: d.b0,
                required_streams: d.required_streams,
                data_disks,
                total_disks,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_space_is_cost_sorted_and_complete() {
        let sys = SystemParams::paper_table1();
        let model = CostModel::paper_fig9();
        let points = design_space(&sys, &model, 2..=10, SchemeParams::paper_fig9);
        assert_eq!(points.len(), 9 * 4);
        for w in points.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        // The global cheapest is the Non-clustered scheme (Figure 9a).
        assert_eq!(points[0].scheme, SchemeKind::NonClustered);
    }

    #[test]
    fn parallel_sweep_is_identical_to_sequential() {
        let sys = SystemParams::paper_table1();
        let model = CostModel::paper_fig9();
        let seq = design_space(&sys, &model, 2..=10, SchemeParams::paper_fig9);
        for par in [Parallelism::threads(2), Parallelism::threads(8)] {
            let p = design_space_par(&sys, &model, 2..=10, SchemeParams::paper_fig9, par);
            assert_eq!(p.len(), seq.len());
            for (a, b) in seq.iter().zip(&p) {
                assert_eq!(a.scheme, b.scheme, "under {par}");
                assert_eq!(a.c, b.c, "under {par}");
                assert_eq!(a.disks.to_bits(), b.disks.to_bits());
                assert_eq!(a.streams.to_bits(), b.streams.to_bits());
                assert_eq!(a.buffer_tracks.to_bits(), b.buffer_tracks.to_bits());
                assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            }
        }
    }

    #[test]
    fn best_design_matches_the_section5_narrative() {
        let sys = SystemParams::paper_table1();
        let model = CostModel::paper_fig9();
        // 1200 streams: a clustered scheme wins.
        let d1200 = best_design(&sys, &model, 2..=10, 1200.0, SchemeParams::paper_fig9).unwrap();
        assert_eq!(d1200.scheme, SchemeKind::NonClustered);
        // 1500 streams: only Improved-bandwidth is feasible.
        let d1500 = best_design(&sys, &model, 2..=10, 1500.0, SchemeParams::paper_fig9).unwrap();
        assert_eq!(d1500.scheme, SchemeKind::ImprovedBandwidth);
        // 3000 streams: nothing reaches it at this working set.
        assert!(best_design(&sys, &model, 2..=10, 3000.0, SchemeParams::paper_fig9).is_none());
    }

    #[test]
    fn partition_reproduces_section1_scale() {
        // Section 1: "assuming a bandwidth of 4 megabytes per second, 1000
        // disk drives provide enough bandwidth to support approximately
        // 6500 concurrent MPEG-2 users or 20,000 MPEG-1 users". Under the
        // Table 1 drive (2.5 MB/s effective) the same ratio holds: the
        // MPEG-1:MPEG-2 stream density per disk is b₀-inverse, ~3:1.
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(5);
        let allocs = partition_classes(
            &sys,
            SchemeKind::StreamingRaid,
            &p,
            &[
                ClassDemand {
                    b0: Bandwidth::from_megabits(1.5),
                    required_streams: 1000.0,
                },
                ClassDemand {
                    b0: Bandwidth::from_megabits(4.5),
                    required_streams: 1000.0,
                },
            ],
        );
        // Equal stream demand at 3x the bandwidth needs ~3x the disks
        // (slightly more: the seek term weighs heavier at higher b₀).
        let ratio = allocs[1].total_disks / allocs[0].total_disks;
        assert!((2.9..3.8).contains(&ratio), "ratio {ratio}");
        // Every allocation covers its demand when re-checked.
        for a in &allocs {
            let class_sys = SystemParams { b0: a.b0, ..sys };
            let n = streams::max_streams_fractional(
                &class_sys,
                SchemeKind::StreamingRaid,
                &p,
                a.total_disks,
            );
            assert!(n >= a.required_streams * 0.999, "{n}");
        }
    }

    #[test]
    fn partition_handles_empty_and_single_class() {
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(5);
        assert!(partition_classes(&sys, SchemeKind::NonClustered, &p, &[]).is_empty());
        let one = partition_classes(
            &sys,
            SchemeKind::NonClustered,
            &p,
            &[ClassDemand {
                b0: Bandwidth::mpeg1(),
                required_streams: 966.0,
            }],
        );
        // Table 2: 966 NC streams need ~100 disks.
        assert!(
            (one[0].total_disks - 100.0).abs() < 1.0,
            "{}",
            one[0].total_disks
        );
    }
}
