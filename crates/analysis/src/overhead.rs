//! Storage and bandwidth overheads (Eqs. 1–3).

use crate::params::{SchemeParams, SystemParams};
use mms_disk::Size;
use mms_sched::SchemeKind;

/// Eq. 1 — the fraction of disk storage dedicated to parity, identical
/// for all four schemes: `1/C`.
#[must_use]
pub fn storage_overhead_fraction(c: usize) -> f64 {
    1.0 / c as f64
}

/// Eq. 1 in absolute terms: parity bytes stored across the system,
/// `S_p = s_d · D / C`.
#[must_use]
pub fn storage_overhead_bytes(sys: &SystemParams, c: usize) -> Size {
    sys.disk.capacity * (sys.d as f64 / c as f64)
}

/// Eqs. 2–3 — the fraction of aggregate disk bandwidth unavailable for
/// data delivery: `1/C` for the clustered schemes (the dedicated parity
/// disks idle in normal operation), `K_IB/D` for Improved-bandwidth
/// (only the reserved capacity is withheld).
#[must_use]
pub fn bandwidth_overhead_fraction(
    sys: &SystemParams,
    scheme: SchemeKind,
    p: &SchemeParams,
) -> f64 {
    match scheme {
        SchemeKind::StreamingRaid | SchemeKind::StaggeredGroup | SchemeKind::NonClustered => {
            1.0 / p.c as f64
        }
        SchemeKind::ImprovedBandwidth => p.k_ib as f64 / sys.d as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_overheads_c5() {
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(5);
        assert!((storage_overhead_fraction(5) - 0.20).abs() < 1e-12);
        for s in [
            SchemeKind::StreamingRaid,
            SchemeKind::StaggeredGroup,
            SchemeKind::NonClustered,
        ] {
            assert!((bandwidth_overhead_fraction(&sys, s, &p) - 0.20).abs() < 1e-12);
        }
        // Table 2's IB row: 3.0% with K_IB = 3 and D = 100.
        assert!(
            (bandwidth_overhead_fraction(&sys, SchemeKind::ImprovedBandwidth, &p) - 0.03).abs()
                < 1e-12
        );
    }

    #[test]
    fn table3_overheads_c7() {
        let sys = SystemParams::paper_table1();
        let p = SchemeParams::paper_tables(7);
        // 14.3%.
        assert!((storage_overhead_fraction(7) - 1.0 / 7.0).abs() < 1e-12);
        assert!(
            (bandwidth_overhead_fraction(&sys, SchemeKind::NonClustered, &p) - 1.0 / 7.0).abs()
                < 1e-12
        );
        assert!(
            (bandwidth_overhead_fraction(&sys, SchemeKind::ImprovedBandwidth, &p) - 0.03).abs()
                < 1e-12
        );
    }

    #[test]
    fn absolute_parity_bytes() {
        let sys = SystemParams::paper_table1();
        // 100 disks of 1000 MB at C = 5: 20 000 MB of parity.
        let s = storage_overhead_bytes(&sys, 5);
        assert!((s.as_mb() - 20_000.0).abs() < 1e-6);
    }
}
