//! Property tests over the analytical model: the monotonicity and
//! ordering relations the paper's comparison arguments rest on must hold
//! across the whole parameter space, not just at C = 5 and 7.

use mms_analysis::{
    buffers, cost::CostModel, overhead, streams, SchemeKind, SchemeParams, SystemParams,
};
use mms_disk::{Bandwidth, DiskParams, ReliabilityParams, Size, Time};
use proptest::prelude::*;

fn arb_sys() -> impl Strategy<Value = SystemParams> {
    (
        5.0f64..=60.0,   // seek ms
        5.0f64..=40.0,   // track ms
        20.0f64..=200.0, // track KB
        0.8f64..=8.0,    // b0 Mb/s
        20usize..=2000,  // D
    )
        .prop_map(|(seek, trk, kb, mbps, d)| SystemParams {
            disk: DiskParams {
                seek: Time::from_millis(seek),
                track_time: Time::from_millis(trk),
                track_size: Size::from_kb(kb),
                capacity: Size::from_mb(1000.0),
            },
            b0: Bandwidth::from_megabits(mbps),
            d,
            rel: ReliabilityParams::paper(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Streams scale linearly in D; SR ≥ SG = NC; IB beats SR whenever
    /// the per-disk bound is positive (all of Section 5's orderings).
    #[test]
    fn stream_orderings_hold_everywhere(sys in arb_sys(), c in 3usize..=12) {
        let p = SchemeParams::paper_tables(c);
        let sr = streams::max_streams_fractional(&sys, SchemeKind::StreamingRaid, &p, sys.d as f64);
        let sg = streams::max_streams_fractional(&sys, SchemeKind::StaggeredGroup, &p, sys.d as f64);
        let nc = streams::max_streams_fractional(&sys, SchemeKind::NonClustered, &p, sys.d as f64);
        let ib = streams::max_streams_fractional(&sys, SchemeKind::ImprovedBandwidth, &p, sys.d as f64);
        prop_assume!(sg > 0.0); // degenerate regimes (too-slow disks) excluded
        prop_assert!(sr >= sg - 1e-9);
        prop_assert!((sg - nc).abs() < 1e-9);
        prop_assert!(ib >= sr * (sys.d as f64 - p.k_ib as f64) / (sys.d as f64) * (c as f64 - 1.0) / c as f64 - 1e-6);
        // Linear in D.
        let sr2 = streams::max_streams_fractional(&sys, SchemeKind::StreamingRaid, &p, 2.0 * sys.d as f64);
        prop_assert!((sr2 - 2.0 * sr).abs() < 1e-6 * sr.max(1.0));
    }

    /// Buffer hierarchy: NC < SG < SR per stream, IB < SR per stream.
    #[test]
    fn buffer_hierarchy_holds(c in 3usize..=12) {
        let sr = buffers::tracks_per_stream(SchemeKind::StreamingRaid, c);
        let sg = buffers::tracks_per_stream(SchemeKind::StaggeredGroup, c);
        let nc = buffers::tracks_per_stream(SchemeKind::NonClustered, c);
        let ib = buffers::tracks_per_stream(SchemeKind::ImprovedBandwidth, c);
        prop_assert!(nc < sg);
        prop_assert!(sg < sr);
        prop_assert!(ib < sr);
        prop_assert!(nc <= ib);
    }

    /// Overheads: storage overhead is 1/C for all schemes and decreasing
    /// in C; IB's bandwidth overhead is independent of C.
    #[test]
    fn overheads_behave(sys in arb_sys(), c in 3usize..=12) {
        let p = SchemeParams::paper_tables(c);
        prop_assert!((overhead::storage_overhead_fraction(c) - 1.0 / c as f64).abs() < 1e-12);
        prop_assert!(
            overhead::storage_overhead_fraction(c + 1) < overhead::storage_overhead_fraction(c)
        );
        let ib = overhead::bandwidth_overhead_fraction(&sys, SchemeKind::ImprovedBandwidth, &p);
        prop_assert!((ib - p.k_ib as f64 / sys.d as f64).abs() < 1e-12);
        for s in [SchemeKind::StreamingRaid, SchemeKind::StaggeredGroup, SchemeKind::NonClustered] {
            prop_assert!(
                (overhead::bandwidth_overhead_fraction(&sys, s, &p) - 1.0 / c as f64).abs() < 1e-12
            );
        }
    }

    /// Cost decomposition: total cost equals memory cost plus disk cost,
    /// and is monotone in both prices.
    #[test]
    fn cost_is_monotone_in_prices(
        c in 2usize..=10,
        cb in 10.0f64..500.0,
        cd in 0.2f64..5.0,
        scheme_ix in 0usize..4,
    ) {
        let sys = SystemParams::paper_table1();
        let scheme = SchemeKind::ALL[scheme_ix];
        let p = SchemeParams::paper_fig9(c);
        let base = CostModel { cb_per_mb: cb, cd_per_mb: cd, working_set_mb: 100_000.0, whole_disks: false };
        let more_mem = CostModel { cb_per_mb: cb * 1.5, ..base };
        let more_disk = CostModel { cd_per_mb: cd * 1.5, ..base };
        let c0 = base.total_cost(&sys, scheme, &p);
        prop_assert!(c0 > 0.0);
        prop_assert!(more_mem.total_cost(&sys, scheme, &p) > c0);
        prop_assert!(more_disk.total_cost(&sys, scheme, &p) > c0);
        // Decomposition: zeroing one price leaves the other component.
        let mem_only = CostModel { cd_per_mb: 0.0, ..base }.total_cost(&sys, scheme, &p);
        let disk_only = CostModel { cb_per_mb: 0.0, ..base }.total_cost(&sys, scheme, &p);
        prop_assert!((mem_only + disk_only - c0).abs() < 1e-6 * c0);
    }

    /// The discrete table generator never panics and keeps SG = NC across
    /// arbitrary parity-group sizes.
    #[test]
    fn table_rows_are_total(c in 2usize..=20) {
        let sys = SystemParams::paper_table1();
        let rows = mms_analysis::table_rows(&sys, &SchemeParams::paper_tables(c));
        prop_assert_eq!(rows.len(), 4);
        prop_assert_eq!(rows[1].streams, rows[2].streams); // SG == NC
        // SR/SG degrade exactly when they lose data; NC/IB push
        // degradation far beyond it.
        for r in &rows {
            match r.scheme {
                SchemeKind::StreamingRaid | SchemeKind::StaggeredGroup => {
                    prop_assert!((r.mttds_years - r.mttf_years).abs() < 1e-9);
                }
                SchemeKind::NonClustered | SchemeKind::ImprovedBandwidth => {
                    prop_assert!(r.mttds_years > 10.0 * r.mttf_years);
                }
            }
        }
    }
}
