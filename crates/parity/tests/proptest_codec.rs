//! Property-based tests for the XOR parity codec: for *any* group size,
//! block length, contents, and erasure position, reconstruction is exact.

use mms_parity::{codec, Block, XorAccumulator};
use proptest::prelude::*;

fn arb_group() -> impl Strategy<Value = (Vec<Vec<u8>>, usize)> {
    // Group of 1..=16 data blocks, each 1..=512 bytes (homogeneous length),
    // plus an erasure index into the group.
    (1usize..=16, 1usize..=512).prop_flat_map(|(c, len)| {
        (
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), len), c),
            0..c,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// reconstruct(encode(group)) recovers any single erased member.
    #[test]
    fn reconstruct_recovers_any_erasure((raw, missing) in arb_group()) {
        let group: Vec<Block> = raw.into_iter().map(Block::from_bytes).collect();
        let parity = codec::parity_of(group.iter());
        let rebuilt = codec::reconstruct(missing, &group, &parity).unwrap();
        prop_assert_eq!(rebuilt, group[missing].clone());
    }

    /// A freshly encoded group always verifies.
    #[test]
    fn encoded_group_verifies((raw, _missing) in arb_group()) {
        let group: Vec<Block> = raw.into_iter().map(Block::from_bytes).collect();
        let parity = codec::parity_of(group.iter());
        prop_assert!(codec::verify(&group, &parity).is_ok());
    }

    /// Flipping any single bit of the parity breaks verification.
    #[test]
    fn corruption_is_detected((raw, _m) in arb_group(), bit in 0usize..64) {
        let group: Vec<Block> = raw.into_iter().map(Block::from_bytes).collect();
        let parity = codec::parity_of(group.iter());
        let mut bytes = parity.as_bytes().to_vec();
        let idx = (bit / 8) % bytes.len();
        bytes[idx] ^= 1 << (bit % 8);
        let corrupted = Block::from_bytes(bytes);
        prop_assert_eq!(
            codec::verify(&group, &corrupted),
            Err(mms_parity::ParityError::Inconsistent)
        );
    }

    /// The delayed-transition accumulator reconstructs identically to the
    /// direct path, for any split point between "already delivered" and
    /// "still to be read" members.
    #[test]
    fn accumulator_equals_direct((raw, missing) in arb_group(), split_seed in any::<u64>()) {
        let group: Vec<Block> = raw.into_iter().map(Block::from_bytes).collect();
        let parity = codec::parity_of(group.iter());
        let len = group[0].len();

        // Split survivors (everything except `missing`) into delivered
        // prefix and later suffix at an arbitrary point.
        let survivors: Vec<usize> = (0..group.len()).filter(|&i| i != missing).collect();
        let split = if survivors.is_empty() { 0 } else { (split_seed as usize) % (survivors.len() + 1) };

        let mut acc = XorAccumulator::new(len);
        for &i in &survivors[..split] {
            acc.absorb(&group[i]);
        }
        let rebuilt = acc.finish_reconstruct(
            survivors[split..].iter().map(|&i| &group[i]),
            &parity,
        );
        prop_assert_eq!(rebuilt, group[missing].clone());
    }
}

proptest! {
    /// The incremental parity update agrees with a full re-encode for any
    /// group, member, and replacement contents.
    #[test]
    fn update_parity_equals_reencode((raw, target) in arb_group(), replacement in proptest::collection::vec(any::<u8>(), 1..512)) {
        let mut group: Vec<Block> = raw.into_iter().map(Block::from_bytes).collect();
        let len = group[0].len();
        let mut replacement = replacement;
        replacement.resize(len, 0);
        let new_block = Block::from_bytes(replacement);

        let mut parity = codec::parity_of(group.iter());
        codec::update_parity(&mut parity, &group[target], &new_block);
        group[target] = new_block;
        prop_assert_eq!(parity, codec::parity_of(group.iter()));
    }
}
