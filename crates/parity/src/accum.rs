//! Running XOR accumulator for the delayed degraded-mode transition.

use crate::block::Block;

/// A running XOR over blocks that have already been *delivered and
/// discarded*.
///
/// Section 3's delayed transition keeps only the XOR of the blocks seen so
/// far instead of the blocks themselves: "we should buffer A0 ⊕ A1 (after
/// delivery of A0 and A1) until the reconstruction of A2 is complete". One
/// track of memory therefore suffices per in-flight group, regardless of
/// how many members have passed through.
#[derive(Debug, Clone)]
pub struct XorAccumulator {
    acc: Block,
    absorbed: usize,
}

impl XorAccumulator {
    /// Start an empty accumulator for blocks of `len` bytes.
    #[must_use]
    pub fn new(len: usize) -> Self {
        XorAccumulator {
            acc: Block::zeroed(len),
            absorbed: 0,
        }
    }

    /// XOR one delivered block into the running state.
    pub fn absorb(&mut self, block: &Block) {
        self.acc.xor_assign(block);
        self.absorbed += 1;
    }

    /// Number of blocks absorbed so far.
    #[must_use]
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// The current running XOR.
    #[must_use]
    pub fn state(&self) -> &Block {
        &self.acc
    }

    /// Consume the accumulator, yielding the running XOR. When every
    /// surviving member *and* the parity block have been absorbed, this
    /// is exactly the missing member.
    #[must_use]
    pub fn into_block(self) -> Block {
        self.acc
    }

    /// Finish reconstructing the missing block: XOR the running state with
    /// the *remaining* survivors and the parity block. After this call the
    /// accumulator has been consumed.
    ///
    /// If the accumulator absorbed `A0..A(p-1)`, the survivors are
    /// `A(p)..A(C-2)` minus the missing block, and parity is `Ap`, the
    /// result is exactly the missing block.
    #[must_use]
    pub fn finish_reconstruct<'a, I>(mut self, survivors: I, parity: &Block) -> Block
    where
        I: IntoIterator<Item = &'a Block>,
    {
        for s in survivors {
            self.acc.xor_assign(s);
        }
        self.acc.xor_assign(parity);
        self.acc
    }
}

/// A *reusable* streaming XOR accumulator for the zero-allocation
/// verification path.
///
/// Unlike [`XorAccumulator`] — which is consumed by
/// [`finish_reconstruct`](XorAccumulator::finish_reconstruct) and models
/// the paper's one-shot delayed transition — a `ParityAccumulator` is
/// owned long-term (e.g. by the simulator's oracle), reset at the start
/// of each use, and fed raw byte slices, so verifying a delivery never
/// allocates once the internal scratch block has been sized.
#[derive(Debug, Clone)]
pub struct ParityAccumulator {
    acc: Block,
    absorbed: usize,
}

impl ParityAccumulator {
    /// An accumulator whose scratch block holds `len` bytes, zeroed.
    #[must_use]
    pub fn new(len: usize) -> Self {
        ParityAccumulator {
            acc: Block::zeroed(len),
            absorbed: 0,
        }
    }

    /// Reset to the XOR identity for blocks of `len` bytes. Storage is
    /// kept (and merely zeroed) when `len` matches the current scratch
    /// size; otherwise the scratch block is reallocated once.
    pub fn reset(&mut self, len: usize) {
        if self.acc.len() == len {
            self.acc.zero();
        } else {
            self.acc = Block::zeroed(len);
        }
        self.absorbed = 0;
    }

    /// XOR one member block into the running state.
    ///
    /// # Panics
    /// Panics if `block` does not match the scratch length (the same
    /// layout invariant as [`Block::xor_assign`]).
    pub fn absorb(&mut self, block: &Block) {
        self.acc.xor_assign(block);
        self.absorbed += 1;
    }

    /// XOR one member's raw bytes into the running state. Same layout
    /// contract (and panic) as [`ParityAccumulator::absorb`].
    pub fn absorb_bytes(&mut self, bytes: &[u8]) {
        self.acc.xor_assign_bytes(bytes);
        self.absorbed += 1;
    }

    /// XOR the deterministic synthetic block `(object, track)` into the
    /// running state without materializing it (see
    /// [`xor_synthetic`](crate::block::xor_synthetic)).
    pub fn absorb_synthetic(&mut self, object: u64, track: u64) {
        crate::block::xor_synthetic(object, track, self.acc.as_bytes_mut());
        self.absorbed += 1;
    }

    /// Number of members absorbed since the last reset.
    #[must_use]
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// The current running XOR.
    #[must_use]
    pub fn state(&self) -> &Block {
        &self.acc
    }

    /// The XOR-fold fingerprint of the current running state.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.acc.fingerprint()
    }

    /// Copy the running XOR into `out`, resizing `out`'s storage only if
    /// its length differs.
    pub fn write_state_into(&self, out: &mut Block) {
        if out.len() == self.acc.len() {
            out.as_bytes_mut().copy_from_slice(self.acc.as_bytes());
        } else {
            *out = self.acc.clone();
        }
    }
}

#[cfg(test)]
mod parity_accumulator_tests {
    use super::*;
    use crate::codec::parity_of;

    #[test]
    fn matches_parity_of_across_resets() {
        let mut acc = ParityAccumulator::new(0);
        for (object, members, len) in [(1u64, 4u64, 96usize), (2, 3, 96), (3, 5, 40)] {
            let group: Vec<Block> = (0..members)
                .map(|t| Block::synthetic(object, t, len))
                .collect();
            acc.reset(len);
            for b in &group {
                acc.absorb_bytes(b.as_bytes());
            }
            let expect = parity_of(group.iter());
            assert_eq!(acc.state(), &expect);
            assert_eq!(acc.absorbed(), members as usize);
            assert_eq!(acc.fingerprint(), expect.fingerprint());
        }
    }

    #[test]
    fn absorb_synthetic_equals_absorb_materialized() {
        let mut fused = ParityAccumulator::new(80);
        let mut plain = ParityAccumulator::new(80);
        for t in 0..5u64 {
            fused.absorb_synthetic(11, t);
            plain.absorb(&Block::synthetic(11, t, 80));
        }
        assert_eq!(fused.state(), plain.state());
    }

    #[test]
    fn write_state_into_reuses_matching_storage() {
        let mut acc = ParityAccumulator::new(24);
        acc.absorb(&Block::synthetic(5, 0, 24));
        let mut out = Block::zeroed(24);
        acc.write_state_into(&mut out);
        assert_eq!(&out, acc.state());
        let mut resized = Block::zeroed(3);
        acc.write_state_into(&mut resized);
        assert_eq!(&resized, acc.state());
    }

    #[test]
    fn reset_clears_state_and_count() {
        let mut acc = ParityAccumulator::new(16);
        acc.absorb(&Block::synthetic(1, 1, 16));
        acc.reset(16);
        assert!(acc.state().is_zero());
        assert_eq!(acc.absorbed(), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::parity_of;

    #[test]
    fn delayed_reconstruction_matches_direct() {
        // Group A0..A3 with parity Ap; A2 is on the failed disk. A0 and A1
        // were delivered (and absorbed); A3 is read later.
        let group: Vec<Block> = (0..4).map(|i| Block::synthetic(1, i, 128)).collect();
        let parity = parity_of(group.iter());

        let mut acc = XorAccumulator::new(128);
        acc.absorb(&group[0]);
        acc.absorb(&group[1]);
        assert_eq!(acc.absorbed(), 2);

        let rebuilt = acc.finish_reconstruct([&group[3]], &parity);
        assert_eq!(rebuilt, group[2]);
    }

    #[test]
    fn zero_absorptions_equals_plain_reconstruct() {
        let group: Vec<Block> = (0..3).map(|i| Block::synthetic(2, i, 64)).collect();
        let parity = parity_of(group.iter());
        let acc = XorAccumulator::new(64);
        let rebuilt = acc.finish_reconstruct([&group[1], &group[2]], &parity);
        assert_eq!(rebuilt, group[0]);
    }

    #[test]
    fn accumulator_state_is_running_xor() {
        let a = Block::synthetic(3, 0, 32);
        let b = Block::synthetic(3, 1, 32);
        let mut acc = XorAccumulator::new(32);
        acc.absorb(&a);
        acc.absorb(&b);
        let mut expect = a.clone();
        expect.xor_assign(&b);
        assert_eq!(acc.state(), &expect);
    }
}
