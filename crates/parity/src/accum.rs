//! Running XOR accumulator for the delayed degraded-mode transition.

use crate::block::Block;

/// A running XOR over blocks that have already been *delivered and
/// discarded*.
///
/// Section 3's delayed transition keeps only the XOR of the blocks seen so
/// far instead of the blocks themselves: "we should buffer A0 ⊕ A1 (after
/// delivery of A0 and A1) until the reconstruction of A2 is complete". One
/// track of memory therefore suffices per in-flight group, regardless of
/// how many members have passed through.
#[derive(Debug, Clone)]
pub struct XorAccumulator {
    acc: Block,
    absorbed: usize,
}

impl XorAccumulator {
    /// Start an empty accumulator for blocks of `len` bytes.
    #[must_use]
    pub fn new(len: usize) -> Self {
        XorAccumulator {
            acc: Block::zeroed(len),
            absorbed: 0,
        }
    }

    /// XOR one delivered block into the running state.
    pub fn absorb(&mut self, block: &Block) {
        self.acc.xor_assign(block);
        self.absorbed += 1;
    }

    /// Number of blocks absorbed so far.
    #[must_use]
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// The current running XOR.
    #[must_use]
    pub fn state(&self) -> &Block {
        &self.acc
    }

    /// Consume the accumulator, yielding the running XOR. When every
    /// surviving member *and* the parity block have been absorbed, this
    /// is exactly the missing member.
    #[must_use]
    pub fn into_block(self) -> Block {
        self.acc
    }

    /// Finish reconstructing the missing block: XOR the running state with
    /// the *remaining* survivors and the parity block. After this call the
    /// accumulator has been consumed.
    ///
    /// If the accumulator absorbed `A0..A(p-1)`, the survivors are
    /// `A(p)..A(C-2)` minus the missing block, and parity is `Ap`, the
    /// result is exactly the missing block.
    #[must_use]
    pub fn finish_reconstruct<'a, I>(mut self, survivors: I, parity: &Block) -> Block
    where
        I: IntoIterator<Item = &'a Block>,
    {
        for s in survivors {
            self.acc.xor_assign(s);
        }
        self.acc.xor_assign(parity);
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::parity_of;

    #[test]
    fn delayed_reconstruction_matches_direct() {
        // Group A0..A3 with parity Ap; A2 is on the failed disk. A0 and A1
        // were delivered (and absorbed); A3 is read later.
        let group: Vec<Block> = (0..4).map(|i| Block::synthetic(1, i, 128)).collect();
        let parity = parity_of(group.iter());

        let mut acc = XorAccumulator::new(128);
        acc.absorb(&group[0]);
        acc.absorb(&group[1]);
        assert_eq!(acc.absorbed(), 2);

        let rebuilt = acc.finish_reconstruct([&group[3]], &parity);
        assert_eq!(rebuilt, group[2]);
    }

    #[test]
    fn zero_absorptions_equals_plain_reconstruct() {
        let group: Vec<Block> = (0..3).map(|i| Block::synthetic(2, i, 64)).collect();
        let parity = parity_of(group.iter());
        let acc = XorAccumulator::new(64);
        let rebuilt = acc.finish_reconstruct([&group[1], &group[2]], &parity);
        assert_eq!(rebuilt, group[0]);
    }

    #[test]
    fn accumulator_state_is_running_xor() {
        let a = Block::synthetic(3, 0, 32);
        let b = Block::synthetic(3, 1, 32);
        let mut acc = XorAccumulator::new(32);
        acc.absorb(&a);
        acc.absorb(&b);
        let mut expect = a.clone();
        expect.xor_assign(&b);
        assert_eq!(acc.state(), &expect);
    }
}
