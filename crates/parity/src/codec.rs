//! Group-level parity encode, reconstruct, and verify.

use crate::block::Block;
use std::fmt;

/// Errors from parity-group operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParityError {
    /// A group operation was attempted on an empty set of blocks.
    EmptyGroup,
    /// The missing index passed to [`reconstruct`] is out of range.
    BadIndex {
        /// The offending index.
        index: usize,
        /// The group's data-block count.
        group_len: usize,
    },
    /// Survivor blocks plus parity do not XOR to the claimed data —
    /// indicates corruption or a second erasure.
    Inconsistent,
}

impl fmt::Display for ParityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParityError::EmptyGroup => write!(f, "parity group is empty"),
            ParityError::BadIndex { index, group_len } => {
                write!(
                    f,
                    "block index {index} out of range for group of {group_len}"
                )
            }
            ParityError::Inconsistent => write!(f, "parity group is inconsistent"),
        }
    }
}

impl std::error::Error for ParityError {}

/// Compute the parity block of a group: the bitwise XOR of all members
/// (`X0p = X0 ⊕ X1 ⊕ X2 ⊕ X3` in the paper's Figure 3).
///
/// # Panics
/// Panics on the *first* block whose length differs from the group head's,
/// with the same layout-invariant message as [`Block::xor_assign`]
/// ("parity group members must be the same size") — the group is
/// homogeneous by construction, so a mismatch is a layout bug. An empty
/// iterator yields a zero-length block (the crate-level empty-group
/// contract; see the crate docs).
pub fn parity_of<'a, I>(blocks: I) -> Block
where
    I: IntoIterator<Item = &'a Block>,
{
    let mut iter = blocks.into_iter();
    let Some(first) = iter.next() else {
        return Block::zeroed(0);
    };
    let mut parity = first.clone();
    for b in iter {
        assert_eq!(
            parity.len(),
            b.len(),
            "parity group members must be the same size"
        );
        parity.xor_assign(b);
    }
    parity
}

/// Reconstruct the data block at `missing` from the surviving data blocks
/// and the parity block.
///
/// `group` holds the *full* group contents, but the block at `missing` is
/// ignored (it models the block on the failed disk); everything else plus
/// `parity` is XOR-ed together, which by the XOR group laws yields exactly
/// the missing member. This is the paper's "missing data … reconstructed
/// on-the-fly from the other data blocks and the parity block from the same
/// parity group".
pub fn reconstruct(missing: usize, group: &[Block], parity: &Block) -> Result<Block, ParityError> {
    if group.is_empty() {
        return Err(ParityError::EmptyGroup);
    }
    if missing >= group.len() {
        return Err(ParityError::BadIndex {
            index: missing,
            group_len: group.len(),
        });
    }
    let mut out = parity.clone();
    for (i, b) in group.iter().enumerate() {
        if i != missing {
            out.xor_assign(b);
        }
    }
    Ok(out)
}

/// Verify that `parity` is the XOR of `group` (used by integration tests
/// and the rebuild path to detect double failures / corruption).
pub fn verify(group: &[Block], parity: &Block) -> Result<(), ParityError> {
    if group.is_empty() {
        return Err(ParityError::EmptyGroup);
    }
    let mut acc = parity_of(group.iter());
    acc.xor_assign(parity);
    if acc.is_zero() {
        Ok(())
    } else {
        Err(ParityError::Inconsistent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(c: usize, len: usize) -> Vec<Block> {
        (0..c as u64)
            .map(|i| Block::synthetic(42, i, len))
            .collect()
    }

    #[test]
    fn reconstruct_every_position() {
        let g = group(4, 256);
        let p = parity_of(g.iter());
        for missing in 0..g.len() {
            let r = reconstruct(missing, &g, &p).unwrap();
            assert_eq!(r, g[missing], "position {missing}");
        }
    }

    #[test]
    fn verify_accepts_good_group() {
        let g = group(6, 128);
        let p = parity_of(g.iter());
        assert!(verify(&g, &p).is_ok());
    }

    #[test]
    fn verify_rejects_corruption() {
        let g = group(3, 64);
        let mut p = parity_of(g.iter());
        p.xor_assign(&Block::synthetic(9, 9, 64)); // corrupt
        assert_eq!(verify(&g, &p), Err(ParityError::Inconsistent));
    }

    #[test]
    fn bad_index_is_reported() {
        let g = group(3, 16);
        let p = parity_of(g.iter());
        assert_eq!(
            reconstruct(3, &g, &p),
            Err(ParityError::BadIndex {
                index: 3,
                group_len: 3
            })
        );
    }

    #[test]
    fn empty_group_is_error() {
        let p = Block::zeroed(8);
        assert_eq!(reconstruct(0, &[], &p), Err(ParityError::EmptyGroup));
        assert_eq!(verify(&[], &p), Err(ParityError::EmptyGroup));
    }

    #[test]
    #[should_panic(expected = "parity group members must be the same size")]
    fn parity_of_panics_on_first_mismatched_block() {
        // The third member is the first length mismatch; the panic fires
        // there with the same message as Block::xor_assign.
        let blocks = [Block::zeroed(16), Block::zeroed(16), Block::zeroed(8)];
        let _ = parity_of(blocks.iter());
    }

    #[test]
    fn parity_of_empty_iterator_is_zero_length_block() {
        let p = parity_of(std::iter::empty::<&Block>());
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn single_member_group_parity_is_the_member() {
        // Degenerate C = 2 "mirroring" case the paper notes for the
        // improved-bandwidth scheme ("when the cluster size is 2 we
        // effectively have mirroring").
        let g = group(1, 32);
        let p = parity_of(g.iter());
        assert_eq!(p, g[0]);
        assert_eq!(reconstruct(0, &g, &p).unwrap(), g[0]);
    }
}

/// Update a parity block in place when one data member changes:
/// `parity' = parity ⊕ old ⊕ new`. This is the small-write path used when
/// objects are loaded from tertiary storage over previously occupied
/// tracks — only the parity and the changed member need touching, not the
/// whole group.
pub fn update_parity(parity: &mut Block, old_member: &Block, new_member: &Block) {
    parity.xor_assign(old_member);
    parity.xor_assign(new_member);
}

#[cfg(test)]
mod update_tests {
    use super::*;

    #[test]
    fn update_equals_reencode() {
        let mut group: Vec<Block> = (0..5).map(|i| Block::synthetic(3, i, 128)).collect();
        let mut parity = parity_of(group.iter());
        let new_block = Block::synthetic(9, 9, 128);
        update_parity(&mut parity, &group[2], &new_block);
        group[2] = new_block;
        assert_eq!(parity, parity_of(group.iter()));
        assert!(verify(&group, &parity).is_ok());
    }

    #[test]
    fn update_with_identical_member_is_noop() {
        let group: Vec<Block> = (0..3).map(|i| Block::synthetic(4, i, 64)).collect();
        let mut parity = parity_of(group.iter());
        let before = parity.clone();
        let same = group[1].clone();
        update_parity(&mut parity, &group[1], &same);
        assert_eq!(parity, before);
    }
}
