//! # mms-parity — XOR parity coding substrate
//!
//! The fault-tolerance schemes of *Berson, Golubchik & Muntz (SIGMOD 1995)*
//! all rest on one primitive: a **parity group** of `C−1` data blocks plus
//! one parity block that is their bitwise exclusive-OR
//! (`X0p = X0 ⊕ X1 ⊕ X2 ⊕ X3` in the paper's Figure 3). Any single missing
//! block can be reconstructed on the fly by XOR-ing the survivors.
//!
//! This crate implements that primitive over real byte buffers:
//!
//! * [`Block`] — a track-sized byte buffer with word-wise XOR operations,
//!   a 64-bit [`fingerprint`](Block::fingerprint) XOR-fold, and a
//!   deterministic synthetic-content generator (substituting for MPEG data,
//!   whose bytes are opaque to the schemes).
//! * [`codec`] — group-level encode / single-erasure reconstruct / verify.
//! * [`XorAccumulator`] — a *running* XOR used by the Non-clustered
//!   scheme's delayed transition ("we should buffer A0 ⊕ A1 (after delivery
//!   of A0 and A1) until the reconstruction of A2 is complete", Section 3).
//! * [`ParityAccumulator`] — a *reusable* streaming XOR for hot
//!   verification paths: reset per group, fed byte slices, allocation-free
//!   after warm-up.
//! * [`TrackPool`] — a free list of track-sized buffers checked out and
//!   back in per cycle, so degraded-mode scratch space is recycled instead
//!   of reallocated.
//!
//! Observation 2 of the paper hinges on the XOR being fast enough to
//! reconstruct in real time; the `mms-bench` crate measures this codec's
//! throughput to substantiate that. The XOR kernel operates on `u64`
//! lanes (with a safe byte fallback for unaligned tails), so track-sized
//! blocks move at memory bandwidth without any `unsafe`.
//!
//! ## The empty-group contract
//!
//! [`codec::parity_of`] over an **empty iterator** yields a
//! **zero-length block**: the XOR identity of a group with no members has
//! no defined track size, so the empty [`Block`] stands in for it. A
//! zero-length block XORs only with another zero-length block (any other
//! pairing trips the layout-invariant panic, "parity group members must
//! be the same size"), is [`is_zero`](Block::is_zero), and fingerprints
//! to `0`. Group-level operations that *require* members
//! ([`codec::reconstruct`], [`codec::verify`]) instead report
//! [`ParityError::EmptyGroup`] rather than silently treating the empty
//! group as consistent.
//!
//! ```
//! use mms_parity::{codec, Block};
//!
//! let group: Vec<Block> = (0..4).map(|i| Block::synthetic(7, i, 512)).collect();
//! let parity = codec::parity_of(group.iter());
//! // Lose block 2, rebuild it from the rest.
//! let rebuilt = codec::reconstruct(2, &group, &parity).unwrap();
//! assert_eq!(rebuilt, group[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod block;
pub mod codec;
mod group;
mod pool;

pub use accum::{ParityAccumulator, XorAccumulator};
pub use block::{
    fill_synthetic, fingerprint_bytes, slice_is_zero, synthetic_fingerprint, xor_slices,
    xor_synthetic, Block,
};
pub use codec::ParityError;
pub use group::ParityGroupId;
pub use pool::{PoolStats, TrackPool};
