//! # mms-parity — XOR parity coding substrate
//!
//! The fault-tolerance schemes of *Berson, Golubchik & Muntz (SIGMOD 1995)*
//! all rest on one primitive: a **parity group** of `C−1` data blocks plus
//! one parity block that is their bitwise exclusive-OR
//! (`X0p = X0 ⊕ X1 ⊕ X2 ⊕ X3` in the paper's Figure 3). Any single missing
//! block can be reconstructed on the fly by XOR-ing the survivors.
//!
//! This crate implements that primitive over real byte buffers:
//!
//! * [`Block`] — a track-sized byte buffer with XOR operations and a
//!   deterministic synthetic-content generator (substituting for MPEG data,
//!   whose bytes are opaque to the schemes).
//! * [`codec`] — group-level encode / single-erasure reconstruct / verify.
//! * [`XorAccumulator`] — a *running* XOR used by the Non-clustered
//!   scheme's delayed transition ("we should buffer A0 ⊕ A1 (after delivery
//!   of A0 and A1) until the reconstruction of A2 is complete", Section 3).
//!
//! Observation 2 of the paper hinges on the XOR being fast enough to
//! reconstruct in real time; the `mms-bench` crate measures this codec's
//! throughput to substantiate that.
//!
//! ```
//! use mms_parity::{codec, Block};
//!
//! let group: Vec<Block> = (0..4).map(|i| Block::synthetic(7, i, 512)).collect();
//! let parity = codec::parity_of(group.iter());
//! // Lose block 2, rebuild it from the rest.
//! let rebuilt = codec::reconstruct(2, &group, &parity).unwrap();
//! assert_eq!(rebuilt, group[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod block;
pub mod codec;
mod group;

pub use accum::XorAccumulator;
pub use block::Block;
pub use codec::ParityError;
pub use group::ParityGroupId;
