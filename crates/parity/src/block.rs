//! Track-sized byte buffers with XOR support.
//!
//! The XOR kernel operates on `u64` lanes (eight bytes at a time) with a
//! safe byte-at-a-time fallback for the unaligned tail, so track-sized
//! operations run at memory bandwidth without any `unsafe`. The
//! [`fingerprint`](Block::fingerprint) XOR-fold gives a 64-bit summary
//! that is *linear* under XOR — `fp(a ⊕ b) = fp(a) ⊕ fp(b)` — which the
//! verification layer exploits to check parity groups incrementally
//! without materializing or re-scanning whole blocks.

use std::fmt;

/// Bytes per XOR lane.
const WORD: usize = 8;

/// XOR `src` into `dst` in place, eight bytes per step.
///
/// # Panics
/// Panics if the lengths differ — parity groups are homogeneous by
/// construction, so a mismatch is a layout bug.
pub fn xor_slices(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "parity group members must be the same size"
    );
    let mut d = dst.chunks_exact_mut(WORD);
    let mut s = src.chunks_exact(WORD);
    for (a, b) in d.by_ref().zip(s.by_ref()) {
        let w = u64::from_ne_bytes(a.try_into().expect("exact chunk"))
            ^ u64::from_ne_bytes(b.try_into().expect("exact chunk"));
        a.copy_from_slice(&w.to_ne_bytes());
    }
    for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a ^= *b;
    }
}

/// Whether every byte of `bytes` is zero, checked eight bytes per step.
#[must_use]
pub fn slice_is_zero(bytes: &[u8]) -> bool {
    let chunks = bytes.chunks_exact(WORD);
    let tail = chunks.remainder();
    chunks
        .map(|c| u64::from_ne_bytes(c.try_into().expect("exact chunk")))
        .fold(0u64, |acc, w| acc | w)
        == 0
        && tail.iter().all(|&b| b == 0)
}

/// The 64-bit XOR-fold of `bytes`: the XOR of all little-endian `u64`
/// lanes, with the tail zero-extended into a final lane.
///
/// Properties relied on by callers:
/// * equal contents ⇒ equal fingerprints (it is a pure function);
/// * **linearity**: `fingerprint(a ⊕ b) = fingerprint(a) ⊕
///   fingerprint(b)` for equal-length inputs, so a parity block's
///   fingerprint is the XOR of its members' fingerprints;
/// * differing contents collide only when their difference XOR-folds to
///   zero — vanishingly unlikely for the pseudo-random synthetic tracks,
///   but *possible*, so a matching fingerprint is a fast filter, not a
///   proof (callers needing certainty must fall back to a byte compare).
#[must_use]
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let chunks = bytes.chunks_exact(WORD);
    let tail = chunks.remainder();
    let mut acc = chunks
        .map(|c| u64::from_le_bytes(c.try_into().expect("exact chunk")))
        .fold(0u64, |acc, w| acc ^ w);
    if !tail.is_empty() {
        let mut last = [0u8; WORD];
        last[..tail.len()].copy_from_slice(tail);
        acc ^= u64::from_le_bytes(last);
    }
    acc
}

/// Fill `out` with the deterministic pseudo-random contents of block
/// `(object, track)` — the same splitmix64 stream as
/// [`Block::synthetic`], but writing into caller-owned storage so hot
/// paths can regenerate ground-truth bytes without allocating.
pub fn fill_synthetic(object: u64, track: u64, out: &mut [u8]) {
    let mut state = object
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(track)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(0x94D0_49BB_1331_11EB);
    for chunk in out.chunks_mut(WORD) {
        // splitmix64 step
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let w = z.to_le_bytes();
        chunk.copy_from_slice(&w[..chunk.len()]);
    }
}

/// XOR the deterministic contents of block `(object, track)` into `out`
/// without materializing them: each splitmix64 word is XOR-ed into the
/// destination lane as it is generated. `xor_synthetic(o, t, buf)` is
/// equivalent to filling a scratch buffer via [`fill_synthetic`] and
/// XOR-ing it in, minus the scratch buffer.
pub fn xor_synthetic(object: u64, track: u64, out: &mut [u8]) {
    let mut state = object
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(track)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(0x94D0_49BB_1331_11EB);
    for chunk in out.chunks_mut(WORD) {
        // splitmix64 step
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let w = z.to_le_bytes();
        for (a, b) in chunk.iter_mut().zip(&w) {
            *a ^= *b;
        }
    }
}

/// The [`fingerprint_bytes`] XOR-fold of the synthetic block
/// `(object, track)` of `len` bytes, computed directly from the
/// splitmix64 stream without materializing the block — equal to
/// `Block::synthetic(object, track, len).fingerprint()`.
#[must_use]
pub fn synthetic_fingerprint(object: u64, track: u64, len: usize) -> u64 {
    let mut state = object
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(track)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(0x94D0_49BB_1331_11EB);
    let mut acc = 0u64;
    let mut remaining = len;
    while remaining > 0 {
        // splitmix64 step
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if remaining >= WORD {
            acc ^= z;
            remaining -= WORD;
        } else {
            // Partial final word: only the low `remaining` bytes exist;
            // the fold zero-extends them (same as fingerprint_bytes).
            acc ^= z & ((1u64 << (remaining * 8)) - 1);
            remaining = 0;
        }
    }
    acc
}

/// A track-sized block of data — the paper's unit of disk I/O.
///
/// Blocks substitute for real MPEG track contents: the schemes never
/// interpret the bytes, they only move and XOR them, so deterministic
/// synthetic contents (see [`Block::synthetic`]) exercise exactly the same
/// code paths as video data would.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Block {
    bytes: Box<[u8]>,
}

impl Block {
    /// An all-zero block of `len` bytes (the XOR identity).
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        Block {
            // lint:allow(transitive-alloc): zeroed IS the allocation point; hot callers reach it only to size a mismatched buffer
            bytes: vec![0u8; len].into_boxed_slice(),
        }
    }

    /// A block with deterministic pseudo-random contents derived from an
    /// `(object, track)` pair via a splitmix64-style stream, so any two
    /// distinct addresses produce (overwhelmingly) different contents and
    /// the same address always produces the same bytes.
    #[must_use]
    pub fn synthetic(object: u64, track: u64, len: usize) -> Self {
        let mut bytes = vec![0u8; len].into_boxed_slice();
        fill_synthetic(object, track, &mut bytes);
        Block { bytes }
    }

    /// Wrap existing bytes.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Block {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Wrap an existing boxed buffer without copying (the inverse of
    /// [`Block::into_boxed_bytes`]; used with [`TrackPool`](crate::TrackPool)
    /// buffers).
    #[must_use]
    pub fn from_boxed_bytes(bytes: Box<[u8]>) -> Self {
        Block { bytes }
    }

    /// Unwrap into the underlying buffer without copying, e.g. to check a
    /// scratch block back into a [`TrackPool`](crate::TrackPool).
    #[must_use]
    pub fn into_boxed_bytes(self) -> Box<[u8]> {
        self.bytes
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the block has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw bytes, for callers that refill a
    /// reused block in place (e.g. via [`fill_synthetic`]).
    #[must_use]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Reset every byte to zero (the XOR identity), keeping the storage.
    pub fn zero(&mut self) {
        self.bytes.fill(0);
    }

    /// XOR `other` into `self` in place, word-wise.
    ///
    /// # Panics
    /// Panics if the lengths differ — parity groups are homogeneous by
    /// construction (every member is one track), so a mismatch is a layout
    /// bug, not a runtime condition.
    pub fn xor_assign(&mut self, other: &Block) {
        xor_slices(&mut self.bytes, &other.bytes);
    }

    /// XOR a raw byte slice into `self` in place, word-wise. Same layout
    /// contract (and panic) as [`Block::xor_assign`].
    pub fn xor_assign_bytes(&mut self, other: &[u8]) {
        xor_slices(&mut self.bytes, other);
    }

    /// Whether every byte is zero (true for `a ⊕ a`), checked word-wise.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        slice_is_zero(&self.bytes)
    }

    /// The block's 64-bit XOR-fold (see [`fingerprint_bytes`] for the
    /// guarantees). Equality of track-sized blocks can short-circuit on
    /// this summary: unequal fingerprints prove inequality without a
    /// full byte scan, and the fold is linear under XOR, so parity
    /// fingerprints compose from member fingerprints.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fingerprint_bytes(&self.bytes)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<u8> = self.bytes.iter().copied().take(8).collect();
        write!(f, "Block({} bytes, head={head:02x?})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_distinct() {
        let a1 = Block::synthetic(1, 2, 64);
        let a2 = Block::synthetic(1, 2, 64);
        let b = Block::synthetic(1, 3, 64);
        let c = Block::synthetic(2, 2, 64);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
        assert_ne!(b, c);
    }

    #[test]
    fn fill_synthetic_matches_synthetic() {
        for len in [0usize, 1, 7, 8, 9, 13, 64, 1000] {
            let block = Block::synthetic(7, 11, len);
            let mut buf = vec![0xAAu8; len];
            fill_synthetic(7, 11, &mut buf);
            assert_eq!(block.as_bytes(), &buf[..], "len {len}");
        }
    }

    #[test]
    fn xor_self_is_zero() {
        let a = Block::synthetic(9, 9, 100);
        let mut x = a.clone();
        x.xor_assign(&a);
        assert!(x.is_zero());
    }

    #[test]
    fn xor_zero_is_identity() {
        let a = Block::synthetic(3, 4, 50);
        let mut x = a.clone();
        x.xor_assign(&Block::zeroed(50));
        assert_eq!(x, a);
    }

    #[test]
    fn xor_is_commutative_and_associative() {
        let a = Block::synthetic(1, 0, 33);
        let b = Block::synthetic(1, 1, 33);
        let c = Block::synthetic(1, 2, 33);
        let mut ab_c = a.clone();
        ab_c.xor_assign(&b);
        ab_c.xor_assign(&c);
        let mut cb_a = c.clone();
        cb_a.xor_assign(&b);
        cb_a.xor_assign(&a);
        assert_eq!(ab_c, cb_a);
    }

    #[test]
    fn wordwise_xor_matches_scalar_reference() {
        // Every tail length against a byte-at-a-time reference.
        for len in 0..=40usize {
            let a = Block::synthetic(5, 1, len);
            let b = Block::synthetic(5, 2, len);
            let mut fast = a.clone();
            fast.xor_assign(&b);
            let reference: Vec<u8> = a
                .as_bytes()
                .iter()
                .zip(b.as_bytes())
                .map(|(x, y)| x ^ y)
                .collect();
            assert_eq!(fast.as_bytes(), &reference[..], "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_lengths_panic() {
        let mut a = Block::zeroed(4);
        a.xor_assign(&Block::zeroed(5));
    }

    #[test]
    fn non_multiple_of_eight_lengths_work() {
        let a = Block::synthetic(5, 6, 13);
        assert_eq!(a.len(), 13);
        let mut x = a.clone();
        x.xor_assign(&a);
        assert!(x.is_zero());
    }

    #[test]
    fn is_zero_catches_every_byte_position() {
        for len in 1..=24usize {
            for hot in 0..len {
                let mut b = Block::zeroed(len);
                assert!(b.is_zero());
                b.as_bytes_mut()[hot] = 1;
                assert!(!b.is_zero(), "len {len} hot byte {hot}");
            }
        }
    }

    #[test]
    fn fingerprint_is_linear_under_xor() {
        for len in [8usize, 13, 64, 100] {
            let a = Block::synthetic(1, 7, len);
            let b = Block::synthetic(2, 9, len);
            let mut x = a.clone();
            x.xor_assign(&b);
            assert_eq!(x.fingerprint(), a.fingerprint() ^ b.fingerprint());
        }
        assert_eq!(Block::zeroed(40).fingerprint(), 0);
    }

    #[test]
    fn fingerprint_distinguishes_typical_blocks() {
        let fps: Vec<u64> = (0..64u64)
            .map(|t| Block::synthetic(3, t, 200).fingerprint())
            .collect();
        let mut sorted = fps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), fps.len(), "fingerprint collision");
    }

    #[test]
    fn synthetic_fingerprint_matches_materialized() {
        for len in [0usize, 1, 7, 8, 9, 13, 64, 1000] {
            assert_eq!(
                synthetic_fingerprint(3, 17, len),
                Block::synthetic(3, 17, len).fingerprint(),
                "len {len}"
            );
        }
    }

    #[test]
    fn xor_synthetic_matches_fill_then_xor() {
        for len in [0usize, 1, 7, 8, 9, 29, 64] {
            let mut fused = vec![0x5Cu8; len];
            xor_synthetic(6, 10, &mut fused);
            let mut reference = vec![0x5Cu8; len];
            let mut scratch = vec![0u8; len];
            fill_synthetic(6, 10, &mut scratch);
            xor_slices(&mut reference, &scratch);
            assert_eq!(fused, reference, "len {len}");
        }
    }

    #[test]
    fn boxed_round_trip_preserves_bytes() {
        let a = Block::synthetic(4, 4, 37);
        let raw = a.clone().into_boxed_bytes();
        assert_eq!(Block::from_boxed_bytes(raw), a);
    }

    #[test]
    fn zero_resets_in_place() {
        let mut a = Block::synthetic(8, 8, 24);
        a.zero();
        assert!(a.is_zero());
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn debug_shows_length() {
        let a = Block::zeroed(16);
        assert!(format!("{a:?}").contains("16 bytes"));
    }
}
