//! Track-sized byte buffers with XOR support.

use std::fmt;

/// A track-sized block of data — the paper's unit of disk I/O.
///
/// Blocks substitute for real MPEG track contents: the schemes never
/// interpret the bytes, they only move and XOR them, so deterministic
/// synthetic contents (see [`Block::synthetic`]) exercise exactly the same
/// code paths as video data would.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Block {
    bytes: Box<[u8]>,
}

impl Block {
    /// An all-zero block of `len` bytes (the XOR identity).
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        Block {
            bytes: vec![0u8; len].into_boxed_slice(),
        }
    }

    /// A block with deterministic pseudo-random contents derived from an
    /// `(object, track)` pair via a splitmix64-style stream, so any two
    /// distinct addresses produce (overwhelmingly) different contents and
    /// the same address always produces the same bytes.
    #[must_use]
    pub fn synthetic(object: u64, track: u64, len: usize) -> Self {
        let mut bytes = vec![0u8; len];
        let mut state = object
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(track)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(0x94D0_49BB_1331_11EB);
        for chunk in bytes.chunks_mut(8) {
            // splitmix64 step
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let w = z.to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Block {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Wrap existing bytes.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Block {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the block has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// XOR `other` into `self` in place.
    ///
    /// # Panics
    /// Panics if the lengths differ — parity groups are homogeneous by
    /// construction (every member is one track), so a mismatch is a layout
    /// bug, not a runtime condition.
    pub fn xor_assign(&mut self, other: &Block) {
        assert_eq!(
            self.len(),
            other.len(),
            "parity group members must be the same size"
        );
        // Chunked loop vectorizes well without unsafe.
        for (a, b) in self.bytes.iter_mut().zip(other.bytes.iter()) {
            *a ^= *b;
        }
    }

    /// Whether every byte is zero (true for `a ⊕ a`).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<u8> = self.bytes.iter().copied().take(8).collect();
        write!(f, "Block({} bytes, head={head:02x?})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_distinct() {
        let a1 = Block::synthetic(1, 2, 64);
        let a2 = Block::synthetic(1, 2, 64);
        let b = Block::synthetic(1, 3, 64);
        let c = Block::synthetic(2, 2, 64);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
        assert_ne!(b, c);
    }

    #[test]
    fn xor_self_is_zero() {
        let a = Block::synthetic(9, 9, 100);
        let mut x = a.clone();
        x.xor_assign(&a);
        assert!(x.is_zero());
    }

    #[test]
    fn xor_zero_is_identity() {
        let a = Block::synthetic(3, 4, 50);
        let mut x = a.clone();
        x.xor_assign(&Block::zeroed(50));
        assert_eq!(x, a);
    }

    #[test]
    fn xor_is_commutative_and_associative() {
        let a = Block::synthetic(1, 0, 33);
        let b = Block::synthetic(1, 1, 33);
        let c = Block::synthetic(1, 2, 33);
        let mut ab_c = a.clone();
        ab_c.xor_assign(&b);
        ab_c.xor_assign(&c);
        let mut cb_a = c.clone();
        cb_a.xor_assign(&b);
        cb_a.xor_assign(&a);
        assert_eq!(ab_c, cb_a);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_lengths_panic() {
        let mut a = Block::zeroed(4);
        a.xor_assign(&Block::zeroed(5));
    }

    #[test]
    fn non_multiple_of_eight_lengths_work() {
        let a = Block::synthetic(5, 6, 13);
        assert_eq!(a.len(), 13);
        let mut x = a.clone();
        x.xor_assign(&a);
        assert!(x.is_zero());
    }

    #[test]
    fn debug_shows_length() {
        let a = Block::zeroed(16);
        assert!(format!("{a:?}").contains("16 bytes"));
    }
}
