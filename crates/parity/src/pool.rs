//! Free-list pool of track-sized buffers.
//!
//! The verification and rebuild paths need track-sized scratch space every
//! cycle; allocating it per delivery turns the degraded-mode data path
//! into an allocator benchmark. [`TrackPool`] keeps returned buffers on a
//! free list so a steady-state cycle runs with zero heap traffic: the
//! first few checkouts miss (and allocate), everything after hits.

use crate::block::Block;

/// Running counters describing pool behavior, for telemetry gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the free list (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers currently checked out and not yet returned.
    pub outstanding: u64,
}

impl PoolStats {
    /// Fraction of checkouts served without allocating, in `[0, 1]`.
    /// Returns 1.0 before any checkout (an idle pool has missed nothing).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A free list of `Box<[u8]>` track buffers, checked out and back in per
/// cycle.
///
/// All buffers in one pool share a single size
/// ([`track_bytes`](TrackPool::track_bytes)); checking in a buffer of any
/// other length is a layout bug and panics. Checked-out buffers have
/// **unspecified
/// contents** (recycled buffers keep their previous bytes) — callers
/// either overwrite fully or zero first.
#[derive(Debug)]
pub struct TrackPool {
    track_bytes: usize,
    free: Vec<Box<[u8]>>,
    stats: PoolStats,
}

impl TrackPool {
    /// An empty pool for buffers of `track_bytes` bytes.
    #[must_use]
    pub fn new(track_bytes: usize) -> Self {
        TrackPool {
            track_bytes,
            free: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// A pool pre-warmed with `n` free buffers, so the first `n` checkouts
    /// hit without allocating on the hot path.
    #[must_use]
    pub fn with_capacity(track_bytes: usize, n: usize) -> Self {
        let mut pool = TrackPool::new(track_bytes);
        pool.free
            .extend((0..n).map(|_| vec![0u8; track_bytes].into_boxed_slice()));
        pool
    }

    /// The fixed buffer size this pool serves.
    #[must_use]
    pub fn track_bytes(&self) -> usize {
        self.track_bytes
    }

    /// Number of buffers currently on the free list.
    #[must_use]
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Check a buffer out, reusing a free one when available. Contents are
    /// unspecified.
    #[must_use]
    pub fn check_out(&mut self) -> Box<[u8]> {
        self.stats.outstanding += 1;
        if let Some(buf) = self.free.pop() {
            self.stats.hits += 1;
            buf
        } else {
            self.stats.misses += 1;
            // lint:allow(transitive-alloc): a pool miss grows the pool once; steady state recycles returned tracks
            vec![0u8; self.track_bytes].into_boxed_slice()
        }
    }

    /// Check a buffer out wrapped as a [`Block`] with every byte zeroed
    /// (the XOR identity), ready for parity accumulation.
    #[must_use]
    pub fn check_out_zeroed_block(&mut self) -> Block {
        let mut buf = self.check_out();
        buf.fill(0);
        Block::from_boxed_bytes(buf)
    }

    /// Return a buffer to the free list.
    ///
    /// # Panics
    /// Panics if `buf` is not [`track_bytes`](TrackPool::track_bytes) long
    /// — pools are homogeneous by construction, so a mismatch is a layout
    /// bug.
    pub fn check_in(&mut self, buf: Box<[u8]>) {
        assert_eq!(
            buf.len(),
            self.track_bytes,
            "pool buffers must be the same size"
        );
        self.stats.outstanding = self.stats.outstanding.saturating_sub(1);
        self.free.push(buf);
    }

    /// Return a [`Block`] previously checked out via
    /// [`check_out_zeroed_block`](TrackPool::check_out_zeroed_block).
    pub fn check_in_block(&mut self, block: Block) {
        self.check_in(block.into_boxed_bytes());
    }

    /// Current counters (hits, misses, outstanding).
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_checkout_misses_then_hits() {
        let mut pool = TrackPool::new(64);
        let a = pool.check_out();
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 0,
                misses: 1,
                outstanding: 1
            }
        );
        pool.check_in(a);
        let b = pool.check_out();
        assert_eq!(b.len(), 64);
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 1,
                misses: 1,
                outstanding: 1
            }
        );
    }

    #[test]
    fn prewarmed_pool_never_misses_within_capacity() {
        let mut pool = TrackPool::with_capacity(32, 3);
        let bufs: Vec<_> = (0..3).map(|_| pool.check_out()).collect();
        assert_eq!(pool.stats().misses, 0);
        assert_eq!(pool.stats().hits, 3);
        assert_eq!(pool.stats().outstanding, 3);
        for b in bufs {
            pool.check_in(b);
        }
        assert_eq!(pool.stats().outstanding, 0);
        assert_eq!(pool.free_len(), 3);
    }

    #[test]
    fn zeroed_block_checkout_scrubs_recycled_bytes() {
        let mut pool = TrackPool::new(16);
        let mut buf = pool.check_out();
        buf.fill(0xFF);
        pool.check_in(buf);
        let block = pool.check_out_zeroed_block();
        assert!(block.is_zero());
        pool.check_in_block(block);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn wrong_size_check_in_panics() {
        let mut pool = TrackPool::new(8);
        pool.check_in(vec![0u8; 9].into_boxed_slice());
    }

    #[test]
    fn hit_rate_tracks_reuse() {
        let mut pool = TrackPool::new(8);
        assert_eq!(pool.stats().hit_rate(), 1.0);
        let a = pool.check_out();
        assert_eq!(pool.stats().hit_rate(), 0.0);
        pool.check_in(a);
        let b = pool.check_out();
        pool.check_in(b);
        assert_eq!(pool.stats().hit_rate(), 0.5);
    }
}
