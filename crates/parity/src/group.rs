//! Parity-group identity.

use std::fmt;

/// Identifies one parity group of one object: the `j`-th stripe of object
/// `object`. ("The sequence of parity groups associated with an object are
/// allocated in a round-robin fashion over all of the clusters.")
///
/// Observation 1 of the paper — *one should not mix data blocks of
/// different objects in the same parity group* — is encoded structurally:
/// a group id names exactly one object, so a mixed group is unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParityGroupId {
    /// The object the group belongs to.
    pub object: u64,
    /// The group's ordinal within the object (stripe number).
    pub group: u64,
}

impl ParityGroupId {
    /// Construct a group id.
    #[must_use]
    pub fn new(object: u64, group: u64) -> Self {
        ParityGroupId { object, group }
    }

    /// The next group of the same object.
    #[must_use]
    pub fn next(self) -> Self {
        ParityGroupId {
            object: self.object,
            group: self.group + 1,
        }
    }
}

impl fmt::Display for ParityGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}#g{}", self.object, self.group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_advances_group_only() {
        let g = ParityGroupId::new(3, 7);
        assert_eq!(g.next(), ParityGroupId::new(3, 8));
    }

    #[test]
    fn display_format() {
        assert_eq!(ParityGroupId::new(2, 5).to_string(), "obj2#g5");
    }
}
