//! Block addresses and their physical placements.

use crate::geometry::ClusterId;
use crate::object::ObjectId;
use mms_disk::DiskId;
use std::fmt;

/// The role of a block within its parity group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// The `index`-th data block of the group (`0..C−1`).
    Data(u32),
    /// The parity block.
    Parity,
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockKind::Data(i) => write!(f, "d{i}"),
            BlockKind::Parity => write!(f, "p"),
        }
    }
}

/// Logical address of one block: object, parity-group ordinal, role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockAddr {
    /// Owning object.
    pub object: ObjectId,
    /// Parity-group ordinal within the object.
    pub group: u64,
    /// Role within the group.
    pub kind: BlockKind,
}

impl BlockAddr {
    /// A data block address.
    #[must_use]
    pub fn data(object: ObjectId, group: u64, index: u32) -> Self {
        BlockAddr {
            object,
            group,
            kind: BlockKind::Data(index),
        }
    }

    /// A parity block address.
    #[must_use]
    pub fn parity(object: ObjectId, group: u64) -> Self {
        BlockAddr {
            object,
            group,
            kind: BlockKind::Parity,
        }
    }

    /// The object-global track number of a data block (`group·(C−1) +
    /// index`), or `None` for parity blocks (they are not part of the
    /// delivered byte stream).
    #[must_use]
    pub fn track_number(&self, blocks_per_group: u32) -> Option<u64> {
        match self.kind {
            BlockKind::Data(i) => Some(self.group * u64::from(blocks_per_group) + u64::from(i)),
            BlockKind::Parity => None,
        }
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}#g{}:{}", self.object, self.group, self.kind)
    }
}

/// Physical placement of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// The cluster the block is on.
    pub cluster: ClusterId,
    /// The disk the block is on.
    pub disk: DiskId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_number_of_data_blocks() {
        let a = BlockAddr::data(ObjectId(1), 3, 2);
        assert_eq!(a.track_number(4), Some(14));
        let p = BlockAddr::parity(ObjectId(1), 3);
        assert_eq!(p.track_number(4), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BlockAddr::data(ObjectId(7), 2, 1).to_string(), "obj7#g2:d1");
        assert_eq!(BlockAddr::parity(ObjectId(7), 2).to_string(), "obj7#g2:p");
    }
}
