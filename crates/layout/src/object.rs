//! Media objects (movies) and their bandwidth classes.

use mms_disk::{Bandwidth, Size};
use std::fmt;

/// Identifier of a media object in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Delivery bandwidth class of an object.
///
/// The paper's two running examples: MPEG-2 "about 4.5 megabits per second,
/// i.e., good TV quality" and MPEG-1 "about 1.5 mbps, i.e., low TV
/// quality".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthClass {
    /// ~1.5 Mb/s, low TV quality.
    Mpeg1,
    /// ~4.5 Mb/s, good TV quality.
    Mpeg2,
    /// Any other constant bit rate.
    Custom(Bandwidth),
}

impl BandwidthClass {
    /// The constant delivery rate `b₀` of this class.
    #[must_use]
    pub fn rate(&self) -> Bandwidth {
        match self {
            BandwidthClass::Mpeg1 => Bandwidth::mpeg1(),
            BandwidthClass::Mpeg2 => Bandwidth::mpeg2(),
            BandwidthClass::Custom(b) => *b,
        }
    }
}

/// A continuous-media object stored on the server.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaObject {
    /// Catalog identity.
    pub id: ObjectId,
    /// Human-readable name.
    pub name: String,
    /// Length in tracks (the unit of disk I/O).
    pub tracks: u64,
    /// Delivery bandwidth class.
    pub class: BandwidthClass,
}

impl MediaObject {
    /// Construct an object.
    #[must_use]
    pub fn new(id: ObjectId, name: impl Into<String>, tracks: u64, class: BandwidthClass) -> Self {
        MediaObject {
            id,
            name: name.into(),
            tracks,
            class,
        }
    }

    /// A synthetic movie of the given play length at this class's rate,
    /// with track size `track_size`. A 90-minute MPEG-1 movie at 50 KB
    /// tracks is `90·60 s · 0.1875 MB/s / 0.05 MB = 20 250` tracks.
    #[must_use]
    pub fn movie(
        id: ObjectId,
        name: impl Into<String>,
        minutes: f64,
        class: BandwidthClass,
        track_size: Size,
    ) -> Self {
        let bytes = class.rate() * mms_disk::Time::from_secs(minutes * 60.0);
        let tracks = (bytes / track_size).ceil() as u64;
        MediaObject::new(id, name, tracks, class)
    }

    /// Total stored size.
    #[must_use]
    pub fn size(&self, track_size: Size) -> Size {
        track_size * self.tracks as f64
    }

    /// Playback duration at the object's constant rate.
    #[must_use]
    pub fn duration(&self, track_size: Size) -> mms_disk::Time {
        self.size(track_size) / self.class.rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_classes() {
        assert!((BandwidthClass::Mpeg1.rate().as_megabits() - 1.5).abs() < 1e-9);
        assert!((BandwidthClass::Mpeg2.rate().as_megabits() - 4.5).abs() < 1e-9);
        let c = BandwidthClass::Custom(Bandwidth::from_megabits(8.0));
        assert!((c.rate().as_megabits() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn movie_track_count() {
        let m = MediaObject::movie(
            ObjectId(0),
            "feature",
            90.0,
            BandwidthClass::Mpeg1,
            Size::from_kb(50.0),
        );
        assert_eq!(m.tracks, 20_250);
    }

    #[test]
    fn duration_round_trips() {
        let m = MediaObject::movie(
            ObjectId(1),
            "short",
            10.0,
            BandwidthClass::Mpeg2,
            Size::from_kb(50.0),
        );
        let d = m.duration(Size::from_kb(50.0));
        // Ceil on tracks means duration >= requested.
        assert!(d.as_secs() >= 600.0 - 1e-9);
        assert!(d.as_secs() < 601.0);
    }

    #[test]
    fn size_is_tracks_times_track_size() {
        let m = MediaObject::new(ObjectId(2), "x", 100, BandwidthClass::Mpeg1);
        assert!((m.size(Size::from_kb(50.0)).as_mb() - 5.0).abs() < 1e-9);
    }
}
