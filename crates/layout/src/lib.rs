//! # mms-layout — data layout substrate
//!
//! Implements the data layouts of *Berson, Golubchik & Muntz (SIGMOD
//! 1995)*:
//!
//! * [`ClusteredLayout`] — the layout shared by **Streaming RAID**,
//!   **Staggered-group**, and **Non-clustered** scheduling (the paper:
//!   "the data layout on disk is exactly the same as for Streaming RAID").
//!   Disks are grouped into clusters of `C` drives (`C−1` data + 1
//!   dedicated parity); each object is striped over all data disks with its
//!   parity groups placed round-robin over clusters (Figure 3).
//! * [`ImprovedLayout`] — the **Improved-bandwidth** layout of Section 4:
//!   no dedicated parity disks; the parity for data on cluster `i` is
//!   distributed over the disks of cluster `i+1` (Figure 8), so every disk
//!   delivers data during normal operation.
//!
//! Observation 1 — *never mix blocks of different objects in one parity
//! group* — is structural here: a parity group is addressed by
//! `(object, group)` and its members are computed, so a mixed group cannot
//! be represented.
//!
//! ```
//! use mms_layout::{ClusteredLayout, Geometry, Layout};
//!
//! // 10 disks in clusters of 5 (4 data + 1 parity), as in Figure 3.
//! let geo = Geometry::clustered(10, 5).unwrap();
//! let layout = ClusteredLayout::new(geo);
//! // Object starting at cluster 0: group 1 lives on cluster 1.
//! let p = layout.data_placement(0, 1, 2);
//! assert_eq!(p.cluster.0, 1);
//! assert_eq!(p.disk.0, 7); // disk 2 of cluster 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod clustered;
mod geometry;
mod improved;
pub mod invariants;
mod object;
mod placement;

pub use catalog::{Catalog, CatalogError, PlacedObject};
pub use clustered::ClusteredLayout;
pub use geometry::{ClusterId, Geometry, GeometryError};
pub use improved::ImprovedLayout;
pub use object::{BandwidthClass, MediaObject, ObjectId};
pub use placement::{BlockAddr, BlockKind, Placement};

use mms_disk::DiskId;

/// A data layout: pure placement functions from block addresses to disks.
///
/// `start_cluster` (the paper's `h`) is where the object's group 0 lives;
/// the catalog assigns it per object.
pub trait Layout {
    /// The disk/cluster geometry this layout is defined over.
    fn geometry(&self) -> &Geometry;

    /// Where data block `index` of parity group `group` of an object whose
    /// first group is on `start_cluster` lives.
    ///
    /// `index` must be `< C−1` (blocks per group).
    fn data_placement(&self, start_cluster: u32, group: u64, index: u32) -> Placement;

    /// Where the parity block of a group lives.
    fn parity_placement(&self, start_cluster: u32, group: u64) -> Placement;

    /// The cluster holding the *data* blocks of a group.
    fn data_cluster(&self, start_cluster: u32, group: u64) -> ClusterId;

    /// Data blocks per parity group (`C−1`).
    fn blocks_per_group(&self) -> u32;

    /// All disks touched by one parity group (data disks then parity disk).
    fn group_disks(&self, start_cluster: u32, group: u64) -> Vec<DiskId> {
        let mut v: Vec<DiskId> = (0..self.blocks_per_group())
            .map(|i| self.data_placement(start_cluster, group, i).disk)
            .collect();
        v.push(self.parity_placement(start_cluster, group).disk);
        v
    }
}
