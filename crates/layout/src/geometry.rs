//! Disk/cluster geometry arithmetic.

use mms_disk::DiskId;
use std::fmt;

/// Identifier of a disk cluster, dense from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The id as an index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors constructing a geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// Total disks is not a positive multiple of the cluster width.
    NotDivisible {
        /// Total disk count requested.
        disks: usize,
        /// Disks per cluster requested.
        per_cluster: usize,
    },
    /// The parity-group size is too small (need at least 2: one data block
    /// plus parity, the degenerate mirroring case).
    GroupTooSmall {
        /// The requested group size `C`.
        c: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotDivisible { disks, per_cluster } => write!(
                f,
                "{disks} disks cannot be divided into clusters of {per_cluster}"
            ),
            GeometryError::GroupTooSmall { c } => {
                write!(f, "parity group size {c} < 2")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// How the array is carved into clusters.
///
/// Two variants exist because the improved-bandwidth scheme has no parity
/// disk: for a parity-group size `C`,
///
/// * **clustered** geometry (SR/SG/NC) has clusters of `C` disks —
///   `C−1` data disks followed by one dedicated parity disk;
/// * **improved** geometry has clusters of `C−1` disks, all of which hold
///   data (parity rides on the next cluster's disks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    disks: u32,
    group_size: u32,
    disks_per_cluster: u32,
    has_parity_disk: bool,
}

impl Geometry {
    /// Geometry for the clustered schemes: `disks` drives in clusters of
    /// `c` (the parity-group size, including the parity disk). `disks` must
    /// be a positive multiple of `c`.
    pub fn clustered(disks: usize, c: usize) -> Result<Self, GeometryError> {
        if c < 2 {
            return Err(GeometryError::GroupTooSmall { c });
        }
        if disks == 0 || !disks.is_multiple_of(c) {
            return Err(GeometryError::NotDivisible {
                disks,
                per_cluster: c,
            });
        }
        Ok(Geometry {
            disks: disks as u32,
            group_size: c as u32,
            disks_per_cluster: c as u32,
            has_parity_disk: true,
        })
    }

    /// Geometry for the improved-bandwidth scheme: `disks` drives in
    /// clusters of `c − 1` (all data). There must be at least two clusters,
    /// since parity lives on the *next* cluster.
    pub fn improved(disks: usize, c: usize) -> Result<Self, GeometryError> {
        if c < 2 {
            return Err(GeometryError::GroupTooSmall { c });
        }
        let per = c - 1;
        if disks == 0 || !disks.is_multiple_of(per) || disks / per < 2 {
            return Err(GeometryError::NotDivisible {
                disks,
                per_cluster: per,
            });
        }
        Ok(Geometry {
            disks: disks as u32,
            group_size: c as u32,
            disks_per_cluster: per as u32,
            has_parity_disk: false,
        })
    }

    /// Total drives, the paper's `D`.
    #[must_use]
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// Parity-group size `C` (data blocks + parity block).
    #[must_use]
    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    /// Data blocks per group, `C − 1`.
    #[must_use]
    pub fn data_blocks_per_group(&self) -> u32 {
        self.group_size - 1
    }

    /// Drives per cluster (`C` for clustered, `C − 1` for improved).
    #[must_use]
    pub fn disks_per_cluster(&self) -> u32 {
        self.disks_per_cluster
    }

    /// Number of clusters, the paper's `N_C`.
    #[must_use]
    pub fn clusters(&self) -> u32 {
        self.disks / self.disks_per_cluster
    }

    /// Whether each cluster has a dedicated parity disk.
    #[must_use]
    pub fn has_parity_disk(&self) -> bool {
        self.has_parity_disk
    }

    /// The paper's `D'`: disks from which data is read. Equals `D` for the
    /// improved geometry and `D·(C−1)/C` for clustered ones.
    #[must_use]
    pub fn data_disks(&self) -> u32 {
        if self.has_parity_disk {
            self.clusters() * (self.group_size - 1)
        } else {
            self.disks
        }
    }

    /// The cluster containing a disk.
    #[must_use]
    pub fn cluster_of(&self, disk: DiskId) -> ClusterId {
        debug_assert!(disk.0 < self.disks);
        ClusterId(disk.0 / self.disks_per_cluster)
    }

    /// A disk's index within its cluster.
    #[must_use]
    pub fn position_in_cluster(&self, disk: DiskId) -> u32 {
        debug_assert!(disk.0 < self.disks);
        disk.0 % self.disks_per_cluster
    }

    /// The `pos`-th disk of a cluster.
    #[must_use]
    pub fn disk_at(&self, cluster: ClusterId, pos: u32) -> DiskId {
        debug_assert!(cluster.0 < self.clusters());
        debug_assert!(pos < self.disks_per_cluster);
        DiskId(cluster.0 * self.disks_per_cluster + pos)
    }

    /// All disks of a cluster, in position order.
    #[must_use]
    pub fn cluster_disks(&self, cluster: ClusterId) -> Vec<DiskId> {
        (0..self.disks_per_cluster)
            .map(|p| self.disk_at(cluster, p))
            .collect()
    }

    /// The dedicated parity disk of a cluster (clustered geometry only).
    #[must_use]
    pub fn parity_disk(&self, cluster: ClusterId) -> Option<DiskId> {
        self.has_parity_disk
            .then(|| self.disk_at(cluster, self.disks_per_cluster - 1))
    }

    /// Whether `disk` is a dedicated parity disk.
    #[must_use]
    pub fn is_parity_disk(&self, disk: DiskId) -> bool {
        self.has_parity_disk && self.position_in_cluster(disk) == self.disks_per_cluster - 1
    }

    /// The cluster after `cluster`, wrapping around (used both for
    /// round-robin group placement and for the improved scheme's
    /// "shift to the right").
    #[must_use]
    pub fn next_cluster(&self, cluster: ClusterId) -> ClusterId {
        ClusterId((cluster.0 + 1) % self.clusters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_geometry_figure3() {
        // Figure 3: two clusters of 5 (4 data + parity on disks 4 and 9).
        let g = Geometry::clustered(10, 5).unwrap();
        assert_eq!(g.clusters(), 2);
        assert_eq!(g.data_disks(), 8);
        assert_eq!(g.parity_disk(ClusterId(0)), Some(DiskId(4)));
        assert_eq!(g.parity_disk(ClusterId(1)), Some(DiskId(9)));
        assert!(g.is_parity_disk(DiskId(4)));
        assert!(!g.is_parity_disk(DiskId(3)));
        assert_eq!(g.cluster_of(DiskId(7)), ClusterId(1));
        assert_eq!(g.position_in_cluster(DiskId(7)), 2);
    }

    #[test]
    fn improved_geometry_figure8() {
        // Figure 8: two clusters of 4 disks, parity group size 5.
        let g = Geometry::improved(8, 5).unwrap();
        assert_eq!(g.clusters(), 2);
        assert_eq!(g.disks_per_cluster(), 4);
        assert_eq!(g.data_disks(), 8); // D' = D
        assert_eq!(g.parity_disk(ClusterId(0)), None);
        assert!(!g.is_parity_disk(DiskId(3)));
        assert_eq!(g.cluster_of(DiskId(4)), ClusterId(1));
    }

    #[test]
    fn invalid_geometries_rejected() {
        assert!(matches!(
            Geometry::clustered(11, 5),
            Err(GeometryError::NotDivisible { .. })
        ));
        assert!(matches!(
            Geometry::clustered(10, 1),
            Err(GeometryError::GroupTooSmall { .. })
        ));
        // Improved needs >= 2 clusters.
        assert!(matches!(
            Geometry::improved(4, 5),
            Err(GeometryError::NotDivisible { .. })
        ));
        assert!(Geometry::improved(8, 5).is_ok());
    }

    #[test]
    fn next_cluster_wraps() {
        let g = Geometry::clustered(15, 5).unwrap();
        assert_eq!(g.next_cluster(ClusterId(0)), ClusterId(1));
        assert_eq!(g.next_cluster(ClusterId(2)), ClusterId(0));
    }

    #[test]
    fn cluster_disks_are_contiguous() {
        let g = Geometry::clustered(10, 5).unwrap();
        let d: Vec<u32> = g.cluster_disks(ClusterId(1)).iter().map(|d| d.0).collect();
        assert_eq!(d, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn mirroring_case_c2() {
        // C = 2 "effectively mirroring" — one data disk + one parity disk.
        let g = Geometry::clustered(4, 2).unwrap();
        assert_eq!(g.data_blocks_per_group(), 1);
        assert_eq!(g.clusters(), 2);
    }
}
