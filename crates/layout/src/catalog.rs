//! Object catalog: binds media objects to a layout and tracks occupancy.

use crate::geometry::ClusterId;
use crate::object::{MediaObject, ObjectId};
use crate::placement::{BlockAddr, BlockKind, Placement};
use crate::Layout;
use mms_disk::DiskId;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The object id is already registered.
    Duplicate {
        /// The conflicting id.
        id: ObjectId,
    },
    /// Placing the object would exceed some disk's track capacity.
    Full {
        /// The object that did not fit.
        id: ObjectId,
        /// The first disk that would overflow.
        disk: DiskId,
        /// That disk's capacity in tracks.
        capacity: u64,
    },
    /// The object id is not registered.
    NotFound {
        /// The missing id.
        id: ObjectId,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Duplicate { id } => write!(f, "object {id} already in catalog"),
            CatalogError::Full { id, disk, capacity } => write!(
                f,
                "object {id} does not fit: disk {disk} exceeds {capacity} tracks"
            ),
            CatalogError::NotFound { id } => write!(f, "object {id} not in catalog"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// A registered object together with its placement parameters.
#[derive(Debug, Clone)]
pub struct PlacedObject {
    /// The media object.
    pub object: MediaObject,
    /// The cluster holding the object's first parity group (the paper's
    /// `h`).
    pub start_cluster: u32,
    /// Number of parity groups (`⌈tracks / (C−1)⌉`).
    pub groups: u64,
}

/// The server's object catalog over a specific layout.
///
/// Assigns start clusters round-robin (objects `0, 1, 2, …` start on
/// clusters `0, 1, 2, …` mod `N_C`) — this spreads load and, for the
/// improved layout, produces Figure 8's parity staircase. Tracks per-disk
/// occupancy and rejects objects that would overflow a disk.
#[derive(Debug, Clone)]
pub struct Catalog<L: Layout> {
    layout: L,
    capacity_tracks: u64,
    objects: BTreeMap<ObjectId, PlacedObject>,
    occupancy: Vec<u64>,
    next_start: u32,
}

impl<L: Layout> Catalog<L> {
    /// Create an empty catalog. `capacity_tracks` is each disk's track
    /// capacity (`DiskParams::tracks_per_disk`).
    #[must_use]
    pub fn new(layout: L, capacity_tracks: u64) -> Self {
        let disks = layout.geometry().disks() as usize;
        Catalog {
            layout,
            capacity_tracks,
            objects: BTreeMap::new(),
            occupancy: vec![0; disks],
            next_start: 0,
        }
    }

    /// The layout the catalog places objects on.
    #[must_use]
    pub fn layout(&self) -> &L {
        &self.layout
    }

    /// Number of registered objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Register an object, assigning its start cluster round-robin.
    pub fn add(&mut self, object: MediaObject) -> Result<&PlacedObject, CatalogError> {
        let start = self.next_start;
        let id = object.id;
        self.place(object, start)?;
        self.next_start = (start + 1) % self.layout.geometry().clusters();
        Ok(&self.objects[&id])
    }

    /// Register an object at an explicit start cluster.
    pub fn add_at(
        &mut self,
        object: MediaObject,
        start_cluster: u32,
    ) -> Result<&PlacedObject, CatalogError> {
        let id = object.id;
        self.place(object, start_cluster)?;
        Ok(&self.objects[&id])
    }

    fn place(&mut self, object: MediaObject, start_cluster: u32) -> Result<(), CatalogError> {
        let id = object.id;
        if self.objects.contains_key(&id) {
            return Err(CatalogError::Duplicate { id });
        }
        let bpg = u64::from(self.layout.blocks_per_group());
        let groups = object.tracks.div_ceil(bpg);

        // Dry-run occupancy to find overflow before mutating.
        let mut delta = vec![0u64; self.occupancy.len()];
        for g in 0..groups {
            for i in 0..self.layout.blocks_per_group() {
                let p = self.layout.data_placement(start_cluster, g, i);
                delta[p.disk.index()] += 1;
            }
            let pp = self.layout.parity_placement(start_cluster, g);
            delta[pp.disk.index()] += 1;
        }
        for (d, add) in delta.iter().enumerate() {
            if self.occupancy[d] + add > self.capacity_tracks {
                return Err(CatalogError::Full {
                    id,
                    disk: DiskId(d as u32),
                    capacity: self.capacity_tracks,
                });
            }
        }
        for (occ, add) in self.occupancy.iter_mut().zip(delta) {
            *occ += add;
        }
        let placed = PlacedObject {
            object,
            start_cluster,
            groups,
        };
        self.objects.insert(id, placed);
        Ok(())
    }

    /// Look up a placed object.
    pub fn get(&self, id: ObjectId) -> Result<&PlacedObject, CatalogError> {
        self.objects.get(&id).ok_or(CatalogError::NotFound { id })
    }

    /// Remove an object from the catalog, releasing its disk occupancy —
    /// the paper's purge path: "if the secondary storage capacity is
    /// exhausted when an object … is requested then one or more
    /// disk-resident objects must be purged".
    pub fn remove(&mut self, id: ObjectId) -> Result<PlacedObject, CatalogError> {
        let placed = self
            .objects
            .remove(&id)
            .ok_or(CatalogError::NotFound { id })?;
        for g in 0..placed.groups {
            for i in 0..self.layout.blocks_per_group() {
                let p = self.layout.data_placement(placed.start_cluster, g, i);
                self.occupancy[p.disk.index()] -= 1;
            }
            let pp = self.layout.parity_placement(placed.start_cluster, g);
            self.occupancy[pp.disk.index()] -= 1;
        }
        Ok(placed)
    }

    /// Iterate over all placed objects.
    pub fn iter(&self) -> impl Iterator<Item = &PlacedObject> {
        self.objects.values()
    }

    /// Physical placement of a block of a registered object.
    pub fn placement(&self, addr: BlockAddr) -> Result<Placement, CatalogError> {
        let po = self.get(addr.object)?;
        Ok(match addr.kind {
            BlockKind::Data(i) => self.layout.data_placement(po.start_cluster, addr.group, i),
            BlockKind::Parity => self.layout.parity_placement(po.start_cluster, addr.group),
        })
    }

    /// The cluster holding the data blocks of group `group` of an object.
    pub fn data_cluster(&self, id: ObjectId, group: u64) -> Result<ClusterId, CatalogError> {
        let po = self.get(id)?;
        Ok(self.layout.data_cluster(po.start_cluster, group))
    }

    /// Tracks currently stored on each disk (data + parity), indexed by
    /// `DiskId`.
    #[must_use]
    pub fn occupancy(&self) -> &[u64] {
        &self.occupancy
    }

    /// Every block stored on `disk` (inverse map). Linear in the total
    /// number of blocks; intended for rebuild planning and tests, not hot
    /// paths.
    #[must_use]
    pub fn blocks_on_disk(&self, disk: DiskId) -> Vec<BlockAddr> {
        let mut out = Vec::new();
        for po in self.objects.values() {
            for g in 0..po.groups {
                for i in 0..self.layout.blocks_per_group() {
                    if self.layout.data_placement(po.start_cluster, g, i).disk == disk {
                        out.push(BlockAddr::data(po.object.id, g, i));
                    }
                }
                if self.layout.parity_placement(po.start_cluster, g).disk == disk {
                    out.push(BlockAddr::parity(po.object.id, g));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustered::ClusteredLayout;
    use crate::geometry::Geometry;
    use crate::object::BandwidthClass;

    fn catalog() -> Catalog<ClusteredLayout> {
        let layout = ClusteredLayout::new(Geometry::clustered(10, 5).unwrap());
        Catalog::new(layout, 1_000)
    }

    fn obj(id: u64, tracks: u64) -> MediaObject {
        MediaObject::new(
            ObjectId(id),
            format!("o{id}"),
            tracks,
            BandwidthClass::Mpeg1,
        )
    }

    #[test]
    fn add_assigns_round_robin_start_clusters() {
        let mut c = catalog();
        assert_eq!(c.add(obj(0, 8)).unwrap().start_cluster, 0);
        assert_eq!(c.add(obj(1, 8)).unwrap().start_cluster, 1);
        assert_eq!(c.add(obj(2, 8)).unwrap().start_cluster, 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn groups_are_ceiling_of_tracks_over_c_minus_1() {
        let mut c = catalog();
        assert_eq!(c.add(obj(0, 8)).unwrap().groups, 2);
        assert_eq!(c.add(obj(1, 9)).unwrap().groups, 3);
        assert_eq!(c.add(obj(2, 1)).unwrap().groups, 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = catalog();
        c.add(obj(0, 4)).unwrap();
        assert!(matches!(
            c.add(obj(0, 4)),
            Err(CatalogError::Duplicate { .. })
        ));
    }

    #[test]
    fn occupancy_counts_data_and_parity() {
        let mut c = catalog();
        // 8 tracks = 2 groups on clusters 0 and 1: each data disk of both
        // clusters gets 1 track, each parity disk 1 track.
        c.add(obj(0, 8)).unwrap();
        assert_eq!(c.occupancy(), &[1u64; 10][..]);
    }

    #[test]
    fn capacity_overflow_rejected_atomically() {
        let layout = ClusteredLayout::new(Geometry::clustered(10, 5).unwrap());
        let mut c = Catalog::new(layout, 2);
        c.add(obj(0, 16)).unwrap(); // 4 groups -> 2 per cluster: full
        let before = c.occupancy().to_vec();
        assert!(matches!(c.add(obj(1, 8)), Err(CatalogError::Full { .. })));
        assert_eq!(c.occupancy(), &before[..], "failed add must not mutate");
    }

    #[test]
    fn placement_resolves_through_start_cluster() {
        let mut c = catalog();
        c.add(obj(0, 8)).unwrap(); // start 0
        c.add(obj(1, 8)).unwrap(); // start 1
        let p = c.placement(BlockAddr::data(ObjectId(1), 0, 0)).unwrap();
        assert_eq!(p.cluster, ClusterId(1));
        assert_eq!(p.disk, DiskId(5));
    }

    #[test]
    fn blocks_on_disk_inverse_map() {
        let mut c = catalog();
        c.add(obj(0, 8)).unwrap();
        // Disk 0 holds data block 0 of group 0 (cluster 0 groups: 0, then 2…).
        let blocks = c.blocks_on_disk(DiskId(0));
        assert_eq!(blocks, vec![BlockAddr::data(ObjectId(0), 0, 0)]);
        // Parity disk of cluster 1 holds group 1's parity.
        let blocks = c.blocks_on_disk(DiskId(9));
        assert_eq!(blocks, vec![BlockAddr::parity(ObjectId(0), 1)]);
    }

    #[test]
    fn remove_releases_occupancy() {
        let mut c = catalog();
        c.add(obj(0, 8)).unwrap();
        c.add(obj(1, 8)).unwrap();
        let before: u64 = c.occupancy().iter().sum();
        let placed = c.remove(ObjectId(0)).unwrap();
        assert_eq!(placed.object.id, ObjectId(0));
        let after: u64 = c.occupancy().iter().sum();
        assert_eq!(before - after, 2 * 5); // 2 groups × (4 data + parity)
        assert!(c.get(ObjectId(0)).is_err());
        assert!(c.remove(ObjectId(0)).is_err());
        // The freed space is reusable.
        c.add(obj(2, 8)).unwrap();
    }

    #[test]
    fn missing_object_errors() {
        let c = catalog();
        assert!(matches!(
            c.get(ObjectId(9)),
            Err(CatalogError::NotFound { .. })
        ));
    }
}
