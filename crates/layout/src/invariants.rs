//! Layout invariant checks.
//!
//! These encode the structural properties the paper's arguments rest on;
//! the property tests in `tests/` run them over randomized geometries.

use crate::Layout;

/// Violations detected by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two members of one parity group share a disk — a single disk
    /// failure would then erase two members and defeat the parity.
    SharedDisk {
        /// Start cluster of the offending object.
        start_cluster: u32,
        /// Group ordinal.
        group: u64,
    },
    /// Data blocks of one group span multiple clusters (the schemes assume
    /// a group's data is one cluster-row).
    SplitGroup {
        /// Start cluster of the offending object.
        start_cluster: u32,
        /// Group ordinal.
        group: u64,
    },
    /// Parity placed on a data disk of the same group's cluster in a
    /// layout that promises otherwise.
    ParityCollision {
        /// Start cluster of the offending object.
        start_cluster: u32,
        /// Group ordinal.
        group: u64,
    },
}

/// Check the core invariants of a layout over the first `groups` groups of
/// objects starting at every cluster.
///
/// Verified properties:
/// 1. every member (data + parity) of a group is on a distinct disk;
/// 2. a group's data blocks all live on one cluster;
/// 3. consecutive groups advance clusters round-robin (`h + j mod N_C`).
pub fn check<L: Layout>(layout: &L, groups: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    let geo = layout.geometry();
    for start in 0..geo.clusters() {
        for g in 0..groups {
            let mut disks = layout.group_disks(start, g);
            let n = disks.len();
            disks.sort_unstable();
            disks.dedup();
            if disks.len() != n {
                violations.push(Violation::SharedDisk {
                    start_cluster: start,
                    group: g,
                });
            }
            let dc = layout.data_cluster(start, g);
            let split = (0..layout.blocks_per_group())
                .any(|i| layout.data_placement(start, g, i).cluster != dc);
            if split {
                violations.push(Violation::SplitGroup {
                    start_cluster: start,
                    group: g,
                });
            }
            // Round-robin advance.
            let expect = ((u64::from(start) + g) % u64::from(geo.clusters())) as u32;
            debug_assert_eq!(dc.0, expect);
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustered::ClusteredLayout;
    use crate::geometry::Geometry;
    use crate::improved::ImprovedLayout;

    #[test]
    fn clustered_layouts_are_clean() {
        for (d, c) in [(10, 5), (14, 7), (100, 5), (4, 2)] {
            let l = ClusteredLayout::new(Geometry::clustered(d, c).unwrap());
            assert!(check(&l, 20).is_empty(), "D={d} C={c}");
        }
    }

    #[test]
    fn improved_layouts_are_clean() {
        for (d, c) in [(8, 5), (12, 5), (12, 7), (4, 3)] {
            let l = ImprovedLayout::new(Geometry::improved(d, c).unwrap());
            assert!(check(&l, 20).is_empty(), "D={d} C={c}");
        }
    }

    #[test]
    fn improved_layouts_with_salt_are_clean() {
        let geo = Geometry::improved(12, 5).unwrap();
        for salt in 0..8 {
            let l = ImprovedLayout::with_salt(geo, salt);
            assert!(check(&l, 20).is_empty(), "salt={salt}");
        }
    }
}
