//! The Streaming-RAID layout (shared by SR, SG, and NC scheduling).

use crate::geometry::{ClusterId, Geometry};
use crate::placement::Placement;
use crate::Layout;

/// The clustered layout of the paper's Figure 3.
///
/// "For fault tolerance, disks are grouped into fixed sized clusters of `C`
/// disks each with one parity disk and `C − 1` data disks. … Each object is
/// striped over all the data disks. The sequence of parity groups
/// associated with an object are allocated in a round-robin fashion over
/// all of the clusters; so, for example, if the first parity group for an
/// object is located on cluster `h`, then the `j`-th parity group for that
/// object is located on cluster `h + j mod N_C`."
///
/// Within a cluster, data block `i` of a group sits on the cluster's
/// `i`-th data disk and the parity block on the dedicated parity disk —
/// exactly the columns of Figure 3.
#[derive(Debug, Clone, Copy)]
pub struct ClusteredLayout {
    geometry: Geometry,
}

impl ClusteredLayout {
    /// Build over a clustered geometry.
    ///
    /// # Panics
    /// Panics if the geometry lacks dedicated parity disks (i.e. was built
    /// with [`Geometry::improved`]).
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        assert!(
            geometry.has_parity_disk(),
            "ClusteredLayout requires a clustered geometry"
        );
        ClusteredLayout { geometry }
    }
}

impl Layout for ClusteredLayout {
    fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    fn data_placement(&self, start_cluster: u32, group: u64, index: u32) -> Placement {
        debug_assert!(index < self.blocks_per_group());
        let cluster = self.data_cluster(start_cluster, group);
        Placement {
            cluster,
            disk: self.geometry.disk_at(cluster, index),
        }
    }

    fn parity_placement(&self, start_cluster: u32, group: u64) -> Placement {
        let cluster = self.data_cluster(start_cluster, group);
        let disk = self
            .geometry
            .parity_disk(cluster)
            .expect("clustered geometry has a parity disk");
        Placement { cluster, disk }
    }

    fn data_cluster(&self, start_cluster: u32, group: u64) -> ClusterId {
        let nc = u64::from(self.geometry.clusters());
        ClusterId(((u64::from(start_cluster) + group) % nc) as u32)
    }

    fn blocks_per_group(&self) -> u32 {
        self.geometry.data_blocks_per_group()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_disk::DiskId;

    fn layout() -> ClusteredLayout {
        ClusteredLayout::new(Geometry::clustered(10, 5).unwrap())
    }

    #[test]
    fn figure3_group0_on_cluster0() {
        // Figure 3: X0..X3 on disks 0..3, X0p on disk 4.
        let l = layout();
        for i in 0..4 {
            let p = l.data_placement(0, 0, i);
            assert_eq!(p.cluster, ClusterId(0));
            assert_eq!(p.disk, DiskId(i));
        }
        let pp = l.parity_placement(0, 0);
        assert_eq!(pp.disk, DiskId(4));
    }

    #[test]
    fn figure3_group1_on_cluster1() {
        // Figure 3: X4..X7 on disks 5..8, X4p on disk 9.
        let l = layout();
        for i in 0..4 {
            let p = l.data_placement(0, 1, i);
            assert_eq!(p.cluster, ClusterId(1));
            assert_eq!(p.disk, DiskId(5 + i));
        }
        assert_eq!(l.parity_placement(0, 1).disk, DiskId(9));
    }

    #[test]
    fn round_robin_wraps_over_clusters() {
        let l = layout();
        // Group 2 of an object starting at cluster 0 is back on cluster 0.
        assert_eq!(l.data_cluster(0, 2), ClusterId(0));
        // Start cluster offsets shift the whole sequence.
        assert_eq!(l.data_cluster(1, 0), ClusterId(1));
        assert_eq!(l.data_cluster(1, 1), ClusterId(0));
    }

    #[test]
    fn group_disks_are_distinct_and_in_one_cluster() {
        let l = layout();
        let disks = l.group_disks(1, 5);
        assert_eq!(disks.len(), 5);
        let mut sorted = disks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "all group members on distinct disks");
        let c = l.geometry().cluster_of(disks[0]);
        assert!(disks.iter().all(|&d| l.geometry().cluster_of(d) == c));
    }

    #[test]
    #[should_panic(expected = "clustered geometry")]
    fn rejects_improved_geometry() {
        let _ = ClusteredLayout::new(Geometry::improved(8, 5).unwrap());
    }
}
