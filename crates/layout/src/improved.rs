//! The Improved-bandwidth layout (Section 4, Figure 8).

use crate::geometry::{ClusterId, Geometry};
use crate::placement::Placement;
use crate::Layout;

/// The improved-bandwidth layout: "Instead of having dedicated parity
/// disks, which are only used for reading in case of failure, we can
/// intermix data and parity information on disks … distribute the parity
/// information associated with data on disk cluster `i` over the disks of
/// disk cluster `i + 1`."
///
/// Clusters here are `C − 1` disks wide (all data): a parity group's
/// `C − 1` data blocks occupy one whole cluster row and its parity block
/// sits on a disk of the *next* cluster. In Figure 8, `X0–X3` sit on disks
/// 0–3 (cluster 0) and `X0p` on disk 4 (cluster 1); `Y0p` on disk 5, `Z0p`
/// on disk 6 — parity is rotated across the next cluster's disks so no
/// single disk absorbs all of a cluster's parity load. We rotate by
/// `start_cluster + group` (objects start on different clusters, so both
/// coordinates spread the load); the figure's `X/Y/Z` pattern corresponds
/// to consecutive objects mapping to consecutive parity positions, which
/// this rotation reproduces when start clusters are assigned round-robin.
///
/// The consequence the paper highlights: "certain disks belong to two
/// parity groups; for instance, disk 4 in Figure 8 belongs to two different
/// parity groups because it acts as the parity disk for cluster 0 and as a
/// data disk for cluster 1" — which is why a failure in each of two
/// *adjacent* clusters loses data (see `mms-reliability`).
#[derive(Debug, Clone, Copy)]
pub struct ImprovedLayout {
    geometry: Geometry,
    /// Extra rotation so different objects' parity lands on different
    /// disks of the next cluster (see struct docs).
    parity_salt: u32,
}

impl ImprovedLayout {
    /// Build over an improved geometry.
    ///
    /// # Panics
    /// Panics if the geometry has dedicated parity disks.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        assert!(
            !geometry.has_parity_disk(),
            "ImprovedLayout requires an improved geometry"
        );
        ImprovedLayout {
            geometry,
            parity_salt: 0,
        }
    }

    /// Build with a per-object salt that further rotates parity placement
    /// within the next cluster (the catalog passes the object id so that
    /// objects sharing a start cluster do not stack parity on one disk —
    /// the `X0p/Y0p/Z0p` staircase of Figure 8).
    #[must_use]
    pub fn with_salt(geometry: Geometry, salt: u32) -> Self {
        let mut l = ImprovedLayout::new(geometry);
        l.parity_salt = salt;
        l
    }
}

impl Layout for ImprovedLayout {
    fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    fn data_placement(&self, start_cluster: u32, group: u64, index: u32) -> Placement {
        debug_assert!(index < self.blocks_per_group());
        let cluster = self.data_cluster(start_cluster, group);
        Placement {
            cluster,
            disk: self.geometry.disk_at(cluster, index),
        }
    }

    fn parity_placement(&self, start_cluster: u32, group: u64) -> Placement {
        let data_cluster = self.data_cluster(start_cluster, group);
        let cluster = self.geometry.next_cluster(data_cluster);
        let width = u64::from(self.geometry.disks_per_cluster());
        let pos = (group + u64::from(self.parity_salt)) % width;
        Placement {
            cluster,
            disk: self.geometry.disk_at(cluster, pos as u32),
        }
    }

    fn data_cluster(&self, start_cluster: u32, group: u64) -> ClusterId {
        let nc = u64::from(self.geometry.clusters());
        ClusterId(((u64::from(start_cluster) + group) % nc) as u32)
    }

    fn blocks_per_group(&self) -> u32 {
        self.geometry.data_blocks_per_group()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_disk::DiskId;

    fn layout() -> ImprovedLayout {
        ImprovedLayout::new(Geometry::improved(8, 5).unwrap())
    }

    #[test]
    fn figure8_data_row() {
        // X0..X3 on disks 0..3 (cluster 0).
        let l = layout();
        for i in 0..4 {
            let p = l.data_placement(0, 0, i);
            assert_eq!(p.cluster, ClusterId(0));
            assert_eq!(p.disk, DiskId(i));
        }
    }

    #[test]
    fn figure8_parity_on_next_cluster() {
        // X0p lands on cluster 1 (disk 4 with salt 0).
        let l = layout();
        let p = l.parity_placement(0, 0);
        assert_eq!(p.cluster, ClusterId(1));
        assert_eq!(p.disk, DiskId(4));
        // Group 1's data is on cluster 1; its parity wraps to cluster 0.
        let p1 = l.parity_placement(0, 1);
        assert_eq!(p1.cluster, ClusterId(0));
        assert_eq!(p1.disk, DiskId(1)); // rotated by group ordinal
    }

    #[test]
    fn salt_staircases_parity_across_objects() {
        // Objects X, Y, Z (salts 0, 1, 2) starting at cluster 0: their
        // group-0 parity lands on disks 4, 5, 6 — Figure 8's staircase.
        let geo = Geometry::improved(8, 5).unwrap();
        for salt in 0..3u32 {
            let l = ImprovedLayout::with_salt(geo, salt);
            assert_eq!(l.parity_placement(0, 0).disk, DiskId(4 + salt));
        }
    }

    #[test]
    fn parity_never_on_data_cluster() {
        let l = layout();
        for start in 0..2 {
            for group in 0..10 {
                let dc = l.data_cluster(start, group);
                let pc = l.parity_placement(start, group).cluster;
                assert_ne!(dc, pc, "start {start} group {group}");
                assert_eq!(pc, l.geometry().next_cluster(dc));
            }
        }
    }

    #[test]
    fn group_disks_are_distinct() {
        let l = layout();
        for group in 0..8 {
            let mut disks = l.group_disks(0, group);
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "improved geometry")]
    fn rejects_clustered_geometry() {
        let _ = ImprovedLayout::new(Geometry::clustered(10, 5).unwrap());
    }
}
