//! Property tests over randomized geometries: layout bijectivity, group
//! disjointness, and Observation-1 structure.

use mms_disk::DiskId;
use mms_layout::{
    invariants, BandwidthClass, Catalog, ClusteredLayout, Geometry, ImprovedLayout, Layout,
    MediaObject, ObjectId,
};
use proptest::prelude::*;

fn arb_clustered() -> impl Strategy<Value = (usize, usize)> {
    // C in 2..=10, clusters in 1..=8 -> D = C * clusters.
    (2usize..=10, 1usize..=8).prop_map(|(c, n)| (c * n, c))
}

fn arb_improved() -> impl Strategy<Value = (usize, usize)> {
    // C in 2..=10, clusters in 2..=8 -> D = (C-1) * clusters.
    (2usize..=10, 2usize..=8).prop_map(|(c, n)| ((c - 1) * n, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All invariants hold for any clustered geometry.
    #[test]
    fn clustered_invariants((d, c) in arb_clustered()) {
        let layout = ClusteredLayout::new(Geometry::clustered(d, c).unwrap());
        prop_assert!(invariants::check(&layout, 32).is_empty());
    }

    /// All invariants hold for any improved geometry and salt.
    #[test]
    fn improved_invariants((d, c) in arb_improved(), salt in 0u32..16) {
        let layout = ImprovedLayout::with_salt(Geometry::improved(d, c).unwrap(), salt);
        prop_assert!(invariants::check(&layout, 32).is_empty());
    }

    /// Every stored block appears on exactly one disk, and the union of
    /// per-disk inverse maps is exactly the set of placed blocks.
    #[test]
    fn catalog_inverse_map_is_a_partition(
        (d, c) in arb_clustered(),
        tracks in 1u64..60,
        start in 0u32..8,
    ) {
        let geo = Geometry::clustered(d, c).unwrap();
        let start = start % geo.clusters();
        let layout = ClusteredLayout::new(geo);
        let mut cat = Catalog::new(layout, 10_000);
        let obj = MediaObject::new(ObjectId(1), "x", tracks, BandwidthClass::Mpeg1);
        let groups = cat.add_at(obj, start).unwrap().groups;

        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for disk in 0..d as u32 {
            for addr in cat.blocks_on_disk(DiskId(disk)) {
                prop_assert!(seen.insert(addr), "block {addr} on two disks");
                total += 1;
            }
        }
        // Each group contributes C-1 data blocks + 1 parity block.
        prop_assert_eq!(total as u64, groups * c as u64);
        // Occupancy agrees with the inverse map.
        let occ_total: u64 = cat.occupancy().iter().sum();
        prop_assert_eq!(occ_total, groups * c as u64);
    }

    /// Observation 1 structurally: the disks of groups of two different
    /// objects may overlap, but any single parity group touches C distinct
    /// disks in a single cluster-row (clustered) or a row plus one
    /// next-cluster disk (improved).
    #[test]
    fn improved_parity_always_on_successor_cluster(
        (d, c) in arb_improved(),
        group in 0u64..64,
        start in 0u32..8,
    ) {
        let geo = Geometry::improved(d, c).unwrap();
        let start = start % geo.clusters();
        let layout = ImprovedLayout::new(geo);
        let dc = layout.data_cluster(start, group);
        let pc = layout.parity_placement(start, group).cluster;
        prop_assert_eq!(pc, geo.next_cluster(dc));
    }

    /// Track numbers enumerate the object contiguously: group-major,
    /// index-minor.
    #[test]
    fn track_numbers_are_dense((d, c) in arb_clustered(), groups in 1u64..10) {
        let geo = Geometry::clustered(d, c).unwrap();
        let layout = ClusteredLayout::new(geo);
        let bpg = layout.blocks_per_group();
        let mut tracks = Vec::new();
        for g in 0..groups {
            for i in 0..bpg {
                let addr = mms_layout::BlockAddr::data(ObjectId(0), g, i);
                tracks.push(addr.track_number(bpg).unwrap());
            }
        }
        let expect: Vec<u64> = (0..groups * u64::from(bpg)).collect();
        prop_assert_eq!(tracks, expect);
    }
}
