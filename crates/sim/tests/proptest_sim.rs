//! Property tests for the simulation substrate: failure schedules,
//! workload distributions, and the rebuild manager.

use mms_disk::{DiskId, ReliabilityParams, Time};
use mms_layout::ObjectId;
use mms_sim::{
    FailureEvent, FailureSchedule, Rebuild, RebuildManager, RebuildSource, WorkloadGen, Zipf,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stochastic schedules drain in cycle order, alternate fail/repair
    /// per disk, and never emit events past the horizon.
    #[test]
    fn stochastic_schedules_are_well_formed(
        seed in any::<u64>(),
        d in 1usize..20,
        horizon in 10u64..5_000,
        accel in 1.0e4f64..1.0e7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = FailureSchedule::stochastic(
            &mut rng,
            d,
            ReliabilityParams::paper(),
            Time::from_secs(1.0),
            horizon,
            accel,
        );
        let mut last_cycle = 0u64;
        let mut down: std::collections::HashSet<DiskId> = std::collections::HashSet::new();
        for cycle in 0..horizon {
            for e in s.due(cycle) {
                prop_assert!(e.cycle() >= last_cycle);
                prop_assert!(e.cycle() < horizon);
                last_cycle = e.cycle();
                match e {
                    FailureEvent::Fail { disk, .. } => {
                        prop_assert!(down.insert(disk), "double failure of {disk}");
                    }
                    FailureEvent::Repair { disk, .. } => {
                        prop_assert!(down.remove(&disk), "repair of healthy {disk}");
                    }
                }
            }
        }
        prop_assert_eq!(s.remaining(), 0);
    }

    /// Zipf CDFs are proper distributions and θ orders head mass.
    #[test]
    fn zipf_head_mass_increases_with_theta(
        n in 2usize..200,
        theta_lo in 0.0f64..0.8,
        bump in 0.2f64..1.5,
        seed in any::<u64>(),
    ) {
        let lo = Zipf::new(n, theta_lo);
        let hi = Zipf::new(n, theta_lo + bump);
        let trials = 4000;
        let head = n.div_ceil(4).max(1);
        let count = |z: &Zipf, s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            (0..trials).filter(|_| z.sample(&mut rng) < head).count()
        };
        let c_lo = count(&lo, seed);
        let c_hi = count(&hi, seed.wrapping_add(1));
        // Higher theta concentrates mass on low ranks; allow sampling
        // noise of a few standard deviations.
        prop_assert!(c_hi + 200 >= c_lo, "lo {c_lo} hi {c_hi}");
    }

    /// Workload arrivals have the Poisson mean and never panic for any
    /// rate in a sane range.
    #[test]
    fn workload_arrival_mean(rate in 0.0f64..6.0, seed in any::<u64>()) {
        let gen = WorkloadGen::new(vec![ObjectId(0)], 0.271, rate);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 3000u32;
        let total: usize = (0..n).map(|_| gen.arrivals(&mut rng)).sum();
        let mean = total as f64 / f64::from(n);
        // SE = sqrt(rate / n); allow 6 sigma + epsilon.
        let tol = 6.0 * (rate / f64::from(n)).sqrt() + 0.02;
        prop_assert!((mean - rate).abs() < tol, "mean {mean} vs rate {rate}");
    }

    /// Rebuild progress is conserved: total spent reads equal
    /// sources × rebuilt tracks, and completion is exact.
    #[test]
    fn rebuild_conserves_work(
        total in 1u64..500,
        sources in 1usize..8,
        idle in 1usize..10,
    ) {
        let src: Vec<DiskId> = (0..sources as u32).map(DiskId).collect();
        let mut mgr = RebuildManager::new();
        mgr.start(Rebuild {
            disk: DiskId(99),
            total_tracks: total,
            done_tracks: 0,
            source: RebuildSource::Parity { sources: src },
        });
        let mut spent = 0usize;
        let mut cycles = 0u64;
        loop {
            let finished = mgr.advance(|_| idle, |_, n| spent += n);
            cycles += 1;
            if !finished.is_empty() {
                break;
            }
            prop_assert!(cycles < total + 2, "stuck");
        }
        prop_assert_eq!(spent as u64, total * sources as u64);
        prop_assert_eq!(cycles, total.div_ceil(idle as u64));
    }
}
