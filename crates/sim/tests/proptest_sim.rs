//! Property tests for the simulation substrate: failure schedules,
//! workload distributions, the rebuild manager, and the block oracle.

use mms_disk::{DiskId, ReliabilityParams, Time};
use mms_layout::{BlockAddr, ObjectId};
use mms_sim::{
    BlockOracle, FailureEvent, FailureSchedule, Rebuild, RebuildManager, RebuildSource,
    WorkloadGen, Zipf,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stochastic schedules drain in cycle order, alternate fail/repair
    /// per disk, and never emit events past the horizon.
    #[test]
    fn stochastic_schedules_are_well_formed(
        seed in any::<u64>(),
        d in 1usize..20,
        horizon in 10u64..5_000,
        accel in 1.0e4f64..1.0e7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = FailureSchedule::stochastic(
            &mut rng,
            d,
            ReliabilityParams::paper(),
            Time::from_secs(1.0),
            horizon,
            accel,
        );
        let mut last_cycle = 0u64;
        let mut down: std::collections::HashSet<DiskId> = std::collections::HashSet::new();
        for cycle in 0..horizon {
            for e in s.due(cycle) {
                prop_assert!(e.cycle() >= last_cycle);
                prop_assert!(e.cycle() < horizon);
                last_cycle = e.cycle();
                match e {
                    FailureEvent::Fail { disk, .. } => {
                        prop_assert!(down.insert(disk), "double failure of {disk}");
                    }
                    FailureEvent::Repair { disk, .. } => {
                        prop_assert!(down.remove(&disk), "repair of healthy {disk}");
                    }
                }
            }
        }
        prop_assert_eq!(s.remaining(), 0);
    }

    /// Zipf CDFs are proper distributions and θ orders head mass.
    #[test]
    fn zipf_head_mass_increases_with_theta(
        n in 2usize..200,
        theta_lo in 0.0f64..0.8,
        bump in 0.2f64..1.5,
        seed in any::<u64>(),
    ) {
        let lo = Zipf::new(n, theta_lo);
        let hi = Zipf::new(n, theta_lo + bump);
        let trials = 4000;
        let head = n.div_ceil(4).max(1);
        let count = |z: &Zipf, s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            (0..trials).filter(|_| z.sample(&mut rng) < head).count()
        };
        let c_lo = count(&lo, seed);
        let c_hi = count(&hi, seed.wrapping_add(1));
        // Higher theta concentrates mass on low ranks; allow sampling
        // noise of a few standard deviations.
        prop_assert!(c_hi + 200 >= c_lo, "lo {c_lo} hi {c_hi}");
    }

    /// The Zipf CDF stays a proper distribution under extreme skew:
    /// monotone non-decreasing, every prefix in (0, 1], and terminating
    /// at exactly 1 — so inversion sampling can never index out of
    /// range, even at θ far beyond the paper's 0.271 fit.
    #[test]
    fn zipf_cdf_is_monotone_and_in_range_under_extreme_theta(
        n in 1usize..500,
        theta in 0.0f64..12.0,
        seed in any::<u64>(),
    ) {
        let z = Zipf::new(n, theta);
        let cdf = z.cdf();
        prop_assert_eq!(cdf.len(), n);
        let mut prev = 0.0f64;
        for (i, &c) in cdf.iter().enumerate() {
            prop_assert!(c.is_finite(), "cdf[{i}] not finite at theta {theta}");
            prop_assert!(c > 0.0 && c <= 1.0, "cdf[{i}] = {c} out of (0, 1]");
            prop_assert!(c >= prev, "cdf[{i}] = {c} < cdf[{}] = {prev}", i - 1);
            prev = c;
        }
        prop_assert!((cdf[n - 1] - 1.0).abs() < 1e-9, "cdf ends at {prev}");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Workload arrivals have the Poisson mean and never panic for any
    /// rate in a sane range.
    #[test]
    fn workload_arrival_mean(rate in 0.0f64..6.0, seed in any::<u64>()) {
        let gen = WorkloadGen::new(vec![ObjectId(0)], 0.271, rate);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 3000u32;
        let total: usize = (0..n).map(|_| gen.arrivals(&mut rng)).sum();
        let mean = total as f64 / f64::from(n);
        // SE = sqrt(rate / n); allow 6 sigma + epsilon.
        let tol = 6.0 * (rate / f64::from(n)).sqrt() + 0.02;
        prop_assert!((mean - rate).abs() < tol, "mean {mean} vs rate {rate}");
    }

    /// Rebuild progress is conserved: total spent reads equal
    /// sources × rebuilt tracks, and completion is exact.
    #[test]
    fn rebuild_conserves_work(
        total in 1u64..500,
        sources in 1usize..8,
        idle in 1usize..10,
    ) {
        let src: Vec<DiskId> = (0..sources as u32).map(DiskId).collect();
        let mut mgr = RebuildManager::new();
        mgr.start(Rebuild {
            disk: DiskId(99),
            total_tracks: total,
            done_tracks: 0,
            source: RebuildSource::Parity { sources: src },
        });
        let mut spent = 0usize;
        let mut cycles = 0u64;
        loop {
            let finished = mgr.advance(|_| idle, |_, n| spent += n);
            cycles += 1;
            if !finished.is_empty() {
                break;
            }
            prop_assert!(cycles < total + 2, "stuck");
        }
        prop_assert_eq!(spent as u64, total * sources as u64);
        prop_assert_eq!(cycles, total.div_ceil(idle as u64));
    }

    /// The oracle's group accounting, parity coding, and degraded-mode
    /// reconstruction agree when the track count is **not** a multiple of
    /// C−1: `tracks = full·(C−1) + rem` with `0 < rem < C−1` always ends
    /// in a partial final group (`rem = 1` is the 1-block group), and on
    /// that group the materializing path (`parity_block`,
    /// `reconstruct_and_check`), the streaming path (`parity_into`,
    /// `write_data_block_into`, `verify_delivery`), and the memoized
    /// fingerprints must all describe the same bytes.
    #[test]
    fn oracle_paths_agree_on_partial_final_groups(
        bpg in 2u32..8,
        full_groups in 0u64..20,
        rem in 1u64..7,
        track_bytes in 16usize..96,
    ) {
        let rem = rem.min(u64::from(bpg) - 1);
        let tracks = full_groups * u64::from(bpg) + rem;
        let object = ObjectId(3);
        let mut oracle =
            BlockOracle::new(BTreeMap::from([(object, tracks)]), bpg, track_bytes);

        let last = tracks.div_ceil(u64::from(bpg)) - 1;
        prop_assert_eq!(oracle.blocks_in_group(object, last), rem as u32);
        prop_assert_eq!(oracle.blocks_in_group(object, last + 1), 0);

        for group in 0..=last {
            let blocks = oracle.blocks_in_group(object, group);
            let expected = if group == last { rem as u32 } else { bpg };
            prop_assert_eq!(blocks, expected, "group {} of {}", group, tracks);

            // Materializing and streaming parity agree byte for byte,
            // and the memoized fingerprint matches both.
            let parity = oracle.parity_block(object, group);
            let mut streamed = mms_parity::Block::zeroed(track_bytes);
            oracle.parity_into(object, group, &mut streamed);
            prop_assert_eq!(&streamed, &parity);
            prop_assert_eq!(oracle.parity_fingerprint(object, group), parity.fingerprint());

            for ix in 0..blocks {
                let stored = oracle.data_block(object, group, ix);
                let mut written = vec![0u8; track_bytes];
                oracle.write_data_block_into(object, group, ix, &mut written);
                prop_assert_eq!(written.as_slice(), stored.as_bytes());

                let rebuilt = oracle.reconstruct_and_check(object, group, ix);
                prop_assert_eq!(&rebuilt, &stored);

                oracle.verify_delivery(BlockAddr::data(object, group, ix), true);
                oracle.verify_delivery(BlockAddr::data(object, group, ix), false);
            }
            oracle.verify_delivery(BlockAddr::parity(object, group), false);
        }
    }
}
