//! Batch scenario execution over the deterministic worker pool.
//!
//! The ablation studies and design drills run the same simulation over a
//! grid of configurations — independent jobs whose outputs are compared
//! by position in the grid. [`run_batch`] fans such a grid out across
//! [`mms_exec`]'s scoped worker pool; [`run_batch_seeded`] additionally
//! hands each job its own [`StdRng`] pre-split from one caller seed, so
//! stochastic batches are reproducible at any thread count.

use mms_exec::{par_map_indexed_min, Parallelism, SeedSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch jobs are whole simulations — expensive enough that the pool
/// pays for itself from two jobs up, unlike the tiny analytic jobs the
/// default [`mms_exec::SMALL_BATCH_THRESHOLD`] guards against.
const MIN_BATCH_JOBS: usize = 2;

/// Run `job` over every input, returning results in input order.
///
/// Results are a pure function of `inputs` — never of thread count or
/// scheduling — so `run_batch(Parallelism::Auto, …)` can replace a
/// sequential loop in any experiment without changing its output.
pub fn run_batch<I, T, F>(par: Parallelism, inputs: &[I], job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed_min(par, inputs.len(), MIN_BATCH_JOBS, |i| job(&inputs[i]))
}

/// Like [`run_batch`], but each job also receives a private RNG.
///
/// One base seed is drawn from `rng` (advancing it exactly one `u64`);
/// job `i` gets an [`StdRng`] seeded from the derived per-index stream,
/// so its randomness depends only on `(base, i)` — bit-identical results
/// for every [`Parallelism`].
pub fn run_batch_seeded<R, I, T, F>(par: Parallelism, rng: &mut R, inputs: &[I], job: F) -> Vec<T>
where
    R: Rng + ?Sized,
    I: Sync,
    T: Send,
    F: Fn(&I, StdRng) -> T + Sync,
{
    let seeds = SeedSequence::from_rng(rng);
    par_map_indexed_min(par, inputs.len(), MIN_BATCH_JOBS, |i| {
        job(&inputs[i], StdRng::seed_from_u64(seeds.seed(i as u64)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_keeps_input_order() {
        let inputs: Vec<u64> = (0..50).collect();
        let out = run_batch(Parallelism::threads(4), &inputs, |&x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_batch_is_thread_count_invariant() {
        let inputs: Vec<u32> = (0..24).collect();
        let run = |par| {
            let mut rng = StdRng::seed_from_u64(77);
            run_batch_seeded(par, &mut rng, &inputs, |&x, mut job_rng| {
                (0..x).map(|_| job_rng.gen::<u64>() >> 32).sum::<u64>()
            })
        };
        let seq = run(Parallelism::Sequential);
        assert_eq!(seq, run(Parallelism::threads(2)));
        assert_eq!(seq, run(Parallelism::threads(8)));
    }
}
