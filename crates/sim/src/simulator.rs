//! The cycle-driven simulator.

use crate::failure::{FailureEvent, FailureSchedule};
use crate::metrics::{CycleReport, Metrics};
use crate::rebuild::{Rebuild, RebuildManager, RebuildSource};
use crate::verify::BlockOracle;
use crate::workload::{SessionEngine, WorkloadGen};
use mms_disk::{DiskArray, DiskError, DiskParams, Time};
use mms_layout::ObjectId;
use mms_sched::{AdmissionError, CyclePlan, PlanStability, SchemeScheduler, StreamId};
use mms_telemetry::{counter, event, gauge, span, Level};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Whether track contents are materialized and verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Materialize synthetic bytes and verify every delivery, rebuilding
    /// reconstructed blocks through the XOR codec. Catches any scheduler
    /// bug that would deliver the wrong block.
    Verified {
        /// Bytes per track in the synthetic universe (real tracks are
        /// 50 KB; smaller values keep long runs fast without changing
        /// the logic exercised).
        track_bytes: usize,
    },
    /// Skip content; simulate scheduling and disk occupancy only.
    MetadataOnly,
}

/// How the [`Simulator`] run drivers advance simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Execute every cycle with a full [`Simulator::step`].
    #[default]
    CycleByCycle,
    /// Fast-forward provably quiescent stretches in closed form (see
    /// [`Simulator::advance_quiescent`]), stepping cycle by cycle
    /// everywhere else. Observably identical to
    /// [`StepMode::CycleByCycle`]: metrics, per-disk statistics, hiccup
    /// counts, session statistics, and the caller's RNG stream all
    /// match bit for bit; only per-cycle telemetry probes are collapsed
    /// to stretch boundaries (and `Debug`-level collection disables the
    /// fast path entirely, so traces stay complete).
    EventHorizon,
}

/// One probed disk charge: replaying the journal once re-applies one
/// plan rotation's worth of reads in the exact order a per-cycle run
/// would have issued them.
#[derive(Debug, Clone, Copy)]
struct ProbeCharge {
    disk: mms_disk::DiskId,
    tracks: usize,
    time: Time,
}

/// Scalar metric snapshot taken before a probe rotation, to measure the
/// per-rotation deltas and to prove the rotation stayed quiescent.
#[derive(Debug, Clone, Copy)]
struct MetricSnap {
    tracks_read: u64,
    delivered: u64,
    reconstructed: u64,
    verified: u64,
    hiccups_failed_disk: u64,
    hiccups_displaced: u64,
    hiccups_mid_cycle: u64,
    service_degradations: u64,
    streams_finished: u64,
    catastrophes: u64,
    rebuild_reads: u64,
    rebuilds_completed: u64,
}

impl MetricSnap {
    fn of(m: &Metrics) -> Self {
        MetricSnap {
            tracks_read: m.tracks_read,
            delivered: m.delivered,
            reconstructed: m.reconstructed,
            verified: m.verified,
            hiccups_failed_disk: m.hiccups_failed_disk,
            hiccups_displaced: m.hiccups_displaced,
            hiccups_mid_cycle: m.hiccups_mid_cycle,
            service_degradations: m.service_degradations,
            streams_finished: m.streams_finished,
            catastrophes: m.catastrophes,
            rebuild_reads: m.rebuild_reads,
            rebuilds_completed: m.rebuilds_completed,
        }
    }
}

/// Object lengths registry, used by the oracle and end detection.
#[derive(Debug, Clone, Default)]
pub struct ObjectDirectory {
    tracks: BTreeMap<ObjectId, u64>,
    blocks_per_group: u32,
}

impl ObjectDirectory {
    /// Build from `(object, track-count)` pairs and the layout's
    /// blocks-per-group.
    #[must_use]
    pub fn new(entries: impl IntoIterator<Item = (ObjectId, u64)>, blocks_per_group: u32) -> Self {
        ObjectDirectory {
            tracks: entries.into_iter().collect(),
            blocks_per_group,
        }
    }

    /// The raw map.
    #[must_use]
    pub fn tracks(&self) -> &BTreeMap<ObjectId, u64> {
        &self.tracks
    }
}

/// Simulation errors: a scheduler planned something the hardware cannot
/// do (these are bugs surfaced by the simulator, not recoverable runtime
/// conditions — which is exactly why the simulator exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A planned read failed at the disk layer (down disk / overload).
    Disk(DiskError),
    /// An admission was rejected.
    Admission(AdmissionError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Disk(e) => write!(f, "disk error: {e}"),
            SimError::Admission(e) => write!(f, "admission error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<DiskError> for SimError {
    fn from(e: DiskError) -> Self {
        SimError::Disk(e)
    }
}

/// Drives a scheme scheduler against a real disk array, cycle by cycle.
#[derive(Debug)]
pub struct Simulator<S: SchemeScheduler> {
    scheduler: S,
    disks: DiskArray,
    oracle: Option<BlockOracle>,
    failures: FailureSchedule,
    metrics: Metrics,
    rebuilds: RebuildManager,
    cycle: u64,
    /// Plans retained for trace rendering (bounded).
    trace: Vec<CyclePlan>,
    trace_limit: usize,
    /// Reused cycle-plan storage: reset and refilled every step, so the
    /// steady-state loop rebuilds no per-cycle containers.
    plan: CyclePlan,
    /// Reused per-disk load table for the rebuild idle-slot computation,
    /// sorted by disk id (a Vec reuses its capacity across cycles where a
    /// `BTreeMap` would free and reallocate its nodes every clear+extend).
    loads: Vec<(mms_disk::DiskId, usize)>,
    /// Reused scratch for the rebuild reads issued this cycle.
    rebuild_reads: Vec<(mms_disk::DiskId, usize)>,
    /// How the run drivers advance time.
    step_mode: StepMode,
    /// Disk charges captured while probing a plan rotation (reused).
    probe_journal: Vec<ProbeCharge>,
    /// End-of-cycle buffer occupancy pattern from the probe (reused).
    probe_buffer: Vec<usize>,
    /// Whether [`step`](Self::step) is journaling its disk charges.
    probe_recording: bool,
}

impl<S: SchemeScheduler> Simulator<S> {
    /// Build a simulator over `disk_count` drives of `disk_params`.
    #[must_use]
    pub fn new(
        scheduler: S,
        disk_params: DiskParams,
        disk_count: usize,
        mode: DataMode,
        directory: ObjectDirectory,
    ) -> Self {
        let oracle = match mode {
            DataMode::Verified { track_bytes } => Some(BlockOracle::new(
                directory.tracks.clone(),
                directory.blocks_per_group,
                track_bytes,
            )),
            DataMode::MetadataOnly => None,
        };
        Simulator {
            scheduler,
            disks: DiskArray::new(disk_count, disk_params),
            oracle,
            failures: FailureSchedule::none(),
            metrics: Metrics::default(),
            rebuilds: RebuildManager::new(),
            cycle: 0,
            trace: Vec::new(),
            trace_limit: 0,
            plan: CyclePlan::empty(0),
            loads: Vec::new(),
            rebuild_reads: Vec::new(),
            step_mode: StepMode::default(),
            probe_journal: Vec::new(),
            probe_buffer: Vec::new(),
            probe_recording: false,
        }
    }

    /// Choose how the run drivers ([`run`](Self::run),
    /// [`run_with_workload`](Self::run_with_workload),
    /// [`run_sessions`](Self::run_sessions)) advance time. Default:
    /// [`StepMode::CycleByCycle`].
    pub fn set_step_mode(&mut self, mode: StepMode) {
        self.step_mode = mode;
    }

    /// The configured step mode.
    #[must_use]
    pub fn step_mode(&self) -> StepMode {
        self.step_mode
    }

    /// Install a failure/repair schedule.
    pub fn set_failures(&mut self, failures: FailureSchedule) {
        self.failures = failures;
    }

    /// Queue one more failure/repair event on the installed schedule
    /// (an event dated at or before the current cycle fires on the next
    /// [`step`](Self::step)).
    pub fn push_failure(&mut self, event: FailureEvent) {
        self.failures.push(event);
    }

    /// Retain up to `n` cycle plans for trace rendering.
    pub fn keep_trace(&mut self, n: usize) {
        self.trace_limit = n;
    }

    /// The retained plans.
    #[must_use]
    pub fn trace(&self) -> &[CyclePlan] {
        &self.trace
    }

    /// The scheduler (for scheme-specific inspection).
    #[must_use]
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// The disk array.
    #[must_use]
    pub fn disks(&self) -> &DiskArray {
        &self.disks
    }

    /// Cumulative metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The current (next-unplanned) cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Admit a stream for `object` starting at the next cycle.
    ///
    /// Emits an `Info` "admit" event carrying the stream id, so a flight
    /// recording can anchor the stream's causal timeline (admit →
    /// deliveries → hiccups → release).
    pub fn admit(&mut self, object: ObjectId) -> Result<StreamId, AdmissionError> {
        let stream = self.scheduler.admit(object, self.cycle)?;
        event!(
            Level::Info,
            "admit",
            cycle = self.cycle,
            stream = stream.0,
            object = object.0,
            scheme = self.scheduler.scheme().abbrev(),
        );
        Ok(stream)
    }

    /// Fail a disk effective at the next cycle, returning the
    /// scheduler's failure report.
    pub fn fail_disk_now(
        &mut self,
        disk: mms_disk::DiskId,
        mid_cycle: bool,
    ) -> Result<mms_sched::FailureReport, SimError> {
        let now = Time::from_secs(self.scheduler.config().t_cyc().as_secs() * self.cycle as f64);
        self.disks.fail(disk, now)?;
        // lint:allow(transitive-alloc): failure handling runs once per injected disk fault, not per cycle
        let report = self.scheduler.on_disk_failure(disk, self.cycle, mid_cycle);
        if report.catastrophic {
            self.metrics.catastrophes += 1;
        }
        self.metrics.service_degradations += report.dropped_streams.len() as u64;
        Ok(report)
    }

    /// Repair a disk effective at the next cycle.
    pub fn repair_disk_now(&mut self, disk: mms_disk::DiskId) -> Result<(), SimError> {
        self.disks.repair(disk)?;
        self.scheduler.on_disk_repair(disk, self.cycle);
        Ok(())
    }

    /// Begin rebuilding a failed disk onto a spare. The disk transitions
    /// to `Rebuilding`; each cycle the rebuild consumes the slots the
    /// delivery schedule leaves idle (parity source) or a fixed tape
    /// rate (tertiary source), and on completion the disk returns to
    /// service and the scheduler leaves degraded mode.
    pub fn start_rebuild(
        &mut self,
        disk: mms_disk::DiskId,
        total_tracks: u64,
        source: RebuildSource,
    ) -> Result<(), SimError> {
        self.disks.disk_mut(disk)?.start_rebuild(Time::from_secs(
            self.scheduler.config().t_cyc().as_secs() * self.cycle as f64,
        ))?;
        self.rebuilds.start(Rebuild {
            disk,
            total_tracks,
            done_tracks: 0,
            source,
        });
        event!(
            Level::Info,
            "rebuild_started",
            cycle = self.cycle,
            disk = disk.0,
            total_tracks = total_tracks,
        );
        Ok(())
    }

    /// In-progress rebuilds.
    #[must_use]
    pub fn rebuilds(&self) -> &RebuildManager {
        &self.rebuilds
    }

    /// Mutable access to the scheduler, paired with the verification
    /// oracle so callers changing the catalog (register/retire objects)
    /// can keep the ground truth in sync.
    pub fn scheduler_and_oracle(&mut self) -> (&mut S, Option<&mut BlockOracle>) {
        (&mut self.scheduler, self.oracle.as_mut())
    }

    /// Simulate one cycle.
    ///
    /// With a telemetry collector installed (see `mms_telemetry`), each
    /// step opens a `Debug` "cycle" span enclosing "plan" / "read" /
    /// "verify" / "deliver" phase spans, emits a `Warn` "hiccup" event
    /// per missed delivery, and keeps `sim.*` counters and gauges in
    /// lock-step with the returned [`Metrics`].
    pub fn step(&mut self) -> Result<CycleReport, SimError> {
        let cycle = self.cycle;
        self.cycle += 1;
        let scheme = self.scheduler.scheme().abbrev();
        let _cycle_span = span!(Level::Debug, "cycle", cycle = cycle, scheme = scheme);

        // 1. Apply failure/repair events due now, drained one at a time
        //    so the steady-state loop allocates no per-cycle event list.
        while let Some(event) = self.failures.next_due(cycle) {
            match event {
                FailureEvent::Fail {
                    disk, mid_cycle, ..
                } => {
                    // Simulated wall time of the failure.
                    let now =
                        Time::from_secs(self.scheduler.config().t_cyc().as_secs() * cycle as f64);
                    self.disks.fail(disk, now)?;
                    // lint:allow(transitive-alloc): failure handling runs once per disk failure, not per cycle
                    let report = self.scheduler.on_disk_failure(disk, cycle, mid_cycle);
                    if report.catastrophic {
                        self.metrics.catastrophes += 1;
                    }
                    for _ in &report.dropped_streams {
                        self.metrics.service_degradations += 1;
                    }
                }
                FailureEvent::Repair { disk, .. } => {
                    self.disks.repair(disk)?;
                    self.scheduler.on_disk_repair(disk, cycle);
                }
            }
        }

        // 2. Plan and execute the cycle, refilling the reused plan.
        let t_cyc = self.scheduler.config().t_cyc();
        {
            let _s = span!(Level::Debug, "plan", cycle = cycle);
            self.scheduler.plan_cycle_into(cycle, &mut self.plan);
        }
        let mut report = CycleReport {
            cycle,
            ..CycleReport::default()
        };
        {
            let _s = span!(Level::Debug, "read", cycle = cycle);
            for (&disk, reads) in &self.plan.reads {
                if reads.is_empty() {
                    continue;
                }
                let t = self.disks.disk_mut(disk)?.read_tracks(reads.len(), t_cyc)?;
                self.metrics.disk_busy += t;
                report.tracks_read += reads.len();
                if self.probe_recording {
                    self.probe_journal.push(ProbeCharge {
                        disk,
                        tracks: reads.len(),
                        time: t,
                    });
                }
            }
        }

        // 3. Verify deliveries against ground truth through the pooled
        //    zero-allocation oracle path.
        {
            let _s = span!(Level::Debug, "verify", cycle = cycle);
            for d in &self.plan.deliveries {
                report.delivered += 1;
                if d.reconstructed {
                    report.reconstructed += 1;
                }
                if let Some(oracle) = self.oracle.as_mut() {
                    oracle.verify_delivery(d.addr, d.reconstructed);
                    self.metrics.verified += 1;
                    counter!("sim.verified", 1, scheme = scheme);
                }
            }
            // Scratch-pool health, for Trace-level diagnostics only:
            // metric macros are not level-gated, so the guard keeps
            // default-level JSONL byte-identical with or without pooling.
            if mms_telemetry::enabled(Level::Trace) {
                if let Some(oracle) = &self.oracle {
                    let stats = oracle.pool_stats();
                    gauge!("pool.hit_rate", stats.hit_rate(), scheme = scheme);
                    gauge!("pool.hits", stats.hits as f64, scheme = scheme);
                    gauge!("pool.misses", stats.misses as f64, scheme = scheme);
                    gauge!(
                        "pool.outstanding",
                        stats.outstanding as f64,
                        scheme = scheme
                    );
                }
            }
        }

        // 3b. Advance rebuilds with the slots the schedule left idle.
        let slots = {
            let p = self.disks.disk(mms_disk::DiskId(0))?.params();
            p.slots_per_cycle(t_cyc)
        };
        self.loads.clear();
        // `plan.reads` is a BTreeMap, so this extend yields entries in
        // ascending disk order — the binary search below relies on it.
        self.loads
            .extend(self.plan.reads.iter().map(|(&d, v)| (d, v.len())));
        self.rebuild_reads.clear();
        let disks_view = &self.disks;
        let loads_view = &self.loads;
        let rebuild_reads = &mut self.rebuild_reads;
        let finished_rebuilds = self.rebuilds.advance(
            |d| {
                if disks_view.is_operational(d) {
                    let load = loads_view
                        .binary_search_by_key(&d, |&(disk, _)| disk)
                        .map_or(0, |ix| loads_view[ix].1);
                    slots.saturating_sub(load)
                } else {
                    0
                }
            },
            |d, n| rebuild_reads.push((d, n)),
        );
        let mut cycle_rebuild_reads = 0u64;
        for &(d, n) in self.rebuild_reads.iter() {
            let t = self.disks.disk_mut(d)?.read_tracks(n, t_cyc)?;
            self.metrics.disk_busy += t;
            self.metrics.rebuild_reads += n as u64;
            cycle_rebuild_reads += n as u64;
            counter!("rebuild.idle_slots_spent", n as u64, disk = d.0);
        }
        for d in finished_rebuilds {
            let done = self.disks.disk_mut(d)?.advance_rebuild(1.0)?;
            debug_assert!(done, "rebuild completion restores the disk");
            self.scheduler.on_disk_repair(d, cycle);
            self.metrics.rebuilds_completed += 1;
        }
        for r in self.rebuilds.active() {
            gauge!("rebuild.progress", r.progress(), disk = r.disk.0);
        }

        // 4. Account hiccups and completions.
        {
            let _s = span!(Level::Debug, "deliver", cycle = cycle);
            for h in &self.plan.hiccups {
                report.hiccups += 1;
                self.metrics.count_hiccup(h.reason);
                event!(
                    Level::Warn,
                    "hiccup",
                    cycle = cycle,
                    stream = h.stream.0,
                    reason = h.reason.as_str()
                );
                counter!(
                    "sim.hiccups",
                    1,
                    scheme = scheme,
                    reason = h.reason.as_str()
                );
            }
            report.finished = self.plan.finished.len();
            self.metrics.streams_finished += self.plan.finished.len() as u64;
            report.buffer_in_use = self.scheduler.buffer_in_use();
        }

        self.metrics.cycles += 1;
        self.metrics.tracks_read += report.tracks_read as u64;
        self.metrics.delivered += report.delivered as u64;
        self.metrics.reconstructed += report.reconstructed as u64;
        counter!("sim.cycles", 1, scheme = scheme);
        counter!(
            "sim.tracks_read",
            report.tracks_read as u64,
            scheme = scheme
        );
        counter!("sim.delivered", report.delivered as u64, scheme = scheme);
        counter!(
            "sim.reconstructed",
            report.reconstructed as u64,
            scheme = scheme
        );
        counter!("sim.rebuild_reads", cycle_rebuild_reads, scheme = scheme);
        gauge!(
            "sim.buffer_in_use",
            report.buffer_in_use as f64,
            scheme = scheme
        );
        self.metrics.buffer_peak = self
            .metrics
            .buffer_peak
            .max(self.scheduler.buffer_high_water());
        self.metrics.buffer_series.push(report.buffer_in_use);

        if self.trace.len() < self.trace_limit {
            // Trace retention is a debugging path; the clone is the one
            // place a retained plan still allocates.
            // lint:allow(transitive-alloc): trace retention is off unless trace_limit > 0 and bounded by it
            self.trace.push(self.plan.clone());
        }
        Ok(report)
    }

    /// Fast-forward a provably quiescent stretch, ending no later than
    /// `limit`. Returns how many cycles were advanced (0 = nothing was
    /// provably quiescent; the caller should [`step`](Self::step)).
    ///
    /// The scheduler reports via
    /// [`plan_stability`](SchemeScheduler::plan_stability) how many
    /// future cycles its plan is a pure function of the cycle index
    /// (only when fully healthy — degraded stretches always step cycle
    /// by cycle). One full plan rotation is then *probed* with real
    /// [`step`](Self::step)s while journaling every disk charge; if the
    /// probe stayed quiescent (plan epoch unchanged, no finishes,
    /// hiccups, or rebuild activity), each remaining whole rotation in
    /// the stretch is applied in closed form: the journal is replayed
    /// per rotation (bit-for-bit identical float accumulation into
    /// `disk_busy` and the per-disk stats), integer metrics advance by
    /// the probed per-rotation deltas, the buffer series replays the
    /// probed occupancy pattern, and the scheduler bulk-advances with
    /// [`fast_forward`](SchemeScheduler::fast_forward).
    ///
    /// The stretch never crosses the next scheduled failure/repair
    /// event, and the fast path disables itself whenever a per-cycle
    /// observer is active: plan-trace retention, `Debug`-level
    /// telemetry, or an in-progress rebuild. Telemetry for skipped
    /// rotations is aggregated into the same `sim.*` counters at the
    /// stretch boundary; in Verified mode the probe rotation verifies
    /// every delivery and `verified` is extrapolated for the skipped
    /// repetitions of the identical plan.
    pub fn advance_quiescent(&mut self, limit: u64) -> Result<u64, SimError> {
        if self.trace_limit > 0
            || mms_telemetry::enabled(Level::Debug)
            || !self.rebuilds.active().is_empty()
        {
            return Ok(0);
        }
        let start = self.cycle;
        let mut horizon = limit;
        if let Some(due) = self.failures.peek() {
            if due <= start {
                return Ok(0);
            }
            horizon = horizon.min(due);
        }
        if horizon <= start {
            return Ok(0);
        }
        let PlanStability { period, stable } = self.scheduler.plan_stability(start);
        if period == 0 || stable == 0 {
            return Ok(0);
        }
        let end = horizon.min(start.saturating_add(stable));
        let span = end - start;
        // One rotation is probed for real; at least one more must be
        // skippable for the closed form to pay for itself.
        if span < 2 * period {
            return Ok(0);
        }

        let epoch = self.scheduler.plan_epoch();
        let snap = MetricSnap::of(&self.metrics);
        self.probe_journal.clear();
        self.probe_buffer.clear();
        self.probe_recording = true;
        for _ in 0..period {
            match self.step() {
                Ok(report) => self.probe_buffer.push(report.buffer_in_use),
                Err(e) => {
                    self.probe_recording = false;
                    return Err(e);
                }
            }
        }
        self.probe_recording = false;

        // Validate the probe stayed quiescent. If anything moved, the
        // probed cycles still ran for real, so the probe itself is the
        // (correct) progress and the caller resumes per-cycle stepping.
        // `reconstructed` must be flat too: right after a repair, groups
        // that were *read* degraded still drain from stream buffers with
        // their reconstruction flag set, and that residue decays from
        // rotation to rotation — extrapolating it would overcount. A
        // truly steady healthy rotation reconstructs nothing.
        let quiet = self.scheduler.plan_epoch() == epoch
            && self.rebuilds.active().is_empty()
            && self.metrics.reconstructed == snap.reconstructed
            && self.metrics.streams_finished == snap.streams_finished
            && self.metrics.catastrophes == snap.catastrophes
            && self.metrics.service_degradations == snap.service_degradations
            && self.metrics.hiccups_failed_disk == snap.hiccups_failed_disk
            && self.metrics.hiccups_displaced == snap.hiccups_displaced
            && self.metrics.hiccups_mid_cycle == snap.hiccups_mid_cycle
            && self.metrics.rebuild_reads == snap.rebuild_reads
            && self.metrics.rebuilds_completed == snap.rebuilds_completed;
        if !quiet {
            return Ok(period);
        }
        let reps = (span - period) / period;
        if reps == 0 {
            return Ok(period);
        }
        let skipped = reps * period;

        // Replay the probed charges once per skipped rotation: repeated
        // addition of the identical f64 service times reproduces the
        // exact accumulation order of per-cycle stepping, so
        // `disk_busy` and the per-disk stats land bit-for-bit where a
        // real run would put them; the buffer series replays the probed
        // end-of-cycle occupancy pattern.
        for _ in 0..reps {
            for charge in &self.probe_journal {
                self.disks
                    .disk_mut(charge.disk)?
                    .replay_read(charge.tracks, charge.time);
                self.metrics.disk_busy += charge.time;
            }
            for &occupancy in &self.probe_buffer {
                self.metrics.buffer_series.push(occupancy);
            }
        }
        let d_tracks = self.metrics.tracks_read - snap.tracks_read;
        let d_delivered = self.metrics.delivered - snap.delivered;
        let d_reconstructed = self.metrics.reconstructed - snap.reconstructed;
        let d_verified = self.metrics.verified - snap.verified;
        self.metrics.cycles += skipped;
        self.metrics.tracks_read += reps * d_tracks;
        self.metrics.delivered += reps * d_delivered;
        self.metrics.reconstructed += reps * d_reconstructed;
        self.metrics.verified += reps * d_verified;
        self.scheduler.fast_forward(skipped);
        self.cycle += skipped;

        // Aggregate the skipped rotations' telemetry at the boundary.
        let scheme = self.scheduler.scheme().abbrev();
        counter!("sim.cycles", skipped, scheme = scheme);
        counter!("sim.tracks_read", reps * d_tracks, scheme = scheme);
        counter!("sim.delivered", reps * d_delivered, scheme = scheme);
        counter!("sim.reconstructed", reps * d_reconstructed, scheme = scheme);
        counter!("sim.verified", reps * d_verified, scheme = scheme);
        gauge!(
            "sim.buffer_in_use",
            self.probe_buffer.last().copied().unwrap_or(0) as f64,
            scheme = scheme
        );
        event!(
            Level::Info,
            "fast_forward",
            from = start,
            cycles = period + skipped,
            period = period,
            scheme = scheme
        );
        Ok(period + skipped)
    }

    /// Simulate `cycles` cycles.
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        let end = self.cycle + cycles;
        while self.cycle < end {
            if self.step_mode == StepMode::EventHorizon && self.advance_quiescent(end)? > 0 {
                continue;
            }
            self.step()?;
        }
        Ok(())
    }

    /// Simulate `cycles` cycles with Poisson arrivals from `workload`;
    /// capacity rejections are counted, not fatal.
    ///
    /// Arrival counts are sampled in strict cycle order — one Poisson
    /// draw per cycle — whichever [`StepMode`] is configured, so the
    /// RNG stream (and therefore every admitted object) is identical
    /// across modes; in event-horizon mode the draws for upcoming
    /// cycles happen eagerly so arrival-free stretches can be skipped.
    pub fn run_with_workload<R: Rng + ?Sized>(
        &mut self,
        cycles: u64,
        workload: &WorkloadGen,
        rng: &mut R,
    ) -> Result<u64, SimError> {
        let end = self.cycle + cycles;
        let mut rejected = 0u64;
        // The one pre-drawn nonzero batch, and the watermark below which
        // every cycle's count has already been drawn (zero unless held in
        // `presampled`). The watermark keeps a stalled fast path — stepping
        // per-cycle through an already-scanned stretch — from drawing a
        // cycle's Poisson count a second time, which would fork the RNG
        // stream away from a cycle-by-cycle run.
        let mut presampled: Option<(u64, usize)> = None;
        let mut sampled_through = self.cycle;
        while self.cycle < end {
            let cycle = self.cycle;
            let arrivals = match presampled {
                Some((due, n)) if due == cycle => {
                    presampled = None;
                    n
                }
                Some(_) => 0,
                None if cycle < sampled_through => 0,
                None => {
                    sampled_through = cycle + 1;
                    workload.arrivals(rng)
                }
            };
            for _ in 0..arrivals {
                let object = workload.pick(rng);
                if self.admit(object).is_err() {
                    rejected += 1;
                }
            }
            self.step()?;
            if self.step_mode == StepMode::EventHorizon {
                if presampled.is_none() {
                    let mut next = self.cycle.max(sampled_through);
                    while next < end {
                        sampled_through = next + 1;
                        let n = workload.arrivals(rng);
                        if n > 0 {
                            presampled = Some((next, n));
                            break;
                        }
                        next += 1;
                    }
                }
                let target = presampled.map_or(end, |(due, _)| due);
                while self.cycle < target && self.advance_quiescent(target)? > 0 {}
            }
        }
        Ok(rejected)
    }

    /// End a stream early (viewer stopped watching). The scheduler
    /// drains what the stream already buffered and retires it at the
    /// next delivery boundary; returns `false` if the stream is not
    /// active (already finished or never admitted).
    pub fn release(&mut self, id: StreamId) -> bool {
        let released = self.scheduler.release(id);
        if released {
            event!(Level::Info, "release", cycle = self.cycle, stream = id.0);
        }
        released
    }

    /// Simulate `cycles` cycles under a [`SessionEngine`]: each cycle
    /// the engine fires due session releases, admits queued viewers
    /// into freed slots, offers new arrivals under its admission
    /// policy, and then the cycle runs as in [`step`](Self::step).
    /// Session counters and wait percentiles accumulate in
    /// [`SessionEngine::stats`]; memory stays O(active + queued
    /// sessions) no matter how long the run.
    /// In [`StepMode::EventHorizon`] the engine's
    /// [`next_event_before`](SessionEngine::next_event_before) bounds
    /// each quiescent stretch at the next session event (release due,
    /// queued viewer aging, or pre-sampled arrival), so session
    /// statistics and the RNG stream match per-cycle runs exactly.
    pub fn run_sessions<R: Rng + ?Sized>(
        &mut self,
        cycles: u64,
        engine: &mut SessionEngine,
        rng: &mut R,
    ) -> Result<(), SimError> {
        let end = self.cycle + cycles;
        while self.cycle < end {
            engine.tick(self.cycle, &mut self.scheduler, rng);
            self.step()?;
            if self.step_mode == StepMode::EventHorizon {
                while self.cycle < end {
                    let next = engine.next_event_before(self.cycle, end, rng);
                    if next <= self.cycle || self.advance_quiescent(next)? == 0 {
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_disk::{Bandwidth, DiskId};
    use mms_layout::{BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject};
    use mms_sched::{CycleConfig, StreamingRaidScheduler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(disks: usize, c: usize, tracks: u64) -> Simulator<StreamingRaidScheduler> {
        let geo = Geometry::clustered(disks, c).unwrap();
        let layout = ClusteredLayout::new(geo);
        let mut catalog = Catalog::new(layout, 1_000_000);
        catalog
            .add(MediaObject::new(
                ObjectId(0),
                "movie",
                tracks,
                BandwidthClass::Mpeg1,
            ))
            .unwrap();
        let dir = ObjectDirectory::new([(ObjectId(0), tracks)], (c - 1) as u32);
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            c - 1,
            c - 1,
        );
        let sched = StreamingRaidScheduler::new(cfg, catalog);
        Simulator::new(
            sched,
            DiskParams::paper_table1(),
            disks,
            DataMode::Verified { track_bytes: 256 },
            dir,
        )
    }

    #[test]
    fn clean_run_delivers_and_verifies_everything() {
        let mut sim = build(10, 5, 16);
        sim.admit(ObjectId(0)).unwrap();
        sim.run(6).unwrap();
        let m = sim.metrics();
        assert_eq!(m.delivered, 16);
        assert_eq!(m.verified, 16);
        assert_eq!(m.total_hiccups(), 0);
        assert_eq!(m.streams_finished, 1);
        // 4 groups × 5 tracks read (4 data + parity).
        assert_eq!(m.tracks_read, 20);
        assert!(m.utilization(sim.scheduler().config().t_cyc(), 10) > 0.0);
    }

    #[test]
    fn failure_is_masked_and_reconstructions_verified() {
        let mut sim = build(10, 5, 40);
        sim.admit(ObjectId(0)).unwrap();
        sim.set_failures(FailureSchedule::fail_at(2, DiskId(1)));
        sim.run(12).unwrap();
        let m = sim.metrics();
        assert_eq!(m.delivered, 40);
        assert_eq!(m.total_hiccups(), 0);
        // Disk 1 is in cluster 0, hit every other group from cycle 2 on.
        assert!(m.reconstructed >= 4, "{}", m.reconstructed);
        assert_eq!(m.verified, 40);
        assert_eq!(m.catastrophes, 0);
    }

    #[test]
    fn repair_stops_reconstruction() {
        let mut sim = build(10, 5, 40);
        sim.admit(ObjectId(0)).unwrap();
        sim.set_failures(FailureSchedule::fail_and_repair(2, 4, DiskId(0)));
        sim.run(12).unwrap();
        let m = sim.metrics();
        assert_eq!(m.delivered, 40);
        // Only the cluster-0 groups read during cycles 2..4 reconstruct.
        assert!(m.reconstructed <= 2, "{}", m.reconstructed);
    }

    #[test]
    fn double_failure_counts_catastrophe_and_hiccups() {
        let mut sim = build(10, 5, 16);
        sim.admit(ObjectId(0)).unwrap();
        sim.set_failures(FailureSchedule::new(vec![
            FailureEvent::Fail {
                cycle: 0,
                disk: DiskId(0),
                mid_cycle: false,
            },
            FailureEvent::Fail {
                cycle: 0,
                disk: DiskId(2),
                mid_cycle: false,
            },
        ]));
        sim.run(6).unwrap();
        let m = sim.metrics();
        assert_eq!(m.catastrophes, 1);
        // Two blocks lost per cluster-0 group (groups 0 and 2).
        assert_eq!(m.hiccups_failed_disk, 4);
        assert_eq!(m.delivered, 12);
    }

    #[test]
    fn workload_driver_admits_and_runs() {
        let mut sim = build(10, 5, 8);
        let workload = WorkloadGen::new(vec![ObjectId(0)], 0.0, 0.8);
        let mut rng = StdRng::seed_from_u64(11);
        let rejected = sim.run_with_workload(50, &workload, &mut rng).unwrap();
        let m = sim.metrics();
        assert!(m.streams_finished > 5);
        assert_eq!(m.total_hiccups(), 0);
        assert_eq!(m.delivered, m.verified);
        // Capacity is large; nothing should be rejected at this rate.
        assert_eq!(rejected, 0);
    }

    #[test]
    fn session_engine_releases_free_capacity() {
        use crate::workload::{AdmissionPolicy, ArrivalProcess, SessionEngine, SplitMix64};

        // 8 tracks → 2 groups → a full watch holds 2 cycles. Arrivals at
        // 3/cycle; abandonment plus timed releases must recycle slots so
        // far more sessions are admitted than the capacity (104 on this
        // rig) could ever serve concurrently.
        let mut sim = build(10, 5, 8);
        let mut engine = SessionEngine::new(
            vec![(ObjectId(0), 2)],
            0.0,
            ArrivalProcess::poisson(3.0),
            AdmissionPolicy::Reject,
        )
        .with_abandonment(0.5);
        let mut rng = SplitMix64::new(21);
        sim.run_sessions(400, &mut engine, &mut rng).unwrap();
        let stats = engine.stats();
        assert!(stats.offered > 1000, "{stats:?}");
        assert_eq!(
            stats.admitted + stats.rejected,
            stats.offered,
            "every offer resolves under Reject"
        );
        let capacity = sim.scheduler().stream_capacity();
        assert!(
            stats.admitted > capacity as u64 * 4,
            "slots must recycle: admitted {} vs capacity {capacity}",
            stats.admitted
        );
        // Early releases happened and never produced a hiccup.
        assert!(stats.released_early > 0, "{stats:?}");
        assert_eq!(sim.metrics().total_hiccups(), 0);
        // Whatever was delivered verified against ground truth.
        assert_eq!(sim.metrics().delivered, sim.metrics().verified);
    }

    #[test]
    fn session_engine_queue_policy_records_waits() {
        use crate::workload::{AdmissionPolicy, ArrivalProcess, SessionEngine, SplitMix64};

        // Persistent overload: 16 arrivals/cycle × 10-cycle holds is an
        // offered load of 160 streams against a capacity of 104, so the
        // queue must both admit with positive waits and expire waiters.
        let mut sim = build(10, 5, 40);
        let mut engine = SessionEngine::new(
            vec![(ObjectId(0), 10)],
            0.0,
            ArrivalProcess::poisson(16.0),
            AdmissionPolicy::Queue { max_wait: 6 },
        );
        let mut rng = SplitMix64::new(33);
        sim.run_sessions(300, &mut engine, &mut rng).unwrap();
        let stats = engine.stats();
        assert!(stats.queued > 0, "{stats:?}");
        assert!(stats.balked > 0, "overload must expire some waiters");
        // Queue depth is bounded by rate × patience, not by run length.
        assert!(engine.queue_len() <= 16 * 7 * 2, "{}", engine.queue_len());
        // Some admissions came off the queue with a positive wait.
        let p99 = stats.wait_p99.value().unwrap();
        assert!(p99 > 0.0 && p99 <= 6.0, "{p99}");
        assert_eq!(sim.metrics().total_hiccups(), 0);
    }

    #[test]
    fn session_runs_are_seed_deterministic() {
        use crate::workload::{AdmissionPolicy, ArrivalProcess, SessionEngine, SplitMix64};

        let run = || {
            let mut sim = build(10, 5, 8);
            let mut engine = SessionEngine::new(
                vec![(ObjectId(0), 2)],
                0.271,
                ArrivalProcess::bursty(20.0, 80.0, 0.1, 0.2),
                AdmissionPolicy::Degrade {
                    threshold: 0.3,
                    quality: 0.5,
                },
            )
            .with_vbr(vec![0.5, 1.0, 2.0])
            .with_abandonment(0.3);
            let mut rng = SplitMix64::new(77);
            sim.run_sessions(200, &mut engine, &mut rng).unwrap();
            (
                engine.stats().offered,
                engine.stats().admitted,
                engine.stats().degraded,
                engine.stats().released_early,
                sim.metrics().delivered,
                sim.metrics().tracks_read,
            )
        };
        assert_eq!(run(), run());
        let (offered, admitted, degraded, ..) = run();
        assert!(offered > 0 && admitted > 0 && degraded > 0);
    }

    #[test]
    fn telemetry_mirrors_metrics_and_flags_hiccups() {
        use mms_telemetry::{EventKind, Recorder};

        let recorder = Recorder::new(Level::Debug);
        let _guard = recorder.install();

        let mut sim = build(10, 5, 16);
        sim.admit(ObjectId(0)).unwrap();
        sim.set_failures(FailureSchedule::new(vec![
            FailureEvent::Fail {
                cycle: 0,
                disk: DiskId(0),
                mid_cycle: false,
            },
            FailureEvent::Fail {
                cycle: 0,
                disk: DiskId(2),
                mid_cycle: false,
            },
        ]));
        sim.run(6).unwrap();

        let m = sim.metrics().clone();
        let events = recorder.take_events();
        let snap = recorder.snapshot();

        // Counters reconcile exactly with the returned Metrics.
        assert_eq!(snap.counter_total("sim.cycles"), m.cycles);
        assert_eq!(snap.counter_total("sim.delivered"), m.delivered);
        assert_eq!(snap.counter_total("sim.tracks_read"), m.tracks_read);
        assert_eq!(snap.counter_total("sim.hiccups"), m.total_hiccups());

        // One cycle span per step, strictly nested phases inside.
        let cycle_opens = events
            .iter()
            .filter(|e| e.name == "cycle" && e.kind == EventKind::SpanOpen)
            .count();
        assert_eq!(cycle_opens, 6);
        for phase in ["plan", "read", "verify", "deliver"] {
            let n = events
                .iter()
                .filter(|e| e.name == phase && e.kind == EventKind::SpanOpen)
                .count();
            assert_eq!(n, 6, "phase {phase} should open once per cycle");
        }

        // Every hiccup produced a Warn event with its reason label.
        let hiccup_events: Vec<_> = events.iter().filter(|e| e.name == "hiccup").collect();
        assert_eq!(hiccup_events.len() as u64, m.total_hiccups());
        assert!(hiccup_events.iter().all(|e| e.level == Level::Warn));
        assert!(hiccup_events
            .iter()
            .all(|e| e.field("reason").is_some() && e.field("cycle").is_some()));

        // Disk failures surfaced as Warn events from the disk layer.
        let failures = events.iter().filter(|e| e.name == "disk.failed").count();
        assert_eq!(failures, 2);
    }

    /// Everything the simulator reports, collected for exact-equality
    /// comparison between step modes (disk busy time bitwise).
    #[derive(Debug, PartialEq)]
    struct Observables {
        end_cycle: u64,
        cycles: u64,
        tracks_read: u64,
        delivered: u64,
        reconstructed: u64,
        verified: u64,
        hiccups: (u64, u64, u64, u64),
        streams_finished: u64,
        catastrophes: u64,
        rebuild_reads: u64,
        rebuilds_completed: u64,
        disk_busy_bits: u64,
        buffer_peak: usize,
        buffer_series: Vec<usize>,
        buffer_stride: u64,
        disk_stats: Vec<mms_disk::DiskStats>,
    }

    fn observe<S: SchemeScheduler>(sim: &Simulator<S>) -> Observables {
        let m = sim.metrics();
        Observables {
            end_cycle: sim.cycle(),
            cycles: m.cycles,
            tracks_read: m.tracks_read,
            delivered: m.delivered,
            reconstructed: m.reconstructed,
            verified: m.verified,
            hiccups: (
                m.hiccups_failed_disk,
                m.hiccups_displaced,
                m.hiccups_mid_cycle,
                m.service_degradations,
            ),
            streams_finished: m.streams_finished,
            catastrophes: m.catastrophes,
            rebuild_reads: m.rebuild_reads,
            rebuilds_completed: m.rebuilds_completed,
            disk_busy_bits: m.disk_busy.as_secs().to_bits(),
            buffer_peak: m.buffer_peak,
            buffer_series: m.buffer_series.points().to_vec(),
            buffer_stride: m.buffer_series.stride(),
            disk_stats: sim.disks().iter().map(|d| d.stats()).collect(),
        }
    }

    #[test]
    fn event_horizon_matches_cycle_by_cycle_exactly() {
        let run = |mode: StepMode| {
            let mut sim = build(10, 5, 400);
            sim.set_step_mode(mode);
            sim.admit(ObjectId(0)).unwrap();
            sim.run(150).unwrap();
            observe(&sim)
        };
        let slow = run(StepMode::CycleByCycle);
        let fast = run(StepMode::EventHorizon);
        assert!(slow.delivered > 0 && slow.streams_finished == 1);
        assert_eq!(slow, fast);
    }

    #[test]
    fn event_horizon_matches_under_failures() {
        let run = |mode: StepMode| {
            let mut sim = build(10, 5, 400);
            sim.set_step_mode(mode);
            sim.admit(ObjectId(0)).unwrap();
            sim.set_failures(FailureSchedule::fail_and_repair(30, 60, DiskId(1)));
            sim.run(150).unwrap();
            observe(&sim)
        };
        let slow = run(StepMode::CycleByCycle);
        let fast = run(StepMode::EventHorizon);
        assert!(slow.reconstructed > 0, "failure window must reconstruct");
        assert_eq!(slow, fast);
    }

    #[test]
    fn event_horizon_matches_workload_runs() {
        let run = |mode: StepMode| {
            let mut sim = build(10, 5, 40);
            sim.set_step_mode(mode);
            let workload = WorkloadGen::new(vec![ObjectId(0)], 0.0, 0.05);
            let mut rng = crate::workload::SplitMix64::new(1995);
            let rejected = sim.run_with_workload(600, &workload, &mut rng).unwrap();
            (observe(&sim), rejected)
        };
        let slow = run(StepMode::CycleByCycle);
        let fast = run(StepMode::EventHorizon);
        assert!(slow.0.streams_finished > 0);
        assert_eq!(slow, fast);
    }

    #[test]
    fn event_horizon_matches_session_runs() {
        use crate::workload::{AdmissionPolicy, ArrivalProcess, SessionEngine, SplitMix64};

        let run = |mode: StepMode| {
            let mut sim = build(10, 5, 200);
            sim.set_step_mode(mode);
            let mut engine = SessionEngine::new(
                vec![(ObjectId(0), 50)],
                0.0,
                ArrivalProcess::poisson(0.02),
                AdmissionPolicy::Queue { max_wait: 6 },
            )
            .with_vbr(vec![0.5, 1.0])
            .with_abandonment(0.2);
            let mut rng = SplitMix64::new(7);
            sim.run_sessions(800, &mut engine, &mut rng).unwrap();
            let stats = engine.stats().clone();
            (
                observe(&sim),
                stats.offered,
                stats.admitted,
                stats.rejected,
                stats.queued,
                stats.balked,
                stats.released_early,
            )
        };
        let slow = run(StepMode::CycleByCycle);
        let fast = run(StepMode::EventHorizon);
        assert!(slow.1 > 0, "sessions must be offered");
        assert_eq!(slow, fast);
    }

    #[test]
    fn trace_retention_is_bounded() {
        let mut sim = build(10, 5, 16);
        sim.admit(ObjectId(0)).unwrap();
        sim.keep_trace(3);
        sim.run(6).unwrap();
        assert_eq!(sim.trace().len(), 3);
        assert_eq!(sim.trace()[2].cycle, 2);
    }
}
