//! Simulation metrics.

use mms_disk::Time;
use mms_sched::LossReason;

/// Bounded record of end-of-cycle buffer occupancy.
///
/// The old `Vec<usize>` grew by one entry per cycle forever, so a soak
/// run leaked memory linearly in simulated time. This keeps at most
/// [`BufferSeries::DEFAULT_CAP`] points: while under the cap every cycle
/// is stored exactly (stride 1); at the cap the series is merged
/// pairwise with `max` and the stride doubles, so each retained point is
/// the *peak occupancy* of a `stride`-cycle window. Peaks — the quantity
/// Figure 4 and capacity planning care about — survive downsampling;
/// [`Metrics::buffer_peak`] stays exact independently.
#[derive(Debug, Clone)]
pub struct BufferSeries {
    points: Vec<usize>,
    stride: u64,
    cap: usize,
    bucket_max: usize,
    bucket_fill: u64,
    cycles: u64,
}

impl Default for BufferSeries {
    fn default() -> Self {
        BufferSeries::with_capacity(BufferSeries::DEFAULT_CAP)
    }
}

impl BufferSeries {
    /// Default retention: enough for exact short runs and fine-grained
    /// long ones (a 1M-cycle soak retains one point per 256 cycles).
    pub const DEFAULT_CAP: usize = 4096;

    /// A series retaining at most `cap` points (`cap ≥ 2`).
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 2, "BufferSeries needs at least two points");
        BufferSeries {
            // Reserve the full cap up front: `push` runs on the per-cycle
            // path and must never grow the buffer (the cap merge keeps
            // `len ≤ cap`, so this capacity is never exceeded).
            points: Vec::with_capacity(cap),
            stride: 1,
            cap,
            bucket_max: 0,
            bucket_fill: 0,
            cycles: 0,
        }
    }

    /// Record one end-of-cycle occupancy sample.
    pub fn push(&mut self, occupancy: usize) {
        self.cycles += 1;
        self.bucket_max = self.bucket_max.max(occupancy);
        self.bucket_fill += 1;
        if self.bucket_fill < self.stride {
            return;
        }
        self.points.push(self.bucket_max);
        self.bucket_max = 0;
        self.bucket_fill = 0;
        if self.points.len() >= self.cap {
            // Halve resolution with an in-place pairwise max-merge: the
            // retained buffer is reused, so hitting the cap costs no
            // allocation (this ran on the per-cycle path).
            let n = self.points.len();
            let mut w = 0;
            let mut r = 0;
            while r < n {
                let m = if r + 1 < n {
                    self.points[r].max(self.points[r + 1])
                } else {
                    self.points[r]
                };
                self.points[w] = m;
                w += 1;
                r += 2;
            }
            self.points.truncate(w);
            self.stride *= 2;
        }
    }

    /// The retained points, oldest first; each covers [`stride`] cycles.
    ///
    /// [`stride`]: BufferSeries::stride
    #[must_use]
    pub fn points(&self) -> &[usize] {
        &self.points
    }

    /// Cycles per retained point (1 until the cap is first reached).
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total cycles recorded (including any not yet flushed to a point).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of retained points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has been retained yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Convenience for the renderers: iterate retained points.
    pub fn iter(&self) -> std::slice::Iter<'_, usize> {
        self.points.iter()
    }
}

impl<'a> IntoIterator for &'a BufferSeries {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// What happened in one simulated cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleReport {
    /// The cycle index.
    pub cycle: u64,
    /// Tracks read from disks.
    pub tracks_read: usize,
    /// Data tracks delivered to viewers.
    pub delivered: usize,
    /// Deliveries that required on-the-fly reconstruction.
    pub reconstructed: usize,
    /// Hiccups (missed deliveries) this cycle.
    pub hiccups: usize,
    /// Streams that finished this cycle.
    pub finished: usize,
    /// Buffer tracks in use at end of cycle.
    pub buffer_in_use: usize,
}

/// Cumulative simulation metrics.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Cycles simulated.
    pub cycles: u64,
    /// Total tracks read.
    pub tracks_read: u64,
    /// Total data tracks delivered.
    pub delivered: u64,
    /// Deliveries that were reconstructed from parity.
    pub reconstructed: u64,
    /// Deliveries whose bytes were verified against ground truth.
    pub verified: u64,
    /// Hiccups by cause: (failed-disk, displaced, mid-cycle, degradation).
    pub hiccups_failed_disk: u64,
    /// Hiccups from displaced reads.
    pub hiccups_displaced: u64,
    /// Hiccups from mid-cycle failures.
    pub hiccups_mid_cycle: u64,
    /// Stream terminations from degradation of service.
    pub service_degradations: u64,
    /// Streams completed.
    pub streams_finished: u64,
    /// Aggregate disk busy time.
    pub disk_busy: Time,
    /// Peak buffer occupancy observed (tracks).
    pub buffer_peak: usize,
    /// Buffer occupancy over time (tracks), for memory-profile figures.
    /// Bounded: see [`BufferSeries`].
    pub buffer_series: BufferSeries,
    /// Catastrophic failures detected.
    pub catastrophes: u64,
    /// Tracks read from source disks on behalf of rebuilds.
    pub rebuild_reads: u64,
    /// Rebuilds completed (disks returned to service).
    pub rebuilds_completed: u64,
}

impl Metrics {
    /// Total hiccups of all causes.
    #[must_use]
    pub fn total_hiccups(&self) -> u64 {
        self.hiccups_failed_disk
            + self.hiccups_displaced
            + self.hiccups_mid_cycle
            + self.service_degradations
    }

    /// Record one hiccup by cause.
    pub fn count_hiccup(&mut self, reason: LossReason) {
        match reason {
            LossReason::FailedDisk => self.hiccups_failed_disk += 1,
            LossReason::Displaced => self.hiccups_displaced += 1,
            LossReason::MidCycle => self.hiccups_mid_cycle += 1,
            LossReason::ServiceDegradation => self.service_degradations += 1,
        }
    }

    /// Average disk utilization: aggregate busy time divided by total
    /// available disk-time, `disk_busy / (t_cyc × cycles × disks)`.
    ///
    /// `t_cyc` is the cycle length; both times are converted to seconds,
    /// so the result is a dimensionless fraction — `0.0` (all drives
    /// idle) to `1.0` (every drive busy for every cycle). It can
    /// marginally exceed `1.0` only if rebuild reads were charged on top
    /// of a saturated schedule.
    ///
    /// **Edge behavior:** returns `0.0` when `cycles == 0` or
    /// `disks == 0` — no simulated disk-time exists, so rather than
    /// divide by zero the utilization of an empty run is defined as
    /// zero.
    #[must_use]
    pub fn utilization(&self, t_cyc: Time, disks: usize) -> f64 {
        if self.cycles == 0 || disks == 0 {
            return 0.0;
        }
        let total = t_cyc.as_secs() * self.cycles as f64 * disks as f64;
        self.disk_busy.as_secs() / total
    }

    /// Fraction of scheduled deliveries that actually played:
    /// `delivered / (delivered + total hiccups)`, in `[0.0, 1.0]`.
    ///
    /// **Edge behavior:** returns `1.0` when nothing was ever scheduled
    /// (`delivered + total_hiccups() == 0`) — the claim "every
    /// scheduled delivery played" is vacuously true for an empty run,
    /// and the guard avoids a `0/0` division. Callers distinguishing
    /// "perfect service" from "no service" should also check
    /// [`Metrics::delivered`].
    #[must_use]
    pub fn delivery_rate(&self) -> f64 {
        let scheduled = self.delivered + self.total_hiccups();
        if scheduled == 0 {
            return 1.0;
        }
        self.delivered as f64 / scheduled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_series_exact_below_cap() {
        let mut s = BufferSeries::with_capacity(16);
        for v in [3usize, 1, 4, 1, 5] {
            s.push(v);
        }
        assert_eq!(s.points(), &[3, 1, 4, 1, 5]);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.cycles(), 5);
    }

    #[test]
    fn buffer_series_is_bounded_and_keeps_window_peaks() {
        let mut s = BufferSeries::with_capacity(8);
        // A spike at cycle 100 inside a long run must survive
        // downsampling as the max of its window.
        for t in 0..10_000usize {
            s.push(if t == 100 { 999 } else { t % 7 });
        }
        assert!(s.len() < 8, "len {} exceeds cap", s.len());
        assert!(s.stride() >= 10_000 / 8);
        assert_eq!(s.iter().copied().max(), Some(999), "spike lost");
        assert_eq!(s.cycles(), 10_000);
        // The memory bound holds regardless of horizon.
        for _ in 0..100_000usize {
            s.push(2);
        }
        assert!(s.len() < 8);
    }

    #[test]
    fn buffer_series_stride_doubles_at_cap() {
        let mut s = BufferSeries::with_capacity(4);
        for v in 0..4usize {
            s.push(v);
        }
        // Hitting the cap merges pairs: [max(0,1), max(2,3)], stride 2.
        assert_eq!(s.points(), &[1, 3]);
        assert_eq!(s.stride(), 2);
    }

    #[test]
    fn hiccup_accounting() {
        let mut m = Metrics::default();
        m.count_hiccup(LossReason::FailedDisk);
        m.count_hiccup(LossReason::Displaced);
        m.count_hiccup(LossReason::Displaced);
        m.count_hiccup(LossReason::ServiceDegradation);
        assert_eq!(m.total_hiccups(), 4);
        assert_eq!(m.hiccups_displaced, 2);
    }

    #[test]
    fn delivery_rate_edge_cases() {
        let mut m = Metrics::default();
        assert_eq!(m.delivery_rate(), 1.0);
        m.delivered = 99;
        m.hiccups_failed_disk = 1;
        assert!((m.delivery_rate() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn utilization_math() {
        let m = Metrics {
            cycles: 10,
            disk_busy: Time::from_secs(5.0),
            ..Metrics::default()
        };
        // 10 cycles of 1 s across 2 disks: 20 disk-seconds; 5 busy = 25%.
        assert!((m.utilization(Time::from_secs(1.0), 2) - 0.25).abs() < 1e-12);
        assert_eq!(Metrics::default().utilization(Time::from_secs(1.0), 2), 0.0);
    }
}
