//! Simulation metrics.

use mms_disk::Time;
use mms_sched::LossReason;

/// What happened in one simulated cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleReport {
    /// The cycle index.
    pub cycle: u64,
    /// Tracks read from disks.
    pub tracks_read: usize,
    /// Data tracks delivered to viewers.
    pub delivered: usize,
    /// Deliveries that required on-the-fly reconstruction.
    pub reconstructed: usize,
    /// Hiccups (missed deliveries) this cycle.
    pub hiccups: usize,
    /// Streams that finished this cycle.
    pub finished: usize,
    /// Buffer tracks in use at end of cycle.
    pub buffer_in_use: usize,
}

/// Cumulative simulation metrics.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Cycles simulated.
    pub cycles: u64,
    /// Total tracks read.
    pub tracks_read: u64,
    /// Total data tracks delivered.
    pub delivered: u64,
    /// Deliveries that were reconstructed from parity.
    pub reconstructed: u64,
    /// Deliveries whose bytes were verified against ground truth.
    pub verified: u64,
    /// Hiccups by cause: (failed-disk, displaced, mid-cycle, degradation).
    pub hiccups_failed_disk: u64,
    /// Hiccups from displaced reads.
    pub hiccups_displaced: u64,
    /// Hiccups from mid-cycle failures.
    pub hiccups_mid_cycle: u64,
    /// Stream terminations from degradation of service.
    pub service_degradations: u64,
    /// Streams completed.
    pub streams_finished: u64,
    /// Aggregate disk busy time.
    pub disk_busy: Time,
    /// Peak buffer occupancy observed (tracks).
    pub buffer_peak: usize,
    /// Buffer occupancy per cycle (tracks), for memory-profile figures.
    pub buffer_series: Vec<usize>,
    /// Catastrophic failures detected.
    pub catastrophes: u64,
    /// Tracks read from source disks on behalf of rebuilds.
    pub rebuild_reads: u64,
    /// Rebuilds completed (disks returned to service).
    pub rebuilds_completed: u64,
}

impl Metrics {
    /// Total hiccups of all causes.
    #[must_use]
    pub fn total_hiccups(&self) -> u64 {
        self.hiccups_failed_disk
            + self.hiccups_displaced
            + self.hiccups_mid_cycle
            + self.service_degradations
    }

    /// Record one hiccup by cause.
    pub fn count_hiccup(&mut self, reason: LossReason) {
        match reason {
            LossReason::FailedDisk => self.hiccups_failed_disk += 1,
            LossReason::Displaced => self.hiccups_displaced += 1,
            LossReason::MidCycle => self.hiccups_mid_cycle += 1,
            LossReason::ServiceDegradation => self.service_degradations += 1,
        }
    }

    /// Average disk utilization given the elapsed simulated time across
    /// `disks` drives: busy time over total disk-time.
    #[must_use]
    pub fn utilization(&self, t_cyc: Time, disks: usize) -> f64 {
        if self.cycles == 0 || disks == 0 {
            return 0.0;
        }
        let total = t_cyc.as_secs() * self.cycles as f64 * disks as f64;
        self.disk_busy.as_secs() / total
    }

    /// Fraction of scheduled deliveries that actually played.
    #[must_use]
    pub fn delivery_rate(&self) -> f64 {
        let scheduled = self.delivered + self.total_hiccups();
        if scheduled == 0 {
            return 1.0;
        }
        self.delivered as f64 / scheduled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hiccup_accounting() {
        let mut m = Metrics::default();
        m.count_hiccup(LossReason::FailedDisk);
        m.count_hiccup(LossReason::Displaced);
        m.count_hiccup(LossReason::Displaced);
        m.count_hiccup(LossReason::ServiceDegradation);
        assert_eq!(m.total_hiccups(), 4);
        assert_eq!(m.hiccups_displaced, 2);
    }

    #[test]
    fn delivery_rate_edge_cases() {
        let mut m = Metrics::default();
        assert_eq!(m.delivery_rate(), 1.0);
        m.delivered = 99;
        m.hiccups_failed_disk = 1;
        assert!((m.delivery_rate() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn utilization_math() {
        let m = Metrics {
            cycles: 10,
            disk_busy: Time::from_secs(5.0),
            ..Metrics::default()
        };
        // 10 cycles of 1 s across 2 disks: 20 disk-seconds; 5 busy = 25%.
        assert!((m.utilization(Time::from_secs(1.0), 2) - 0.25).abs() < 1e-12);
        assert_eq!(Metrics::default().utilization(Time::from_secs(1.0), 2), 0.0);
    }
}
