//! Ground-truth block contents for end-to-end data verification.

use mms_layout::{BlockAddr, BlockKind, ObjectId};
use mms_parity::{codec, Block};
use std::collections::BTreeMap;

/// Knows the synthetic contents of every block in the system, so the
/// simulator can verify that what the scheduler delivers — including
/// parity-reconstructed blocks — is byte-identical to what was stored.
///
/// Substitutes for MPEG data: the schemes treat content as opaque bytes,
/// so deterministic synthetic tracks exercise the identical code paths.
#[derive(Debug, Clone)]
pub struct BlockOracle {
    /// Track length of every object, to bound partial final groups.
    tracks: BTreeMap<ObjectId, u64>,
    /// Data blocks per parity group (`C−1`).
    blocks_per_group: u32,
    /// Bytes per track in the synthetic universe.
    track_bytes: usize,
}

impl BlockOracle {
    /// Build an oracle for the given object lengths.
    #[must_use]
    pub fn new(tracks: BTreeMap<ObjectId, u64>, blocks_per_group: u32, track_bytes: usize) -> Self {
        BlockOracle {
            tracks,
            blocks_per_group,
            track_bytes,
        }
    }

    /// Number of data blocks in a group of an object (partial final
    /// groups are shorter).
    #[must_use]
    pub fn blocks_in_group(&self, object: ObjectId, group: u64) -> u32 {
        let total = self.tracks.get(&object).copied().unwrap_or(0);
        let bpg = u64::from(self.blocks_per_group);
        total.saturating_sub(group * bpg).min(bpg) as u32
    }

    /// The stored bytes of a data block.
    #[must_use]
    pub fn data_block(&self, object: ObjectId, group: u64, index: u32) -> Block {
        let track = group * u64::from(self.blocks_per_group) + u64::from(index);
        Block::synthetic(object.0, track, self.track_bytes)
    }

    /// The stored bytes of a group's parity block (XOR over the actual —
    /// possibly partial — group membership).
    #[must_use]
    pub fn parity_block(&self, object: ObjectId, group: u64) -> Block {
        let blocks = self.blocks_in_group(object, group);
        let members: Vec<Block> = (0..blocks)
            .map(|i| self.data_block(object, group, i))
            .collect();
        codec::parity_of(members.iter())
    }

    /// The stored bytes of any block address.
    #[must_use]
    pub fn block(&self, addr: BlockAddr) -> Block {
        match addr.kind {
            BlockKind::Data(i) => self.data_block(addr.object, addr.group, i),
            BlockKind::Parity => self.parity_block(addr.object, addr.group),
        }
    }

    /// Reconstruct a data block the way a degraded-mode server would —
    /// XOR of the surviving group members and the parity block — and
    /// confirm it matches the stored original. Returns the rebuilt block.
    ///
    /// # Panics
    /// Panics if reconstruction does not round-trip: that would be a
    /// parity-coding bug, not a simulated failure condition.
    #[must_use]
    pub fn reconstruct_and_check(&self, object: ObjectId, group: u64, missing: u32) -> Block {
        let blocks = self.blocks_in_group(object, group);
        assert!(missing < blocks, "missing index out of group");
        let members: Vec<Block> = (0..blocks)
            .map(|i| self.data_block(object, group, i))
            .collect();
        let parity = codec::parity_of(members.iter());
        let rebuilt = codec::reconstruct(missing as usize, &members, &parity).expect("valid group");
        assert_eq!(
            rebuilt, members[missing as usize],
            "XOR reconstruction must be exact"
        );
        rebuilt
    }

    /// Bytes per track.
    #[must_use]
    pub fn track_bytes(&self) -> usize {
        self.track_bytes
    }

    /// Register a newly staged object's length (the load path).
    pub fn insert_object(&mut self, object: ObjectId, tracks: u64) {
        self.tracks.insert(object, tracks);
    }

    /// Forget a purged object.
    pub fn remove_object(&mut self, object: ObjectId) {
        self.tracks.remove(&object);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> BlockOracle {
        let mut tracks = BTreeMap::new();
        tracks.insert(ObjectId(1), 10); // 2 full groups + partial of 2
        BlockOracle::new(tracks, 4, 64)
    }

    #[test]
    fn partial_final_group() {
        let o = oracle();
        assert_eq!(o.blocks_in_group(ObjectId(1), 0), 4);
        assert_eq!(o.blocks_in_group(ObjectId(1), 1), 4);
        assert_eq!(o.blocks_in_group(ObjectId(1), 2), 2);
        assert_eq!(o.blocks_in_group(ObjectId(1), 3), 0);
        assert_eq!(o.blocks_in_group(ObjectId(9), 0), 0);
    }

    #[test]
    fn data_blocks_are_globally_distinct() {
        let o = oracle();
        let a = o.data_block(ObjectId(1), 0, 3);
        let b = o.data_block(ObjectId(1), 1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn parity_verifies_for_partial_groups() {
        let o = oracle();
        for g in 0..3 {
            let blocks = o.blocks_in_group(ObjectId(1), g);
            for missing in 0..blocks {
                let rebuilt = o.reconstruct_and_check(ObjectId(1), g, missing);
                assert_eq!(rebuilt, o.data_block(ObjectId(1), g, missing));
            }
        }
    }

    #[test]
    fn block_resolves_both_kinds() {
        let o = oracle();
        let d = o.block(BlockAddr::data(ObjectId(1), 0, 1));
        assert_eq!(d, o.data_block(ObjectId(1), 0, 1));
        let p = o.block(BlockAddr::parity(ObjectId(1), 2));
        assert_eq!(p, o.parity_block(ObjectId(1), 2));
    }
}
