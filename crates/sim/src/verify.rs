//! Ground-truth block contents for end-to-end data verification.

use mms_layout::{BlockAddr, BlockKind, ObjectId};
use mms_parity::{
    codec, fill_synthetic, synthetic_fingerprint, xor_synthetic, Block, PoolStats, TrackPool,
};
use std::collections::BTreeMap;

/// Capacity of the memoized parity-fingerprint cache. Streams revisit a
/// small working set of `(object, group)` pairs per cycle, so a modest
/// bound keeps the cache hot without growing with object count.
const FP_CACHE_CAP: usize = 128;

/// A tiny LRU map from `(object, group)` to the group's parity
/// fingerprint. Lookup is a linear scan (the capacity is small and the
/// entries are 24 bytes), with move-to-back on hit and front eviction
/// when full.
#[derive(Debug, Clone, Default)]
struct FingerprintLru {
    entries: Vec<((ObjectId, u64), u64)>,
}

impl FingerprintLru {
    fn get(&mut self, key: (ObjectId, u64)) -> Option<u64> {
        let ix = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(ix);
        let fp = entry.1;
        self.entries.push(entry);
        Some(fp)
    }

    fn insert(&mut self, key: (ObjectId, u64), fp: u64) {
        if self.entries.len() >= FP_CACHE_CAP {
            self.entries.remove(0);
        }
        self.entries.push((key, fp));
    }

    fn invalidate_object(&mut self, object: ObjectId) {
        self.entries.retain(|((o, _), _)| *o != object);
    }
}

/// Knows the synthetic contents of every block in the system, so the
/// simulator can verify that what the scheduler delivers — including
/// parity-reconstructed blocks — is byte-identical to what was stored.
///
/// Substitutes for MPEG data: the schemes treat content as opaque bytes,
/// so deterministic synthetic tracks exercise the identical code paths.
///
/// Two API generations coexist:
///
/// * the original allocating methods ([`data_block`](Self::data_block),
///   [`parity_block`](Self::parity_block),
///   [`reconstruct_and_check`](Self::reconstruct_and_check)) build fresh
///   [`Block`]s per call — convenient for tests, and the "before" side of
///   the `bench_datapath` comparison;
/// * the streaming methods
///   ([`write_data_block_into`](Self::write_data_block_into),
///   [`parity_into`](Self::parity_into),
///   [`verify_delivery`](Self::verify_delivery)) XOR group members into
///   reused scratch buffers from an internal [`TrackPool`] and memoize
///   per-`(object, group)` parity fingerprints, so steady-state verified
///   delivery runs with zero heap allocations.
#[derive(Debug)]
pub struct BlockOracle {
    /// Track length of every object, to bound partial final groups.
    tracks: BTreeMap<ObjectId, u64>,
    /// Data blocks per parity group (`C−1`).
    blocks_per_group: u32,
    /// Bytes per track in the synthetic universe.
    track_bytes: usize,
    /// Free list of track-sized scratch buffers for the streaming paths.
    pool: TrackPool,
    /// Memoized parity fingerprints per `(object, group)`.
    fp_cache: FingerprintLru,
}

impl Clone for BlockOracle {
    /// Clones the ground truth (object lengths and geometry). The scratch
    /// state — buffer pool and fingerprint cache — is per-instance and
    /// starts cold in the clone.
    fn clone(&self) -> Self {
        BlockOracle::new(self.tracks.clone(), self.blocks_per_group, self.track_bytes)
    }
}

impl BlockOracle {
    /// Build an oracle for the given object lengths.
    #[must_use]
    pub fn new(tracks: BTreeMap<ObjectId, u64>, blocks_per_group: u32, track_bytes: usize) -> Self {
        BlockOracle {
            tracks,
            blocks_per_group,
            track_bytes,
            pool: TrackPool::new(track_bytes),
            fp_cache: FingerprintLru::default(),
        }
    }

    /// Number of data blocks in a group of an object (partial final
    /// groups are shorter).
    #[must_use]
    pub fn blocks_in_group(&self, object: ObjectId, group: u64) -> u32 {
        let total = self.tracks.get(&object).copied().unwrap_or(0);
        let bpg = u64::from(self.blocks_per_group);
        total.saturating_sub(group * bpg).min(bpg) as u32
    }

    /// The global track index of data block `(group, index)`.
    fn track_of(&self, group: u64, index: u32) -> u64 {
        group * u64::from(self.blocks_per_group) + u64::from(index)
    }

    /// The stored bytes of a data block.
    #[must_use]
    pub fn data_block(&self, object: ObjectId, group: u64, index: u32) -> Block {
        Block::synthetic(object.0, self.track_of(group, index), self.track_bytes)
    }

    /// Write the stored bytes of a data block into caller-owned storage,
    /// without allocating.
    ///
    /// # Panics
    /// Panics if `out` is not [`track_bytes`](Self::track_bytes) long.
    pub fn write_data_block_into(&self, object: ObjectId, group: u64, index: u32, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            self.track_bytes,
            "output buffer must be one track"
        );
        fill_synthetic(object.0, self.track_of(group, index), out);
    }

    /// The stored bytes of a group's parity block (XOR over the actual —
    /// possibly partial — group membership).
    #[must_use]
    pub fn parity_block(&self, object: ObjectId, group: u64) -> Block {
        let blocks = self.blocks_in_group(object, group);
        let members: Vec<Block> = (0..blocks)
            .map(|i| self.data_block(object, group, i))
            .collect();
        codec::parity_of(members.iter())
    }

    /// Compute a group's parity block into a reused [`Block`], streaming
    /// each member's bytes through the XOR kernel without materializing
    /// any of them. `out` is resized only if its length differs from the
    /// track size; otherwise no allocation occurs.
    ///
    /// An empty group (unknown object or group past the end) yields an
    /// all-zero track — the streaming analogue of the crate-level
    /// empty-group contract, sized for buffer reuse.
    pub fn parity_into(&self, object: ObjectId, group: u64, out: &mut Block) {
        if out.len() != self.track_bytes {
            *out = Block::zeroed(self.track_bytes);
        } else {
            out.zero();
        }
        let blocks = self.blocks_in_group(object, group);
        for i in 0..blocks {
            xor_synthetic(object.0, self.track_of(group, i), out.as_bytes_mut());
        }
    }

    /// The fingerprint of a group's parity block, memoized in an LRU
    /// cache keyed by `(object, group)`. The XOR-fold is linear, so the
    /// parity fingerprint is computed as the XOR of the members'
    /// fingerprints — no track-sized buffer is ever touched.
    pub fn parity_fingerprint(&mut self, object: ObjectId, group: u64) -> u64 {
        if let Some(fp) = self.fp_cache.get((object, group)) {
            return fp;
        }
        let blocks = self.blocks_in_group(object, group);
        let fp = (0..blocks).fold(0u64, |acc, i| {
            acc ^ synthetic_fingerprint(object.0, self.track_of(group, i), self.track_bytes)
        });
        self.fp_cache.insert((object, group), fp);
        fp
    }

    /// The stored bytes of any block address.
    #[must_use]
    pub fn block(&self, addr: BlockAddr) -> Block {
        match addr.kind {
            BlockKind::Data(i) => self.data_block(addr.object, addr.group, i),
            BlockKind::Parity => self.parity_block(addr.object, addr.group),
        }
    }

    /// Reconstruct a data block the way a degraded-mode server would —
    /// XOR of the surviving group members and the parity block — and
    /// confirm it matches the stored original. Returns the rebuilt block.
    ///
    /// This is the allocating reference path; the simulator's hot loop
    /// uses [`verify_delivery`](Self::verify_delivery) instead.
    ///
    /// # Panics
    /// Panics if reconstruction does not round-trip: that would be a
    /// parity-coding bug, not a simulated failure condition.
    #[must_use]
    pub fn reconstruct_and_check(&self, object: ObjectId, group: u64, missing: u32) -> Block {
        let blocks = self.blocks_in_group(object, group);
        assert!(missing < blocks, "missing index out of group");
        let members: Vec<Block> = (0..blocks)
            .map(|i| self.data_block(object, group, i))
            .collect();
        let parity = codec::parity_of(members.iter());
        let rebuilt = codec::reconstruct(missing as usize, &members, &parity).expect("valid group");
        assert_eq!(
            rebuilt, members[missing as usize],
            "XOR reconstruction must be exact"
        );
        rebuilt
    }

    /// Verify one delivery against ground truth without allocating
    /// (after pool warm-up). The work mirrors what a real server's data
    /// path would do for that delivery:
    ///
    /// * **Reconstructed data block** — rebuild it the degraded-mode way
    ///   (XOR the surviving members, then the parity block, into pooled
    ///   scratch) and compare against the stored original: the
    ///   fingerprint check short-circuits any mismatch, and a full byte
    ///   compare confirms equality.
    /// * **Plain data block** — regenerate the stored bytes once into
    ///   pooled scratch (modeling the delivery buffer) and fingerprint-
    ///   check them.
    /// * **Parity block** — recompute the parity fingerprint and check it
    ///   against the memoized `(object, group)` value.
    ///
    /// # Panics
    /// Panics with "delivered bytes must match stored" if verification
    /// fails — a parity-coding bug, not a simulated failure condition.
    pub fn verify_delivery(&mut self, addr: BlockAddr, reconstructed: bool) {
        match addr.kind {
            BlockKind::Data(ix) if reconstructed => {
                let object = addr.object;
                let group = addr.group;
                let blocks = self.blocks_in_group(object, group);
                assert!(ix < blocks, "missing index out of group");
                // Rebuild into pooled scratch: survivors first …
                let mut rebuilt = self.pool.check_out_zeroed_block();
                for i in (0..blocks).filter(|&i| i != ix) {
                    xor_synthetic(object.0, self.track_of(group, i), rebuilt.as_bytes_mut());
                }
                // … then the parity block, itself streamed into pooled
                // scratch (the same buffer a real server would have read
                // the parity track into).
                let mut parity = self.pool.check_out_zeroed_block();
                self.parity_into(object, group, &mut parity);
                rebuilt.xor_assign(&parity);
                // Compare with the stored original: fingerprints catch
                // any mismatch cheaply; equality still gets a full byte
                // compare (the fold is a filter, not a proof).
                let expected_fp =
                    synthetic_fingerprint(object.0, self.track_of(group, ix), self.track_bytes);
                let mut ok = rebuilt.fingerprint() == expected_fp;
                if ok {
                    self.write_data_block_into(object, group, ix, parity.as_bytes_mut());
                    ok = rebuilt == parity;
                }
                self.pool.check_in_block(parity);
                self.pool.check_in_block(rebuilt);
                assert!(ok, "delivered bytes must match stored");
            }
            BlockKind::Data(ix) => {
                let mut scratch = self.pool.check_out_zeroed_block();
                self.write_data_block_into(addr.object, addr.group, ix, scratch.as_bytes_mut());
                let ok = scratch.fingerprint()
                    == synthetic_fingerprint(
                        addr.object.0,
                        self.track_of(addr.group, ix),
                        self.track_bytes,
                    );
                self.pool.check_in_block(scratch);
                assert!(ok, "delivered bytes must match stored");
            }
            BlockKind::Parity => {
                let expected = self.parity_fingerprint(addr.object, addr.group);
                let mut scratch = self.pool.check_out_zeroed_block();
                self.parity_into(addr.object, addr.group, &mut scratch);
                let ok = scratch.fingerprint() == expected;
                self.pool.check_in_block(scratch);
                assert!(ok, "delivered bytes must match stored");
            }
        }
    }

    /// Scratch-pool counters (hits, misses, outstanding), for the
    /// simulator's `pool.*` gauges.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Bytes per track.
    #[must_use]
    pub fn track_bytes(&self) -> usize {
        self.track_bytes
    }

    /// Register a newly staged object's length (the load path).
    pub fn insert_object(&mut self, object: ObjectId, tracks: u64) {
        self.fp_cache.invalidate_object(object);
        self.tracks.insert(object, tracks);
    }

    /// Forget a purged object.
    pub fn remove_object(&mut self, object: ObjectId) {
        self.fp_cache.invalidate_object(object);
        self.tracks.remove(&object);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> BlockOracle {
        let mut tracks = BTreeMap::new();
        tracks.insert(ObjectId(1), 10); // 2 full groups + partial of 2
        BlockOracle::new(tracks, 4, 64)
    }

    #[test]
    fn partial_final_group() {
        let o = oracle();
        assert_eq!(o.blocks_in_group(ObjectId(1), 0), 4);
        assert_eq!(o.blocks_in_group(ObjectId(1), 1), 4);
        assert_eq!(o.blocks_in_group(ObjectId(1), 2), 2);
        assert_eq!(o.blocks_in_group(ObjectId(1), 3), 0);
        assert_eq!(o.blocks_in_group(ObjectId(9), 0), 0);
    }

    #[test]
    fn data_blocks_are_globally_distinct() {
        let o = oracle();
        let a = o.data_block(ObjectId(1), 0, 3);
        let b = o.data_block(ObjectId(1), 1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn parity_verifies_for_partial_groups() {
        let o = oracle();
        for g in 0..3 {
            let blocks = o.blocks_in_group(ObjectId(1), g);
            for missing in 0..blocks {
                let rebuilt = o.reconstruct_and_check(ObjectId(1), g, missing);
                assert_eq!(rebuilt, o.data_block(ObjectId(1), g, missing));
            }
        }
    }

    #[test]
    fn block_resolves_both_kinds() {
        let o = oracle();
        let d = o.block(BlockAddr::data(ObjectId(1), 0, 1));
        assert_eq!(d, o.data_block(ObjectId(1), 0, 1));
        let p = o.block(BlockAddr::parity(ObjectId(1), 2));
        assert_eq!(p, o.parity_block(ObjectId(1), 2));
    }

    #[test]
    fn write_into_matches_data_block() {
        let o = oracle();
        let mut buf = vec![0u8; 64];
        o.write_data_block_into(ObjectId(1), 1, 2, &mut buf);
        assert_eq!(&buf[..], o.data_block(ObjectId(1), 1, 2).as_bytes());
    }

    #[test]
    #[should_panic(expected = "one track")]
    fn write_into_rejects_wrong_size() {
        let o = oracle();
        let mut buf = vec![0u8; 63];
        o.write_data_block_into(ObjectId(1), 0, 0, &mut buf);
    }

    #[test]
    fn parity_into_matches_parity_block() {
        let o = oracle();
        let mut out = Block::zeroed(0); // wrong size: must self-correct
        for g in 0..3 {
            o.parity_into(ObjectId(1), g, &mut out);
            assert_eq!(out, o.parity_block(ObjectId(1), g), "group {g}");
        }
        // Empty group → zero track (not a zero-length block).
        o.parity_into(ObjectId(1), 9, &mut out);
        assert_eq!(out.len(), 64);
        assert!(out.is_zero());
    }

    #[test]
    fn parity_fingerprint_is_memoized_and_correct() {
        let mut o = oracle();
        for g in 0..3 {
            let fp = o.parity_fingerprint(ObjectId(1), g);
            assert_eq!(fp, o.parity_block(ObjectId(1), g).fingerprint());
            // Second call hits the cache and agrees.
            assert_eq!(o.parity_fingerprint(ObjectId(1), g), fp);
        }
    }

    #[test]
    fn fingerprint_cache_invalidated_on_object_change() {
        let mut o = oracle();
        let before = o.parity_fingerprint(ObjectId(1), 2);
        // Re-stage the object with more tracks: group 2 becomes full.
        o.insert_object(ObjectId(1), 16);
        let after = o.parity_fingerprint(ObjectId(1), 2);
        assert_eq!(after, o.parity_block(ObjectId(1), 2).fingerprint());
        assert_ne!(before, after);
    }

    #[test]
    fn verify_delivery_accepts_all_kinds_without_allocating_after_warmup() {
        let mut o = oracle();
        for g in 0..3 {
            let blocks = o.blocks_in_group(ObjectId(1), g);
            for i in 0..blocks {
                o.verify_delivery(BlockAddr::data(ObjectId(1), g, i), false);
                o.verify_delivery(BlockAddr::data(ObjectId(1), g, i), true);
            }
            o.verify_delivery(BlockAddr::parity(ObjectId(1), g), false);
        }
        let stats = o.pool_stats();
        // The pool holds at most two scratch buffers at once; everything
        // beyond the first two checkouts is a hit.
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert!(stats.hits > 0);
        assert_eq!(stats.outstanding, 0);
    }

    #[test]
    fn clone_copies_truth_but_not_scratch_state() {
        let mut o = oracle();
        o.verify_delivery(BlockAddr::data(ObjectId(1), 0, 0), true);
        let c = o.clone();
        assert_eq!(c.track_bytes(), o.track_bytes());
        assert_eq!(c.blocks_in_group(ObjectId(1), 2), 2);
        assert_eq!(c.pool_stats(), PoolStats::default());
    }

    #[test]
    fn lru_evicts_oldest_beyond_capacity() {
        let mut lru = FingerprintLru::default();
        for g in 0..(FP_CACHE_CAP as u64 + 10) {
            lru.insert((ObjectId(7), g), g);
        }
        assert_eq!(lru.entries.len(), FP_CACHE_CAP);
        assert!(lru.get((ObjectId(7), 0)).is_none());
        assert_eq!(lru.get((ObjectId(7), 50)), Some(50));
    }
}
