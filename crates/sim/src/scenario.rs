//! Declarative fault-injection scenarios.
//!
//! A [`Scenario`] is a seeded script of timed events — admissions, disk
//! failures (cycle-boundary and mid-cycle), repairs, rebuild starts,
//! and optionally a stochastic failure/repair process — together with
//! the paper-derived invariants the run must satisfy, expressed as
//! [`Expectation`]s. The script is pure data: this module defines the
//! model, the [`ScenarioReport`] a run produces, and the invariant
//! checks; `mms-server`'s `scenario` module owns the runner that
//! executes a scenario against any of the four schemes.
//!
//! Determinism: every scenario carries a `seed`, and stochastic fault
//! processes are expanded from it per scheme via `mms-exec`'s
//! SplitMix64 pre-splitting before the run starts, so reports are
//! bit-identical at any thread count.

use crate::failure::FailureEvent;
use mms_disk::DiskId;
use mms_sched::SchemeKind;
use mms_telemetry::{EventRecord, Value};
use std::fmt::Write as _;

/// One timed action in a scenario script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioEvent {
    /// Admit a viewer for the `index`-th registered object.
    Admit {
        /// Cycle at which the viewer arrives.
        cycle: u64,
        /// Index into the server's registration-ordered object list
        /// (scenarios are written against a topology, not concrete
        /// [`mms_layout::ObjectId`]s).
        object: usize,
    },
    /// Inject a disk failure or repair.
    Fault(FailureEvent),
    /// Start a background parity rebuild of `disk` onto a spare.
    RebuildParity {
        /// Cycle at which the rebuild starts.
        cycle: u64,
        /// The disk under rebuild.
        disk: DiskId,
    },
    /// Start a tertiary-storage rebuild of `disk` (the slow path after
    /// a catastrophe).
    RebuildTertiary {
        /// Cycle at which the rebuild starts.
        cycle: u64,
        /// The disk under rebuild.
        disk: DiskId,
        /// Tape bandwidth in tracks per cycle.
        tracks_per_cycle: u64,
    },
}

impl ScenarioEvent {
    /// The cycle at which the event fires.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            ScenarioEvent::Admit { cycle, .. }
            | ScenarioEvent::RebuildParity { cycle, .. }
            | ScenarioEvent::RebuildTertiary { cycle, .. } => cycle,
            ScenarioEvent::Fault(e) => e.cycle(),
        }
    }
}

/// When a scenario run stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// Run until no streams are active (and no rebuild is in flight),
    /// but at most `max_cycles`.
    Drain {
        /// Hard stop even if streams never drain.
        max_cycles: u64,
    },
    /// Run exactly this many cycles.
    Fixed(u64),
}

impl Horizon {
    /// The hard upper bound on simulated cycles.
    #[must_use]
    pub fn max_cycles(&self) -> u64 {
        match *self {
            Horizon::Drain { max_cycles } => max_cycles,
            Horizon::Fixed(n) => n,
        }
    }
}

/// A stochastic failure/repair process layered over the scripted
/// events, expanded deterministically from the scenario seed (split
/// per scheme) before the run starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticFaults {
    /// MTTF acceleration factor (shrinks the paper's disk lifetime so
    /// failures land inside short behavioral runs).
    pub acceleration: f64,
    /// Mean time to repair, in cycles.
    pub mttr_cycles: u64,
    /// Cycle horizon for generated events.
    pub horizon_cycles: u64,
}

/// One paper-derived invariant over a [`ScenarioReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// No tracks were lost (zero hiccups).
    NoLostTracks,
    /// Exactly this many tracks were lost (the NC Fig. 6/7 bounds).
    LostTracksExactly(u64),
    /// At most this many tracks were lost (the Section 4.3 bound).
    LostTracksAtMost(u64),
    /// No catastrophic (unrecoverable) failure occurred.
    NoCatastrophe,
    /// At least one injected fault returned typed data loss.
    DataLoss,
    /// No streams were dropped (no degradation of service).
    NoDroppedStreams,
    /// At least one stream was dropped (e.g. buffer-server exhaustion).
    DroppedStreams,
    /// Every started rebuild completed within the horizon.
    RebuildCompletes,
    /// Every admitted stream either finished or was deliberately
    /// dropped; none is still active at the horizon.
    AllStreamsFinish,
    /// The Improved-bandwidth "shift right" cascade moved load through
    /// at least one cluster (only meaningful for IB).
    ShiftCascade,
}

/// A [`Check`] scoped to one scheme, or to all schemes when `scheme`
/// is `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectation {
    /// Which scheme the check applies to (`None` = every scheme).
    pub scheme: Option<SchemeKind>,
    /// The invariant.
    pub check: Check,
}

impl Expectation {
    /// An invariant every scheme must satisfy.
    #[must_use]
    pub fn all(check: Check) -> Self {
        Expectation {
            scheme: None,
            check,
        }
    }

    /// An invariant for one scheme.
    #[must_use]
    pub fn for_scheme(scheme: SchemeKind, check: Check) -> Self {
        Expectation {
            scheme: Some(scheme),
            check,
        }
    }
}

/// A named, seeded fault-injection script with its invariants.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique name (the `mms-ctl scenario <name>` handle).
    pub name: &'static str,
    /// One-line description of what the scenario exercises.
    pub summary: &'static str,
    /// Master seed; stochastic processes split it per scheme.
    pub seed: u64,
    /// Stop condition.
    pub horizon: Horizon,
    /// Scripted events (any order; the runner sorts by cycle).
    pub events: Vec<ScenarioEvent>,
    /// Optional stochastic failure/repair overlay.
    pub stochastic: Option<StochasticFaults>,
    /// The invariants a run must satisfy.
    pub expectations: Vec<Expectation>,
}

impl Scenario {
    /// A new empty scenario draining within `max_cycles`.
    #[must_use]
    pub fn new(name: &'static str, summary: &'static str) -> Self {
        Scenario {
            name,
            summary,
            seed: 0x5ca1ab1e,
            horizon: Horizon::Drain { max_cycles: 400 },
            events: Vec::new(),
            stochastic: None,
            expectations: Vec::new(),
        }
    }

    /// The expectations that apply to `scheme`.
    pub fn expectations_for(&self, scheme: SchemeKind) -> impl Iterator<Item = &Expectation> {
        self.expectations
            .iter()
            .filter(move |e| e.scheme.is_none() || e.scheme == Some(scheme))
    }

    /// Evaluate every applicable invariant against `report`, returning
    /// a human-readable violation per failed check (empty = pass).
    #[must_use]
    pub fn evaluate(&self, report: &ScenarioReport) -> Vec<String> {
        let mut violations = Vec::new();
        for e in self.expectations_for(report.scheme) {
            if let Some(v) = check_violation(e.check, report) {
                violations.push(v);
            }
        }
        violations
    }
}

fn check_violation(check: Check, r: &ScenarioReport) -> Option<String> {
    match check {
        Check::NoLostTracks => {
            (r.tracks_lost != 0).then(|| format!("expected 0 lost tracks, got {}", r.tracks_lost))
        }
        Check::LostTracksExactly(n) => (r.tracks_lost != n)
            .then(|| format!("expected exactly {n} lost tracks, got {}", r.tracks_lost)),
        Check::LostTracksAtMost(n) => (r.tracks_lost > n)
            .then(|| format!("expected at most {n} lost tracks, got {}", r.tracks_lost)),
        Check::NoCatastrophe => (r.catastrophes != 0 || !r.data_loss.is_empty())
            .then(|| format!("expected no catastrophe, got {}", r.catastrophes.max(r.data_loss.len() as u64))),
        Check::DataLoss => r
            .data_loss
            .is_empty()
            .then(|| "expected a typed data-loss result, got none".to_string()),
        Check::NoDroppedStreams => {
            (r.dropped != 0).then(|| format!("expected 0 dropped streams, got {}", r.dropped))
        }
        Check::DroppedStreams => {
            (r.dropped == 0).then(|| "expected dropped streams, got none".to_string())
        }
        Check::RebuildCompletes => (r.rebuilds_started != r.rebuilds_completed).then(|| {
            format!(
                "expected {} rebuilds to complete, {} did",
                r.rebuilds_started, r.rebuilds_completed
            )
        }),
        Check::AllStreamsFinish => {
            (r.active_at_end != 0 || r.finished + r.dropped != r.admitted).then(|| {
                format!(
                    "expected all {} admitted streams to finish ({} finished, {} dropped, {} active at end)",
                    r.admitted, r.finished, r.dropped, r.active_at_end
                )
            })
        }
        Check::ShiftCascade => r
            .shift_clusters
            .is_empty()
            .then(|| "expected a shift-right cascade, saw none".to_string()),
    }
}

/// One cluster's operating-mode change, reconstructed from telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeTransition {
    /// Cycle of the transition.
    pub cycle: u64,
    /// The cluster that changed mode.
    pub cluster: u64,
    /// Mode before (`normal`, `degraded`, `catastrophic`).
    pub from: String,
    /// Mode after.
    pub to: String,
}

/// Extract the mode-transition timeline from captured telemetry
/// events, in emission order.
#[must_use]
pub fn transitions_from_events(events: &[EventRecord]) -> Vec<ModeTransition> {
    events
        .iter()
        .filter(|e| e.name == "mode_transition")
        .filter_map(|e| {
            let num = |k: &str| match e.field(k) {
                Some(Value::U64(v)) => Some(*v),
                Some(Value::I64(v)) => Some(*v as u64),
                _ => None,
            };
            let s = |k: &str| match e.field(k) {
                Some(Value::Str(v)) => Some(v.to_string()),
                _ => None,
            };
            Some(ModeTransition {
                cycle: num("cycle")?,
                cluster: num("cluster")?,
                from: s("from")?,
                to: s("to")?,
            })
        })
        .collect()
}

/// Sum, over all clusters, of the cycles each spent out of normal mode
/// (degraded or catastrophic), integrating `transitions` to
/// `end_cycle`.
#[must_use]
pub fn degraded_cycles(transitions: &[ModeTransition], end_cycle: u64) -> u64 {
    use std::collections::BTreeMap;
    let mut since: BTreeMap<u64, u64> = BTreeMap::new();
    let mut total = 0;
    for t in transitions {
        if t.to == "normal" {
            if let Some(start) = since.remove(&t.cluster) {
                total += t.cycle.saturating_sub(start);
            }
        } else {
            since.entry(t.cluster).or_insert(t.cycle);
        }
    }
    for (_, start) in since {
        total += end_cycle.saturating_sub(start);
    }
    total
}

/// One typed data-loss outcome from an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataLossRecord {
    /// Cycle of the fault.
    pub cycle: u64,
    /// The disk whose failure tipped the group over.
    pub disk: DiskId,
    /// Unrecoverable data tracks.
    pub tracks: u64,
}

/// What one scenario run did, for one scheme.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub scenario: String,
    /// The scheme it ran against.
    pub scheme: SchemeKind,
    /// Cycles simulated.
    pub cycles: u64,
    /// Viewers admitted.
    pub admitted: u64,
    /// Admissions rejected (capacity or catastrophic mode).
    pub rejected: u64,
    /// Streams that played to completion.
    pub finished: u64,
    /// Streams dropped (degradation of service).
    pub dropped: u64,
    /// Streams still active at the horizon.
    pub active_at_end: u64,
    /// Tracks lost to hiccups (missed deliveries).
    pub tracks_lost: u64,
    /// Deliveries reconstructed from parity.
    pub reconstructed: u64,
    /// Catastrophic failures counted by the simulator (scheduled
    /// faults; immediate faults surface in [`data_loss`](Self::data_loss)).
    pub catastrophes: u64,
    /// Typed data-loss outcomes from injected faults.
    pub data_loss: Vec<DataLossRecord>,
    /// Mode-transition timeline from telemetry.
    pub transitions: Vec<ModeTransition>,
    /// Total cluster-cycles spent out of normal mode.
    pub degraded_cycles: u64,
    /// Rebuilds started by the script.
    pub rebuilds_started: u64,
    /// Rebuilds that completed within the horizon.
    pub rebuilds_completed: u64,
    /// Cycles from first rebuild start to last rebuild completion.
    pub rebuild_duration: Option<u64>,
    /// Clusters visited by the IB shift cascade (empty elsewhere).
    pub shift_clusters: Vec<u64>,
    /// Invariant violations (empty = the scenario passed).
    pub violations: Vec<String>,
}

impl ScenarioReport {
    /// An empty report for `scenario` under `scheme`.
    #[must_use]
    pub fn new(scenario: &str, scheme: SchemeKind) -> Self {
        ScenarioReport {
            scenario: scenario.to_string(),
            scheme,
            cycles: 0,
            admitted: 0,
            rejected: 0,
            finished: 0,
            dropped: 0,
            active_at_end: 0,
            tracks_lost: 0,
            reconstructed: 0,
            catastrophes: 0,
            data_loss: Vec::new(),
            transitions: Vec::new(),
            degraded_cycles: 0,
            rebuilds_started: 0,
            rebuilds_completed: 0,
            rebuild_duration: None,
            shift_clusters: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total unrecoverable data tracks across all typed losses.
    #[must_use]
    pub fn data_loss_tracks(&self) -> u64 {
        self.data_loss.iter().map(|d| d.tracks).sum()
    }

    /// Render a deterministic, human-readable summary block.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "[{verdict}] {} / {} ({} cycles)",
            self.scenario,
            self.scheme.abbrev(),
            self.cycles
        );
        let _ = writeln!(
            out,
            "  streams: {} admitted, {} finished, {} dropped, {} rejected, {} active at end",
            self.admitted, self.finished, self.dropped, self.rejected, self.active_at_end
        );
        let _ = writeln!(
            out,
            "  delivery: {} lost tracks, {} reconstructed, {} degraded cluster-cycles",
            self.tracks_lost, self.reconstructed, self.degraded_cycles
        );
        if !self.data_loss.is_empty() || self.catastrophes > 0 {
            let _ = writeln!(
                out,
                "  catastrophic: {} scheduled, {} typed losses ({} data tracks unrecoverable)",
                self.catastrophes,
                self.data_loss.len(),
                self.data_loss_tracks()
            );
        }
        if self.rebuilds_started > 0 {
            let _ = writeln!(
                out,
                "  rebuild: {}/{} completed{}",
                self.rebuilds_completed,
                self.rebuilds_started,
                match self.rebuild_duration {
                    Some(d) => format!(" in {d} cycles"),
                    None => String::new(),
                }
            );
        }
        if !self.shift_clusters.is_empty() {
            let path: Vec<String> = self.shift_clusters.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "  shift cascade: clusters {}", path.join(" -> "));
        }
        for t in &self.transitions {
            let _ = writeln!(
                out,
                "  cycle {:>4}: cluster {} {} -> {}",
                t.cycle, t.cluster, t.from, t.to
            );
        }
        for v in &self.violations {
            let _ = writeln!(out, "  VIOLATION: {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ScenarioReport {
        ScenarioReport::new("t", SchemeKind::StreamingRaid)
    }

    #[test]
    fn checks_fire_on_violations_only() {
        let mut r = report();
        assert!(check_violation(Check::NoLostTracks, &r).is_none());
        assert!(check_violation(Check::DataLoss, &r).is_some());
        r.tracks_lost = 6;
        assert!(check_violation(Check::NoLostTracks, &r).is_some());
        assert!(check_violation(Check::LostTracksExactly(6), &r).is_none());
        assert!(check_violation(Check::LostTracksExactly(3), &r).is_some());
        assert!(check_violation(Check::LostTracksAtMost(5), &r).is_some());
        assert!(check_violation(Check::LostTracksAtMost(6), &r).is_none());
        r.data_loss.push(DataLossRecord {
            cycle: 4,
            disk: DiskId(1),
            tracks: 8,
        });
        assert!(check_violation(Check::DataLoss, &r).is_none());
        assert!(check_violation(Check::NoCatastrophe, &r).is_some());
        assert_eq!(r.data_loss_tracks(), 8);
    }

    #[test]
    fn expectations_scope_by_scheme() {
        let mut s = Scenario::new("t", "test");
        s.expectations = vec![
            Expectation::all(Check::NoLostTracks),
            Expectation::for_scheme(SchemeKind::NonClustered, Check::LostTracksExactly(3)),
        ];
        assert_eq!(s.expectations_for(SchemeKind::StreamingRaid).count(), 1);
        assert_eq!(s.expectations_for(SchemeKind::NonClustered).count(), 2);
        let mut r = report();
        r.tracks_lost = 0;
        assert!(s.evaluate(&r).is_empty());
        r.scheme = SchemeKind::NonClustered;
        let v = s.evaluate(&r);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn degraded_cycles_integrates_transitions() {
        let ts = vec![
            ModeTransition {
                cycle: 4,
                cluster: 0,
                from: "normal".into(),
                to: "degraded".into(),
            },
            ModeTransition {
                cycle: 10,
                cluster: 0,
                from: "degraded".into(),
                to: "normal".into(),
            },
            ModeTransition {
                cycle: 12,
                cluster: 1,
                from: "normal".into(),
                to: "degraded".into(),
            },
        ];
        // Cluster 0: 6 cycles; cluster 1: open until the end (20).
        assert_eq!(degraded_cycles(&ts, 20), 6 + 8);
    }

    #[test]
    fn render_is_deterministic_and_mentions_verdict() {
        let mut r = report();
        r.violations.push("boom".into());
        let text = r.render();
        assert!(text.starts_with("[FAIL]"));
        assert!(text.contains("VIOLATION: boom"));
        assert_eq!(text, r.render());
    }
}
