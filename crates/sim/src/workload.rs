//! Workload generation: session lifecycles over a Zipf-popular catalog.
//!
//! The paper sizes systems for "6500 concurrent MPEG-2 users or 20,000
//! MPEG-1 users" watching movies; this module generates that kind of
//! movie-on-demand request stream for the simulator and benches, at two
//! levels:
//!
//! * [`WorkloadGen`] — the original stateless arrival source: Poisson
//!   arrivals per cycle over a Zipf(θ) catalog. Still the right tool
//!   for open-loop soak tests.
//! * [`SessionEngine`] — the full session lifecycle: Poisson or bursty
//!   ([`ArrivalProcess::bursty`], a two-state MMPP) arrivals, per-stream
//!   VBR quality drawn from a bitrate ladder, viewer abandonment, and
//!   an explicit admission-control policy point
//!   ([`AdmissionPolicy::Reject`] / [`Degrade`](AdmissionPolicy::Degrade)
//!   / [`Queue`](AdmissionPolicy::Queue)). Sessions that end early are
//!   returned to the scheduler via
//!   [`SchemeScheduler::release`], so heavy-traffic runs churn streams
//!   the way a real service does instead of letting every viewer watch
//!   to the credits.
//!
//! Memory is O(active + queued sessions): pending releases live in a
//! [`BinaryHeap`] keyed by due cycle, admission waits stream into
//! [`P2Quantile`] estimators, and nothing is recorded per event.
//!
//! Everything is driven by the caller's RNG (the workspace convention is
//! the vendored SplitMix64-seeded xoshiro behind `rand::rngs::StdRng`,
//! or [`SplitMix64`] directly when a test must be pinned against RNG
//! crate changes), so runs are bit-identical for a given seed.

use mms_layout::ObjectId;
use mms_sched::{SchemeScheduler, StreamId};
use mms_telemetry::P2Quantile;
use rand::{Rng, RngCore};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A Zipf(θ) popularity distribution over `n` items — the standard model
/// for video-on-demand title popularity.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i] = P(rank ≤ i)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution with exponent `theta` over `n` ranks.
    /// `theta = 0` is uniform; classic video rental fits use θ ≈ 0.271.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            // Summation dust can push a prefix one ulp past 1 under
            // extreme skew; the CDF must stay a distribution.
            *w = acc.min(1.0);
        }
        // Guard the tail against floating point dust.
        *weights
            .last_mut()
            .expect("a zipf distribution has at least one weight") = 1.0;
        Zipf { cdf: weights }
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u)
    }

    /// The cumulative distribution, `cdf[i] = P(rank ≤ i)`.
    #[must_use]
    pub fn cdf(&self) -> &[f64] {
        &self.cdf
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether empty (never: construction requires `n > 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Rate-splitting threshold: each chunk's rate stays at or below this,
/// so `exp(-chunk)` (≈ 1.3e-14 at 32) is far from the f64 underflow
/// cliff at `rate ≈ 745` that broke the unsplit product method.
const POISSON_CHUNK: f64 = 32.0;

/// Exact Poisson sample at any finite rate, via rate splitting.
///
/// Knuth's product method compares a running product of uniforms
/// against `exp(-rate)`, which underflows to zero for `rate ≳ 745`;
/// the comparison then never fires, and the previous implementation
/// papered over the resulting infinite loop with a silent cap of
/// 10,000 arrivals — quietly biasing heavy-traffic runs. Splitting the
/// rate into equal chunks of at most `POISSON_CHUNK` (32) and summing one
/// exact product-method sample per chunk fixes this without any cap:
/// the sum of independent Poisson draws is Poisson in the summed rate.
/// Cost is O(rate) uniforms, the same as the unsplit method.
///
/// # Panics
/// Panics if `rate` is negative, NaN, or infinite.
pub fn poisson<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> u64 {
    assert!(
        rate.is_finite() && rate >= 0.0,
        "poisson rate must be finite and non-negative"
    );
    if rate == 0.0 {
        return 0;
    }
    let chunks = (rate / POISSON_CHUNK).ceil();
    let per_chunk = rate / chunks;
    let threshold = (-per_chunk).exp();
    let mut total = 0u64;
    for _ in 0..chunks as u64 {
        let mut product: f64 = rng.gen();
        while product > threshold {
            total += 1;
            product *= rng.gen::<f64>();
        }
    }
    total
}

/// How new sessions arrive, cycle by cycle.
///
/// Both variants are sampled per cycle; [`Mmpp`](ArrivalProcess::Mmpp)
/// carries its own modulation state, which is why
/// [`arrivals`](ArrivalProcess::arrivals) takes `&mut self`.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Time-homogeneous Poisson arrivals at `rate` per cycle.
    Poisson {
        /// Mean arrivals per cycle.
        rate: f64,
    },
    /// Two-state Markov-modulated Poisson process: a quiet state and a
    /// burst state, each Poisson at its own rate, switching between
    /// them with fixed per-cycle probabilities. The standard minimal
    /// model for bursty (prime-time / flash-crowd) traffic.
    Mmpp {
        /// Arrival rate per cycle in [quiet, burst] state.
        rates: [f64; 2],
        /// Per-cycle probability of leaving [quiet, burst] state.
        switch: [f64; 2],
        /// Current state: 0 = quiet, 1 = burst.
        state: usize,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at `rate` per cycle.
    ///
    /// # Panics
    /// Panics if `rate` is negative or non-finite.
    #[must_use]
    pub fn poisson(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be finite and non-negative"
        );
        ArrivalProcess::Poisson { rate }
    }

    /// Bursty (two-state MMPP) arrivals, starting in the quiet state:
    /// `quiet_rate` per cycle normally, `burst_rate` during bursts,
    /// entering a burst with per-cycle probability `p_enter` and leaving
    /// with `p_exit`.
    ///
    /// # Panics
    /// Panics if a rate is negative/non-finite or a probability is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn bursty(quiet_rate: f64, burst_rate: f64, p_enter: f64, p_exit: f64) -> Self {
        for r in [quiet_rate, burst_rate] {
            assert!(
                r.is_finite() && r >= 0.0,
                "rate must be finite and non-negative"
            );
        }
        for p in [p_enter, p_exit] {
            assert!(
                (0.0..=1.0).contains(&p),
                "switch probability must be in [0, 1]"
            );
        }
        ArrivalProcess::Mmpp {
            rates: [quiet_rate, burst_rate],
            switch: [p_enter, p_exit],
            state: 0,
        }
    }

    /// Sample this cycle's arrival count (advancing the MMPP state).
    pub fn arrivals<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        match self {
            ArrivalProcess::Poisson { rate } => poisson(*rate, rng),
            ArrivalProcess::Mmpp {
                rates,
                switch,
                state,
            } => {
                if rng.gen_bool(switch[*state]) {
                    *state = 1 - *state;
                }
                poisson(rates[*state], rng)
            }
        }
    }

    /// The long-run mean arrival rate per cycle (the stationary mix of
    /// the two MMPP states; for a never-switching chain, the rate of
    /// the current state).
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Mmpp {
                rates,
                switch,
                state,
            } => {
                let denom = switch[0] + switch[1];
                if denom == 0.0 {
                    rates[*state]
                } else {
                    // Stationary P(quiet) = p_exit / (p_enter + p_exit).
                    let p_quiet = switch[1] / denom;
                    p_quiet * rates[0] + (1.0 - p_quiet) * rates[1]
                }
            }
        }
    }
}

/// Poisson-arrival workload over a catalog of objects.
///
/// The stateless open-loop source: streams are admitted and watched to
/// the end. For session lifecycles (VBR, abandonment, QoS policies) use
/// [`SessionEngine`].
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    objects: Vec<ObjectId>,
    zipf: Zipf,
    /// Mean new-stream arrivals per cycle.
    rate: f64,
}

impl WorkloadGen {
    /// Build a generator: `rate` mean arrivals per cycle, Zipf(θ)
    /// popularity over `objects` (ordered most- to least-popular).
    ///
    /// # Panics
    /// Panics if `objects` is empty or `rate` is negative.
    #[must_use]
    pub fn new(objects: Vec<ObjectId>, theta: f64, rate: f64) -> Self {
        assert!(!objects.is_empty(), "need at least one object");
        assert!(rate >= 0.0, "rate must be non-negative");
        let zipf = Zipf::new(objects.len(), theta);
        WorkloadGen {
            objects,
            zipf,
            rate,
        }
    }

    /// Number of arrivals this cycle (exact Poisson at any rate — see
    /// [`poisson`] for why the naive product method is not used).
    pub fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        poisson(self.rate, rng) as usize
    }

    /// Pick an object by popularity.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> ObjectId {
        self.objects[self.zipf.sample(rng)]
    }

    /// The catalog, most popular first.
    #[must_use]
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }
}

/// What to do with an arrival that finds the server at capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Turn the viewer away (blocked-calls-cleared). The classical
    /// admission model; blocked arrivals count toward
    /// [`SessionStats::rejected`].
    Reject,
    /// Shed load before the cliff: once active streams reach
    /// `threshold` × capacity, new sessions are admitted at `quality`
    /// (a duration multiplier < 1 — the viewer gets the lower rung of
    /// the bitrate ladder and the slot frees sooner). Arrivals that
    /// find the server completely full are still rejected.
    Degrade {
        /// Utilization fraction (active / capacity) above which new
        /// sessions are degraded.
        threshold: f64,
        /// Duration multiplier applied to degraded sessions (`0 < q ≤ 1`).
        quality: f64,
    },
    /// Hold blocked arrivals in a FIFO queue; each is admitted when a
    /// slot frees, or gives up (balks) after waiting `max_wait` cycles.
    /// Queue depth is bounded by `arrival rate × max_wait`.
    Queue {
        /// Cycles a viewer will wait before abandoning the queue.
        max_wait: u64,
    },
}

/// Counters and streaming percentiles for one engine run.
///
/// Waits are recorded for every admission (0 for immediate ones), so
/// under [`AdmissionPolicy::Queue`] the percentiles describe the
/// admission latency a viewer actually experienced.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Total arrivals offered to the server.
    pub offered: u64,
    /// Sessions admitted (immediately or from the queue).
    pub admitted: u64,
    /// Arrivals turned away at capacity.
    pub rejected: u64,
    /// Admitted sessions that were quality-degraded under load.
    pub degraded: u64,
    /// Arrivals that entered the wait queue.
    pub queued: u64,
    /// Queued viewers that gave up after `max_wait` cycles.
    pub balked: u64,
    /// Sessions the engine ended early (abandonment, short VBR holds,
    /// degraded quality) via [`SchemeScheduler::release`].
    pub released_early: u64,
    /// Median admission wait, in cycles.
    pub wait_p50: P2Quantile,
    /// 95th-percentile admission wait, in cycles.
    pub wait_p95: P2Quantile,
    /// 99th-percentile admission wait, in cycles.
    pub wait_p99: P2Quantile,
}

impl Default for SessionStats {
    fn default() -> Self {
        SessionStats {
            offered: 0,
            admitted: 0,
            rejected: 0,
            degraded: 0,
            queued: 0,
            balked: 0,
            released_early: 0,
            wait_p50: P2Quantile::new(0.5),
            wait_p95: P2Quantile::new(0.95),
            wait_p99: P2Quantile::new(0.99),
        }
    }
}

impl SessionStats {
    fn record_wait(&mut self, wait_cycles: u64) {
        let w = wait_cycles as f64;
        self.wait_p50.observe(w);
        self.wait_p95.observe(w);
        self.wait_p99.observe(w);
        mms_telemetry::quantile!("workload.wait_cycles", w);
    }

    /// Fraction of offered sessions denied service (rejected or balked).
    #[must_use]
    pub fn blocking_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.rejected + self.balked) as f64 / self.offered as f64
    }
}

/// An arrival waiting in the admission queue.
#[derive(Debug, Clone, Copy)]
struct Pending {
    arrived: u64,
    object: ObjectId,
    hold: u64,
}

/// The session-lifecycle engine: arrivals → admission policy → timed
/// release.
///
/// Construction takes the catalog as `(object, nominal_cycles)` pairs,
/// most popular first, where `nominal_cycles` is how long a session
/// holds its stream slot when the viewer watches the whole object at
/// nominal quality (for Streaming RAID and Improved Bandwidth that is
/// the object's group count; staggered schemes multiply by the group
/// period — the caller knows its scheme's cycle geometry).
///
/// **VBR ladder.** Each session draws a multiplier from the ladder
/// (uniformly); its slot-hold time scales by it. The layouts pin `k'`
/// per scheme, so per-stream bitrate variation is modeled as
/// service-time variation — the quantity admission control actually
/// competes over. Multipliers > 1 that push past the object's end are
/// harmless: the stream finishes naturally and the scheduled release
/// finds it already gone.
///
/// **Abandonment.** With probability `abandon_prob` a viewer leaves
/// after a uniform fraction of their intended session.
///
/// Drive it with [`Simulator::run_sessions`] or call
/// [`tick`](SessionEngine::tick) manually before each simulator step.
///
/// [`Simulator::run_sessions`]: crate::Simulator::run_sessions
#[derive(Debug)]
pub struct SessionEngine {
    /// `(object, nominal session cycles)`, most popular first.
    objects: Vec<(ObjectId, u64)>,
    zipf: Zipf,
    arrivals: ArrivalProcess,
    vbr: Vec<f64>,
    abandon_prob: f64,
    policy: AdmissionPolicy,
    /// FIFO of arrivals waiting for a slot ([`AdmissionPolicy::Queue`]).
    queue: VecDeque<Pending>,
    /// Scheduled early releases, keyed by due cycle (min-heap).
    releases: BinaryHeap<Reverse<(u64, StreamId)>>,
    stats: SessionStats,
    /// Arrival batch pre-sampled for a future cycle by
    /// [`next_event_before`](Self::next_event_before); `tick` consumes
    /// it when that cycle comes up, instead of re-drawing.
    pending_arrival: Option<(u64, u64)>,
    /// Cycles strictly below this have had their arrival count sampled
    /// (all zero except the one cached in `pending_arrival`).
    sampled_through: u64,
}

impl SessionEngine {
    /// Build an engine over `objects` (`(id, nominal_cycles)`, most
    /// popular first) with Zipf(θ) popularity.
    ///
    /// # Panics
    /// Panics if `objects` is empty, θ is negative, an object's nominal
    /// length is zero, or a `Degrade`/`Queue` policy parameter is out
    /// of range (`0 < quality ≤ 1`, `0 ≤ threshold ≤ 1`).
    #[must_use]
    pub fn new(
        objects: Vec<(ObjectId, u64)>,
        theta: f64,
        arrivals: ArrivalProcess,
        policy: AdmissionPolicy,
    ) -> Self {
        assert!(!objects.is_empty(), "need at least one object");
        assert!(
            objects.iter().all(|&(_, cycles)| cycles > 0),
            "every object needs a positive nominal session length"
        );
        if let AdmissionPolicy::Degrade { threshold, quality } = policy {
            assert!(
                (0.0..=1.0).contains(&threshold),
                "degrade threshold must be in [0, 1]"
            );
            assert!(
                quality > 0.0 && quality <= 1.0,
                "degrade quality must be in (0, 1]"
            );
        }
        let zipf = Zipf::new(objects.len(), theta);
        SessionEngine {
            objects,
            zipf,
            arrivals,
            vbr: vec![1.0],
            abandon_prob: 0.0,
            policy,
            queue: VecDeque::new(),
            releases: BinaryHeap::new(),
            stats: SessionStats::default(),
            pending_arrival: None,
            sampled_through: 0,
        }
    }

    /// Use a VBR bitrate ladder: each session uniformly draws one
    /// multiplier, scaling how long it holds its slot.
    ///
    /// # Panics
    /// Panics if the ladder is empty or contains a non-positive rung.
    #[must_use]
    pub fn with_vbr(mut self, ladder: Vec<f64>) -> Self {
        assert!(!ladder.is_empty(), "VBR ladder needs at least one rung");
        assert!(
            ladder.iter().all(|&m| m.is_finite() && m > 0.0),
            "VBR multipliers must be positive and finite"
        );
        self.vbr = ladder;
        self
    }

    /// Let viewers abandon: with probability `prob` a session ends after
    /// a uniform fraction of its intended length.
    ///
    /// # Panics
    /// Panics if `prob` is outside `[0, 1]`.
    #[must_use]
    pub fn with_abandonment(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.abandon_prob = prob;
        self
    }

    /// Cumulative counters and percentiles.
    #[must_use]
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Viewers currently waiting for admission.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Early releases scheduled but not yet due.
    #[must_use]
    pub fn pending_releases(&self) -> usize {
        self.releases.len()
    }

    /// The admission policy in force.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Sample one session's slot-hold time for an object of `nominal`
    /// cycles: VBR rung × (abandonment fraction), at least one cycle.
    fn sample_hold<R: Rng + ?Sized>(&self, nominal: u64, rng: &mut R) -> u64 {
        let rung = self.vbr[(rng.gen::<u64>() % self.vbr.len() as u64) as usize];
        let watched = if self.abandon_prob > 0.0 && rng.gen_bool(self.abandon_prob) {
            rng.gen::<f64>()
        } else {
            1.0
        };
        ((nominal as f64 * rung * watched).ceil() as u64).max(1)
    }

    /// Try to admit one session, applying the degrade policy and
    /// scheduling its release on success. Returns whether it got in.
    fn admit_session<S: SchemeScheduler>(
        &mut self,
        sched: &mut S,
        cycle: u64,
        object: ObjectId,
        hold: u64,
        wait: u64,
    ) -> bool {
        let mut hold = hold;
        let mut degrade = false;
        if let AdmissionPolicy::Degrade { threshold, quality } = self.policy {
            let capacity = sched.stream_capacity();
            if capacity > 0 && sched.active_streams() as f64 >= threshold * capacity as f64 {
                hold = ((hold as f64 * quality).ceil() as u64).max(1);
                degrade = true;
            }
        }
        // lint:allow(transitive-alloc): admission allocates the stream's state once per session, not per cycle
        match sched.admit(object, cycle) {
            Ok(id) => {
                self.stats.admitted += 1;
                if degrade {
                    self.stats.degraded += 1;
                }
                self.stats.record_wait(wait);
                self.releases.push(Reverse((cycle + hold, id)));
                true
            }
            Err(_) => false,
        }
    }

    /// Advance one cycle: fire due releases, drain the wait queue into
    /// freed slots, then offer this cycle's arrivals. Call immediately
    /// before the simulator plans `cycle`.
    pub fn tick<S: SchemeScheduler, R: Rng + ?Sized>(
        &mut self,
        cycle: u64,
        sched: &mut S,
        rng: &mut R,
    ) {
        // 1. End sessions whose holds expired. `release` returns false
        //    when the stream already finished naturally (VBR rungs > 1
        //    or exact-length holds), which is not an early end.
        while let Some(&Reverse((due, id))) = self.releases.peek() {
            if due > cycle {
                break;
            }
            self.releases.pop();
            if sched.release(id) {
                self.stats.released_early += 1;
            }
        }

        // 2. FIFO-admit waiting viewers into whatever freed up,
        //    expiring those who waited past their patience.
        if let AdmissionPolicy::Queue { max_wait } = self.policy {
            while let Some(&front) = self.queue.front() {
                if cycle.saturating_sub(front.arrived) > max_wait {
                    self.queue.pop_front();
                    self.stats.balked += 1;
                    continue;
                }
                if self.admit_session(
                    sched,
                    cycle,
                    front.object,
                    front.hold,
                    cycle - front.arrived,
                ) {
                    self.queue.pop_front();
                } else {
                    break;
                }
            }
        }

        // 3. This cycle's arrivals. Session parameters are sampled
        //    before the admission attempt so the random stream is
        //    identical whatever the outcome.
        let arrivals = self.draw_arrivals(cycle, rng);
        for _ in 0..arrivals {
            self.stats.offered += 1;
            let (object, nominal) = self.objects[self.zipf.sample(rng)];
            let hold = self.sample_hold(nominal, rng);
            // A non-empty queue means earlier viewers are still
            // waiting; newcomers join behind them, never jump ahead.
            let must_wait =
                matches!(self.policy, AdmissionPolicy::Queue { .. }) && !self.queue.is_empty();
            if !must_wait && self.admit_session(sched, cycle, object, hold, 0) {
                continue;
            }
            match self.policy {
                AdmissionPolicy::Queue { .. } => {
                    self.queue.push_back(Pending {
                        arrived: cycle,
                        object,
                        hold,
                    });
                    self.stats.queued += 1;
                }
                AdmissionPolicy::Reject | AdmissionPolicy::Degrade { .. } => {
                    self.stats.rejected += 1;
                }
            }
        }
    }

    /// This cycle's arrival count: the pre-sampled batch if
    /// [`next_event_before`](Self::next_event_before) already drew it,
    /// a fresh draw otherwise. Cycles are sampled exactly once, in
    /// order, so the RNG stream is identical whether or not lookahead
    /// ran.
    fn draw_arrivals<R: Rng + ?Sized>(&mut self, cycle: u64, rng: &mut R) -> u64 {
        if cycle < self.sampled_through {
            return match self.pending_arrival {
                Some((due, n)) if due == cycle => {
                    self.pending_arrival = None;
                    n
                }
                _ => 0,
            };
        }
        self.sampled_through = cycle + 1;
        self.arrivals.arrivals(rng)
    }

    /// The first cycle in `[from, until)` at which [`tick`](Self::tick)
    /// would do anything — fire a release, age the wait queue, or admit
    /// arrivals — or `until` if the whole range is event-free.
    ///
    /// Arrival counts for the scanned cycles are sampled here, in cycle
    /// order (cached for `tick` to consume), so calling this does not
    /// perturb the engine's random stream relative to per-cycle
    /// ticking. The simulator's event-horizon mode uses the result to
    /// bound how far it may fast-forward without skipping a session
    /// event.
    pub fn next_event_before<R: Rng + ?Sized>(
        &mut self,
        from: u64,
        until: u64,
        rng: &mut R,
    ) -> u64 {
        if until <= from {
            return until;
        }
        // Waiting viewers age every cycle (balk timing), so any queue
        // content pins the next event to `from`.
        if !self.queue.is_empty() {
            return from;
        }
        let mut bound = until;
        if let Some(&Reverse((due, _))) = self.releases.peek() {
            if due <= from {
                return from;
            }
            bound = bound.min(due);
        }
        if let Some((due, _)) = self.pending_arrival {
            return due.clamp(from, bound);
        }
        let mut cycle = self.sampled_through.max(from);
        while cycle < bound {
            self.sampled_through = cycle + 1;
            let n = self.arrivals.arrivals(rng);
            if n > 0 {
                self.pending_arrival = Some((cycle, n));
                return cycle;
            }
            cycle += 1;
        }
        bound
    }
}

/// The repo's reference RNG: bare SplitMix64 (Steele, Lea & Flood 2014),
/// the same mixer that seeds the vendored xoshiro behind
/// `rand::rngs::StdRng` and splits seeds in `mms-exec`.
///
/// Tests that must stay byte-stable across RNG crate upgrades use this
/// directly — its entire definition is the one mixing function
/// [`rand::splitmix64_mix`], so a rand version bump cannot silently
/// change their sample streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// SplitMix64's golden-ratio increment.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// A generator seeded at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        rand::splitmix64_mix(self.state)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Workload tests run on the repo's own SplitMix64 rather than
    // `rand::rngs::StdRng` so their expectations are pinned against
    // vendored-rand version bumps (StdRng is *currently* a
    // SplitMix64-seeded xoshiro, but that is an implementation detail
    // of the vendored crate, not a contract).
    fn rng(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }

    #[test]
    fn splitmix_matches_the_reference_mixer() {
        // First output = mix(seed + gamma): pin the exact stream.
        let mut r = rng(0);
        let expect = rand::splitmix64_mix(0x9E37_79B9_7F4A_7C15);
        assert_eq!(r.next_u64(), expect);
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = rng(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = rng(2);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With θ=1 over 100 items, the top 10 carry ~56% of mass.
        let frac = head as f64 / n as f64;
        assert!((0.5..0.63).contains(&frac), "{frac}");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 0.5);
        let mut rng = rng(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn poisson_mean_is_rate() {
        let gen = WorkloadGen::new(vec![ObjectId(0)], 0.0, 2.5);
        let mut rng = rng(4);
        let n = 20_000;
        let total: usize = (0..n).map(|_| gen.arrivals(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "{mean}");
    }

    #[test]
    fn poisson_heavy_traffic_mean_is_exact() {
        // Regression for the product-method underflow: at rate 1000 the
        // old implementation's exp(-1000) rounded to a subnormal and
        // every draw marched to the silent 10_000 cap. Rate splitting
        // must put the sample mean within ±2% of the rate.
        let mut rng = rng(5);
        let n = 2_000u64;
        let total: u64 = (0..n).map(|_| poisson(1000.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 1000.0).abs() < 20.0,
            "mean {mean} off by more than 2%"
        );
        // And the variance should also be ≈ rate, not collapsed at a cap.
        let mut rng = SplitMix64::new(5);
        let var: f64 = (0..n)
            .map(|_| {
                let x = poisson(1000.0, &mut rng) as f64;
                (x - mean) * (x - mean)
            })
            .sum::<f64>()
            / n as f64;
        assert!((500.0..1500.0).contains(&var), "variance {var}");
    }

    #[test]
    fn poisson_extreme_rate_does_not_hang_or_cap() {
        // exp(-3000) is exactly 0.0 in f64; unsplit Knuth would loop to
        // its cap. Split sampling stays exact.
        let mut rng = rng(6);
        let x = poisson(3000.0, &mut rng);
        assert!((2700..3300).contains(&x), "{x}");
    }

    #[test]
    fn zero_rate_never_arrives() {
        let gen = WorkloadGen::new(vec![ObjectId(0)], 0.0, 0.0);
        let mut rng = rng(7);
        for _ in 0..100 {
            assert_eq!(gen.arrivals(&mut rng), 0);
        }
    }

    #[test]
    fn pick_respects_catalog() {
        let objs = vec![ObjectId(7), ObjectId(8), ObjectId(9)];
        let gen = WorkloadGen::new(objs.clone(), 0.271, 1.0);
        let mut rng = rng(8);
        for _ in 0..100 {
            assert!(objs.contains(&gen.pick(&mut rng)));
        }
    }

    #[test]
    fn mmpp_mixes_quiet_and_burst_rates() {
        // Quiet 1/cycle, burst 50/cycle, symmetric switching: the
        // long-run mean is the stationary mix (25.5), far from either
        // pure rate.
        let mut p = ArrivalProcess::bursty(1.0, 50.0, 0.05, 0.05);
        assert!((p.mean_rate() - 25.5).abs() < 1e-9);
        let mut rng = rng(9);
        let n = 40_000u64;
        let total: u64 = (0..n).map(|_| p.arrivals(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 25.5).abs() < 1.5,
            "mean {mean} not near stationary 25.5"
        );
    }

    #[test]
    fn mmpp_without_switching_stays_quiet() {
        let mut p = ArrivalProcess::bursty(2.0, 500.0, 0.0, 0.0);
        assert!((p.mean_rate() - 2.0).abs() < 1e-12);
        let mut rng = rng(10);
        let total: u64 = (0..5_000).map(|_| p.arrivals(&mut rng)).sum();
        let mean = total as f64 / 5_000.0;
        assert!((mean - 2.0).abs() < 0.1, "{mean}");
    }

    #[test]
    fn session_hold_respects_vbr_and_abandonment_bounds() {
        let engine = SessionEngine::new(
            vec![(ObjectId(0), 100)],
            0.0,
            ArrivalProcess::poisson(1.0),
            AdmissionPolicy::Reject,
        )
        .with_vbr(vec![0.5, 1.0])
        .with_abandonment(0.5);
        let mut rng = rng(11);
        for _ in 0..5_000 {
            let h = engine.sample_hold(100, &mut rng);
            // Shortest: full abandonment at the 0.5 rung (≥ 1 cycle);
            // longest: full watch at the 1.0 rung.
            assert!((1..=100).contains(&h), "{h}");
        }
    }

    #[test]
    fn sampled_holds_average_below_nominal_under_abandonment() {
        let engine = SessionEngine::new(
            vec![(ObjectId(0), 200)],
            0.0,
            ArrivalProcess::poisson(1.0),
            AdmissionPolicy::Reject,
        )
        .with_abandonment(1.0);
        let mut rng = rng(12);
        let n = 10_000u64;
        let total: u64 = (0..n).map(|_| engine.sample_hold(200, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        // Every viewer abandons at a uniform fraction: mean ≈ 100.
        assert!((90.0..110.0).contains(&mean), "{mean}");
    }
}
