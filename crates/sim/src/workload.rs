//! Workload generation: Poisson arrivals over a Zipf-popular catalog.
//!
//! The paper sizes systems for "6500 concurrent MPEG-2 users or 20,000
//! MPEG-1 users" watching movies; this module generates that kind of
//! movie-on-demand request stream for the simulator and benches.

use mms_layout::ObjectId;
use rand::Rng;

/// A Zipf(θ) popularity distribution over `n` items — the standard model
/// for video-on-demand title popularity.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i] = P(rank ≤ i)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution with exponent `theta` over `n` ranks.
    /// `theta = 0` is uniform; classic video rental fits use θ ≈ 0.271.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard the tail against floating point dust.
        *weights
            .last_mut()
            .expect("a zipf distribution has at least one weight") = 1.0;
        Zipf { cdf: weights }
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u)
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether empty (never: construction requires `n > 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Poisson-arrival workload over a catalog of objects.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    objects: Vec<ObjectId>,
    zipf: Zipf,
    /// Mean new-stream arrivals per cycle.
    rate: f64,
}

impl WorkloadGen {
    /// Build a generator: `rate` mean arrivals per cycle, Zipf(θ)
    /// popularity over `objects` (ordered most- to least-popular).
    ///
    /// # Panics
    /// Panics if `objects` is empty or `rate` is negative.
    #[must_use]
    pub fn new(objects: Vec<ObjectId>, theta: f64, rate: f64) -> Self {
        assert!(!objects.is_empty(), "need at least one object");
        assert!(rate >= 0.0, "rate must be non-negative");
        let zipf = Zipf::new(objects.len(), theta);
        WorkloadGen {
            objects,
            zipf,
            rate,
        }
    }

    /// Number of arrivals this cycle (Poisson via Knuth's product
    /// method — the per-cycle rate is small).
    pub fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let l = (-self.rate).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // defensive cap; unreachable for sane rates
            }
        }
    }

    /// Pick an object by popularity.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> ObjectId {
        self.objects[self.zipf.sample(rng)]
    }

    /// The catalog, most popular first.
    #[must_use]
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With θ=1 over 100 items, the top 10 carry ~56% of mass.
        let frac = head as f64 / n as f64;
        assert!((0.5..0.63).contains(&frac), "{frac}");
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(7, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn poisson_mean_is_rate() {
        let gen = WorkloadGen::new(vec![ObjectId(0)], 0.0, 2.5);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let total: usize = (0..n).map(|_| gen.arrivals(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "{mean}");
    }

    #[test]
    fn zero_rate_never_arrives() {
        let gen = WorkloadGen::new(vec![ObjectId(0)], 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(gen.arrivals(&mut rng), 0);
        }
    }

    #[test]
    fn pick_respects_catalog() {
        let objs = vec![ObjectId(7), ObjectId(8), ObjectId(9)];
        let gen = WorkloadGen::new(objs.clone(), 0.271, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            assert!(objs.contains(&gen.pick(&mut rng)));
        }
    }
}
