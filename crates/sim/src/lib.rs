//! # mms-sim — discrete-event simulation of the multimedia server
//!
//! Executes a scheme scheduler's per-cycle plans against a real
//! [`mms_disk::DiskArray`] with real XOR parity over synthetic track
//! contents, so the whole stack — layout, slot capacities, degraded-mode
//! transitions, on-the-fly reconstruction — is exercised end to end, not
//! just unit by unit.
//!
//! Pieces:
//!
//! * [`Simulator`] — drives any [`mms_sched::SchemeScheduler`] cycle by
//!   cycle: issues the planned reads to the disk array (enforcing the
//!   `T(r) ≤ T_cyc` slot budget), verifies every delivered block's bytes
//!   against the synthetic ground truth (reconstructed blocks are rebuilt
//!   through `mms-parity`, exactly as a real server would), and
//!   accumulates [`Metrics`].
//! * [`WorkloadGen`] — Poisson stream arrivals over a Zipf-popularity
//!   catalog of MPEG-1/MPEG-2 movies (the movie-on-demand workload the
//!   paper's introduction motivates).
//! * [`SessionEngine`] — the heavy-traffic session lifecycle on top of
//!   it: bursty (MMPP) arrival modulation, per-stream VBR holds, viewer
//!   abandonment, and the Reject / Degrade / Queue admission policies,
//!   with streaming (P²) admission-wait percentiles.
//! * [`FailureSchedule`] — deterministic or stochastic disk-failure
//!   injection, sharing `mms-disk`'s exponential processes.
//! * [`RebuildManager`] — the third operating mode (rebuild): restore a
//!   failed disk onto a spare from parity using idle slots, or from
//!   tertiary storage at tape speed after a catastrophe.
//! * [`trace`] — ASCII rendering of read schedules in the style of the
//!   paper's Figures 3, 5, 6, 7, and 8.
//! * [`batch`] — deterministic parallel execution of independent
//!   scenario grids (ablations, design drills) over `mms-exec`'s worker
//!   pool.
//! * [`scenario`] — the declarative fault-injection model: seeded
//!   scripts of timed failure/repair/rebuild events with paper-derived
//!   invariants, executed by `mms-server`'s `ScenarioRunner`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod failure;
mod metrics;
mod rebuild;
pub mod scenario;
mod simulator;
pub mod trace;
mod verify;
mod workload;

pub use batch::{run_batch, run_batch_seeded};
pub use failure::{FailureEvent, FailureSchedule};
pub use metrics::{BufferSeries, CycleReport, Metrics};
pub use rebuild::{Rebuild, RebuildManager, RebuildSource};
pub use scenario::{Check, Expectation, Horizon, Scenario, ScenarioEvent, ScenarioReport};
pub use simulator::{DataMode, ObjectDirectory, SimError, Simulator, StepMode};
pub use verify::BlockOracle;
pub use workload::{
    poisson, AdmissionPolicy, ArrivalProcess, SessionEngine, SessionStats, SplitMix64, WorkloadGen,
    Zipf,
};
