//! ASCII rendering of read schedules in the style of the paper's figures.
//!
//! Each rendered grid has one row per cycle and one column per disk; a
//! cell lists the blocks read from that disk in that cycle, labelled
//! `<obj>.<group>.<idx>` for data and `<obj>.<group>.p` for parity —
//! mirroring the `X0 Y0 Z0 … X0p` columns of Figures 3, 5, and 8.

use mms_disk::DiskId;
use mms_layout::BlockKind;
use mms_sched::CyclePlan;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render the read schedules of `plans` over `disks` drives.
///
/// `names` optionally maps object ids to short labels (`A`, `X`, …); ids
/// are printed numerically otherwise.
#[must_use]
pub fn render_schedule(plans: &[CyclePlan], disks: usize, names: &BTreeMap<u64, &str>) -> String {
    let mut out = String::new();
    // Header.
    let _ = write!(out, "{:>7} |", "cycle");
    for d in 0..disks {
        let _ = write!(out, " {:<12}", format!("disk{d}"));
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(9 + 13 * disks));
    for plan in plans {
        let _ = write!(out, "{:>7} |", plan.cycle);
        for d in 0..disks {
            let cell: Vec<String> = plan
                .reads_on(DiskId(d as u32))
                .iter()
                .map(|r| {
                    let obj = names
                        .get(&r.addr.object.0)
                        .map_or_else(|| r.addr.object.0.to_string(), |s| (*s).to_string());
                    match r.addr.kind {
                        BlockKind::Data(i) => format!("{obj}.{}.{i}", r.addr.group),
                        BlockKind::Parity => format!("{obj}.{}.p", r.addr.group),
                    }
                })
                .collect();
            let _ = write!(out, " {:<12}", cell.join(","));
        }
        out.push('\n');
    }
    out
}

/// Render a one-line summary of a plan's deliveries and hiccups.
#[must_use]
pub fn render_deliveries(plan: &CyclePlan, names: &BTreeMap<u64, &str>) -> String {
    let label = |object: u64| {
        names
            .get(&object)
            .map_or_else(|| object.to_string(), |s| (*s).to_string())
    };
    let delivered: Vec<String> = plan
        .deliveries
        .iter()
        .map(|d| {
            let tag = if d.reconstructed { "*" } else { "" };
            match d.addr.kind {
                BlockKind::Data(i) => {
                    format!("{}{}.{}.{i}", tag, label(d.addr.object.0), d.addr.group)
                }
                BlockKind::Parity => {
                    format!("{}{}.{}.p", tag, label(d.addr.object.0), d.addr.group)
                }
            }
        })
        .collect();
    let hiccups: Vec<String> = plan
        .hiccups
        .iter()
        .map(|h| match h.addr.kind {
            BlockKind::Data(i) => {
                format!(
                    "!{}.{}.{i}[{}]",
                    label(h.addr.object.0),
                    h.addr.group,
                    h.reason
                )
            }
            BlockKind::Parity => format!("!{}.{}.p", label(h.addr.object.0), h.addr.group),
        })
        .collect();
    format!(
        "cycle {:>4}: deliver [{}] hiccup [{}]",
        plan.cycle,
        delivered.join(" "),
        hiccups.join(" ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_layout::{BlockAddr, ObjectId};
    use mms_sched::{PlannedRead, ReadPurpose, StreamId};

    fn sample_plan() -> CyclePlan {
        let mut p = CyclePlan::empty(1);
        p.push_read(
            DiskId(0),
            PlannedRead {
                stream: StreamId(0),
                addr: BlockAddr::data(ObjectId(0), 0, 0),
                purpose: ReadPurpose::Delivery,
            },
        );
        p.push_read(
            DiskId(4),
            PlannedRead {
                stream: StreamId(0),
                addr: BlockAddr::parity(ObjectId(0), 0),
                purpose: ReadPurpose::Parity,
            },
        );
        p
    }

    #[test]
    fn schedule_grid_contains_labels() {
        let names = BTreeMap::from([(0u64, "X")]);
        let s = render_schedule(&[sample_plan()], 5, &names);
        assert!(s.contains("X.0.0"), "{s}");
        assert!(s.contains("X.0.p"), "{s}");
        assert!(s.contains("disk4"), "{s}");
    }

    #[test]
    fn unnamed_objects_print_ids() {
        let s = render_schedule(&[sample_plan()], 5, &BTreeMap::new());
        assert!(s.contains("0.0.0"), "{s}");
    }

    #[test]
    fn delivery_line_marks_reconstructions() {
        let mut p = CyclePlan::empty(3);
        p.deliveries.push(mms_sched::Delivery {
            stream: StreamId(1),
            addr: BlockAddr::data(ObjectId(2), 1, 2),
            reconstructed: true,
        });
        let names = BTreeMap::from([(2u64, "Y")]);
        let line = render_deliveries(&p, &names);
        assert!(line.contains("*Y.1.2"), "{line}");
    }
}

/// Render a buffer-occupancy series as an ASCII bar chart (one row per
/// cycle), in the style of the paper's Figure 4.
#[must_use]
pub fn render_buffer_series(series: &[usize], max_rows: usize) -> String {
    let mut out = String::new();
    let peak = series.iter().copied().max().unwrap_or(0).max(1);
    let width = 48usize;
    let _ = writeln!(out, "{:>6}  {:>6}  (peak {peak})", "cycle", "tracks");
    for (t, &v) in series.iter().enumerate().take(max_rows) {
        let bar = "#".repeat(v * width / peak);
        let _ = writeln!(out, "{t:>6}  {v:>6}  {bar}");
    }
    if series.len() > max_rows {
        let _ = writeln!(
            out,
            "{:>6}  … ({} more cycles)",
            "",
            series.len() - max_rows
        );
    }
    out
}

#[cfg(test)]
mod buffer_series_tests {
    use super::*;

    #[test]
    fn renders_bars_proportionally() {
        let s = render_buffer_series(&[0, 5, 10], 10);
        assert!(s.contains("peak 10"), "{s}");
        let lines: Vec<&str> = s.lines().collect();
        let bar_len = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(bar_len(lines[1]), 0);
        assert_eq!(bar_len(lines[3]), 2 * bar_len(lines[2]));
    }

    #[test]
    fn truncates_long_series() {
        let s = render_buffer_series(&vec![1; 100], 5);
        assert!(s.contains("95 more cycles"), "{s}");
    }

    #[test]
    fn empty_series_is_safe() {
        let s = render_buffer_series(&[], 5);
        assert!(s.contains("peak 1"));
    }
}
