//! Disk-failure injection for the simulator.

use mms_disk::{failure::FailureProcess, DiskId, ReliabilityParams, Time};
use rand::Rng;

/// One injected failure or repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// Disk goes down just before the given cycle's reads.
    Fail {
        /// The cycle it takes effect.
        cycle: u64,
        /// The victim.
        disk: DiskId,
        /// Whether it strikes mid-cycle (after the read schedule for
        /// `cycle` is committed — the Improved-bandwidth unmaskable
        /// case).
        mid_cycle: bool,
    },
    /// Disk returns to service before the given cycle.
    Repair {
        /// The cycle it takes effect.
        cycle: u64,
        /// The repaired disk.
        disk: DiskId,
    },
}

impl FailureEvent {
    /// A cycle-boundary failure of `disk` at `cycle`.
    #[must_use]
    pub fn fail(cycle: u64, disk: DiskId) -> Self {
        FailureEvent::Fail {
            cycle,
            disk,
            mid_cycle: false,
        }
    }

    /// A mid-cycle failure of `disk` at `cycle` (strikes after the
    /// cycle's read schedule is committed — the Improved-bandwidth
    /// unmaskable case).
    #[must_use]
    pub fn fail_mid_cycle(cycle: u64, disk: DiskId) -> Self {
        FailureEvent::Fail {
            cycle,
            disk,
            mid_cycle: true,
        }
    }

    /// A repair of `disk` completing before `cycle`.
    #[must_use]
    pub fn repair(cycle: u64, disk: DiskId) -> Self {
        FailureEvent::Repair { cycle, disk }
    }

    /// The cycle at which the event fires.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            FailureEvent::Fail { cycle, .. } | FailureEvent::Repair { cycle, .. } => cycle,
        }
    }

    /// The disk the event concerns.
    #[must_use]
    pub fn disk(&self) -> DiskId {
        match *self {
            FailureEvent::Fail { disk, .. } | FailureEvent::Repair { disk, .. } => disk,
        }
    }
}

/// A deterministic schedule of failure/repair events, sorted by cycle.
///
/// For reliability-horizon questions use `mms-reliability`'s Monte Carlo;
/// this injector drives *behavioral* experiments (what happens to the
/// streams when disk 2 dies mid-movie), where the paper's scenarios are
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
    next: usize,
}

impl FailureSchedule {
    /// An empty schedule.
    #[must_use]
    pub fn none() -> Self {
        FailureSchedule::default()
    }

    /// Build from events (sorted internally by cycle, stable).
    #[must_use]
    pub fn new(mut events: Vec<FailureEvent>) -> Self {
        events.sort_by_key(FailureEvent::cycle);
        FailureSchedule { events, next: 0 }
    }

    /// Convenience: a single failure at `cycle`.
    #[must_use]
    pub fn fail_at(cycle: u64, disk: DiskId) -> Self {
        FailureSchedule::new(vec![FailureEvent::Fail {
            cycle,
            disk,
            mid_cycle: false,
        }])
    }

    /// Convenience: fail at `fail_cycle`, repair at `repair_cycle`.
    #[must_use]
    pub fn fail_and_repair(fail_cycle: u64, repair_cycle: u64, disk: DiskId) -> Self {
        assert!(repair_cycle > fail_cycle);
        FailureSchedule::new(vec![
            FailureEvent::Fail {
                cycle: fail_cycle,
                disk,
                mid_cycle: false,
            },
            FailureEvent::Repair {
                cycle: repair_cycle,
                disk,
            },
        ])
    }

    /// Generate a stochastic schedule: each of `d` disks fails after an
    /// exponential lifetime and repairs after an exponential MTTR, with
    /// simulated time advancing `t_cyc` per cycle, truncated to
    /// `horizon_cycles`. An `acceleration` factor shrinks lifetimes so
    /// failures actually land within short behavioral runs.
    pub fn stochastic<R: Rng + ?Sized>(
        rng: &mut R,
        d: usize,
        rel: ReliabilityParams,
        t_cyc: Time,
        horizon_cycles: u64,
        acceleration: f64,
    ) -> Self {
        assert!(acceleration > 0.0);
        let proc = FailureProcess::new(ReliabilityParams {
            mttf: Time::from_secs(rel.mttf.as_secs() / acceleration),
            mttr: rel.mttr,
        });
        let mut events = Vec::new();
        for disk in 0..d {
            let mut t = Time::ZERO;
            loop {
                t += proc.next_failure(rng);
                let fail_cycle = (t.as_secs() / t_cyc.as_secs()) as u64;
                if fail_cycle >= horizon_cycles {
                    break;
                }
                t += proc.repair_time(rng);
                let repair_cycle = ((t.as_secs() / t_cyc.as_secs()) as u64).max(fail_cycle + 1);
                events.push(FailureEvent::Fail {
                    cycle: fail_cycle,
                    disk: DiskId(disk as u32),
                    mid_cycle: false,
                });
                if repair_cycle < horizon_cycles {
                    events.push(FailureEvent::Repair {
                        cycle: repair_cycle,
                        disk: DiskId(disk as u32),
                    });
                } else {
                    break;
                }
            }
        }
        FailureSchedule::new(events)
    }

    /// Pop the next event due at or before `cycle`, or `None` when no
    /// more are due. This is the hot-path form: the simulator drains one
    /// event at a time (`while let Some(e) = schedule.next_due(cycle)`)
    /// without building a per-cycle `Vec`.
    pub fn next_due(&mut self, cycle: u64) -> Option<FailureEvent> {
        let event = *self.events.get(self.next)?;
        if event.cycle() > cycle {
            return None;
        }
        self.next += 1;
        Some(event)
    }

    /// The cycle of the next undrained event, without consuming it.
    /// `None` when the schedule is exhausted. The event-horizon fast
    /// path uses this to bound how far it may skip: no stretch ever
    /// crosses a pending failure or repair.
    #[must_use]
    pub fn peek(&self) -> Option<u64> {
        self.events.get(self.next).map(FailureEvent::cycle)
    }

    /// Drain the events due at `cycle` into a fresh `Vec`.
    ///
    /// Allocating convenience for tests and one-shot callers; cycle
    /// loops should drain with [`next_due`](Self::next_due) instead.
    pub fn due(&mut self, cycle: u64) -> Vec<FailureEvent> {
        let mut out = Vec::new();
        while let Some(event) = self.next_due(cycle) {
            out.push(event);
        }
        out
    }

    /// Insert one more event, keeping the undrained tail sorted by
    /// cycle. An event dated before already-drained cycles is not lost:
    /// it lands at the drain cursor and fires on the next drain.
    pub fn push(&mut self, event: FailureEvent) {
        let ix =
            self.next + self.events[self.next..].partition_point(|e| e.cycle() <= event.cycle());
        self.events.insert(ix, event);
    }

    /// Remaining event count.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedule_sorts_and_drains_in_order() {
        let mut s = FailureSchedule::new(vec![
            FailureEvent::Repair {
                cycle: 9,
                disk: DiskId(1),
            },
            FailureEvent::Fail {
                cycle: 3,
                disk: DiskId(1),
                mid_cycle: false,
            },
        ]);
        assert_eq!(s.remaining(), 2);
        assert!(s.due(2).is_empty());
        let d = s.due(3);
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], FailureEvent::Fail { cycle: 3, .. }));
        let d = s.due(20);
        assert_eq!(d.len(), 1);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn fail_and_repair_helper() {
        let mut s = FailureSchedule::fail_and_repair(5, 12, DiskId(3));
        assert_eq!(s.due(5).len(), 1);
        assert!(s.due(11).is_empty());
        assert_eq!(s.due(12).len(), 1);
    }

    #[test]
    fn stochastic_produces_paired_events_within_horizon() {
        let mut rng = StdRng::seed_from_u64(9);
        let rel = ReliabilityParams::paper();
        let mut s = FailureSchedule::stochastic(
            &mut rng,
            10,
            rel,
            Time::from_secs(1.0),
            10_000,
            1e6, // heavy acceleration so failures land in-horizon
        );
        let events = s.due(10_000);
        assert!(!events.is_empty(), "acceleration should produce failures");
        for e in &events {
            assert!(e.cycle() < 10_000);
        }
    }

    #[test]
    #[should_panic(expected = "repair_cycle > fail_cycle")]
    fn repair_must_follow_failure() {
        let _ = FailureSchedule::fail_and_repair(5, 5, DiskId(0));
    }

    #[test]
    fn next_due_drains_one_event_at_a_time() {
        let mut s = FailureSchedule::new(vec![
            FailureEvent::fail(3, DiskId(0)),
            FailureEvent::fail(3, DiskId(1)),
            FailureEvent::repair(7, DiskId(0)),
        ]);
        assert_eq!(s.next_due(2), None);
        assert_eq!(s.next_due(3), Some(FailureEvent::fail(3, DiskId(0))));
        assert_eq!(s.next_due(3), Some(FailureEvent::fail(3, DiskId(1))));
        assert_eq!(s.next_due(3), None);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_due(10), Some(FailureEvent::repair(7, DiskId(0))));
        assert_eq!(s.next_due(10), None);
    }

    #[test]
    fn push_keeps_the_undrained_tail_sorted() {
        let mut s = FailureSchedule::fail_at(2, DiskId(0));
        assert!(matches!(s.next_due(2), Some(FailureEvent::Fail { .. })));
        s.push(FailureEvent::repair(9, DiskId(0)));
        s.push(FailureEvent::fail(5, DiskId(1)));
        // An event dated in the already-drained past still fires next.
        s.push(FailureEvent::fail(1, DiskId(2)));
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_due(5), Some(FailureEvent::fail(1, DiskId(2))));
        assert_eq!(s.next_due(5), Some(FailureEvent::fail(5, DiskId(1))));
        assert_eq!(s.next_due(9), Some(FailureEvent::repair(9, DiskId(0))));
    }
}
