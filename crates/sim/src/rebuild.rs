//! Rebuild mode — the third operating mode of Muntz & Lui's taxonomy,
//! which the paper defines but defers "due to lack of space".
//!
//! Two rebuild paths, both from Section 1:
//!
//! * **Parity rebuild** — a spare replaces the failed disk and its
//!   contents are regenerated group by group: each lost track is the XOR
//!   of the group's surviving members, so rebuilding one track costs one
//!   read on *every* source disk. Those reads may only use slots left
//!   idle by the delivery schedule — streams always have priority.
//! * **Tertiary rebuild** — after a catastrophic failure the lost data
//!   exists only on tertiary storage: "many tapes may need to be
//!   referenced and that is very time consuming". Modeled as a fixed
//!   (slow) track rate that does not consume disk-array slots.

use mms_disk::DiskId;
use std::fmt;

/// Where the rebuilt bytes come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildSource {
    /// On-array parity reconstruction: each rebuilt track reads one track
    /// from every listed source disk, using only their idle slots.
    Parity {
        /// The surviving disks holding the group members and parity.
        sources: Vec<DiskId>,
    },
    /// Tertiary-store reload at a fixed rate (tracks per cycle), off the
    /// disk array's bandwidth budget.
    Tertiary {
        /// Tracks restored per cycle (tape bandwidth / track size).
        tracks_per_cycle: u64,
    },
}

/// One in-progress rebuild.
#[derive(Debug, Clone)]
pub struct Rebuild {
    /// The disk being rebuilt (in `Rebuilding` state on the array).
    pub disk: DiskId,
    /// Tracks that must be restored.
    pub total_tracks: u64,
    /// Tracks restored so far.
    pub done_tracks: u64,
    /// The data source.
    pub source: RebuildSource,
}

impl Rebuild {
    /// Whether the rebuild has restored everything.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.done_tracks >= self.total_tracks
    }

    /// Fraction complete in `[0, 1]`.
    #[must_use]
    pub fn progress(&self) -> f64 {
        if self.total_tracks == 0 {
            return 1.0;
        }
        self.done_tracks as f64 / self.total_tracks as f64
    }
}

impl fmt::Display for Rebuild {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rebuild disk {}: {}/{} tracks ({:.0}%)",
            self.disk,
            self.done_tracks,
            self.total_tracks,
            self.progress() * 100.0
        )
    }
}

/// Tracks all in-progress rebuilds for the simulator.
#[derive(Debug, Clone, Default)]
pub struct RebuildManager {
    active: Vec<Rebuild>,
}

impl RebuildManager {
    /// No rebuilds in progress.
    #[must_use]
    pub fn new() -> Self {
        RebuildManager::default()
    }

    /// Begin rebuilding `disk`.
    pub fn start(&mut self, rebuild: Rebuild) {
        debug_assert!(
            !self.active.iter().any(|r| r.disk == rebuild.disk),
            "disk already rebuilding"
        );
        self.active.push(rebuild);
    }

    /// In-progress rebuilds.
    #[must_use]
    pub fn active(&self) -> &[Rebuild] {
        &self.active
    }

    /// Advance one cycle. `idle_slots(disk)` reports how many read slots
    /// remain free on a disk this cycle after the delivery schedule;
    /// `spend(disk, tracks)` charges rebuild reads against it. Returns
    /// the disks whose rebuilds completed this cycle.
    pub fn advance<F, G>(&mut self, mut idle_slots: F, mut spend: G) -> Vec<DiskId>
    where
        F: FnMut(DiskId) -> usize,
        G: FnMut(DiskId, usize),
    {
        // lint:allow(transitive-alloc): an empty Vec never touches the heap; it grows only when a rebuild completes
        let mut finished = Vec::new();
        for r in &mut self.active {
            let remaining = r.total_tracks - r.done_tracks;
            let step = match &r.source {
                RebuildSource::Parity { sources } => {
                    // One read on every source disk per rebuilt track:
                    // the bottleneck source disk's idle slots bound the
                    // cycle's progress.
                    let bound = sources.iter().map(|&d| idle_slots(d)).min().unwrap_or(0) as u64;
                    let step = bound.min(remaining);
                    if step > 0 {
                        for &d in sources {
                            spend(d, step as usize);
                        }
                    }
                    step
                }
                RebuildSource::Tertiary { tracks_per_cycle } => (*tracks_per_cycle).min(remaining),
            };
            r.done_tracks += step;
            if r.is_complete() {
                finished.push(r.disk);
            }
        }
        self.active.retain(|r| !r.is_complete());
        finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn parity_rebuild(total: u64) -> Rebuild {
        Rebuild {
            disk: DiskId(2),
            total_tracks: total,
            done_tracks: 0,
            source: RebuildSource::Parity {
                sources: vec![DiskId(0), DiskId(1), DiskId(3), DiskId(4)],
            },
        }
    }

    #[test]
    fn parity_rebuild_is_bounded_by_the_busiest_source() {
        let mut mgr = RebuildManager::new();
        mgr.start(parity_rebuild(10));
        // Disk 1 has only 2 idle slots; others have 5.
        let idle = |d: DiskId| if d == DiskId(1) { 2 } else { 5 };
        let mut spent: BTreeMap<DiskId, usize> = BTreeMap::new();
        let done = mgr.advance(idle, |d, n| *spent.entry(d).or_default() += n);
        assert!(done.is_empty());
        assert_eq!(mgr.active()[0].done_tracks, 2);
        // Every source disk paid 2 reads.
        assert!(spent.values().all(|&n| n == 2));
        assert_eq!(spent.len(), 4);
    }

    #[test]
    fn rebuild_completes_and_reports() {
        let mut mgr = RebuildManager::new();
        mgr.start(parity_rebuild(6));
        let mut finished = Vec::new();
        for _ in 0..3 {
            finished.extend(mgr.advance(|_| 2, |_, _| {}));
        }
        assert_eq!(finished, vec![DiskId(2)]);
        assert!(mgr.active().is_empty());
    }

    #[test]
    fn tertiary_rebuild_ignores_disk_slots() {
        let mut mgr = RebuildManager::new();
        mgr.start(Rebuild {
            disk: DiskId(7),
            total_tracks: 9,
            done_tracks: 0,
            source: RebuildSource::Tertiary {
                tracks_per_cycle: 4,
            },
        });
        // Zero idle slots everywhere: tertiary still proceeds.
        assert!(mgr.advance(|_| 0, |_, _| {}).is_empty());
        assert!(mgr.advance(|_| 0, |_, _| {}).is_empty());
        let done = mgr.advance(|_| 0, |_, _| {});
        assert_eq!(done, vec![DiskId(7)]);
    }

    #[test]
    fn starved_rebuild_makes_no_progress() {
        let mut mgr = RebuildManager::new();
        mgr.start(parity_rebuild(5));
        assert!(mgr.advance(|_| 0, |_, _| {}).is_empty());
        assert_eq!(mgr.active()[0].done_tracks, 0);
    }

    #[test]
    fn progress_and_display() {
        let mut r = parity_rebuild(4);
        r.done_tracks = 1;
        assert!((r.progress() - 0.25).abs() < 1e-12);
        assert!(r.to_string().contains("1/4"));
        let empty = Rebuild {
            disk: DiskId(0),
            total_tracks: 0,
            done_tracks: 0,
            source: RebuildSource::Tertiary {
                tracks_per_cycle: 1,
            },
        };
        assert!(empty.is_complete());
    }
}
