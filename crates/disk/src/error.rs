//! Error type for disk operations.

use crate::disk::DiskId;
use std::fmt;

/// Errors raised by the disk substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// A read was issued to a disk that is failed or rebuilding.
    NotOperational {
        /// The disk that was addressed.
        disk: DiskId,
    },
    /// A read batch exceeded the per-cycle slot capacity of the disk.
    CycleOverload {
        /// The disk that was addressed.
        disk: DiskId,
        /// Tracks requested in the cycle.
        requested: usize,
        /// Slot capacity of the cycle.
        capacity: usize,
    },
    /// A disk id outside the array was addressed.
    NoSuchDisk {
        /// The offending id.
        disk: DiskId,
    },
    /// Attempted to fail a disk that is already down.
    AlreadyFailed {
        /// The disk that was addressed.
        disk: DiskId,
    },
    /// Attempted to repair a disk that is operational.
    NotFailed {
        /// The disk that was addressed.
        disk: DiskId,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::NotOperational { disk } => {
                write!(f, "disk {disk} is not operational")
            }
            DiskError::CycleOverload {
                disk,
                requested,
                capacity,
            } => write!(
                f,
                "disk {disk} overloaded: {requested} tracks requested in a \
                 cycle with capacity {capacity}"
            ),
            DiskError::NoSuchDisk { disk } => write!(f, "no such disk {disk}"),
            DiskError::AlreadyFailed { disk } => {
                write!(f, "disk {disk} already failed")
            }
            DiskError::NotFailed { disk } => {
                write!(f, "disk {disk} is not failed")
            }
        }
    }
}

impl std::error::Error for DiskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DiskError::CycleOverload {
            disk: DiskId(3),
            requested: 14,
            capacity: 12,
        };
        let s = e.to_string();
        assert!(s.contains("disk 3"));
        assert!(s.contains("14"));
        assert!(s.contains("12"));
    }
}
