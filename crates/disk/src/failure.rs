//! Stochastic failure and repair processes.
//!
//! The paper's reliability algebra ("if we assume that disks fail
//! independently…") models each drive's lifetime as exponential with mean
//! `MTTF(disk)` and each repair as taking `MTTR(disk)`. This module samples
//! those processes so the Monte-Carlo reliability simulator in
//! `mms-reliability` and the failure injector in `mms-sim` share one
//! implementation.
//!
//! We sample the exponential by inversion (`-ln(U)/λ`), which needs only a
//! uniform source and keeps the crate's `rand` surface minimal.

use crate::params::ReliabilityParams;
use crate::units::Time;
use rand::Rng;

/// Sample an exponential deviate with the given mean.
///
/// Uses inversion sampling; `mean` must be positive.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: Time) -> Time {
    debug_assert!(mean.as_secs() > 0.0, "exponential mean must be positive");
    // gen::<f64>() is in [0, 1); use 1-u to avoid ln(0).
    let u: f64 = rng.gen();
    Time::from_secs(-(1.0 - u).ln() * mean.as_secs())
}

/// A per-disk failure/repair process.
///
/// `next_failure` samples the time *from now* until the disk's next
/// failure; `repair_time` samples the repair duration. Repairs are modeled
/// as exponential with mean MTTR (the paper only uses the mean, so any
/// distribution with that mean reproduces its algebra; exponential keeps
/// the Markov cross-check exact).
#[derive(Debug, Clone, Copy)]
pub struct FailureProcess {
    params: ReliabilityParams,
}

impl FailureProcess {
    /// Build from reliability parameters.
    #[must_use]
    pub fn new(params: ReliabilityParams) -> Self {
        FailureProcess { params }
    }

    /// The underlying parameters.
    #[must_use]
    pub fn params(&self) -> ReliabilityParams {
        self.params
    }

    /// Sample the time until the next failure of one disk.
    pub fn next_failure<R: Rng + ?Sized>(&self, rng: &mut R) -> Time {
        sample_exponential(rng, self.params.mttf)
    }

    /// Sample a repair duration.
    pub fn repair_time<R: Rng + ?Sized>(&self, rng: &mut R) -> Time {
        sample_exponential(rng, self.params.mttr)
    }

    /// Sample the time until the *first* failure among `d` independent
    /// disks (exponential with rate `d·λ`).
    pub fn next_failure_among<R: Rng + ?Sized>(&self, rng: &mut R, d: usize) -> Time {
        debug_assert!(d > 0);
        sample_exponential(rng, Time::from_secs(self.params.mttf.as_secs() / d as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let mean = Time::from_hours(100.0);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, mean).as_hours())
            .sum();
        let avg = total / f64::from(n);
        // Standard error ~ 100/sqrt(20000) ≈ 0.7; allow 4 sigma.
        assert!((avg - 100.0).abs() < 3.0, "avg = {avg}");
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = FailureProcess::new(ReliabilityParams::paper());
        for _ in 0..1000 {
            assert!(p.next_failure(&mut rng).as_secs() > 0.0);
            assert!(p.repair_time(&mut rng).as_secs() > 0.0);
        }
    }

    #[test]
    fn pooled_failure_scales_with_population() {
        // MTTF of "some disk in a 1000 disk system" is MTTF/1000 — the
        // paper's 300 000 h / 1000 = 300 h ≈ 12 days example.
        let mut rng = StdRng::seed_from_u64(11);
        let p = FailureProcess::new(ReliabilityParams::paper());
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| p.next_failure_among(&mut rng, 1000).as_hours())
            .sum();
        let avg = total / f64::from(n);
        assert!((avg - 300.0).abs() < 10.0, "avg = {avg}");
    }

    #[test]
    fn deterministic_under_seed() {
        let p = FailureProcess::new(ReliabilityParams::paper());
        let a = p.next_failure(&mut StdRng::seed_from_u64(42));
        let b = p.next_failure(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
