//! # mms-disk — disk subsystem substrate
//!
//! This crate implements the disk model from Section 2 ("Simple disk model")
//! of *Berson, Golubchik & Muntz, "Fault Tolerant Design of Multimedia
//! Servers", SIGMOD 1995*, plus the operational machinery the paper assumes
//! around it:
//!
//! * [`DiskParams`] — the paper's `τ_seek`, `τ_trk`, track size `B`, and
//!   disk capacity, with the service-time law `T(r) = τ_seek + r·τ_trk`.
//! * [`Disk`] — a single drive with a normal / failed / rebuilding state
//!   machine and per-cycle read accounting.
//! * [`DiskArray`] — the disk farm: failure injection, repair, and aggregate
//!   statistics.
//! * [`failure`] — stochastic failure and repair processes (exponential
//!   lifetimes with the paper's MTTF/MTTR figures).
//! * [`DetailedDiskModel`] — a Ruemmler & Wilkes-style drive model (the
//!   paper's reference \[9\]) that validates the simple model's effective
//!   `τ_trk` and quantifies what track-aligned I/O saves.
//!
//! The unit of disk I/O is one **track**, as in the paper: "We will assume
//! from now on that the unit of disk I/O is a track. This is motivated by
//! the reduction in rotational latency achieved."
//!
//! ## Example
//!
//! ```
//! use mms_disk::{DiskParams, Time};
//!
//! // Table 1 of the paper: τ_seek = 25 ms, τ_trk = 20 ms, B = 50 KB.
//! let p = DiskParams::paper_table1();
//! // Reading 5 tracks costs one max seek plus 5 track times.
//! assert_eq!(p.service_time(5), Time::from_millis(25.0 + 5.0 * 20.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod detailed;
mod disk;
mod error;
pub mod failure;
mod params;
mod units;

pub use array::{ArrayStats, DiskArray};
pub use detailed::DetailedDiskModel;
pub use disk::{Disk, DiskId, DiskState, DiskStats};
pub use error::DiskError;
pub use params::{DiskParams, ReliabilityParams};
pub use units::{Bandwidth, Size, Time};
