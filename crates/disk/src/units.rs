//! Physical units used throughout the model.
//!
//! The paper mixes megabits (object bandwidths are quoted in Mb/s) and
//! megabytes (all equations use MB and MB/s). These newtypes make the
//! conversion explicit so the ambiguity cannot leak into the math.
//!
//! All three types are thin wrappers over `f64` with exact, lossless
//! arithmetic semantics of `f64`; they exist purely to keep units straight.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration in the scheduling model, stored in seconds.
///
/// The paper quotes seek and track times in milliseconds and cycle times in
/// seconds; this type normalizes everything to seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);

impl Time {
    /// Zero duration.
    pub const ZERO: Time = Time(0.0);

    /// Construct from seconds.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        Time(secs)
    }

    /// Construct from milliseconds (the unit the paper uses for `τ_seek`
    /// and `τ_trk`).
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Time(ms / 1_000.0)
    }

    /// Construct from hours (the unit the paper uses for MTTF/MTTR).
    #[must_use]
    pub fn from_hours(h: f64) -> Self {
        Time(h * 3_600.0)
    }

    /// The value in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// The value in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3_600.0
    }

    /// The value in years, using the paper's convention of 8760 h/year
    /// (365 days); this is the conversion that reproduces Table 2's
    /// "25684.9 years" from 2.25·10⁸ hours.
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.as_hours() / 8_760.0
    }

    /// Saturating subtraction: never goes below zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time((self.0 - rhs.0).max(0.0))
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    fn mul(self, rhs: f64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<Time> for Time {
    /// Ratio of two durations (dimensionless).
    type Output = f64;
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.3} ms", self.as_millis())
        } else {
            write!(f, "{:.3} s", self.0)
        }
    }
}

/// A data size, stored in bytes.
///
/// The paper's `B` (bytes per track) and `s_d` (disk capacity) are sizes.
/// Following the paper's numerics (Table 2 is reproduced exactly with
/// decimal units), `1 KB = 1000 B` and `1 MB = 10⁶ B`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Size(f64);

impl Size {
    /// Zero bytes.
    pub const ZERO: Size = Size(0.0);

    /// Construct from bytes.
    #[must_use]
    pub fn from_bytes(b: f64) -> Self {
        Size(b)
    }

    /// Construct from kilobytes (decimal: 1 KB = 1000 B).
    #[must_use]
    pub fn from_kb(kb: f64) -> Self {
        Size(kb * 1e3)
    }

    /// Construct from megabytes (decimal: 1 MB = 10⁶ B).
    #[must_use]
    pub fn from_mb(mb: f64) -> Self {
        Size(mb * 1e6)
    }

    /// Construct from gigabytes (decimal: 1 GB = 10⁹ B).
    #[must_use]
    pub fn from_gb(gb: f64) -> Self {
        Size(gb * 1e9)
    }

    /// The value in bytes.
    #[must_use]
    pub fn as_bytes(self) -> f64 {
        self.0
    }

    /// The value in megabytes.
    #[must_use]
    pub fn as_mb(self) -> f64 {
        self.0 / 1e6
    }

    /// The value in kilobytes.
    #[must_use]
    pub fn as_kb(self) -> f64 {
        self.0 / 1e3
    }

    /// Integer number of bytes, rounded; useful for allocating real buffers.
    #[must_use]
    pub fn as_whole_bytes(self) -> usize {
        self.0.round().max(0.0) as usize
    }
}

impl Add for Size {
    type Output = Size;
    fn add(self, rhs: Size) -> Size {
        Size(self.0 + rhs.0)
    }
}

impl Sub for Size {
    type Output = Size;
    fn sub(self, rhs: Size) -> Size {
        Size(self.0 - rhs.0)
    }
}

impl Mul<f64> for Size {
    type Output = Size;
    fn mul(self, rhs: f64) -> Size {
        Size(self.0 * rhs)
    }
}

impl Div<Size> for Size {
    /// Ratio of two sizes (dimensionless).
    type Output = f64;
    fn div(self, rhs: Size) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<Bandwidth> for Size {
    /// Size divided by bandwidth is the time to transfer it.
    type Output = Time;
    fn div(self, rhs: Bandwidth) -> Time {
        Time::from_secs(self.0 / rhs.0)
    }
}

impl Div<Time> for Size {
    /// Size divided by time is a bandwidth.
    type Output = Bandwidth;
    fn div(self, rhs: Time) -> Bandwidth {
        Bandwidth(self.0 / rhs.as_secs())
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2} MB", self.as_mb())
        } else {
            write!(f, "{:.2} KB", self.as_kb())
        }
    }
}

/// A data rate, stored in bytes per second.
///
/// Object bandwidths `b₀` in the paper are quoted in megabits per second
/// ("as is common with objects today") but used in megabytes per second in
/// every equation; both constructors are provided.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Construct from megabits per second (1 Mb/s = 10⁶ bits/s = 125 000 B/s).
    #[must_use]
    pub fn from_megabits(mbps: f64) -> Self {
        Bandwidth(mbps * 1e6 / 8.0)
    }

    /// Construct from megabytes per second.
    #[must_use]
    pub fn from_megabytes(mbs: f64) -> Self {
        Bandwidth(mbs * 1e6)
    }

    /// The value in megabytes per second (the unit used in the equations).
    #[must_use]
    pub fn as_megabytes(self) -> f64 {
        self.0 / 1e6
    }

    /// The value in megabits per second (the unit used in the prose).
    #[must_use]
    pub fn as_megabits(self) -> f64 {
        self.0 * 8.0 / 1e6
    }

    /// MPEG-1 quality ("about 1.5 mbps, i.e., low TV quality").
    #[must_use]
    pub fn mpeg1() -> Self {
        Bandwidth::from_megabits(1.5)
    }

    /// MPEG-2 quality ("about 4.5 megabits per second, i.e., good TV
    /// quality").
    #[must_use]
    pub fn mpeg2() -> Self {
        Bandwidth::from_megabits(4.5)
    }
}

impl Mul<Time> for Bandwidth {
    /// Bandwidth times duration is the amount of data moved.
    type Output = Size;
    fn mul(self, rhs: Time) -> Size {
        Size(self.0 * rhs.as_secs())
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Mb/s", self.as_megabits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        let t = Time::from_millis(25.0);
        assert!((t.as_secs() - 0.025).abs() < 1e-12);
        assert!((t.as_millis() - 25.0).abs() < 1e-12);
        let h = Time::from_hours(300_000.0);
        assert!((h.as_hours() - 300_000.0).abs() < 1e-6);
    }

    #[test]
    fn years_use_8760_hours() {
        // 2.25e8 hours is the Table 2 MTTF for C = 5; the paper reports it
        // as 25684.9 years, i.e. divides by 8760.
        let t = Time::from_hours(2.25e8);
        assert!((t.as_years() - 25_684.93).abs() < 0.01);
    }

    #[test]
    fn size_conversions() {
        let b = Size::from_kb(50.0);
        assert!((b.as_mb() - 0.05).abs() < 1e-12);
        assert_eq!(b.as_whole_bytes(), 50_000);
    }

    #[test]
    fn bandwidth_megabits_to_megabytes() {
        let b = Bandwidth::from_megabits(1.5);
        assert!((b.as_megabytes() - 0.1875).abs() < 1e-12);
        assert!((b.as_megabits() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_is_size_over_bandwidth() {
        // One 50 KB track at 1.5 Mb/s takes B/b0 seconds.
        let t = Size::from_kb(50.0) / Bandwidth::from_megabits(1.5);
        assert!((t.as_secs() - 0.05 / 0.1875).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_times_time_is_size() {
        let s = Bandwidth::from_megabytes(2.0) * Time::from_secs(3.0);
        assert!((s.as_mb() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn time_saturating_sub() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(2.0);
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(b.saturating_sub(a), Time::from_secs(1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::from_millis(20.0)), "20.000 ms");
        assert_eq!(format!("{}", Size::from_mb(1.5)), "1.50 MB");
        assert_eq!(format!("{}", Bandwidth::from_megabits(4.5)), "4.50 Mb/s");
    }

    #[test]
    fn mpeg_presets() {
        assert!((Bandwidth::mpeg1().as_megabits() - 1.5).abs() < 1e-12);
        assert!((Bandwidth::mpeg2().as_megabits() - 4.5).abs() < 1e-12);
    }
}
