//! A single disk drive: identity, state machine, per-cycle accounting.

use crate::error::DiskError;
use crate::params::DiskParams;
use crate::units::Time;
use mms_telemetry::{counter, event, histogram, Level};
use std::fmt;

/// Identifier of a disk in the array, dense from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskId(pub u32);

impl DiskId {
    /// The id as an index into array-sized vectors.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Operating state of a drive, following the three modes of Muntz & Lui
/// cited in the paper: normal, degraded (failed), and rebuild.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiskState {
    /// Fully operational.
    Normal,
    /// Down; reads fail. `since` is the simulation time of the failure.
    Failed {
        /// When the failure occurred.
        since: Time,
    },
    /// A spare has been installed and is being reloaded; reads still fail
    /// until the rebuild completes.
    Rebuilding {
        /// When the rebuild started.
        since: Time,
        /// Fraction of the contents restored so far, in `[0, 1]`.
        progress: f64,
    },
}

impl DiskState {
    /// Whether reads can be serviced.
    #[must_use]
    pub fn is_operational(&self) -> bool {
        matches!(self, DiskState::Normal)
    }
}

/// Cumulative per-disk statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskStats {
    /// Tracks successfully read.
    pub tracks_read: u64,
    /// Cycles in which at least one read was serviced.
    pub busy_cycles: u64,
    /// Total service time accrued (`T(r)` per serviced cycle).
    pub busy_time: Time,
    /// Reads rejected because the disk was down.
    pub rejected_reads: u64,
    /// Number of failures sustained.
    pub failures: u64,
}

/// A disk drive with the paper's service-time model and a failure state
/// machine.
#[derive(Debug, Clone)]
pub struct Disk {
    id: DiskId,
    params: DiskParams,
    state: DiskState,
    stats: DiskStats,
}

impl Disk {
    /// Create an operational drive.
    #[must_use]
    pub fn new(id: DiskId, params: DiskParams) -> Self {
        Disk {
            id,
            params,
            state: DiskState::Normal,
            stats: DiskStats::default(),
        }
    }

    /// The drive's identity.
    #[must_use]
    pub fn id(&self) -> DiskId {
        self.id
    }

    /// The drive's model parameters.
    #[must_use]
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> DiskState {
        self.state
    }

    /// Whether reads can be serviced.
    #[must_use]
    pub fn is_operational(&self) -> bool {
        self.state.is_operational()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Service a batch of `tracks` reads within one cycle of length
    /// `t_cyc`, enforcing the slot capacity `T(r) ≤ T_cyc`.
    ///
    /// Returns the service time `T(r)` actually spent. A zero-track batch
    /// costs nothing (the drive does not seek if it has no work).
    pub fn read_tracks(&mut self, tracks: usize, t_cyc: Time) -> Result<Time, DiskError> {
        if tracks == 0 {
            return Ok(Time::ZERO);
        }
        if !self.is_operational() {
            self.stats.rejected_reads += tracks as u64;
            counter!("disk.rejected_reads", tracks as u64, disk = self.id.0);
            return Err(DiskError::NotOperational { disk: self.id });
        }
        let capacity = self.params.slots_per_cycle(t_cyc);
        if tracks > capacity {
            return Err(DiskError::CycleOverload {
                disk: self.id,
                requested: tracks,
                capacity,
            });
        }
        let t = self.params.service_time(tracks);
        self.stats.tracks_read += tracks as u64;
        self.stats.busy_cycles += 1;
        self.stats.busy_time += t;
        histogram!("disk.service_ms", t.as_millis(), disk = self.id.0);
        Ok(t)
    }

    /// Re-apply the accounting of an already-serviced read batch without
    /// re-checking capacity or emitting per-call telemetry.
    ///
    /// The simulator's quiescent fast-forward replays one probed plan
    /// rotation's charges for each skipped rotation: the identical `t`
    /// is accumulated by repeated addition, reproducing bit-for-bit the
    /// `busy_time` a per-cycle run would have accrued. Callers guarantee
    /// the batch passed [`read_tracks`](Self::read_tracks)'s capacity
    /// check when it was probed and that the drive state is unchanged.
    pub fn replay_read(&mut self, tracks: usize, t: Time) {
        debug_assert!(self.is_operational(), "replay on a non-operational disk");
        self.stats.tracks_read += tracks as u64;
        self.stats.busy_cycles += 1;
        self.stats.busy_time += t;
    }

    /// Mark the drive failed at simulation time `now`.
    pub fn fail(&mut self, now: Time) -> Result<(), DiskError> {
        if !matches!(self.state, DiskState::Normal) {
            return Err(DiskError::AlreadyFailed { disk: self.id });
        }
        self.state = DiskState::Failed { since: now };
        self.stats.failures += 1;
        event!(
            Level::Warn,
            "disk.failed",
            disk = self.id.0,
            at_secs = now.as_secs()
        );
        Ok(())
    }

    /// Begin rebuilding onto a spare at time `now`.
    pub fn start_rebuild(&mut self, now: Time) -> Result<(), DiskError> {
        match self.state {
            DiskState::Failed { .. } => {
                self.state = DiskState::Rebuilding {
                    since: now,
                    progress: 0.0,
                };
                event!(
                    Level::Info,
                    "disk.rebuild_start",
                    disk = self.id.0,
                    at_secs = now.as_secs()
                );
                Ok(())
            }
            _ => Err(DiskError::NotFailed { disk: self.id }),
        }
    }

    /// Advance rebuild progress; completes (returns to `Normal`) when the
    /// fraction reaches 1.
    pub fn advance_rebuild(&mut self, fraction: f64) -> Result<bool, DiskError> {
        match &mut self.state {
            DiskState::Rebuilding { progress, .. } => {
                *progress = (*progress + fraction).min(1.0);
                if *progress >= 1.0 {
                    self.state = DiskState::Normal;
                    event!(Level::Info, "disk.rebuild_complete", disk = self.id.0);
                    return Ok(true);
                }
                Ok(false)
            }
            _ => Err(DiskError::NotFailed { disk: self.id }),
        }
    }

    /// Repair the drive in one step (failed or rebuilding → normal); models
    /// the paper's MTTR as an opaque interval.
    pub fn repair(&mut self) -> Result<(), DiskError> {
        match self.state {
            DiskState::Failed { .. } | DiskState::Rebuilding { .. } => {
                self.state = DiskState::Normal;
                event!(Level::Info, "disk.repaired", disk = self.id.0);
                Ok(())
            }
            DiskState::Normal => Err(DiskError::NotFailed { disk: self.id }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskId(0), DiskParams::paper_table1())
    }

    #[test]
    fn read_within_capacity_accrues_service_time() {
        let mut d = disk();
        let t_cyc = Time::from_millis(266.0); // 12 slots
        let t = d.read_tracks(5, t_cyc).unwrap();
        assert_eq!(t, Time::from_millis(125.0));
        assert_eq!(d.stats().tracks_read, 5);
        assert_eq!(d.stats().busy_cycles, 1);
    }

    #[test]
    fn zero_reads_cost_nothing() {
        let mut d = disk();
        let t = d.read_tracks(0, Time::from_millis(100.0)).unwrap();
        assert_eq!(t, Time::ZERO);
        assert_eq!(d.stats().busy_cycles, 0);
    }

    #[test]
    fn overload_is_rejected() {
        let mut d = disk();
        let t_cyc = Time::from_millis(105.0); // (105-25)/20 = 4 slots
        let err = d.read_tracks(5, t_cyc).unwrap_err();
        assert_eq!(
            err,
            DiskError::CycleOverload {
                disk: DiskId(0),
                requested: 5,
                capacity: 4
            }
        );
        assert_eq!(d.stats().tracks_read, 0);
    }

    #[test]
    fn failed_disk_rejects_reads() {
        let mut d = disk();
        d.fail(Time::from_secs(10.0)).unwrap();
        assert!(!d.is_operational());
        let err = d.read_tracks(1, Time::from_millis(266.0)).unwrap_err();
        assert_eq!(err, DiskError::NotOperational { disk: DiskId(0) });
        assert_eq!(d.stats().rejected_reads, 1);
    }

    #[test]
    fn double_fail_is_error() {
        let mut d = disk();
        d.fail(Time::ZERO).unwrap();
        assert!(d.fail(Time::ZERO).is_err());
    }

    #[test]
    fn rebuild_lifecycle() {
        let mut d = disk();
        d.fail(Time::ZERO).unwrap();
        d.start_rebuild(Time::from_secs(1.0)).unwrap();
        assert!(!d.is_operational());
        assert!(!d.advance_rebuild(0.5).unwrap());
        assert!(d.advance_rebuild(0.6).unwrap());
        assert!(d.is_operational());
        assert_eq!(d.stats().failures, 1);
    }

    #[test]
    fn telemetry_captures_service_times_failures_and_rejections() {
        use mms_telemetry::{Labels, Level, Recorder};
        let rec = Recorder::new(Level::Info);
        let mut d = disk();
        {
            let _g = rec.install();
            let t_cyc = Time::from_millis(266.0);
            d.read_tracks(5, t_cyc).unwrap();
            d.fail(Time::from_secs(2.0)).unwrap();
            let _ = d.read_tracks(3, t_cyc);
            d.repair().unwrap();
        }
        let labels = Labels::new(vec![("disk", 0u64.into())]);
        let snap = rec.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|(k, _)| k.name == "disk.service_ms" && k.labels == labels)
            .map(|(_, h)| h)
            .expect("service-time histogram recorded");
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), Some(125.0));
        assert_eq!(
            snap.counters
                .iter()
                .find(|(k, _)| k.name == "disk.rejected_reads")
                .unwrap()
                .1,
            3
        );
        let events = rec.take_events();
        assert!(events
            .iter()
            .any(|e| e.name == "disk.failed" && e.level == Level::Warn));
        assert!(events.iter().any(|e| e.name == "disk.repaired"));
    }

    #[test]
    fn repair_requires_failed_state() {
        let mut d = disk();
        assert!(d.repair().is_err());
        d.fail(Time::ZERO).unwrap();
        d.repair().unwrap();
        assert!(d.is_operational());
    }
}
