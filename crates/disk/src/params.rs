//! Disk parameter sets and the paper's service-time law.

use crate::units::{Bandwidth, Size, Time};

/// Parameters of the paper's "simple disk model" (Section 2).
///
/// The model is
///
/// ```text
/// T(r) = τ_seek + r · τ_trk
/// ```
///
/// where `τ_seek` is the maximum seek between the extreme inner and outer
/// cylinders and `τ_trk` is the maximum time attributable to reading one
/// track *including* the slowdown/speedup fraction of a seek (the paper
/// takes "the point of view that this cost is associated with the reading
/// of the track as opposed to part of the seek cost").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// `τ_seek`: maximum seek time between the extreme cylinders.
    pub seek: Time,
    /// `τ_trk`: per-track read time including start/stop seek fractions.
    pub track_time: Time,
    /// `B`: bytes per track — the unit of disk I/O.
    pub track_size: Size,
    /// `s_d`: usable capacity of one disk.
    pub capacity: Size,
}

impl DiskParams {
    /// The parameter set of **Table 1** in the paper, "similar to those of
    /// a Seagate ST31200N drive": `τ_seek` = 25 ms, `τ_trk` = 20 ms,
    /// `B` = 50 KB, `s_d` = 1000 MB (from the Figure 9 sizing example).
    #[must_use]
    pub fn paper_table1() -> Self {
        DiskParams {
            seek: Time::from_millis(25.0),
            track_time: Time::from_millis(20.0),
            track_size: Size::from_kb(50.0),
            capacity: Size::from_mb(1_000.0),
        }
    }

    /// The parameter set of the Section 2 worked example: `τ_seek` = 30 ms,
    /// `τ_trk` = 10 ms, `B` = 100 KB (used for the in-text streams/disk
    /// table at `b₀` = 1.5 and 4.5 Mb/s).
    #[must_use]
    pub fn section2_example() -> Self {
        DiskParams {
            seek: Time::from_millis(30.0),
            track_time: Time::from_millis(10.0),
            track_size: Size::from_kb(100.0),
            capacity: Size::from_mb(1_000.0),
        }
    }

    /// `T(r) = τ_seek + r · τ_trk`: maximum time to read `r` tracks in one
    /// sweep (the cycle-based scheduler sorts reads so a single max seek
    /// bound suffices).
    #[must_use]
    pub fn service_time(&self, tracks: usize) -> Time {
        self.seek + self.track_time * tracks as f64
    }

    /// Sustained transfer bandwidth of the drive, `B / τ_trk`.
    ///
    /// With Table 1 values this is 50 KB / 20 ms = 2.5 MB/s = 20 Mb/s —
    /// consistent with the paper's footnote that a disk has "a bandwidth of
    /// approximately 32 mbps" (theirs includes no start/stop overhead).
    #[must_use]
    pub fn bandwidth(&self) -> Bandwidth {
        self.track_size / self.track_time
    }

    /// Number of tracks the drive can hold.
    #[must_use]
    pub fn tracks_per_disk(&self) -> u64 {
        (self.capacity / self.track_size).floor() as u64
    }

    /// Maximum whole tracks readable within a cycle of length `t_cyc`,
    /// i.e. the per-disk, per-cycle **slot count**: largest `r` with
    /// `T(r) ≤ t_cyc`.
    ///
    /// Returns 0 if even the seek does not fit.
    #[must_use]
    pub fn slots_per_cycle(&self, t_cyc: Time) -> usize {
        let budget = t_cyc.saturating_sub(self.seek);
        if self.track_time <= Time::ZERO {
            return 0;
        }
        // Guard against floating point edge: 3.9999999 tracks is 3 slots,
        // but 4.0 - 1e-12 from rounding noise should count as 4.
        let r = budget / self.track_time;
        (r + 1e-9).floor().max(0.0) as usize
    }

    /// The cycle length dictated by delivering `k'` tracks per cycle at
    /// object bandwidth `b₀`: `T_cyc = k'·B / b₀` (Section 2).
    #[must_use]
    pub fn cycle_time(&self, k_prime: usize, b0: Bandwidth) -> Time {
        (self.track_size * k_prime as f64) / b0
    }
}

/// Stochastic reliability parameters of a single drive.
///
/// The paper assumes `MTTF(disk)` = 300 000 hours and `MTTR(disk)` = 1 hour
/// throughout, with independent exponential failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityParams {
    /// Mean time to failure of one disk.
    pub mttf: Time,
    /// Mean time to repair (replace and reload) one disk.
    pub mttr: Time,
}

impl ReliabilityParams {
    /// The paper's figures: MTTF = 300 000 h, MTTR = 1 h.
    #[must_use]
    pub fn paper() -> Self {
        ReliabilityParams {
            mttf: Time::from_hours(300_000.0),
            mttr: Time::from_hours(1.0),
        }
    }

    /// Per-hour failure rate λ = 1/MTTF.
    #[must_use]
    pub fn failure_rate_per_hour(&self) -> f64 {
        1.0 / self.mttf.as_hours()
    }

    /// Per-hour repair rate μ = 1/MTTR.
    #[must_use]
    pub fn repair_rate_per_hour(&self) -> f64 {
        1.0 / self.mttr.as_hours()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_affine() {
        let p = DiskParams::paper_table1();
        assert_eq!(p.service_time(0), Time::from_millis(25.0));
        assert_eq!(p.service_time(1), Time::from_millis(45.0));
        assert_eq!(p.service_time(10), Time::from_millis(225.0));
    }

    #[test]
    fn table1_bandwidth() {
        let p = DiskParams::paper_table1();
        assert!((p.bandwidth().as_megabytes() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cycle_time_matches_definition() {
        // T_cyc = k'·B/b0. For k' = 1, B = 50 KB, b0 = 1.5 Mb/s:
        // 0.05 MB / 0.1875 MB/s = 0.2667 s.
        let p = DiskParams::paper_table1();
        let t = p.cycle_time(1, Bandwidth::from_megabits(1.5));
        assert!((t.as_secs() - 0.05 / 0.1875).abs() < 1e-12);
    }

    #[test]
    fn slots_per_cycle_floor_semantics() {
        let p = DiskParams::paper_table1();
        // Budget exactly covers the seek: zero slots.
        assert_eq!(p.slots_per_cycle(Time::from_millis(25.0)), 0);
        // Seek + 1 track.
        assert_eq!(p.slots_per_cycle(Time::from_millis(45.0)), 1);
        // Just under two tracks.
        assert_eq!(p.slots_per_cycle(Time::from_millis(64.9)), 1);
        // T_cyc for k'=1, MPEG-1: 266.7 ms -> (266.7-25)/20 = 12.08 -> 12.
        let t = p.cycle_time(1, Bandwidth::from_megabits(1.5));
        assert_eq!(p.slots_per_cycle(t), 12);
    }

    #[test]
    fn slots_never_negative_for_tiny_cycles() {
        let p = DiskParams::paper_table1();
        assert_eq!(p.slots_per_cycle(Time::ZERO), 0);
        assert_eq!(p.slots_per_cycle(Time::from_millis(1.0)), 0);
    }

    #[test]
    fn tracks_per_disk_table1() {
        // 1000 MB / 50 KB = 20 000 tracks.
        assert_eq!(DiskParams::paper_table1().tracks_per_disk(), 20_000);
    }

    #[test]
    fn reliability_rates() {
        let r = ReliabilityParams::paper();
        assert!((r.failure_rate_per_hour() - 1.0 / 300_000.0).abs() < 1e-18);
        assert!((r.repair_rate_per_hour() - 1.0).abs() < 1e-12);
    }
}
