//! The disk farm: a homogeneous array of drives with failure injection.

use crate::disk::{Disk, DiskId, DiskState};
use crate::error::DiskError;
use crate::params::DiskParams;
use crate::units::Time;

/// Aggregate statistics over the array.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArrayStats {
    /// Total tracks read across all drives.
    pub tracks_read: u64,
    /// Total service time across all drives.
    pub busy_time: Time,
    /// Total reads rejected (issued to down drives).
    pub rejected_reads: u64,
    /// Total failures sustained.
    pub failures: u64,
}

/// A homogeneous array of `D` drives.
///
/// The paper's systems contain "something on the order of 1000 drives";
/// the array supports failure injection and repair so that the schedulers
/// and simulators above it can exercise degraded mode.
#[derive(Debug, Clone)]
pub struct DiskArray {
    disks: Vec<Disk>,
}

impl DiskArray {
    /// Create an array of `count` drives, all with the same parameters.
    ///
    /// # Panics
    /// Panics if `count` is 0 or exceeds `u32::MAX`.
    #[must_use]
    pub fn new(count: usize, params: DiskParams) -> Self {
        assert!(count > 0, "an array needs at least one disk");
        assert!(u32::try_from(count).is_ok(), "too many disks");
        let disks = (0..count)
            .map(|i| Disk::new(DiskId(i as u32), params))
            .collect();
        DiskArray { disks }
    }

    /// Number of drives (the paper's `D`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Always false: arrays are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Access a drive.
    pub fn disk(&self, id: DiskId) -> Result<&Disk, DiskError> {
        self.disks
            .get(id.index())
            .ok_or(DiskError::NoSuchDisk { disk: id })
    }

    /// Mutable access to a drive.
    pub fn disk_mut(&mut self, id: DiskId) -> Result<&mut Disk, DiskError> {
        self.disks
            .get_mut(id.index())
            .ok_or(DiskError::NoSuchDisk { disk: id })
    }

    /// Iterate over all drives.
    pub fn iter(&self) -> impl Iterator<Item = &Disk> {
        self.disks.iter()
    }

    /// Ids of all drives currently down (failed or rebuilding).
    #[must_use]
    pub fn failed_disks(&self) -> Vec<DiskId> {
        self.disks
            .iter()
            .filter(|d| !d.is_operational())
            .map(Disk::id)
            .collect()
    }

    /// Number of operational drives.
    #[must_use]
    pub fn operational_count(&self) -> usize {
        self.disks.iter().filter(|d| d.is_operational()).count()
    }

    /// Inject a failure.
    pub fn fail(&mut self, id: DiskId, now: Time) -> Result<(), DiskError> {
        self.disk_mut(id)?.fail(now)
    }

    /// Repair a drive in one step.
    pub fn repair(&mut self, id: DiskId) -> Result<(), DiskError> {
        self.disk_mut(id)?.repair()
    }

    /// Whether a read of one track on `id` would succeed right now.
    #[must_use]
    pub fn is_operational(&self, id: DiskId) -> bool {
        self.disk(id).map(Disk::is_operational).unwrap_or(false)
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> ArrayStats {
        let mut s = ArrayStats::default();
        for d in &self.disks {
            let ds = d.stats();
            s.tracks_read += ds.tracks_read;
            s.busy_time += ds.busy_time;
            s.rejected_reads += ds.rejected_reads;
            s.failures += ds.failures;
        }
        s
    }

    /// Fraction of drives that are up, in `[0, 1]`.
    #[must_use]
    pub fn availability(&self) -> f64 {
        self.operational_count() as f64 / self.len() as f64
    }

    /// States of every drive, indexed by `DiskId`.
    #[must_use]
    pub fn states(&self) -> Vec<DiskState> {
        self.disks.iter().map(Disk::state).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(n: usize) -> DiskArray {
        DiskArray::new(n, DiskParams::paper_table1())
    }

    #[test]
    fn new_array_is_fully_operational() {
        let a = array(10);
        assert_eq!(a.len(), 10);
        assert_eq!(a.operational_count(), 10);
        assert!(a.failed_disks().is_empty());
        assert!((a.availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fail_and_repair_round_trip() {
        let mut a = array(5);
        a.fail(DiskId(2), Time::ZERO).unwrap();
        assert_eq!(a.operational_count(), 4);
        assert_eq!(a.failed_disks(), vec![DiskId(2)]);
        assert!(!a.is_operational(DiskId(2)));
        a.repair(DiskId(2)).unwrap();
        assert_eq!(a.operational_count(), 5);
    }

    #[test]
    fn out_of_range_disk_is_error() {
        let mut a = array(3);
        assert!(matches!(
            a.fail(DiskId(7), Time::ZERO),
            Err(DiskError::NoSuchDisk { .. })
        ));
        assert!(a.disk(DiskId(7)).is_err());
        assert!(!a.is_operational(DiskId(7)));
    }

    #[test]
    fn aggregate_stats_sum_over_disks() {
        let mut a = array(3);
        let t_cyc = Time::from_millis(266.0);
        a.disk_mut(DiskId(0))
            .unwrap()
            .read_tracks(3, t_cyc)
            .unwrap();
        a.disk_mut(DiskId(1))
            .unwrap()
            .read_tracks(2, t_cyc)
            .unwrap();
        a.fail(DiskId(2), Time::ZERO).unwrap();
        let _ = a.disk_mut(DiskId(2)).unwrap().read_tracks(1, t_cyc);
        let s = a.stats();
        assert_eq!(s.tracks_read, 5);
        assert_eq!(s.rejected_reads, 1);
        assert_eq!(s.failures, 1);
        // 2 seeks + 5 tracks = 2*25 + 5*20 = 150 ms.
        assert_eq!(s.busy_time, Time::from_millis(150.0));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn empty_array_panics() {
        let _ = array(0);
    }
}
