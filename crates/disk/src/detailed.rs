//! A detailed drive-timing model after Ruemmler & Wilkes (the paper's
//! reference [9], "An Introduction to Disk Drive Modeling").
//!
//! The paper's simple model folds everything into
//! `T(r) = τ_seek + r·τ_trk`, arguing that cycle-based scheduling lets
//! one maximum seek bound a whole batch and that full-track reads starting
//! "at the next sector boundary" suffer "very little rotational latency".
//! This module provides the finer-grained model those claims abstract:
//!
//! * seek time as the classic `a + b·√d` curve for short seeks, linear
//!   for long ones;
//! * per-track transfer at the platter rate;
//! * optional rotational latency for reads that do *not* start at a
//!   sector boundary (to quantify what track-aligned I/O saves);
//! * head/track switch overhead between consecutive tracks.
//!
//! [`DetailedDiskModel::calibrated_track_time`] recovers an effective
//! `τ_trk` from the detailed parameters, and tests confirm the paper's
//! Table 1 figure (20 ms per 50 KB track, including the "slowdown and
//! speedup fraction of the seek") is consistent with a mid-90s drive.

use crate::params::DiskParams;
use crate::units::{Size, Time};

/// Detailed drive timing parameters (Seagate-Hawk-class defaults).
#[derive(Debug, Clone, Copy)]
pub struct DetailedDiskModel {
    /// Cylinders on the drive.
    pub cylinders: u32,
    /// Minimum (single-cylinder) seek time.
    pub seek_min: Time,
    /// Maximum (full-stroke) seek time.
    pub seek_max: Time,
    /// Fraction of the stroke below which seeks follow the √d curve.
    pub sqrt_knee: f64,
    /// Full platter revolution time (e.g. 11.1 ms at 5400 rpm).
    pub revolution: Time,
    /// Bytes per track (one revolution's worth of sectors).
    pub track_size: Size,
    /// Head/track switch time between consecutive tracks of one batch.
    pub track_switch: Time,
    /// Controller + bus overhead per request.
    pub overhead: Time,
}

impl DetailedDiskModel {
    /// A mid-1990s 3.5″ drive in the Seagate Hawk's class: 5400 rpm,
    /// ~2700 cylinders, 1–25 ms seeks, ~50 KB tracks.
    #[must_use]
    pub fn hawk_class() -> Self {
        DetailedDiskModel {
            cylinders: 2700,
            seek_min: Time::from_millis(1.0),
            seek_max: Time::from_millis(25.0),
            sqrt_knee: 0.3,
            revolution: Time::from_millis(11.1),
            track_size: Size::from_kb(50.0),
            track_switch: Time::from_millis(1.0),
            overhead: Time::from_millis(0.5),
        }
    }

    /// Seek time for a move of `distance` cylinders: `a + b·√d` up to the
    /// knee, linear beyond it, continuous at both ends (Ruemmler & Wilkes
    /// §"Seek time").
    #[must_use]
    pub fn seek_time(&self, distance: u32) -> Time {
        if distance == 0 {
            return Time::ZERO;
        }
        let d = distance as f64;
        let max_d = self.cylinders as f64 - 1.0;
        let knee = (self.sqrt_knee * max_d).max(1.0);
        let smin = self.seek_min.as_secs();
        let smax = self.seek_max.as_secs();
        // Calibrate: s(1) = seek_min; s(knee) continuous; s(max) = seek_max.
        // sqrt region: s(d) = smin + b·(√d − 1).
        // linear region: s(d) = s(knee) + c·(d − knee).
        let s_knee_target = smin + (smax - smin) * 0.6; // knee reaches 60% of range
        let b = (s_knee_target - smin) / (knee.sqrt() - 1.0).max(1e-9);
        if d <= knee {
            Time::from_secs(smin + b * (d.sqrt() - 1.0))
        } else {
            let c = (smax - s_knee_target) / (max_d - knee).max(1e-9);
            Time::from_secs(s_knee_target + c * (d - knee))
        }
    }

    /// Average rotational latency for an *unaligned* read: half a
    /// revolution.
    #[must_use]
    pub fn avg_rotational_latency(&self) -> Time {
        Time::from_secs(self.revolution.as_secs() / 2.0)
    }

    /// Time to transfer one full track: exactly one revolution.
    #[must_use]
    pub fn track_transfer(&self) -> Time {
        self.revolution
    }

    /// Time to read `r` track-aligned tracks scattered uniformly over the
    /// drive in one elevator sweep: the paper's batch. The sweep's total
    /// seek distance is at most the full stroke, split into `r` hops; each
    /// track read costs one revolution plus switch and per-request
    /// overhead, but **no rotational latency** (track-aligned start).
    #[must_use]
    pub fn batch_time_aligned(&self, r: usize) -> Time {
        if r == 0 {
            return Time::ZERO;
        }
        let hop = (self.cylinders - 1) / r as u32;
        let mut t = Time::ZERO;
        for _ in 0..r {
            t += self.seek_time(hop.max(1));
            t += self.overhead;
            t += self.track_transfer();
            t += self.track_switch;
        }
        t
    }

    /// The same batch with *unaligned* reads paying average rotational
    /// latency — what the paper's track-sized unit of I/O avoids.
    #[must_use]
    pub fn batch_time_unaligned(&self, r: usize) -> Time {
        let aligned = self.batch_time_aligned(r);
        aligned + Time::from_secs(self.avg_rotational_latency().as_secs() * r as f64)
    }

    /// Recover the simple model's effective `τ_trk` from a batch of `r`
    /// reads: `(T_batch − τ_seek_max) / r`, the per-track cost including
    /// the "slowdown and speedup fraction of the seek time".
    #[must_use]
    pub fn calibrated_track_time(&self, r: usize) -> Time {
        debug_assert!(r > 0);
        let batch = self.batch_time_aligned(r);
        Time::from_secs((batch.as_secs() - self.seek_max.as_secs()).max(0.0) / r as f64)
    }

    /// Build simple-model parameters calibrated from this detailed model
    /// at a representative batch size.
    #[must_use]
    pub fn to_simple(&self, representative_batch: usize, capacity: Size) -> DiskParams {
        DiskParams {
            seek: self.seek_max,
            track_time: self.calibrated_track_time(representative_batch),
            track_size: self.track_size,
            capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_curve_is_monotone_and_bounded() {
        let m = DetailedDiskModel::hawk_class();
        assert_eq!(m.seek_time(0), Time::ZERO);
        let mut prev = 0.0;
        for d in [1, 10, 100, 500, 1000, 2000, 2699] {
            let t = m.seek_time(d).as_secs();
            assert!(t >= prev, "seek({d})");
            prev = t;
        }
        assert!((m.seek_time(1).as_millis() - 1.0).abs() < 0.05);
        assert!((m.seek_time(2699).as_millis() - 25.0).abs() < 0.2);
    }

    #[test]
    fn short_seeks_follow_sqrt_shape() {
        // In the √ region, quadrupling the distance roughly doubles the
        // added time over the minimum.
        let m = DetailedDiskModel::hawk_class();
        let base = m.seek_time(1).as_secs();
        let d1 = m.seek_time(100).as_secs() - base;
        let d4 = m.seek_time(400).as_secs() - base;
        let ratio = d4 / d1;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn track_alignment_saves_half_a_revolution_per_read() {
        let m = DetailedDiskModel::hawk_class();
        let r = 12;
        let saved = m.batch_time_unaligned(r).as_secs() - m.batch_time_aligned(r).as_secs();
        let expect = m.avg_rotational_latency().as_secs() * r as f64;
        assert!((saved - expect).abs() < 1e-9);
        // At 12 reads/cycle, that is ~67 ms of a 267 ms MPEG-1 cycle: the
        // reason the paper makes the track its unit of I/O.
        assert!(saved > 0.06);
    }

    #[test]
    fn calibrated_track_time_matches_table1_regime() {
        // Table 1's τ_trk = 20 ms for a 50 KB track: one revolution
        // (11.1 ms) plus switch, overhead, and the per-read share of the
        // sweep's seeking. The detailed model lands in that neighborhood.
        let m = DetailedDiskModel::hawk_class();
        let t = m.calibrated_track_time(12).as_millis();
        assert!((14.0..24.0).contains(&t), "τ_trk = {t} ms");
    }

    #[test]
    fn to_simple_round_trips_into_the_scheduler_stack() {
        let m = DetailedDiskModel::hawk_class();
        let p = m.to_simple(12, Size::from_mb(1000.0));
        assert_eq!(p.seek, m.seek_max);
        assert!(p.slots_per_cycle(Time::from_millis(266.7)) >= 10);
    }

    #[test]
    fn batch_time_grows_linearly_beyond_the_seek() {
        let m = DetailedDiskModel::hawk_class();
        let t6 = m.batch_time_aligned(6).as_secs();
        let t12 = m.batch_time_aligned(12).as_secs();
        // Doubling the batch should roughly double the track costs while
        // total seek stays bounded by the stroke: well under 2x total.
        assert!(t12 < 2.0 * t6);
        assert!(t12 > 1.5 * t6);
    }
}
