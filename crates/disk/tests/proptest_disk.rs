//! Property tests for the disk model: the service-time law, slot
//! arithmetic, and the state machine under arbitrary operation sequences.

use mms_disk::{Bandwidth, Disk, DiskId, DiskParams, Size, Time};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = DiskParams> {
    // Seek 1..=50 ms, track time 1..=40 ms, track 10..=200 KB.
    (1.0f64..=50.0, 1.0f64..=40.0, 10.0f64..=200.0).prop_map(|(seek, trk, kb)| DiskParams {
        seek: Time::from_millis(seek),
        track_time: Time::from_millis(trk),
        track_size: Size::from_kb(kb),
        capacity: Size::from_mb(1000.0),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// T(r) is affine and strictly increasing in r.
    #[test]
    fn service_time_is_affine(p in arb_params(), r in 0usize..1000) {
        let t0 = p.service_time(0).as_secs();
        let t1 = p.service_time(r).as_secs();
        let t2 = p.service_time(r + 1).as_secs();
        prop_assert!((t0 - p.seek.as_secs()).abs() < 1e-12);
        prop_assert!(t2 > t1);
        let slope = t2 - t1;
        prop_assert!((slope - p.track_time.as_secs()).abs() < 1e-9);
    }

    /// The slot count is the largest r with T(r) <= T_cyc: both the
    /// admitted batch and the next larger one behave consistently.
    #[test]
    fn slots_are_maximal(p in arb_params(), cyc_ms in 1.0f64..2000.0) {
        let t_cyc = Time::from_millis(cyc_ms);
        let slots = p.slots_per_cycle(t_cyc);
        // T(slots) fits (within float tolerance) — vacuous at slots = 0,
        // where the drive simply issues no reads (a zero batch skips the
        // seek entirely, see `Disk::read_tracks`).
        if slots > 0 {
            prop_assert!(p.service_time(slots).as_secs() <= t_cyc.as_secs() + 1e-9);
        }
        // …and T(slots + 1) does not fit.
        prop_assert!(p.service_time(slots + 1).as_secs() > t_cyc.as_secs() - 1e-9);
    }

    /// Slot count is monotone in the cycle length.
    #[test]
    fn slots_monotone_in_cycle(p in arb_params(), a in 1.0f64..1000.0, b in 0.0f64..1000.0) {
        let s1 = p.slots_per_cycle(Time::from_millis(a));
        let s2 = p.slots_per_cycle(Time::from_millis(a + b));
        prop_assert!(s2 >= s1);
    }

    /// Cycle time scales linearly with k' and inversely with bandwidth.
    #[test]
    fn cycle_time_scaling(p in arb_params(), k in 1usize..16, mbps in 0.5f64..20.0) {
        let b0 = Bandwidth::from_megabits(mbps);
        let t1 = p.cycle_time(1, b0).as_secs();
        let tk = p.cycle_time(k, b0).as_secs();
        prop_assert!((tk - t1 * k as f64).abs() < 1e-9);
        let t_double = p.cycle_time(1, Bandwidth::from_megabits(mbps * 2.0)).as_secs();
        prop_assert!((t_double - t1 / 2.0).abs() < 1e-9);
    }

    /// The drive state machine never reaches an inconsistent state under
    /// random operation sequences, and stats add up.
    #[test]
    fn disk_state_machine_is_consistent(ops in proptest::collection::vec(0u8..5, 1..60)) {
        let params = DiskParams::paper_table1();
        let mut d = Disk::new(DiskId(0), params);
        let t_cyc = Time::from_millis(266.0);
        let mut expected_reads = 0u64;
        let mut expected_failures = 0u64;
        for op in ops {
            match op {
                0 => {
                    let r = d.read_tracks(3, t_cyc);
                    if d.is_operational() {
                        prop_assert!(r.is_ok());
                        expected_reads += 3;
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                1 => {
                    let was_normal = d.is_operational();
                    let r = d.fail(Time::ZERO);
                    prop_assert_eq!(r.is_ok(), was_normal);
                    if was_normal {
                        expected_failures += 1;
                    }
                }
                2 => {
                    let was_down = !d.is_operational();
                    prop_assert_eq!(d.repair().is_ok(), was_down);
                }
                3 => {
                    let _ = d.start_rebuild(Time::ZERO);
                }
                _ => {
                    let _ = d.advance_rebuild(0.6);
                }
            }
        }
        prop_assert_eq!(d.stats().tracks_read, expected_reads);
        prop_assert_eq!(d.stats().failures, expected_failures);
    }
}
