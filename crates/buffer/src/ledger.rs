//! Reconstruction ledger: the buffer server's parity duty.
//!
//! "A cluster in degraded mode sends the data read from the disk to the
//! buffer server and the buffer server takes care of creating the missing
//! data by parity computation and delivering the data on time."
//!
//! A [`ReconstructionLedger`] tracks in-flight parity groups: surviving
//! members and the parity block are fed in as their reads complete (in
//! any order), each absorbed into a running XOR so only **one track of
//! memory per group** is held for reconstruction state; when the last
//! expected block arrives, the missing member materializes.

use mms_parity::{Block, ParityGroupId, XorAccumulator};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The group is already being reconstructed.
    AlreadyOpen {
        /// The group.
        group: ParityGroupId,
    },
    /// The group was never opened (or already completed).
    NotOpen {
        /// The group.
        group: ParityGroupId,
    },
    /// More blocks arrived than the group expects.
    TooManyBlocks {
        /// The group.
        group: ParityGroupId,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::AlreadyOpen { group } => write!(f, "group {group} already open"),
            LedgerError::NotOpen { group } => write!(f, "group {group} not open"),
            LedgerError::TooManyBlocks { group } => {
                write!(f, "group {group} received more blocks than expected")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// One in-flight reconstruction.
#[derive(Debug)]
struct OpenGroup {
    acc: XorAccumulator,
    /// Blocks still expected (surviving members + parity).
    remaining: usize,
}

/// Tracks per-group running XOR state for a degraded cluster's buffer
/// server.
#[derive(Debug, Default)]
pub struct ReconstructionLedger {
    open: BTreeMap<ParityGroupId, OpenGroup>,
    completed: u64,
}

impl ReconstructionLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        ReconstructionLedger::default()
    }

    /// Begin reconstructing one missing member of `group`:
    /// `expected_blocks` survivors-plus-parity will be fed in, each of
    /// `track_bytes` bytes.
    pub fn open(
        &mut self,
        group: ParityGroupId,
        expected_blocks: usize,
        track_bytes: usize,
    ) -> Result<(), LedgerError> {
        if self.open.contains_key(&group) {
            return Err(LedgerError::AlreadyOpen { group });
        }
        self.open.insert(
            group,
            OpenGroup {
                acc: XorAccumulator::new(track_bytes),
                remaining: expected_blocks,
            },
        );
        Ok(())
    }

    /// Feed one surviving member or the parity block. Returns the
    /// reconstructed missing member when the group completes.
    pub fn feed(
        &mut self,
        group: ParityGroupId,
        block: &Block,
    ) -> Result<Option<Block>, LedgerError> {
        let entry = self
            .open
            .get_mut(&group)
            .ok_or(LedgerError::NotOpen { group })?;
        if entry.remaining == 0 {
            return Err(LedgerError::TooManyBlocks { group });
        }
        entry.acc.absorb(block);
        entry.remaining -= 1;
        if entry.remaining == 0 {
            let done = self
                .open
                .remove(&group)
                .expect("remaining hit zero, so the group entry is open");
            self.completed += 1;
            // All survivors and parity absorbed: the running XOR *is* the
            // missing member.
            return Ok(Some(done.acc.into_block()));
        }
        Ok(None)
    }

    /// Groups currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.open.len()
    }

    /// Reconstructions completed over the ledger's lifetime.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Abandon a group (e.g. its stream was dropped).
    pub fn abandon(&mut self, group: ParityGroupId) -> Result<(), LedgerError> {
        self.open
            .remove(&group)
            .map(|_| ())
            .ok_or(LedgerError::NotOpen { group })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_parity::codec;

    fn group_blocks(c: usize, len: usize) -> (Vec<Block>, Block) {
        let members: Vec<Block> = (0..c as u64).map(|i| Block::synthetic(5, i, len)).collect();
        let parity = codec::parity_of(members.iter());
        (members, parity)
    }

    #[test]
    fn reconstructs_missing_member_in_any_arrival_order() {
        let (members, parity) = group_blocks(4, 128);
        let missing = 2usize;
        for order in [[0usize, 1, 3], [3, 1, 0], [1, 3, 0]] {
            let mut ledger = ReconstructionLedger::new();
            let gid = ParityGroupId::new(7, 3);
            ledger.open(gid, 4, 128).unwrap(); // 3 survivors + parity
            for &i in &order {
                assert_eq!(ledger.feed(gid, &members[i]).unwrap(), None);
            }
            let out = ledger.feed(gid, &parity).unwrap().expect("complete");
            assert_eq!(out, members[missing]);
            assert_eq!(ledger.in_flight(), 0);
            assert_eq!(ledger.completed(), 1);
        }
    }

    #[test]
    fn multiple_groups_in_flight() {
        let (m1, p1) = group_blocks(3, 64);
        let (m2, p2) = {
            let members: Vec<Block> = (0..3u64).map(|i| Block::synthetic(9, i, 64)).collect();
            let parity = codec::parity_of(members.iter());
            (members, parity)
        };
        let mut ledger = ReconstructionLedger::new();
        let g1 = ParityGroupId::new(1, 0);
        let g2 = ParityGroupId::new(2, 0);
        ledger.open(g1, 3, 64).unwrap();
        ledger.open(g2, 3, 64).unwrap();
        assert_eq!(ledger.in_flight(), 2);
        ledger.feed(g1, &m1[0]).unwrap();
        ledger.feed(g2, &m2[1]).unwrap();
        ledger.feed(g1, &m1[1]).unwrap();
        ledger.feed(g2, &m2[2]).unwrap();
        let r1 = ledger.feed(g1, &p1).unwrap().unwrap();
        let r2 = ledger.feed(g2, &p2).unwrap().unwrap();
        assert_eq!(r1, m1[2]);
        assert_eq!(r2, m2[0]);
    }

    #[test]
    fn lifecycle_errors() {
        let mut ledger = ReconstructionLedger::new();
        let gid = ParityGroupId::new(1, 1);
        ledger.open(gid, 2, 16).unwrap();
        assert_eq!(
            ledger.open(gid, 2, 16),
            Err(LedgerError::AlreadyOpen { group: gid })
        );
        let other = ParityGroupId::new(1, 2);
        assert_eq!(
            ledger.feed(other, &Block::zeroed(16)).unwrap_err(),
            LedgerError::NotOpen { group: other }
        );
        ledger.abandon(gid).unwrap();
        assert_eq!(
            ledger.abandon(gid),
            Err(LedgerError::NotOpen { group: gid })
        );
    }

    #[test]
    fn memory_is_one_track_per_group() {
        // The ledger never holds more than the accumulator per group,
        // regardless of how many members have been fed.
        let (members, _parity) = group_blocks(8, 256);
        let mut ledger = ReconstructionLedger::new();
        let gid = ParityGroupId::new(3, 3);
        ledger.open(gid, 8, 256).unwrap();
        for m in members.iter().take(7) {
            ledger.feed(gid, m).unwrap();
        }
        assert_eq!(ledger.in_flight(), 1);
        // (structural check: OpenGroup holds exactly one Block)
    }
}
