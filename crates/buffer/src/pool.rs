//! Track-granular buffer pool with per-owner accounting.

use std::collections::BTreeMap;
use std::fmt;

/// Identifies the entity a buffer is charged to (a stream, a cluster, a
/// buffer server — the pool does not care).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(pub u64);

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors from pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferError {
    /// The allocation would exceed the pool's capacity.
    Exhausted {
        /// Tracks requested.
        requested: usize,
        /// Tracks free at the time of the request.
        available: usize,
    },
    /// An owner freed more tracks than it holds.
    Underflow {
        /// The offending owner.
        owner: OwnerId,
        /// Tracks the owner holds.
        held: usize,
        /// Tracks the owner tried to free.
        freeing: usize,
    },
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::Exhausted {
                requested,
                available,
            } => write!(
                f,
                "buffer pool exhausted: requested {requested} tracks, {available} available"
            ),
            BufferError::Underflow {
                owner,
                held,
                freeing,
            } => write!(
                f,
                "owner {owner} freeing {freeing} tracks but holds only {held}"
            ),
        }
    }
}

impl std::error::Error for BufferError {}

/// A buffer pool measured in tracks.
///
/// `capacity = None` builds an unbounded pool used for *measuring* a
/// scheme's requirement (run the schedule, read off `high_water`); a
/// bounded pool enforces a provisioned size and reports exhaustion, which
/// callers surface as degradation of service.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: Option<usize>,
    in_use: usize,
    high_water: usize,
    owners: BTreeMap<OwnerId, usize>,
}

impl BufferPool {
    /// A bounded pool of `capacity` tracks.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        BufferPool {
            capacity: Some(capacity),
            in_use: 0,
            high_water: 0,
            owners: BTreeMap::new(),
        }
    }

    /// An unbounded measuring pool.
    #[must_use]
    pub fn unbounded() -> Self {
        BufferPool {
            capacity: None,
            in_use: 0,
            high_water: 0,
            owners: BTreeMap::new(),
        }
    }

    /// Provisioned capacity, if bounded.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Tracks currently allocated.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Tracks currently free (`usize::MAX` when unbounded).
    #[must_use]
    pub fn available(&self) -> usize {
        match self.capacity {
            Some(c) => c - self.in_use,
            None => usize::MAX,
        }
    }

    /// Peak simultaneous allocation ever observed.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Tracks held by one owner.
    #[must_use]
    pub fn held_by(&self, owner: OwnerId) -> usize {
        self.owners.get(&owner).copied().unwrap_or(0)
    }

    /// Number of distinct owners currently holding buffers.
    #[must_use]
    pub fn owner_count(&self) -> usize {
        self.owners.len()
    }

    /// Allocate `tracks` to `owner`.
    pub fn alloc(&mut self, owner: OwnerId, tracks: usize) -> Result<(), BufferError> {
        if tracks == 0 {
            return Ok(());
        }
        if let Some(cap) = self.capacity {
            let available = cap - self.in_use;
            if tracks > available {
                return Err(BufferError::Exhausted {
                    requested: tracks,
                    available,
                });
            }
        }
        self.in_use += tracks;
        self.high_water = self.high_water.max(self.in_use);
        *self.owners.entry(owner).or_insert(0) += tracks;
        Ok(())
    }

    /// Release `tracks` held by `owner`.
    pub fn free(&mut self, owner: OwnerId, tracks: usize) -> Result<(), BufferError> {
        if tracks == 0 {
            return Ok(());
        }
        let held = self.held_by(owner);
        if tracks > held {
            return Err(BufferError::Underflow {
                owner,
                held,
                freeing: tracks,
            });
        }
        self.in_use -= tracks;
        if held == tracks {
            self.owners.remove(&owner);
        } else {
            *self
                .owners
                .get_mut(&owner)
                .expect("held > tracks, so the owner entry exists") -= tracks;
        }
        Ok(())
    }

    /// Release everything held by `owner`, returning the count.
    pub fn free_all(&mut self, owner: OwnerId) -> usize {
        let held = self.owners.remove(&owner).unwrap_or(0);
        self.in_use -= held;
        held
    }

    /// Reset the high-water mark to the current occupancy (for windowed
    /// measurements).
    pub fn reset_high_water(&mut self) {
        self.high_water = self.in_use;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip() {
        let mut p = BufferPool::bounded(10);
        p.alloc(OwnerId(1), 4).unwrap();
        p.alloc(OwnerId(2), 3).unwrap();
        assert_eq!(p.in_use(), 7);
        assert_eq!(p.available(), 3);
        assert_eq!(p.held_by(OwnerId(1)), 4);
        p.free(OwnerId(1), 2).unwrap();
        assert_eq!(p.in_use(), 5);
        assert_eq!(p.held_by(OwnerId(1)), 2);
    }

    #[test]
    fn exhaustion_is_reported_and_nondestructive() {
        let mut p = BufferPool::bounded(5);
        p.alloc(OwnerId(1), 4).unwrap();
        let err = p.alloc(OwnerId(2), 2).unwrap_err();
        assert_eq!(
            err,
            BufferError::Exhausted {
                requested: 2,
                available: 1
            }
        );
        assert_eq!(p.in_use(), 4);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut p = BufferPool::unbounded();
        p.alloc(OwnerId(1), 10).unwrap();
        p.free(OwnerId(1), 8).unwrap();
        p.alloc(OwnerId(1), 3).unwrap();
        assert_eq!(p.in_use(), 5);
        assert_eq!(p.high_water(), 10);
        p.reset_high_water();
        assert_eq!(p.high_water(), 5);
    }

    #[test]
    fn underflow_is_rejected() {
        let mut p = BufferPool::bounded(10);
        p.alloc(OwnerId(1), 2).unwrap();
        let err = p.free(OwnerId(1), 3).unwrap_err();
        assert!(matches!(err, BufferError::Underflow { held: 2, .. }));
        // Freeing from an unknown owner is also an underflow.
        assert!(p.free(OwnerId(9), 1).is_err());
    }

    #[test]
    fn free_all_clears_owner() {
        let mut p = BufferPool::bounded(10);
        p.alloc(OwnerId(1), 6).unwrap();
        assert_eq!(p.free_all(OwnerId(1)), 6);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.owner_count(), 0);
        assert_eq!(p.free_all(OwnerId(1)), 0);
    }

    #[test]
    fn zero_sized_operations_are_noops() {
        let mut p = BufferPool::bounded(1);
        p.alloc(OwnerId(1), 0).unwrap();
        p.free(OwnerId(1), 0).unwrap();
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.owner_count(), 0);
    }
}
