//! Shared buffer servers for degraded-mode clusters (Section 3).

use crate::pool::BufferPool;
use std::fmt;

/// Identifier of a buffer server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors from the buffer-server pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Every buffer server is already serving a degraded cluster — the
    /// `(K+1)`-st failure has arrived and the Non-clustered scheme suffers
    /// **degradation of service** (the event whose mean time is Eq. 6).
    AllBusy {
        /// Number of servers provisioned (the paper's `K_NC`).
        servers: usize,
    },
    /// The cluster is not currently attached to any server.
    NotAttached {
        /// The cluster in question.
        cluster: u32,
    },
    /// The cluster is already attached to a server.
    AlreadyAttached {
        /// The cluster in question.
        cluster: u32,
        /// The server it is attached to.
        server: ServerId,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::AllBusy { servers } => {
                write!(
                    f,
                    "all {servers} buffer servers busy: degradation of service"
                )
            }
            ServerError::NotAttached { cluster } => {
                write!(f, "cluster {cluster} not attached to a buffer server")
            }
            ServerError::AlreadyAttached { cluster, server } => {
                write!(f, "cluster {cluster} already attached to server {server}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// One buffer server: a processor with a buffer pool, able to host a
/// single degraded cluster at a time.
#[derive(Debug, Clone)]
pub struct BufferServer {
    id: ServerId,
    pool: BufferPool,
    serving: Option<u32>,
}

impl BufferServer {
    /// Create a server with `capacity_tracks` of buffer memory.
    #[must_use]
    pub fn new(id: ServerId, capacity_tracks: usize) -> Self {
        BufferServer {
            id,
            pool: BufferPool::bounded(capacity_tracks),
            serving: None,
        }
    }

    /// The server's identity.
    #[must_use]
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The cluster currently being served, if any.
    #[must_use]
    pub fn serving(&self) -> Option<u32> {
        self.serving
    }

    /// The server's buffer pool (degraded-mode schedulers charge their
    /// group buffers here).
    pub fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Read-only view of the pool.
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

/// The farm's pool of `K` shared buffer servers.
///
/// "In a typical system, there might be 100 clusters of 10 disks, but
/// buffer servers for 5 degraded mode clusters would be sufficient as the
/// probability of more than 5 out of the 100 clusters having a failed disk
/// is extremely low."
#[derive(Debug, Clone)]
pub struct BufferServerPool {
    servers: Vec<BufferServer>,
}

impl BufferServerPool {
    /// Provision `k` servers of `capacity_tracks` each (the per-cluster
    /// degraded-mode requirement, `BF_SG / (D'/C)` per Eq. 14).
    #[must_use]
    pub fn new(k: usize, capacity_tracks: usize) -> Self {
        BufferServerPool {
            servers: (0..k)
                .map(|i| BufferServer::new(ServerId(i as u32), capacity_tracks))
                .collect(),
        }
    }

    /// Number of servers provisioned (`K_NC`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether no servers were provisioned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Number of servers currently serving degraded clusters.
    #[must_use]
    pub fn busy(&self) -> usize {
        self.servers.iter().filter(|s| s.serving.is_some()).count()
    }

    /// Attach a newly degraded cluster to a free server.
    ///
    /// An `AllBusy` error is the NC degradation-of-service event.
    pub fn attach(&mut self, cluster: u32) -> Result<ServerId, ServerError> {
        if let Some(s) = self.servers.iter().find(|s| s.serving == Some(cluster)) {
            return Err(ServerError::AlreadyAttached {
                cluster,
                server: s.id,
            });
        }
        match self.servers.iter_mut().find(|s| s.serving.is_none()) {
            Some(s) => {
                s.serving = Some(cluster);
                Ok(s.id)
            }
            None => Err(ServerError::AllBusy {
                servers: self.servers.len(),
            }),
        }
    }

    /// Detach a cluster whose failed disk has been repaired; clears the
    /// server's buffers.
    pub fn detach(&mut self, cluster: u32) -> Result<ServerId, ServerError> {
        match self.servers.iter_mut().find(|s| s.serving == Some(cluster)) {
            Some(s) => {
                s.serving = None;
                s.pool = BufferPool::bounded(s.pool.capacity().unwrap_or(0));
                Ok(s.id)
            }
            None => Err(ServerError::NotAttached { cluster }),
        }
    }

    /// The server attached to `cluster`, if any.
    pub fn server_for(&mut self, cluster: u32) -> Option<&mut BufferServer> {
        self.servers.iter_mut().find(|s| s.serving == Some(cluster))
    }

    /// Iterate over all servers.
    pub fn iter(&self) -> impl Iterator<Item = &BufferServer> {
        self.servers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::OwnerId;

    #[test]
    fn attach_until_exhausted() {
        let mut pool = BufferServerPool::new(2, 100);
        assert_eq!(pool.len(), 2);
        pool.attach(7).unwrap();
        pool.attach(9).unwrap();
        assert_eq!(pool.busy(), 2);
        // Third concurrent degraded cluster: degradation of service.
        assert_eq!(pool.attach(11), Err(ServerError::AllBusy { servers: 2 }));
    }

    #[test]
    fn detach_frees_a_server_and_its_buffers() {
        let mut pool = BufferServerPool::new(1, 50);
        pool.attach(3).unwrap();
        pool.server_for(3)
            .unwrap()
            .pool_mut()
            .alloc(OwnerId(1), 20)
            .unwrap();
        pool.detach(3).unwrap();
        assert_eq!(pool.busy(), 0);
        pool.attach(4).unwrap();
        assert_eq!(pool.server_for(4).unwrap().pool().in_use(), 0);
    }

    #[test]
    fn double_attach_rejected() {
        let mut pool = BufferServerPool::new(2, 10);
        let sid = pool.attach(5).unwrap();
        assert_eq!(
            pool.attach(5),
            Err(ServerError::AlreadyAttached {
                cluster: 5,
                server: sid
            })
        );
    }

    #[test]
    fn detach_unattached_rejected() {
        let mut pool = BufferServerPool::new(1, 10);
        assert_eq!(pool.detach(8), Err(ServerError::NotAttached { cluster: 8 }));
    }

    #[test]
    fn zero_servers_always_degrade() {
        let mut pool = BufferServerPool::new(0, 10);
        assert!(pool.is_empty());
        assert_eq!(pool.attach(0), Err(ServerError::AllBusy { servers: 0 }));
    }
}
