//! # mms-buffer — buffer memory substrate
//!
//! Main-memory buffering is a first-class cost in *Berson, Golubchik &
//! Muntz (SIGMOD 1995)*: every scheme's evaluation includes a "Buffers (in
//! tracks)" row, and the Non-clustered scheme's whole point is that "much
//! memory could be saved if a lower level of fault tolerance were
//! acceptable".
//!
//! Two pieces:
//!
//! * [`BufferPool`] — a track-granular buffer pool with per-owner
//!   accounting and high-water tracking. Schedulers charge each stream's
//!   read-ahead against a pool; the peak occupancy *is* the scheme's
//!   buffer requirement (this is how Figure 4 and the `BF_p` rows are
//!   measured rather than just computed).
//! * [`BufferServerPool`] — Section 3's shared **buffer servers**: "one or
//!   more extra processors containing a buffer pool to help handle
//!   clusters operating in degraded mode. … A cluster in degraded mode
//!   sends the data read from the disk to the buffer server and the buffer
//!   server takes care of creating the missing data by parity computation
//!   and delivering the data on time." Exhausting the servers on a further
//!   failure is precisely the NC scheme's *degradation of service* event
//!   (Eq. 6).
//! * [`ReconstructionLedger`] — the parity duty itself: per-group running
//!   XOR over the survivors as their reads land (one track of state per
//!   group), materializing the missing member when the last block
//!   arrives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ledger;
mod pool;
mod server;

pub use ledger::{LedgerError, ReconstructionLedger};
pub use pool::{BufferError, BufferPool, OwnerId};
pub use server::{BufferServer, BufferServerPool, ServerError, ServerId};
