//! Property tests for the buffer pool: conservation, bounds, and
//! high-water monotonicity under arbitrary alloc/free sequences.

use mms_buffer::{BufferPool, OwnerId};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u8, u8),
    Free(u8, u8),
    FreeAll(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(o, n)| Op::Alloc(o % 8, n % 32)),
            (any::<u8>(), any::<u8>()).prop_map(|(o, n)| Op::Free(o % 8, n % 32)),
            any::<u8>().prop_map(|o| Op::FreeAll(o % 8)),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pool's accounting always matches a reference model, capacity is
    /// never exceeded, and the high-water mark is the true running max.
    #[test]
    fn pool_matches_reference_model(ops in arb_ops(), capacity in 1usize..200) {
        let mut pool = BufferPool::bounded(capacity);
        let mut model: BTreeMap<u8, usize> = BTreeMap::new();
        let mut model_peak = 0usize;
        for op in ops {
            let total: usize = model.values().sum();
            match op {
                Op::Alloc(o, n) => {
                    let n = n as usize;
                    let ok = pool.alloc(OwnerId(o as u64), n).is_ok();
                    let fits = total + n <= capacity;
                    prop_assert_eq!(ok, fits || n == 0);
                    if ok && n > 0 {
                        *model.entry(o).or_default() += n;
                    }
                }
                Op::Free(o, n) => {
                    let n = n as usize;
                    let held = model.get(&o).copied().unwrap_or(0);
                    let ok = pool.free(OwnerId(o as u64), n).is_ok();
                    prop_assert_eq!(ok, n <= held);
                    if ok && n > 0 {
                        let h = model.get_mut(&o).unwrap();
                        *h -= n;
                        if *h == 0 {
                            model.remove(&o);
                        }
                    }
                }
                Op::FreeAll(o) => {
                    let held = model.remove(&o).unwrap_or(0);
                    prop_assert_eq!(pool.free_all(OwnerId(o as u64)), held);
                }
            }
            let total: usize = model.values().sum();
            model_peak = model_peak.max(total);
            prop_assert_eq!(pool.in_use(), total);
            prop_assert!(pool.in_use() <= capacity);
            prop_assert_eq!(pool.high_water(), model_peak);
            prop_assert_eq!(pool.owner_count(), model.len());
            for (&o, &h) in &model {
                prop_assert_eq!(pool.held_by(OwnerId(o as u64)), h);
            }
        }
    }

    /// Unbounded pools accept everything and never report exhaustion.
    #[test]
    fn unbounded_never_rejects(allocs in proptest::collection::vec((any::<u8>(), 0usize..1000), 1..50)) {
        let mut pool = BufferPool::unbounded();
        let mut total = 0usize;
        for (o, n) in allocs {
            prop_assert!(pool.alloc(OwnerId(o as u64), n).is_ok());
            total += n;
        }
        prop_assert_eq!(pool.in_use(), total);
        prop_assert_eq!(pool.high_water(), total);
    }
}
