//! Closed-form reliability expressions from the paper.

use mms_disk::{ReliabilityParams, Time};

/// Mean time until *some* disk of a pool of `d` fails: `MTTF(disk)/d`.
///
/// The paper's motivating example: "the MTTF of some disk in a 1000 disk
/// system is on the order of 300 hours (approximately 12 days)".
#[must_use]
pub fn mttf_single_pool(d: usize, rel: ReliabilityParams) -> Time {
    Time::from_hours(rel.mttf.as_hours() / d as f64)
}

/// Eq. 4 — mean time to catastrophic failure of the Streaming RAID,
/// Staggered-group, and Non-clustered schemes (two failures in one
/// cluster):
///
/// ```text
/// MTTF ≈ MTTF(disk)² / (D · (C−1) · MTTR(disk))
/// ```
///
/// With MTTF(disk) = 300 000 h, MTTR = 1 h, D = 1000, C = 10 this is the
/// paper's "about 1100 years" (1141 with the exact arithmetic).
#[must_use]
pub fn mttf_raid(d: usize, c: usize, rel: ReliabilityParams) -> Time {
    let m = rel.mttf.as_hours();
    let r = rel.mttr.as_hours();
    Time::from_hours(m * m / (d as f64 * (c as f64 - 1.0) * r))
}

/// Eq. 5 — mean time to catastrophic failure of the Improved-bandwidth
/// scheme:
///
/// ```text
/// MTTF ≈ MTTF(disk)² / (D · (2C−1) · MTTR(disk))
/// ```
///
/// "the (2C−1) factor in the denominator reflects the additional exposure
/// to disk failures" — a disk is exposed both to its own cluster's
/// failures and to those of the adjacent cluster whose parity it hosts.
#[must_use]
pub fn mttf_improved(d: usize, c: usize, rel: ReliabilityParams) -> Time {
    let m = rel.mttf.as_hours();
    let r = rel.mttr.as_hours();
    Time::from_hours(m * m / (d as f64 * (2.0 * c as f64 - 1.0) * r))
}

/// Eq. 6 — mean time to degradation of service when `k` concurrent
/// failures can be masked (by `k` buffer servers for NC, or `k` disks'
/// worth of reserved bandwidth for IB) and the `(k+1)`-st causes
/// degradation:
///
/// ```text
/// MTTDS ≈ MTTF(disk)^(k+1) / (D·(D−1)·…·(D−k) · MTTR(disk)^k)
/// ```
///
/// The paper's §3 example evaluates this with D = 1000, k = 4 ("the mean
/// time to failure of 5 disks (at the same time)") to "greater than 250
/// million years"; Tables 2 and 3 evaluate it with D = 100, k = 2.
#[must_use]
pub fn mttds_shared(d: usize, k: usize, rel: ReliabilityParams) -> Time {
    let m = rel.mttf.as_hours();
    let r = rel.mttr.as_hours();
    // Compute in log space: MTTF^(k+1) overflows f64 for the paper's
    // 300 000-hour MTTF once k exceeds ~60, and large k is a legitimate
    // sweep input.
    let ln = (k as f64 + 1.0) * m.ln()
        - (0..=k).map(|i| (d as f64 - i as f64).ln()).sum::<f64>()
        - k as f64 * r.ln();
    Time::from_hours(ln.exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> ReliabilityParams {
        ReliabilityParams::paper()
    }

    #[test]
    fn pool_mttf_1000_disks_is_300_hours() {
        let t = mttf_single_pool(1000, rel());
        assert!((t.as_hours() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn section2_streaming_raid_1100_years() {
        // "clusters of 9 data disks and 1 parity disk … the mean time
        // until a catastrophic failure is about 1100 years".
        let t = mttf_raid(1000, 10, rel());
        assert!((t.as_years() - 1141.55).abs() < 0.01, "{}", t.as_years());
    }

    #[test]
    fn table2_mttf_values() {
        // C = 5, D = 100: 25 684.9 years (SR/SG/NC) and 11 415.5 (IB;
        // printed 11415 in the paper).
        assert!((mttf_raid(100, 5, rel()).as_years() - 25_684.93).abs() < 0.01);
        assert!((mttf_improved(100, 5, rel()).as_years() - 11_415.52).abs() < 0.01);
    }

    #[test]
    fn table3_mttf_values() {
        // C = 7, D = 100: 17 123.3 and 7903.1 years.
        assert!((mttf_raid(100, 7, rel()).as_years() - 17_123.29).abs() < 0.01);
        assert!((mttf_improved(100, 7, rel()).as_years() - 7_903.06).abs() < 0.01);
    }

    #[test]
    fn tables_mttds_value() {
        // Tables 2 and 3: 3 176 862.3 years with D = 100, k = 2.
        let t = mttds_shared(100, 2, rel());
        assert!((t.as_years() - 3_176_862.3).abs() < 0.5, "{}", t.as_years());
    }

    #[test]
    fn section3_250_million_years() {
        // D = 1000, k = 4: "greater than 250 million years".
        let t = mttds_shared(1000, 4, rel());
        assert!(t.as_years() > 250e6, "{}", t.as_years());
        assert!(t.as_years() < 300e6, "{}", t.as_years());
    }

    #[test]
    fn section4_540_vs_1141_years() {
        // §4: improved-bandwidth MTTF "approximately 540 years rather
        // than 1141 years" (D = 1000, C = 10).
        let ib = mttf_improved(1000, 10, rel());
        assert!((ib.as_years() - 540.73).abs() < 1.0, "{}", ib.as_years());
        let sr = mttf_raid(1000, 10, rel());
        assert!((sr.as_years() - 1141.55).abs() < 1.0);
    }

    #[test]
    fn mttds_degenerate_k0_is_pool_mttf() {
        // With nothing masked, the first failure already degrades.
        let t = mttds_shared(100, 0, rel());
        assert!((t.as_hours() - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn monotonic_in_parameters() {
        let r = rel();
        assert!(mttf_raid(100, 5, r).as_hours() > mttf_raid(200, 5, r).as_hours());
        assert!(mttf_raid(100, 5, r).as_hours() > mttf_raid(100, 7, r).as_hours());
        assert!(mttf_improved(100, 5, r).as_hours() < mttf_raid(100, 5, r).as_hours());
        assert!(mttds_shared(100, 3, r).as_hours() > mttds_shared(100, 2, r).as_hours());
    }
}
