//! Exact birth–death analysis of a single cluster.
//!
//! A cluster of `C` disks with per-disk failure rate `λ = 1/MTTF` and
//! repair rate `μ = 1/MTTR` is a three-state Markov chain:
//!
//! ```text
//! state 0 (all up) --C·λ-->  state 1 (one down) --(C−1)·λ--> absorbed
//!        ^                        |
//!        +----------μ------------+
//! ```
//!
//! The mean time to absorption from state 0 has the closed form
//!
//! ```text
//! E[T] = (μ + C·λ + (C−1)·λ) / (C·(C−1)·λ²)
//! ```
//!
//! which reduces to the paper's approximation `MTTF²/(C·(C−1)·MTTR)` when
//! `μ ≫ λ`. This module provides the exact value so tests can bound the
//! approximation error, and the same machinery validates the Monte-Carlo
//! simulator.

use mms_disk::{ReliabilityParams, Time};

/// Exact cluster-level reliability analysis.
#[derive(Debug, Clone, Copy)]
pub struct ClusterMarkov {
    /// Disks per cluster (including the parity disk).
    pub c: usize,
    /// Per-disk failure/repair parameters.
    pub rel: ReliabilityParams,
}

impl ClusterMarkov {
    /// Construct the chain for a cluster of `c` disks.
    #[must_use]
    pub fn new(c: usize, rel: ReliabilityParams) -> Self {
        assert!(c >= 2, "a cluster needs at least two disks");
        ClusterMarkov { c, rel }
    }

    /// Exact mean time until a second concurrent failure (absorption),
    /// starting from all disks operational.
    ///
    /// Derivation: let `t0`, `t1` be the expected remaining times from
    /// states 0 and 1. With `a = C·λ`, `b = (C−1)·λ`:
    /// `t0 = 1/a + t1` and `t1 = 1/(b+μ) + (μ/(b+μ))·t0`, which solves to
    /// `t0 = (b + μ + a) / (a·b)`.
    #[must_use]
    pub fn mean_time_to_double_failure(&self) -> Time {
        let lambda = 1.0 / self.rel.mttf.as_hours();
        let mu = 1.0 / self.rel.mttr.as_hours();
        let a = self.c as f64 * lambda;
        let b = (self.c as f64 - 1.0) * lambda;
        Time::from_hours((b + mu + a) / (a * b))
    }

    /// The paper's approximation restricted to one cluster:
    /// `MTTF²/(C·(C−1)·MTTR)`.
    #[must_use]
    pub fn approximation(&self) -> Time {
        let m = self.rel.mttf.as_hours();
        let r = self.rel.mttr.as_hours();
        Time::from_hours(m * m / (self.c as f64 * (self.c as f64 - 1.0) * r))
    }

    /// System-level approximation for `n_clusters` independent clusters:
    /// the first cluster absorption dominates, so the system mean is the
    /// cluster mean divided by the number of clusters (competing
    /// exponentials, valid because absorption is rare per cluster).
    #[must_use]
    pub fn system_approximation(&self, n_clusters: usize) -> Time {
        Time::from_hours(self.mean_time_to_double_failure().as_hours() / n_clusters as f64)
    }

    /// Steady-state availability of one disk: `MTTF/(MTTF+MTTR)`.
    #[must_use]
    pub fn disk_availability(&self) -> f64 {
        let m = self.rel.mttf.as_hours();
        let r = self.rel.mttr.as_hours();
        m / (m + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_paper_approximation_when_repair_is_fast() {
        let mk = ClusterMarkov::new(10, ReliabilityParams::paper());
        let exact = mk.mean_time_to_double_failure().as_hours();
        let approx = mk.approximation().as_hours();
        // MTTR/MTTF = 3.3e-6: the approximation should be within 0.1%.
        let err = (exact - approx).abs() / exact;
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn exact_diverges_from_approximation_when_repair_is_slow() {
        // With MTTR comparable to MTTF the approximation badly
        // underestimates survivability structure — the exact value is
        // what the Monte Carlo will match.
        let rel = ReliabilityParams {
            mttf: Time::from_hours(100.0),
            mttr: Time::from_hours(100.0),
        };
        let mk = ClusterMarkov::new(5, rel);
        let exact = mk.mean_time_to_double_failure().as_hours();
        let approx = mk.approximation().as_hours();
        assert!((exact - approx).abs() / exact > 0.5);
    }

    #[test]
    fn system_scales_inversely_with_clusters() {
        let mk = ClusterMarkov::new(10, ReliabilityParams::paper());
        let one = mk.system_approximation(1).as_hours();
        let hundred = mk.system_approximation(100).as_hours();
        assert!((one / hundred - 100.0).abs() < 1e-9);
        // D = 1000, C = 10 -> 100 clusters: the paper's ~1141 years.
        assert!((mk.system_approximation(100).as_years() - 1141.55).abs() < 2.0);
    }

    #[test]
    fn availability_is_near_one() {
        let mk = ClusterMarkov::new(5, ReliabilityParams::paper());
        let a = mk.disk_availability();
        assert!(a > 0.999_99 && a < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_clusters() {
        let _ = ClusterMarkov::new(1, ReliabilityParams::paper());
    }
}

/// Exact birth–death analysis of the *whole pool*: `D` disks failing at
/// rate `λ` each and repairing at rate `μ` each, absorbed when `k + 1`
/// are concurrently down — the exact counterpart of Eq. 6's MTTDS
/// approximation.
#[derive(Debug, Clone, Copy)]
pub struct PoolMarkov {
    /// Total disks `D`.
    pub d: usize,
    /// Concurrent failures that can be masked.
    pub k: usize,
    /// Per-disk failure/repair parameters.
    pub rel: ReliabilityParams,
}

impl PoolMarkov {
    /// Construct the chain.
    #[must_use]
    pub fn new(d: usize, k: usize, rel: ReliabilityParams) -> Self {
        assert!(d > k, "need more disks than masked failures");
        PoolMarkov { d, k, rel }
    }

    /// Exact mean time until `k + 1` disks are concurrently down.
    ///
    /// With `T_i` the mean first-passage time from `i` failed to `i + 1`
    /// failed, the birth–death recurrence is `T_0 = 1/λ_0` and
    /// `T_i = 1/λ_i + (μ_i/λ_i)·T_{i−1}`, where `λ_i = (D−i)λ` and
    /// `μ_i = i·μ`; the absorption time from the all-up state is `Σ T_i`.
    #[must_use]
    pub fn mean_time_to_exhaustion(&self) -> Time {
        let lambda = 1.0 / self.rel.mttf.as_hours();
        let mu = 1.0 / self.rel.mttr.as_hours();
        let mut t_prev = 0.0f64;
        let mut total = 0.0f64;
        for i in 0..=self.k {
            let birth = (self.d - i) as f64 * lambda;
            let death = i as f64 * mu;
            let t_i = (1.0 + death * t_prev) / birth;
            total += t_i;
            t_prev = t_i;
        }
        Time::from_hours(total)
    }

    /// Eq. 6's approximation for comparison.
    #[must_use]
    pub fn approximation(&self) -> Time {
        crate::formulas::mttds_shared(self.d, self.k, self.rel)
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    #[test]
    fn eq6_underestimates_by_k_factorial() {
        // A finding the paper does not mention: its Eq. 6 drops a k!
        // factor. The exact chain gives T_k ≈ k!·MTTF^(k+1)/(D…(D−k)·
        // MTTR^k): for the tables' k = 2 the true MTTDS is twice the
        // published 3 176 862.3 years. Eq. 6 is therefore *conservative*
        // (it under-promises availability), and at k = 1 — the
        // single-failure MTTF expressions, Eqs. 4 and 5 — the factor is
        // 1! = 1, so those are asymptotically exact.
        let pm = PoolMarkov::new(100, 2, ReliabilityParams::paper());
        let exact = pm.mean_time_to_exhaustion().as_years();
        let approx = pm.approximation().as_years();
        let ratio = exact / approx;
        assert!((ratio - 2.0).abs() < 5e-3, "ratio {ratio}");

        // k = 1: no factor, sub-0.1% agreement.
        let pm1 = PoolMarkov::new(100, 1, ReliabilityParams::paper());
        let r1 = pm1.mean_time_to_exhaustion().as_years() / pm1.approximation().as_years();
        assert!((r1 - 1.0).abs() < 1e-3, "ratio {r1}");

        // k = 3: 3! = 6.
        let pm3 = PoolMarkov::new(100, 3, ReliabilityParams::paper());
        let r3 = pm3.mean_time_to_exhaustion().as_years() / pm3.approximation().as_years();
        assert!((r3 - 6.0).abs() < 0.05, "ratio {r3}");
    }

    #[test]
    fn k0_is_first_failure_exactly() {
        let pm = PoolMarkov::new(50, 0, ReliabilityParams::paper());
        // 300 000 / 50 = 6000 hours, exactly.
        assert!((pm.mean_time_to_exhaustion().as_hours() - 6000.0).abs() < 1e-6);
    }

    #[test]
    fn exact_exceeds_approximation_when_repair_is_slow() {
        // When MTTR is comparable to MTTF the approximation is badly off;
        // the exact chain is the ground truth the Monte Carlo matches.
        let rel = ReliabilityParams {
            mttf: Time::from_hours(100.0),
            mttr: Time::from_hours(50.0),
        };
        let pm = PoolMarkov::new(10, 2, rel);
        let exact = pm.mean_time_to_exhaustion().as_hours();
        let approx = pm.approximation().as_hours();
        assert!((exact - approx).abs() / exact > 0.3);
    }

    #[test]
    fn monte_carlo_matches_the_exact_chain() {
        use crate::montecarlo::{CatastropheRule, MonteCarlo};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let rel = ReliabilityParams {
            mttf: Time::from_hours(500.0),
            mttr: Time::from_hours(5.0),
        };
        let pm = PoolMarkov::new(20, 1, rel);
        let mc = MonteCarlo {
            d: 20,
            rel,
            rule: CatastropheRule::AnyConcurrent { k: 1 },
        };
        let stats = mc.run(&mut StdRng::seed_from_u64(3), 800);
        let exact = pm.mean_time_to_exhaustion();
        let ratio = stats.mean.as_hours() / exact.as_hours();
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn more_masking_multiplies_the_horizon() {
        let rel = ReliabilityParams::paper();
        let k1 = PoolMarkov::new(100, 1, rel)
            .mean_time_to_exhaustion()
            .as_hours();
        let k2 = PoolMarkov::new(100, 2, rel)
            .mean_time_to_exhaustion()
            .as_hours();
        // Each extra masked failure buys roughly MTTF/(D·MTTR) ≈ 3000x.
        assert!(k2 / k1 > 1000.0);
    }
}
