//! # mms-reliability — reliability analysis substrate
//!
//! The paper's reliability story (Sections 2–5) rests on three claims per
//! scheme: the mean time to **catastrophic failure** (two disks lost
//! within one parity group's span), the mean time to **degradation of
//! service** (insufficient buffer servers / reserved bandwidth), and the
//! failure patterns each scheme survives. This crate provides:
//!
//! * [`formulas`] — the closed-form expressions (Eqs. 4–6 plus the §3/§4
//!   worked examples): `MTTF ≈ MTTF(disk)²/(D·(C−1)·MTTR)` and friends.
//! * [`markov`] — an exact birth–death analysis of a single cluster, used
//!   to validate that the paper's approximation is tight when
//!   `MTTR ≪ MTTF`.
//! * [`montecarlo`] — an event-driven simulation of the disk farm's
//!   failure/repair process that *measures* time-to-catastrophe and
//!   time-to-DoS under each scheme's failure rule (same-cluster for
//!   SR/SG/NC, same-or-adjacent-cluster for IB, any-K-concurrent for the
//!   shared buffer/bandwidth reserves).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formulas;
pub mod markov;
pub mod montecarlo;

pub use formulas::{mttds_shared, mttf_improved, mttf_raid, mttf_single_pool};
pub use markov::{ClusterMarkov, PoolMarkov};
pub use montecarlo::{CatastropheRule, MonteCarlo, TrialStats};
