//! Event-driven Monte-Carlo simulation of the disk farm's failure and
//! repair process.
//!
//! The paper *derives* its reliability numbers; we also *measure* them.
//! Each trial plays independent exponential failures (mean `MTTF`) and
//! repairs (mean `MTTR`) across `D` disks until the scheme's terminal
//! rule fires, and reports the mean hitting time with a confidence
//! interval. Substitutes for the years-long physical failure process the
//! authors could only model.

use mms_disk::{failure::sample_exponential, ReliabilityParams, Time};
use mms_exec::{par_map_indexed, Parallelism, SeedSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// The terminal event being measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatastropheRule {
    /// Two concurrent failures within one cluster of `c` disks —
    /// catastrophic for Streaming RAID, Staggered-group, and
    /// Non-clustered (Eq. 4).
    SameCluster {
        /// Disks per cluster.
        c: usize,
    },
    /// Two concurrent failures within one cluster *or* in adjacent
    /// clusters — catastrophic for Improved-bandwidth, whose disks
    /// "belong to two parity groups" (Eq. 5's added exposure). Clusters
    /// are `c − 1` disks wide here.
    SameOrAdjacentCluster {
        /// Parity-group size (clusters are `c − 1` disks wide).
        c: usize,
    },
    /// More than `k` concurrent failures anywhere — degradation of
    /// service for the shared buffer servers (NC) or reserved bandwidth
    /// (IB) (Eq. 6).
    AnyConcurrent {
        /// Failures that can be masked.
        k: usize,
    },
}

impl CatastropheRule {
    /// Cluster index of a disk under this rule's geometry, if clustered.
    fn cluster_of(&self, disk: usize) -> Option<usize> {
        match *self {
            CatastropheRule::SameCluster { c } => Some(disk / c),
            CatastropheRule::SameOrAdjacentCluster { c } => Some(disk / (c - 1)),
            CatastropheRule::AnyConcurrent { .. } => None,
        }
    }

    /// Whether the set of failed disks (after adding `new_disk`) is
    /// terminal.
    fn is_terminal(&self, failed: &BTreeSet<usize>, new_disk: usize, d: usize) -> bool {
        match *self {
            CatastropheRule::SameCluster { .. } => {
                let nc = self.cluster_of(new_disk);
                failed
                    .iter()
                    .any(|&f| f != new_disk && self.cluster_of(f) == nc)
            }
            CatastropheRule::SameOrAdjacentCluster { c } => {
                let width = c - 1;
                // Round *up*: when `D` is not a multiple of `C − 1`, the
                // trailing disks form a final (short) cluster that is a
                // real ring member. Truncating division used to assign
                // them a cluster index past the ring, so the `% clusters`
                // adjacency wrapped through the wrong neighbors.
                let clusters = d.div_ceil(width);
                let nc = new_disk / width;
                if clusters <= 2 {
                    // Every pair of clusters is identical or adjacent on a
                    // ring of ≤ 2: any concurrent pair is catastrophic.
                    return failed.iter().any(|&f| f != new_disk);
                }
                failed.iter().any(|&f| {
                    if f == new_disk {
                        return false;
                    }
                    let fc = f / width;
                    fc == nc || (fc + 1) % clusters == nc || (nc + 1) % clusters == fc
                })
            }
            // Terminal when the new failure arrives while `k` disks are
            // already down: the (k+1)-st concurrent failure.
            CatastropheRule::AnyConcurrent { k } => failed.len() >= k,
        }
    }

    /// Whether failing `new_disk` while `already_failed` are down is
    /// catastrophic on a `d`-disk array under this rule — the same
    /// terminal test the Monte-Carlo trials use, exposed so behavioral
    /// scenario runs can cross-check the scheduler's verdicts against
    /// the analytical rule.
    #[must_use]
    pub fn is_catastrophic<I>(&self, already_failed: I, new_disk: usize, d: usize) -> bool
    where
        I: IntoIterator<Item = usize>,
    {
        let failed: BTreeSet<usize> = already_failed.into_iter().collect();
        self.is_terminal(&failed, new_disk, d)
    }
}

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct TrialStats {
    /// Number of trials.
    pub trials: usize,
    /// Mean hitting time.
    pub mean: Time,
    /// Standard error of the mean.
    pub std_error: Time,
}

impl TrialStats {
    /// 95% confidence interval half-width (1.96 standard errors).
    #[must_use]
    pub fn ci95(&self) -> Time {
        Time::from_secs(self.std_error.as_secs() * 1.96)
    }

    /// Whether `reference` lies within the 95% confidence interval.
    #[must_use]
    pub fn covers(&self, reference: Time) -> bool {
        (self.mean.as_secs() - reference.as_secs()).abs() <= self.ci95().as_secs()
    }
}

/// The Monte-Carlo experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Total disks `D`.
    pub d: usize,
    /// Per-disk failure/repair parameters.
    pub rel: ReliabilityParams,
    /// Terminal rule.
    pub rule: CatastropheRule,
}

/// Event in the per-trial queue.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Fail(usize),
    Repair(usize),
}

impl MonteCarlo {
    /// Run one trial: the time until the rule fires.
    pub fn trial<R: Rng + ?Sized>(&self, rng: &mut R) -> Time {
        // Priority queue of (time, event). f64 seconds as ordered key via
        // total_cmp wrapper.
        #[derive(PartialEq)]
        struct Entry(f64, Event);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let mut queue: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        for disk in 0..self.d {
            let t = sample_exponential(rng, self.rel.mttf).as_secs();
            queue.push(Reverse(Entry(t, Event::Fail(disk))));
        }
        let mut failed: BTreeSet<usize> = BTreeSet::new();
        while let Some(Reverse(Entry(now, event))) = queue.pop() {
            match event {
                Event::Fail(disk) => {
                    if self.rule.is_terminal(&failed, disk, self.d) {
                        return Time::from_secs(now);
                    }
                    failed.insert(disk);
                    let dt = sample_exponential(rng, self.rel.mttr).as_secs();
                    queue.push(Reverse(Entry(now + dt, Event::Repair(disk))));
                }
                Event::Repair(disk) => {
                    failed.remove(&disk);
                    let dt = sample_exponential(rng, self.rel.mttf).as_secs();
                    queue.push(Reverse(Entry(now + dt, Event::Fail(disk))));
                }
            }
        }
        unreachable!("queue never empties: every event schedules a successor")
    }

    /// Run `trials` independent trials and summarize, drawing all
    /// randomness from `rng` in trial order.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R, trials: usize) -> TrialStats {
        assert!(trials >= 2, "need at least two trials for a std error");
        let samples: Vec<f64> = (0..trials).map(|_| self.trial(rng).as_secs()).collect();
        summarize(&samples)
    }

    /// Like [`MonteCarlo::run`], but fanned out across a worker pool.
    ///
    /// One base seed is drawn from `rng` (advancing it exactly one
    /// `u64`); trial `i` then runs on its own [`StdRng`] seeded from the
    /// [`SeedSequence`] at index `i`. Because each trial's randomness
    /// depends only on `(base, i)` and samples are averaged in index
    /// order, the result is **bit-identical for every [`Parallelism`]**
    /// — `Sequential`, 2 threads, or 64. (It differs from [`run`], which
    /// streams all trials off the caller's RNG — the two entry points
    /// define two reproducible experiments, not one.)
    ///
    /// [`run`]: MonteCarlo::run
    pub fn run_par<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        trials: usize,
        par: Parallelism,
    ) -> TrialStats {
        assert!(trials >= 2, "need at least two trials for a std error");
        let seeds = SeedSequence::from_rng(rng);
        let samples = par_map_indexed(par, trials, |i| {
            let mut trial_rng = StdRng::seed_from_u64(seeds.seed(i as u64));
            let ttf = self.trial(&mut trial_rng).as_secs();
            mms_telemetry::event!(
                mms_telemetry::Level::Debug,
                "mc.trial",
                trial = i,
                ttf_secs = ttf
            );
            mms_telemetry::histogram!("mc.ttf_secs", ttf);
            ttf
        });
        summarize(&samples)
    }
}

/// Mean and standard error of a sample set (`n ≥ 2`).
fn summarize(samples: &[f64]) -> TrialStats {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    TrialStats {
        trials: samples.len(),
        mean: Time::from_secs(mean),
        std_error: Time::from_secs((var / n).sqrt()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fast-failing parameters so tests finish instantly: the *ratios*
    /// match the paper's regime (MTTR ≪ MTTF).
    fn fast_rel() -> ReliabilityParams {
        ReliabilityParams {
            mttf: Time::from_hours(1_000.0),
            mttr: Time::from_hours(1.0),
        }
    }

    #[test]
    fn same_cluster_rule_matches_eq4() {
        let rel = fast_rel();
        let mc = MonteCarlo {
            d: 20,
            rel,
            rule: CatastropheRule::SameCluster { c: 5 },
        };
        let stats = mc.run(&mut StdRng::seed_from_u64(42), 600);
        let reference = formulas::mttf_raid(20, 5, rel);
        let ratio = stats.mean.as_hours() / reference.as_hours();
        assert!(
            (0.85..1.15).contains(&ratio),
            "MC {} vs formula {} (ratio {ratio})",
            stats.mean.as_hours(),
            reference.as_hours()
        );
    }

    #[test]
    fn adjacent_rule_matches_eq5() {
        let rel = fast_rel();
        let mc = MonteCarlo {
            d: 20,
            rel,
            rule: CatastropheRule::SameOrAdjacentCluster { c: 5 },
        };
        let stats = mc.run(&mut StdRng::seed_from_u64(43), 600);
        let reference = formulas::mttf_improved(20, 5, rel);
        let ratio = stats.mean.as_hours() / reference.as_hours();
        assert!(
            (0.8..1.2).contains(&ratio),
            "MC {} vs formula {} (ratio {ratio})",
            stats.mean.as_hours(),
            reference.as_hours()
        );
    }

    #[test]
    fn improved_is_roughly_half_as_reliable_as_clustered() {
        // Eq. 4 vs Eq. 5 at C = 10: ratio (2C−1)/(C−1) ≈ 2.1.
        let rel = fast_rel();
        let mut rng = StdRng::seed_from_u64(44);
        let sr = MonteCarlo {
            d: 18,
            rel,
            rule: CatastropheRule::SameCluster { c: 3 },
        }
        .run(&mut rng, 400);
        let ib = MonteCarlo {
            d: 18,
            rel,
            rule: CatastropheRule::SameOrAdjacentCluster { c: 3 },
        }
        .run(&mut rng, 400);
        let ratio = sr.mean.as_hours() / ib.mean.as_hours();
        // (2C−1)/(C−1) = 2.5 for C = 3; allow Monte-Carlo noise.
        assert!((1.8..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn any_concurrent_rule_matches_eq6() {
        let rel = fast_rel();
        let mc = MonteCarlo {
            d: 30,
            rel,
            rule: CatastropheRule::AnyConcurrent { k: 1 },
        };
        let stats = mc.run(&mut StdRng::seed_from_u64(45), 600);
        let reference = formulas::mttds_shared(30, 1, rel);
        let ratio = stats.mean.as_hours() / reference.as_hours();
        assert!(
            (0.85..1.15).contains(&ratio),
            "MC {} vs formula {} (ratio {ratio})",
            stats.mean.as_hours(),
            reference.as_hours()
        );
    }

    #[test]
    fn masking_more_failures_extends_mttds() {
        let rel = fast_rel();
        let mut rng = StdRng::seed_from_u64(46);
        let k0 = MonteCarlo {
            d: 20,
            rel,
            rule: CatastropheRule::AnyConcurrent { k: 0 },
        }
        .run(&mut rng, 200);
        let k1 = MonteCarlo {
            d: 20,
            rel,
            rule: CatastropheRule::AnyConcurrent { k: 1 },
        }
        .run(&mut rng, 200);
        assert!(k1.mean.as_hours() > 10.0 * k0.mean.as_hours());
    }

    #[test]
    fn k0_rule_is_first_failure_anywhere() {
        let rel = fast_rel();
        let mc = MonteCarlo {
            d: 50,
            rel,
            rule: CatastropheRule::AnyConcurrent { k: 0 },
        };
        let stats = mc.run(&mut StdRng::seed_from_u64(47), 2000);
        // First failure among 50 disks: MTTF/50 = 20 hours.
        assert!(
            stats.covers(Time::from_hours(20.0)) || {
                let ratio = stats.mean.as_hours() / 20.0;
                (0.93..1.07).contains(&ratio)
            }
        );
    }

    #[test]
    fn adjacent_rule_handles_non_divisible_geometry() {
        // D = 10, C = 4: clusters are C − 1 = 3 wide, so disks 0–8 fill
        // clusters 0–2 and disk 9 forms a short trailing cluster 3. The
        // ring is 0 → 1 → 2 → 3 → 0.
        let rule = CatastropheRule::SameOrAdjacentCluster { c: 4 };
        let d = 10;
        let fail = |already: &[usize], new_disk: usize| {
            let failed: BTreeSet<usize> = already.iter().copied().collect();
            rule.is_terminal(&failed, new_disk, d)
        };
        // Trailing cluster {9} is adjacent to cluster 0 (wrap) …
        assert!(fail(&[9], 0), "cluster 3 wraps to cluster 0");
        assert!(fail(&[0], 9));
        // … and to cluster 2.
        assert!(fail(&[8], 9), "cluster 2 is adjacent to trailing cluster 3");
        assert!(fail(&[9], 6));
        // But clusters 1 {3,4,5} and 3 {9} are two steps apart.
        assert!(!fail(&[9], 3), "clusters 1 and 3 are not adjacent");
        assert!(!fail(&[4], 9));
        // Same-cluster still terminal; distant clusters still safe.
        assert!(fail(&[0], 1));
        assert!(!fail(&[0], 6), "clusters 0 and 2 are not adjacent");
        // A lone failure is never terminal.
        assert!(!fail(&[], 9));
    }

    #[test]
    fn adjacent_rule_two_cluster_ring_is_all_adjacent() {
        // D = 8, C = 5: two clusters of width 4 — any concurrent pair of
        // failures is catastrophic, including within one cluster.
        let rule = CatastropheRule::SameOrAdjacentCluster { c: 5 };
        let failed: BTreeSet<usize> = [0].into_iter().collect();
        assert!(rule.is_terminal(&failed, 5, 8));
        assert!(rule.is_terminal(&failed, 1, 8));
        assert!(!rule.is_terminal(&BTreeSet::new(), 3, 8));
    }

    #[test]
    fn run_par_is_bit_identical_across_thread_counts() {
        let mc = MonteCarlo {
            d: 20,
            rel: fast_rel(),
            rule: CatastropheRule::SameCluster { c: 5 },
        };
        let run = |par| mc.run_par(&mut StdRng::seed_from_u64(11), 64, par);
        let seq = run(Parallelism::Sequential);
        for par in [Parallelism::threads(2), Parallelism::threads(8)] {
            let p = run(par);
            assert_eq!(seq.mean.as_secs().to_bits(), p.mean.as_secs().to_bits());
            assert_eq!(
                seq.std_error.as_secs().to_bits(),
                p.std_error.as_secs().to_bits()
            );
        }
    }

    #[test]
    fn run_par_matches_eq4() {
        let rel = fast_rel();
        let mc = MonteCarlo {
            d: 20,
            rel,
            rule: CatastropheRule::SameCluster { c: 5 },
        };
        let stats = mc.run_par(&mut StdRng::seed_from_u64(42), 600, Parallelism::Auto);
        let reference = formulas::mttf_raid(20, 5, rel);
        let ratio = stats.mean.as_hours() / reference.as_hours();
        assert!(
            (0.85..1.15).contains(&ratio),
            "MC {} vs formula {} (ratio {ratio})",
            stats.mean.as_hours(),
            reference.as_hours()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mc = MonteCarlo {
            d: 10,
            rel: fast_rel(),
            rule: CatastropheRule::SameCluster { c: 5 },
        };
        let a = mc.trial(&mut StdRng::seed_from_u64(7));
        let b = mc.trial(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
