//! Tertiary-storage staging — the top of Figure 1's storage hierarchy.
//!
//! "The entire database permanently resides on tertiary storage, from
//! which objects are retrieved and placed on disk drives for delivery on
//! demand. … If the secondary storage capacity is exhausted when an
//! object, which is not on the disks, is requested then one or more
//! disk-resident objects must be purged to make space for the requested
//! object. The long latency times and high bandwidth cost of tertiary
//! devices precludes objects from being transmitted directly from the
//! tertiary store."
//!
//! The [`Librarian`] models that tape robot: requested objects stage onto
//! disk at tape bandwidth (one job at a time — a library has few drives),
//! become admittable when fully resident, and can be purged (LRU) when
//! the disks fill up.

use mms_layout::{MediaObject, ObjectId};
use std::collections::VecDeque;

/// A staging job in the tape queue.
#[derive(Debug, Clone)]
pub struct StagingJob {
    /// The object being loaded.
    pub object: MediaObject,
    /// Tracks already copied to disk.
    pub staged_tracks: u64,
    /// Whether the last placement attempt failed for lack of disk space
    /// (a purge is needed before the job can finish).
    pub blocked: bool,
}

impl StagingJob {
    /// Fraction staged, in `[0, 1]`.
    #[must_use]
    pub fn progress(&self) -> f64 {
        if self.object.tracks == 0 {
            return 1.0;
        }
        (self.staged_tracks as f64 / self.object.tracks as f64).min(1.0)
    }
}

/// The tertiary library: a queue of staging jobs drained at tape speed.
#[derive(Debug, Clone)]
pub struct Librarian {
    tape_tracks_per_cycle: u64,
    queue: VecDeque<StagingJob>,
}

impl Librarian {
    /// A librarian with the given tape bandwidth (tracks per cycle). The
    /// paper's footnote prices tape at ~4 Mb/s ≈ 1/8 of a disk; at
    /// MPEG-1 cycle lengths that is about one 50 KB track per cycle.
    #[must_use]
    pub fn new(tape_tracks_per_cycle: u64) -> Self {
        assert!(tape_tracks_per_cycle > 0, "tape must make progress");
        Librarian {
            tape_tracks_per_cycle,
            queue: VecDeque::new(),
        }
    }

    /// Enqueue a staging request.
    pub fn request(&mut self, object: MediaObject) {
        self.queue.push_back(StagingJob {
            object,
            staged_tracks: 0,
            blocked: false,
        });
    }

    /// The pending jobs, front first.
    #[must_use]
    pub fn queue(&self) -> &VecDeque<StagingJob> {
        &self.queue
    }

    /// Whether an object is somewhere in the staging queue.
    #[must_use]
    pub fn is_staging(&self, id: ObjectId) -> bool {
        self.queue.iter().any(|j| j.object.id == id)
    }

    /// Advance one cycle of tape transfer. When the front job completes,
    /// `place` is called with the finished object; if placement fails
    /// (disk full), the job stays at the front marked `blocked` and is
    /// retried on subsequent cycles (after the caller purges something).
    /// Returns the object placed this cycle, if any.
    pub fn advance<F>(&mut self, mut place: F) -> Option<ObjectId>
    where
        F: FnMut(MediaObject) -> bool,
    {
        let job = self.queue.front_mut()?;
        if job.blocked {
            // Waiting for the caller to purge something and unblock.
            return None;
        }
        job.staged_tracks = (job.staged_tracks + self.tape_tracks_per_cycle).min(job.object.tracks);
        if job.staged_tracks >= job.object.tracks {
            let object = job.object.clone();
            let id = object.id;
            if place(object) {
                self.queue.pop_front();
                return Some(id);
            }
            job.blocked = true;
        }
        None
    }

    /// Clear a front job's blocked flag after the caller made room.
    pub fn unblock(&mut self) {
        if let Some(job) = self.queue.front_mut() {
            job.blocked = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_layout::BandwidthClass;

    fn movie(id: u64, tracks: u64) -> MediaObject {
        MediaObject::new(
            ObjectId(id),
            format!("m{id}"),
            tracks,
            BandwidthClass::Mpeg1,
        )
    }

    #[test]
    fn staging_takes_tracks_over_tape_rate_cycles() {
        let mut lib = Librarian::new(3);
        lib.request(movie(1, 10));
        assert!(lib.is_staging(ObjectId(1)));
        let mut placed = Vec::new();
        for _ in 0..4 {
            if let Some(id) = lib.advance(|_| true) {
                placed.push(id);
            }
        }
        // ceil(10 / 3) = 4 cycles.
        assert_eq!(placed, vec![ObjectId(1)]);
        assert!(!lib.is_staging(ObjectId(1)));
    }

    #[test]
    fn jobs_are_fifo() {
        let mut lib = Librarian::new(100);
        lib.request(movie(1, 10));
        lib.request(movie(2, 10));
        assert_eq!(lib.advance(|_| true), Some(ObjectId(1)));
        assert_eq!(lib.advance(|_| true), Some(ObjectId(2)));
        assert_eq!(lib.advance(|_| true), None);
    }

    #[test]
    fn blocked_jobs_wait_for_room() {
        let mut lib = Librarian::new(100);
        lib.request(movie(1, 5));
        // Placement fails: disks full.
        assert_eq!(lib.advance(|_| false), None);
        assert!(lib.queue()[0].blocked);
        // Still blocked: no retries until unblocked.
        assert_eq!(lib.advance(|_| true), None);
        lib.unblock();
        assert_eq!(lib.advance(|_| true), Some(ObjectId(1)));
    }

    #[test]
    fn progress_reporting() {
        let mut lib = Librarian::new(2);
        lib.request(movie(1, 8));
        lib.advance(|_| true);
        assert!((lib.queue()[0].progress() - 0.25).abs() < 1e-12);
    }
}
