//! The multimedia-server facade.

use crate::any::AnyScheduler;
use crate::error::ServerError;
use crate::library::Librarian;
use mms_disk::{DiskId, ReliabilityParams};
use mms_exec::Parallelism;
use mms_layout::{CatalogError, MediaObject, ObjectId};
use mms_reliability::montecarlo::{CatastropheRule, MonteCarlo, TrialStats};
use mms_sched::{CycleConfig, FailureReport, SchemeKind, SchemeScheduler, StreamId, StreamInfo};
use mms_sim::{
    CycleReport, FailureEvent, Metrics, RebuildSource, SessionEngine, Simulator, StepMode,
    WorkloadGen,
};
use rand::Rng;

/// A fault-tolerant multimedia on-demand server (Figure 1 of the paper,
/// minus the network): a disk farm, a parity scheme, cycle-based stream
/// scheduling, and failure handling — driven in simulated time.
#[derive(Debug)]
pub struct MultimediaServer {
    sim: Simulator<AnyScheduler>,
    objects: Vec<ObjectId>,
    librarian: Librarian,
    /// Last cycle each resident object was admitted (for LRU purging).
    last_use: std::collections::BTreeMap<ObjectId, u64>,
    /// Parity-group size `C` (kept for reliability measurements).
    c: usize,
    /// Worker-pool width for batch experiments.
    parallelism: Parallelism,
}

impl MultimediaServer {
    pub(crate) fn from_parts(
        sim: Simulator<AnyScheduler>,
        objects: Vec<ObjectId>,
        c: usize,
        parallelism: Parallelism,
    ) -> Self {
        let last_use = objects.iter().map(|&o| (o, 0)).collect();
        MultimediaServer {
            sim,
            objects,
            librarian: Librarian::new(1),
            last_use,
            c,
            parallelism,
        }
    }

    /// The configured worker-pool width (see
    /// [`ServerBuilder::parallelism`](crate::ServerBuilder::parallelism)).
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Change the worker-pool width. Purely a performance knob — no
    /// result this server produces depends on it.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.parallelism = par;
    }

    /// Measure this server's mean time to catastrophic failure by
    /// Monte-Carlo, using the scheme's terminal rule over the configured
    /// geometry (Eqs. 4–5) and the configured [`Parallelism`]. Results
    /// are bit-identical for every thread count.
    pub fn measure_mttf<R: Rng + ?Sized>(
        &self,
        rel: ReliabilityParams,
        rng: &mut R,
        trials: usize,
    ) -> TrialStats {
        let rule = match self.scheme() {
            SchemeKind::ImprovedBandwidth => CatastropheRule::SameOrAdjacentCluster { c: self.c },
            _ => CatastropheRule::SameCluster { c: self.c },
        };
        let mc = MonteCarlo {
            d: self.sim.disks().len(),
            rel,
            rule,
        };
        mc.run_par(rng, trials, self.parallelism)
    }

    /// The configured scheme.
    #[must_use]
    pub fn scheme(&self) -> SchemeKind {
        self.sim.scheduler().scheme()
    }

    /// The cycle configuration (length, slots, `k`, `k'`).
    #[must_use]
    pub fn cycle_config(&self) -> &CycleConfig {
        self.sim.scheduler().config()
    }

    /// Registered objects, in registration order.
    #[must_use]
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// Begin delivering `object` to a new viewer.
    pub fn admit(&mut self, object: ObjectId) -> Result<StreamId, ServerError> {
        let id = self.sim.admit(object)?;
        let cycle = self.sim.cycle();
        self.last_use.insert(object, cycle);
        Ok(id)
    }

    /// The current cycle number (cycles simulated so far).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    /// Maximum concurrent streams the scheme admits.
    #[must_use]
    pub fn stream_capacity(&self) -> usize {
        self.sim.scheduler().stream_capacity()
    }

    /// Active streams right now.
    #[must_use]
    pub fn active_streams(&self) -> usize {
        self.sim.scheduler().active_streams()
    }

    /// Snapshot of one stream.
    #[must_use]
    pub fn stream_info(&self, id: StreamId) -> Option<StreamInfo> {
        self.sim.scheduler().stream_info(id)
    }

    /// Simulate one delivery cycle (advancing any tertiary staging by one
    /// tape cycle first).
    pub fn step(&mut self) -> Result<CycleReport, ServerError> {
        let cycle = self.sim.cycle();
        let (scheduler, oracle) = self.sim.scheduler_and_oracle();
        let mut placed_meta: Option<(ObjectId, u64)> = None;
        // lint:allow(transitive-alloc): tertiary staging completes at tape speed — a per-object event
        let placed = self.librarian.advance(|object| {
            let meta = (object.id, object.tracks);
            // lint:allow(transitive-alloc): object registration happens once per staged object
            match scheduler.register_object(object) {
                Ok(()) => {
                    placed_meta = Some(meta);
                    true
                }
                Err(_) => false,
            }
        });
        if let Some((id, tracks)) = placed_meta {
            if let Some(oracle) = oracle {
                oracle.insert_object(id, tracks);
            }
            self.objects.push(id);
            self.last_use.insert(id, cycle);
        }
        debug_assert_eq!(placed.is_some(), placed_meta.is_some());
        Ok(self.sim.step()?)
    }

    /// Simulate `cycles` cycles.
    pub fn run(&mut self, cycles: u64) -> Result<(), ServerError> {
        Ok(self.sim.run(cycles)?)
    }

    /// Simulate with Poisson arrivals; returns rejected admissions.
    pub fn run_with_workload<R: Rng + ?Sized>(
        &mut self,
        cycles: u64,
        workload: &WorkloadGen,
        rng: &mut R,
    ) -> Result<u64, ServerError> {
        Ok(self.sim.run_with_workload(cycles, workload, rng)?)
    }

    /// End a viewer's stream early (they stopped watching). Buffered
    /// groups drain and the stream retires at the next delivery
    /// boundary; returns `false` if the stream is not active.
    pub fn release(&mut self, id: StreamId) -> bool {
        self.sim.release(id)
    }

    /// Simulate `cycles` cycles under a [`SessionEngine`]'s full session
    /// lifecycle — bursty arrivals, VBR holds, abandonment, and the
    /// configured Reject/Degrade/Queue admission policy. Counters and
    /// admission-wait percentiles accumulate in
    /// [`SessionEngine::stats`].
    pub fn run_sessions<R: Rng + ?Sized>(
        &mut self,
        cycles: u64,
        engine: &mut SessionEngine,
        rng: &mut R,
    ) -> Result<(), ServerError> {
        Ok(self.sim.run_sessions(cycles, engine, rng)?)
    }

    /// Inject one failure or repair event — the single entry point for
    /// the fault surface (build events with [`FailureEvent::fail`],
    /// [`FailureEvent::fail_mid_cycle`], [`FailureEvent::repair`]).
    ///
    /// An event dated after the current [`cycle`](Self::cycle) is queued
    /// and fires during [`step`](Self::step); the report is then empty
    /// and scheduled outcomes land in [`metrics`](Self::metrics). An
    /// event due now is applied immediately and its
    /// [`FailureReport`] returned.
    ///
    /// A failure that makes data unrecoverable — a second fault inside
    /// an already-degraded parity group's span — returns
    /// [`ServerError::DataLoss`] with the unrecoverable track count.
    /// The failure is still applied (the disk is down and the scheduler
    /// is in catastrophic mode); the error is the typed verdict, never
    /// a panic.
    pub fn inject(&mut self, event: FailureEvent) -> Result<FailureReport, ServerError> {
        if event.cycle() > self.sim.cycle() {
            self.sim.push_failure(event);
            return Ok(FailureReport::default());
        }
        match event {
            FailureEvent::Fail {
                disk, mid_cycle, ..
            } => {
                let report = self.sim.fail_disk_now(disk, mid_cycle)?;
                if report.catastrophic {
                    mms_telemetry::event!(
                        mms_telemetry::Level::Error,
                        "data_loss",
                        cycle = self.sim.cycle(),
                        disk = disk.0,
                        tracks = report.data_loss_tracks,
                    );
                    return Err(ServerError::DataLoss {
                        tracks: report.data_loss_tracks,
                    });
                }
                Ok(report)
            }
            FailureEvent::Repair { disk, .. } => {
                self.sim.repair_disk_now(disk)?;
                Ok(FailureReport::default())
            }
        }
    }

    /// Repair a disk effective next cycle.
    pub fn repair_disk(&mut self, disk: DiskId) -> Result<(), ServerError> {
        Ok(self.sim.repair_disk_now(disk)?)
    }

    /// Begin rebuilding a failed disk from parity onto a spare. The
    /// rebuild runs in the background, consuming only the read slots the
    /// delivery schedule leaves idle on the surviving source disks;
    /// streams are never slowed. On completion the disk returns to
    /// service automatically.
    pub fn start_parity_rebuild(&mut self, disk: DiskId) -> Result<(), ServerError> {
        let (sources, tracks) = self.sim.scheduler().rebuild_spec(disk);
        Ok(self
            .sim
            .start_rebuild(disk, tracks, RebuildSource::Parity { sources })?)
    }

    /// Begin rebuilding a failed disk from tertiary storage at
    /// `tracks_per_cycle` (tape bandwidth / track size) — the slow path
    /// after a catastrophic failure ("many tapes may need to be
    /// referenced and that is very time consuming").
    pub fn start_tertiary_rebuild(
        &mut self,
        disk: DiskId,
        tracks_per_cycle: u64,
    ) -> Result<(), ServerError> {
        let (_, tracks) = self.sim.scheduler().rebuild_spec(disk);
        Ok(self
            .sim
            .start_rebuild(disk, tracks, RebuildSource::Tertiary { tracks_per_cycle })?)
    }

    /// Request that an object be staged from tertiary storage onto disk.
    /// It becomes admittable once fully resident (watch `objects()` or
    /// [`MultimediaServer::is_resident`]). Staging runs at tape speed, one
    /// object at a time, and never competes with delivery bandwidth (the
    /// paper's tertiary store is a separate device).
    pub fn request_from_tertiary(&mut self, object: MediaObject) -> Result<(), ServerError> {
        if self.objects.contains(&object.id) || self.librarian.is_staging(object.id) {
            return Err(CatalogError::Duplicate { id: object.id }.into());
        }
        self.librarian.request(object);
        Ok(())
    }

    /// Tape bandwidth in tracks per cycle (default 1 — the paper's ~4 Mb/s
    /// tape against a 50 KB track at MPEG-1 cycle length).
    pub fn set_tape_rate(&mut self, tracks_per_cycle: u64) {
        self.librarian = Librarian::new(tracks_per_cycle);
    }

    /// Whether an object is resident on disk (admittable).
    #[must_use]
    pub fn is_resident(&self, id: ObjectId) -> bool {
        self.objects.contains(&id)
    }

    /// The staging queue (front job first).
    #[must_use]
    pub fn staging(&self) -> &Librarian {
        &self.librarian
    }

    /// Purge a resident object to reclaim disk space; refuses while any
    /// stream is still delivering it.
    pub fn purge_object(&mut self, id: ObjectId) -> Result<(), ServerError> {
        let (scheduler, oracle) = self.sim.scheduler_and_oracle();
        scheduler.retire_object(id)?;
        if let Some(oracle) = oracle {
            oracle.remove_object(id);
        }
        self.objects.retain(|&o| o != id);
        self.last_use.remove(&id);
        // A blocked staging job may now fit.
        self.librarian.unblock();
        Ok(())
    }

    /// Purge the least-recently-admitted object with no active viewers.
    /// Returns the victim, or `None` if every resident object is busy.
    pub fn purge_lru(&mut self) -> Option<ObjectId> {
        let mut candidates: Vec<(u64, ObjectId)> = self
            .objects
            .iter()
            .map(|&o| (self.last_use.get(&o).copied().unwrap_or(0), o))
            .collect();
        candidates.sort_unstable();
        candidates
            .into_iter()
            .map(|(_, id)| id)
            .find(|&id| self.purge_object(id).is_ok())
    }

    /// How [`run`](Self::run), [`run_with_workload`](Self::run_with_workload),
    /// and [`run_sessions`](Self::run_sessions) advance simulated time.
    /// [`StepMode::EventHorizon`] fast-forwards provably quiescent
    /// stretches with observably identical results; see
    /// [`Simulator::advance_quiescent`].
    pub fn set_step_mode(&mut self, mode: StepMode) {
        self.sim.set_step_mode(mode);
    }

    /// The configured [`StepMode`].
    #[must_use]
    pub fn step_mode(&self) -> StepMode {
        self.sim.step_mode()
    }

    /// Cumulative metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// The underlying simulator (trace retention, disk inspection).
    #[must_use]
    pub fn simulator(&self) -> &Simulator<AnyScheduler> {
        &self.sim
    }

    /// Mutable access to the simulator for advanced drivers.
    pub fn simulator_mut(&mut self) -> &mut Simulator<AnyScheduler> {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Scheme, ServerBuilder};
    use mms_layout::BandwidthClass;

    fn server(scheme: Scheme) -> MultimediaServer {
        let disks = if scheme == Scheme::ImprovedBandwidth {
            8
        } else {
            10
        };
        ServerBuilder::new(scheme)
            .disks(disks)
            .parity_group(5)
            .movie("short", 0.5, BandwidthClass::Mpeg1)
            .build()
            .unwrap()
    }

    #[test]
    fn every_scheme_plays_a_movie_to_completion() {
        for scheme in Scheme::ALL {
            let mut s = server(scheme);
            let movie = s.objects()[0];
            let id = s.admit(movie).unwrap();
            assert_eq!(s.active_streams(), 1);
            // 0.5 min MPEG-1 at 50 KB tracks = 113 tracks.
            s.run(200).unwrap();
            assert_eq!(s.active_streams(), 0, "{scheme:?}");
            assert_eq!(s.metrics().streams_finished, 1, "{scheme:?}");
            assert_eq!(s.metrics().total_hiccups(), 0, "{scheme:?}");
            assert!(s.metrics().delivered >= 113, "{scheme:?}");
            assert!(s.stream_info(id).is_none());
        }
    }

    #[test]
    fn every_scheme_masks_a_single_failure_after_transition() {
        // SR, SG, and IB mask a single disk failure with zero hiccups;
        // NC loses only its bounded transition set.
        for scheme in Scheme::ALL {
            let mut s = server(scheme);
            let movie = s.objects()[0];
            s.admit(movie).unwrap();
            s.run(3).unwrap();
            s.inject(FailureEvent::fail(s.cycle(), DiskId(1))).unwrap();
            s.run(200).unwrap();
            let m = s.metrics();
            assert_eq!(m.streams_finished, 1, "{scheme:?}");
            match scheme {
                Scheme::NonClustered => {
                    assert!(m.total_hiccups() <= 2, "{scheme:?}: {}", m.total_hiccups());
                }
                _ => assert_eq!(m.total_hiccups(), 0, "{scheme:?}"),
            }
            assert!(m.reconstructed > 0, "{scheme:?}");
            assert_eq!(m.catastrophes, 0, "{scheme:?}");
        }
    }

    #[test]
    fn measure_mttf_uses_the_parallelism_knob_deterministically() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let rel = ReliabilityParams {
            mttf: mms_disk::Time::from_hours(1_000.0),
            mttr: mms_disk::Time::from_hours(1.0),
        };
        let mut results = Vec::new();
        for par in [Parallelism::Sequential, Parallelism::threads(4)] {
            let mut s = server(Scheme::StreamingRaid);
            s.set_parallelism(par);
            assert_eq!(s.parallelism(), par);
            let stats = s.measure_mttf(rel, &mut StdRng::seed_from_u64(3), 32);
            results.push(stats.mean.as_secs().to_bits());
        }
        assert_eq!(results[0], results[1], "thread count changed the MTTF");
    }

    #[test]
    fn sessions_churn_on_every_scheme_without_hiccups() {
        use mms_sim::{AdmissionPolicy, ArrivalProcess, SplitMix64};
        for scheme in Scheme::ALL {
            let mut s = server(scheme);
            let movie = s.objects()[0];
            let mut engine = SessionEngine::new(
                vec![(movie, 10)],
                0.0,
                ArrivalProcess::poisson(2.0),
                AdmissionPolicy::Reject,
            )
            .with_abandonment(0.8);
            let mut rng = SplitMix64::new(5);
            s.run_sessions(150, &mut engine, &mut rng).unwrap();
            let stats = engine.stats();
            assert!(stats.admitted > 50, "{scheme:?}: {stats:?}");
            assert!(stats.released_early > 0, "{scheme:?}: {stats:?}");
            // Ending a session early is not a service failure: the
            // stream drains its buffered groups and retires cleanly.
            assert_eq!(s.metrics().total_hiccups(), 0, "{scheme:?}");
            assert_eq!(s.metrics().catastrophes, 0, "{scheme:?}");
        }
    }

    #[test]
    fn release_is_idempotent_and_rejects_unknown_streams() {
        let mut s = server(Scheme::StreamingRaid);
        let movie = s.objects()[0];
        let id = s.admit(movie).unwrap();
        // Nothing read yet: the stream retires immediately.
        assert!(s.release(id));
        assert_eq!(s.active_streams(), 0);
        assert!(!s.release(id), "second release of the same stream");
        assert!(!s.release(StreamId(999)), "never-admitted stream");
        // The freed slot is reusable and plays to completion.
        let id2 = s.admit(movie).unwrap();
        s.run(5).unwrap();
        assert!(s.release(id2), "release mid-flight truncates");
        s.run(40).unwrap();
        assert_eq!(s.active_streams(), 0);
        assert_eq!(s.metrics().total_hiccups(), 0);
    }

    #[test]
    fn metrics_and_capacity_are_exposed() {
        let s = server(Scheme::StreamingRaid);
        assert!(s.stream_capacity() > 0);
        assert_eq!(s.metrics().cycles, 0);
        assert_eq!(s.cycle_config().k, 4);
    }
}
