//! # mms-server — fault-tolerant multimedia server
//!
//! The top-level library of this reproduction of *Berson, Golubchik &
//! Muntz, "Fault Tolerant Design of Multimedia Servers" (SIGMOD 1995)*.
//! It assembles the substrate crates into one facade:
//!
//! * [`ServerBuilder`] / [`MultimediaServer`] — configure a parity
//!   scheme, register movies, admit viewers, run delivery cycles, inject
//!   disk failures, and read metrics.
//! * [`AnyScheduler`] — a scheme-erased scheduler so all four schemes
//!   share one server type.
//! * Re-exports of every substrate (`disk`, `parity`, `layout`,
//!   `buffer`, `sched`, `reliability`, `analysis`, `sim`).
//!
//! ## Quickstart
//!
//! ```
//! use mms_server::{Scheme, ServerBuilder};
//! use mms_server::layout::BandwidthClass;
//!
//! let mut server = ServerBuilder::new(Scheme::StreamingRaid)
//!     .disks(10)
//!     .parity_group(5)
//!     .movie("feature", 1.0, BandwidthClass::Mpeg1) // 1-minute short
//!     .build()
//!     .unwrap();
//!
//! let movie = server.objects()[0];
//! server.admit(movie).unwrap();
//! // One disk dies mid-movie; Streaming RAID masks it completely.
//! use mms_server::sim::FailureEvent;
//! server.inject(FailureEvent::fail(server.cycle(), mms_server::disk::DiskId(2))).unwrap();
//! server.run(40).unwrap();
//! assert_eq!(server.metrics().total_hiccups(), 0);
//! assert!(server.metrics().reconstructed > 0);
//! ```
//!
//! ## Fault injection
//!
//! [`MultimediaServer::inject`] is the single fault-surface entry
//! point, and the [`scenario`] module scripts whole
//! deterministic failure scenarios (see `ScenarioRunner`). All
//! fallible server methods return the unified [`ServerError`]; the
//! legacy per-subsystem enums remain re-exported below for
//! pattern-matching callers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any;
mod builder;
mod error;
mod library;
mod runcfg;
pub mod scenario;
mod server;

pub use any::AnyScheduler;
pub use builder::{BuildError, Scheme, ServerBuilder};
pub use error::ServerError;
pub use library::{Librarian, StagingJob};
pub use runcfg::{RunConfig, TelemetryConfig};
pub use server::MultimediaServer;

// Legacy per-subsystem error enums, re-exported so pattern-matching
// callers predating [`ServerError`] keep compiling.
pub use mms_layout::CatalogError;
pub use mms_sched::{AdmissionError, RetireError};
pub use mms_sim::SimError;

/// Deterministic parallel execution ([`mms_exec`]).
pub use mms_exec as exec;
pub use mms_exec::Parallelism;

/// The paper's analytical model ([`mms_analysis`]).
pub use mms_analysis as analysis;
/// Buffer-memory substrate ([`mms_buffer`]).
pub use mms_buffer as buffer;
/// Disk substrate ([`mms_disk`]).
pub use mms_disk as disk;
/// Data-layout substrate ([`mms_layout`]).
pub use mms_layout as layout;
/// XOR parity substrate ([`mms_parity`]).
pub use mms_parity as parity;
/// Reliability analysis ([`mms_reliability`]).
pub use mms_reliability as reliability;
/// Scheduling substrate ([`mms_sched`]).
pub use mms_sched as sched;
/// Discrete-event simulation ([`mms_sim`]).
pub use mms_sim as sim;
/// Structured tracing, metrics, and JSONL export ([`mms_telemetry`]).
pub use mms_telemetry as telemetry;
