//! Unified run configuration shared by every driver entry point.
//!
//! Every `mms-ctl` subcommand (and any downstream driver) takes the
//! same knobs: a worker pool, a step mode, and the observability
//! surface (JSONL export, dashboard, flight recorder, SLO panel,
//! Prometheus/Perfetto outs). [`RunConfig`] parses them once from the
//! command line and is handed to builders directly —
//! `ServerBuilder::run_config` and the fleet builder both accept it —
//! instead of each subcommand re-threading individual flags.

use mms_exec::Parallelism;
use mms_sim::StepMode;
use mms_telemetry::{
    dashboard, jsonl, perfetto, prom, FlightRecorder, HealthConfig, HealthModel, Level, Recorder,
};
use std::io::Write;

/// The observability surface of one run (`--telemetry`, `--dash`,
/// `--flight-recorder`, `--prom-out`, `--perfetto-out`, `--slo`, …).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// JSONL export path (`--telemetry PATH`).
    pub jsonl: Option<String>,
    /// Collection level (`--log-level`, default `info`).
    pub level: Level,
    /// Print the ASCII dashboard at the end (`--dash`).
    pub dash: bool,
    /// Flight-recorder dump path (`--flight-recorder PATH`).
    pub flight: Option<String>,
    /// Flight-recorder ring capacity (`--flight-capacity`, default 4096).
    pub flight_capacity: usize,
    /// Prometheus text-format export path (`--prom-out PATH`).
    pub prom: Option<String>,
    /// Chrome/Perfetto trace JSON export path (`--perfetto-out PATH`).
    pub perfetto: Option<String>,
    /// Print the HealthModel SLO panel at the end (`--slo`).
    pub slo: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            jsonl: None,
            level: Level::Info,
            dash: false,
            flight: None,
            flight_capacity: 4096,
            prom: None,
            perfetto: None,
            slo: false,
        }
    }
}

/// One run's complete configuration: worker pool, step mode, and
/// telemetry. Built once per invocation and shared by every
/// subsystem the run touches.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker pool for any fan-out the run performs (`--threads`,
    /// default auto). Purely a performance knob — outputs are
    /// bit-identical for any setting.
    pub threads: Parallelism,
    /// Simulator step mode (`--fast-forward` selects
    /// [`StepMode::EventHorizon`]; observably identical, faster).
    pub step_mode: StepMode,
    /// The observability surface.
    pub telemetry: TelemetryConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: Parallelism::Auto,
            step_mode: StepMode::CycleByCycle,
            telemetry: TelemetryConfig::default(),
        }
    }
}

fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    for w in args.windows(2) {
        if w[0] == flag {
            return w[1]
                .parse()
                .map_err(|_| format!("bad value for {flag}: '{}'", w[1]));
        }
    }
    Ok(default)
}

impl RunConfig {
    /// Parse the shared run flags out of a raw argument list,
    /// defaulting everything that is absent. Unrelated flags are
    /// ignored, so subcommands can mix their own flags freely.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let path_flag = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
        Ok(RunConfig {
            threads: flag_value(args, "--threads", Parallelism::Auto)?,
            step_mode: if args.iter().any(|a| a == "--fast-forward") {
                StepMode::EventHorizon
            } else {
                StepMode::CycleByCycle
            },
            telemetry: TelemetryConfig {
                jsonl: path_flag("--telemetry"),
                level: flag_value(args, "--log-level", Level::Info)?,
                dash: args.iter().any(|a| a == "--dash"),
                flight: path_flag("--flight-recorder"),
                flight_capacity: flag_value(args, "--flight-capacity", 4096)?,
                prom: path_flag("--prom-out"),
                perfetto: path_flag("--perfetto-out"),
                slo: args.iter().any(|a| a == "--slo"),
            },
        })
    }

    /// A recorder when any telemetry output was requested, else run
    /// untraced. Flight recordings and Perfetto traces need the
    /// `Debug` cycle spans for virtual-time stamps, so they raise the
    /// collection floor.
    #[must_use]
    pub fn recorder(&self) -> Option<Recorder> {
        let t = &self.telemetry;
        let any = t.jsonl.is_some()
            || t.dash
            || t.flight.is_some()
            || t.prom.is_some()
            || t.perfetto.is_some()
            || t.slo;
        let level = if t.flight.is_some() || t.perfetto.is_some() {
            t.level.max(Level::Debug)
        } else {
            t.level
        };
        any.then(|| Recorder::new(level))
    }

    /// Export/print whatever the recorder collected, to the sinks this
    /// configuration selected (writes status lines to stdout — this is
    /// the driver-facing end of a run). `scheme` labels the derived
    /// `health.*` gauges ("all" for multi-scheme runs).
    pub fn finish(&self, recorder: Recorder, scheme: &str) -> std::io::Result<()> {
        let t = &self.telemetry;
        let mut events = recorder.take_events();

        if t.slo {
            let mut health = HealthModel::new(HealthConfig::default());
            for event in &events {
                health.observe(event);
            }
            let end = health.cycle();
            health.finish(end);
            recorder.with_registry_mut(|r| health.publish_to(r, scheme));
            events.extend(health.alert_records());
            println!("\n{}", health.panel());
        }

        let snapshot = recorder.snapshot();
        if let Some(path) = &t.flight {
            let mut flight = FlightRecorder::new(t.flight_capacity.max(1));
            for event in &events {
                flight.record(event.clone());
            }
            if !flight.triggered() {
                flight.trigger("requested");
            }
            let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
            flight.dump(&mut out)?;
            out.flush()?;
            println!(
                "\nflight recorder: kept {} of {} record(s), trigger '{}' -> {path}",
                flight.len(),
                flight.recorded(),
                flight.trigger_reason().unwrap_or("none"),
            );
        }
        if let Some(path) = &t.prom {
            let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
            prom::write_snapshot(&mut out, &snapshot)?;
            out.flush()?;
            println!("prometheus snapshot -> {path}");
        }
        if let Some(path) = &t.perfetto {
            let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
            perfetto::write_trace(&mut out, &events)?;
            out.flush()?;
            println!("perfetto trace: {} event(s) -> {path}", events.len());
        }
        if let Some(path) = &t.jsonl {
            let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
            jsonl::write_all(&mut out, &events, &snapshot)?;
            out.flush()?;
            let metric_lines = snapshot.counters.len()
                + snapshot.gauges.len()
                + snapshot.histograms.len()
                + snapshot.quantiles.len();
            println!(
                "\ntelemetry: {} event(s) + {} metric line(s) -> {path}",
                events.len(),
                metric_lines
            );
        }
        if t.dash {
            let dash = dashboard::render(&snapshot);
            if dash.is_empty() {
                println!("\n(no metrics collected — dashboard empty)");
            } else {
                println!("\n{dash}");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_shared_flags_once() {
        let cfg = RunConfig::from_args(&args(&[
            "--threads",
            "4",
            "--fast-forward",
            "--log-level",
            "debug",
            "--dash",
            "--flight-capacity",
            "64",
        ]))
        .unwrap();
        assert_eq!(cfg.threads, Parallelism::threads(4));
        assert_eq!(cfg.step_mode, StepMode::EventHorizon);
        assert_eq!(cfg.telemetry.level, Level::Debug);
        assert!(cfg.telemetry.dash);
        assert_eq!(cfg.telemetry.flight_capacity, 64);
    }

    #[test]
    fn defaults_without_flags() {
        let cfg = RunConfig::from_args(&[]).unwrap();
        assert_eq!(cfg.threads, Parallelism::Auto);
        assert_eq!(cfg.step_mode, StepMode::CycleByCycle);
        assert!(cfg.recorder().is_none(), "no telemetry flags → untraced");
    }

    #[test]
    fn flight_recorder_raises_collection_floor() {
        let cfg = RunConfig::from_args(&args(&["--flight-recorder", "/tmp/x.jsonl"])).unwrap();
        let rec = cfg.recorder().expect("flight recording implies a recorder");
        {
            let _guard = rec.install();
            mms_telemetry::event!(Level::Debug, "probe_debug_floor");
        }
        assert_eq!(
            rec.event_count(),
            1,
            "flight recording must raise collection to Debug"
        );
    }
}
