//! Server configuration and construction.

use crate::any::AnyScheduler;
use crate::server::MultimediaServer;
use mms_disk::DiskParams;
use mms_exec::Parallelism;
use mms_layout::{
    BandwidthClass, Catalog, CatalogError, ClusteredLayout, Geometry, GeometryError,
    ImprovedLayout, MediaObject, ObjectId,
};
use mms_sched::{
    CycleConfig, ImprovedScheduler, NonClusteredScheduler, StaggeredScheduler,
    StreamingRaidScheduler, TransitionPolicy,
};
use mms_sim::{DataMode, ObjectDirectory, Simulator, StepMode};
use std::fmt;

/// The fault-tolerance scheme to deploy (Section 5's comparison set).
pub type Scheme = mms_sched::SchemeKind;

/// Errors from [`ServerBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Disk count does not divide into the scheme's clusters.
    Geometry(GeometryError),
    /// An object did not fit or was duplicated.
    Catalog(CatalogError),
    /// No objects were registered.
    EmptyCatalog,
    /// Objects must share one bandwidth class per server (the paper's
    /// cycle length is a function of a single `b₀`; heterogeneous rates
    /// are handled by running one logical server per class, see the GSS
    /// reference \[3\] in the paper).
    MixedBandwidth,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Geometry(e) => write!(f, "geometry: {e}"),
            BuildError::Catalog(e) => write!(f, "catalog: {e}"),
            BuildError::EmptyCatalog => write!(f, "no objects registered"),
            BuildError::MixedBandwidth => {
                write!(f, "all objects of one server must share a bandwidth class")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<GeometryError> for BuildError {
    fn from(e: GeometryError) -> Self {
        BuildError::Geometry(e)
    }
}

impl From<CatalogError> for BuildError {
    fn from(e: CatalogError) -> Self {
        BuildError::Catalog(e)
    }
}

/// Builder for a [`MultimediaServer`].
#[derive(Debug)]
pub struct ServerBuilder {
    scheme: Scheme,
    disks: usize,
    c: usize,
    disk_params: DiskParams,
    nc_policy: TransitionPolicy,
    nc_buffer_servers: usize,
    ib_reserved_slots: usize,
    ib_parity_prefetch: bool,
    data_mode: DataMode,
    parallelism: Parallelism,
    step_mode: StepMode,
    movies: Vec<(String, f64, BandwidthClass)>,
    raw_objects: Vec<MediaObject>,
}

impl ServerBuilder {
    /// Start building a server for `scheme` with the paper's Table 1
    /// disk parameters, 10 disks, and parity groups of 5.
    #[must_use]
    pub fn new(scheme: Scheme) -> Self {
        ServerBuilder {
            scheme,
            disks: 10,
            c: 5,
            disk_params: DiskParams::paper_table1(),
            nc_policy: TransitionPolicy::Delayed,
            nc_buffer_servers: 3,
            ib_reserved_slots: 1,
            ib_parity_prefetch: false,
            data_mode: DataMode::Verified { track_bytes: 256 },
            parallelism: Parallelism::Auto,
            step_mode: StepMode::CycleByCycle,
            movies: Vec::new(),
            raw_objects: Vec::new(),
        }
    }

    /// Total disks `D`. Must be a multiple of `C` (clustered schemes) or
    /// `C−1` (improved-bandwidth).
    #[must_use]
    pub fn disks(mut self, d: usize) -> Self {
        self.disks = d;
        self
    }

    /// Parity-group size `C`.
    #[must_use]
    pub fn parity_group(mut self, c: usize) -> Self {
        self.c = c;
        self
    }

    /// Override disk model parameters.
    #[must_use]
    pub fn disk_params(mut self, p: DiskParams) -> Self {
        self.disk_params = p;
        self
    }

    /// Non-clustered transition policy (Figure 6 simple vs Figure 7
    /// delayed; default delayed).
    #[must_use]
    pub fn transition_policy(mut self, p: TransitionPolicy) -> Self {
        self.nc_policy = p;
        self
    }

    /// Non-clustered buffer servers (`K_NC`; default 3, as in the
    /// published tables).
    #[must_use]
    pub fn buffer_servers(mut self, k: usize) -> Self {
        self.nc_buffer_servers = k;
        self
    }

    /// Improved-bandwidth per-disk reserved slots (default 1).
    #[must_use]
    pub fn reserved_slots(mut self, k: usize) -> Self {
        self.ib_reserved_slots = k;
        self
    }

    /// Enable Section 4's adaptive parity prefetch for the
    /// Improved-bandwidth scheme: under light load, parity is read during
    /// normal operation so even a mid-cycle failure causes no hiccup.
    #[must_use]
    pub fn parity_prefetch(mut self, enabled: bool) -> Self {
        self.ib_parity_prefetch = enabled;
        self
    }

    /// Data mode: verified synthetic content (default) or metadata only.
    #[must_use]
    pub fn data_mode(mut self, m: DataMode) -> Self {
        self.data_mode = m;
        self
    }

    /// Worker-pool width for the server's batch experiments (the
    /// Monte-Carlo reliability measurement and any `mms_sim::batch`
    /// grids driven through this server). Purely a performance knob:
    /// results are bit-identical for every setting. Default
    /// [`Parallelism::Auto`].
    #[must_use]
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Simulator step mode (`EventHorizon` fast-forwards idle spans;
    /// observably identical to `Cycle`).
    #[must_use]
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Apply a unified [`crate::RunConfig`]: worker pool and step mode
    /// in one call, so drivers configure the server from the same
    /// object that configures their telemetry.
    #[must_use]
    pub fn run_config(self, cfg: &crate::RunConfig) -> Self {
        self.parallelism(cfg.threads).step_mode(cfg.step_mode)
    }

    /// Register a movie by play length in minutes.
    #[must_use]
    pub fn movie(mut self, name: impl Into<String>, minutes: f64, class: BandwidthClass) -> Self {
        self.movies.push((name.into(), minutes, class));
        self
    }

    /// Register a pre-built object (track count already chosen).
    #[must_use]
    pub fn object(mut self, object: MediaObject) -> Self {
        self.raw_objects.push(object);
        self
    }

    /// Build the server.
    pub fn build(self) -> Result<MultimediaServer, BuildError> {
        // Materialize movie objects with dense ids after raw objects.
        let mut objects = self.raw_objects.clone();
        let first_id = objects.iter().map(|o| o.id.0 + 1).max().unwrap_or(0);
        for (offset, (name, minutes, class)) in self.movies.iter().enumerate() {
            objects.push(MediaObject::movie(
                ObjectId(first_id + offset as u64),
                name.clone(),
                *minutes,
                *class,
                self.disk_params.track_size,
            ));
        }
        if objects.is_empty() {
            return Err(BuildError::EmptyCatalog);
        }
        let b0 = objects[0].class.rate();
        if objects
            .iter()
            .any(|o| (o.class.rate().as_megabits() - b0.as_megabits()).abs() > 1e-9)
        {
            return Err(BuildError::MixedBandwidth);
        }

        let capacity_tracks = self.disk_params.tracks_per_disk();
        let directory = ObjectDirectory::new(
            objects.iter().map(|o| (o.id, o.tracks)),
            (self.c - 1) as u32,
        );
        let object_ids: Vec<ObjectId> = objects.iter().map(|o| o.id).collect();

        let scheduler = match self.scheme {
            Scheme::StreamingRaid | Scheme::StaggeredGroup | Scheme::NonClustered => {
                let geo = Geometry::clustered(self.disks, self.c)?;
                let layout = ClusteredLayout::new(geo);
                let mut catalog = Catalog::new(layout, capacity_tracks);
                for o in objects {
                    catalog.add(o)?;
                }
                match self.scheme {
                    Scheme::StreamingRaid => {
                        let cfg = CycleConfig::new(self.disk_params, b0, self.c - 1, self.c - 1);
                        AnyScheduler::StreamingRaid(StreamingRaidScheduler::new(cfg, catalog))
                    }
                    Scheme::StaggeredGroup => {
                        let cfg = CycleConfig::new(self.disk_params, b0, self.c - 1, 1);
                        AnyScheduler::Staggered(StaggeredScheduler::new(cfg, catalog))
                    }
                    Scheme::NonClustered => {
                        let cfg = CycleConfig::new(self.disk_params, b0, 1, 1);
                        AnyScheduler::NonClustered(NonClusteredScheduler::new(
                            cfg,
                            catalog,
                            self.nc_policy,
                            self.nc_buffer_servers,
                        ))
                    }
                    Scheme::ImprovedBandwidth => unreachable!(),
                }
            }
            Scheme::ImprovedBandwidth => {
                let geo = Geometry::improved(self.disks, self.c)?;
                let layout = ImprovedLayout::new(geo);
                let mut catalog = Catalog::new(layout, capacity_tracks);
                for o in objects {
                    catalog.add(o)?;
                }
                let cfg = CycleConfig::new(self.disk_params, b0, self.c - 1, self.c - 1);
                let mut sched = ImprovedScheduler::new(cfg, catalog, self.ib_reserved_slots);
                sched.set_parity_prefetch(self.ib_parity_prefetch);
                AnyScheduler::Improved(sched)
            }
        };

        let sim = Simulator::new(
            scheduler,
            self.disk_params,
            self.disks,
            self.data_mode,
            directory,
        );
        let mut server = MultimediaServer::from_parts(sim, object_ids, self.c, self.parallelism);
        server.set_step_mode(self.step_mode);
        Ok(server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_sched::SchemeScheduler;

    #[test]
    fn builds_every_scheme() {
        for scheme in [
            Scheme::StreamingRaid,
            Scheme::StaggeredGroup,
            Scheme::NonClustered,
        ] {
            let s = ServerBuilder::new(scheme)
                .disks(10)
                .parity_group(5)
                .movie("m", 1.0, BandwidthClass::Mpeg1)
                .build()
                .unwrap();
            assert_eq!(s.scheme(), scheme);
        }
        let s = ServerBuilder::new(Scheme::ImprovedBandwidth)
            .disks(8)
            .parity_group(5)
            .movie("m", 1.0, BandwidthClass::Mpeg1)
            .build()
            .unwrap();
        assert_eq!(s.scheme(), Scheme::ImprovedBandwidth);
    }

    #[test]
    fn rejects_bad_geometry() {
        let err = ServerBuilder::new(Scheme::StreamingRaid)
            .disks(11)
            .parity_group(5)
            .movie("m", 1.0, BandwidthClass::Mpeg1)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::Geometry(_)));
    }

    #[test]
    fn rejects_empty_catalog() {
        let err = ServerBuilder::new(Scheme::StreamingRaid)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::EmptyCatalog));
    }

    #[test]
    fn rejects_mixed_bandwidths() {
        let err = ServerBuilder::new(Scheme::StreamingRaid)
            .movie("a", 1.0, BandwidthClass::Mpeg1)
            .movie("b", 1.0, BandwidthClass::Mpeg2)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::MixedBandwidth));
    }

    #[test]
    fn movie_ids_are_dense_after_raw_objects() {
        let server = ServerBuilder::new(Scheme::StreamingRaid)
            .object(MediaObject::new(
                ObjectId(5),
                "raw",
                8,
                BandwidthClass::Mpeg1,
            ))
            .movie("m", 1.0, BandwidthClass::Mpeg1)
            .build()
            .unwrap();
        assert_eq!(server.objects(), &[ObjectId(5), ObjectId(6)]);
    }

    #[test]
    fn scheduler_kind_is_wired_through() {
        let server = ServerBuilder::new(Scheme::NonClustered)
            .movie("m", 1.0, BandwidthClass::Mpeg1)
            .build()
            .unwrap();
        assert!(server.simulator().scheduler().as_non_clustered().is_some());
        assert_eq!(
            server.simulator().scheduler().scheme(),
            Scheme::NonClustered
        );
    }
}
