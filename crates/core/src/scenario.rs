//! Scenario execution: run declarative fault-injection scripts
//! ([`mms_sim::scenario`]) against full servers, for any scheme.
//!
//! * [`ScenarioTopology`] — the server shape a scenario runs on (disks,
//!   parity-group size, object set, per-scheme knobs).
//! * [`ScenarioCase`] — a [`Scenario`] bound to a topology and the
//!   schemes it applies to.
//! * [`ScenarioRunner`] — executes a case for one scheme, or fans out
//!   over all of its schemes on the `mms-exec` worker pool; either way
//!   the reports are bit-identical at every thread count.
//! * [`corpus`] — the named scenario corpus behind
//!   `mms-ctl scenario <name|all>`: the paper's failure drills as
//!   checked, repeatable scripts.
//!
//! ```
//! use mms_server::scenario::{corpus, ScenarioRunner};
//! use mms_server::Parallelism;
//!
//! let case = corpus(true).into_iter().find(|c| c.scenario.name == "single-fault").unwrap();
//! let reports = ScenarioRunner::new(Parallelism::Sequential).run_case(&case);
//! assert!(reports.iter().all(|r| r.passed()));
//! ```

use crate::builder::ServerBuilder;
use crate::error::ServerError;
use crate::server::MultimediaServer;
use mms_disk::{DiskId, ReliabilityParams, Time};
use mms_exec::{par_map_indexed_min, Parallelism, SeedSequence};
use mms_layout::{BandwidthClass, MediaObject, ObjectId};
use mms_sched::{SchemeKind, TransitionPolicy};
use mms_sim::scenario::{
    degraded_cycles, transitions_from_events, Check, DataLossRecord, Expectation, Horizon,
    Scenario, ScenarioEvent, ScenarioReport, StochasticFaults,
};
use mms_sim::{DataMode, FailureEvent, FailureSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The object catalog a scenario topology registers.
#[derive(Debug, Clone)]
pub enum ObjectSet {
    /// Movies by `(name, minutes, class)`, as [`ServerBuilder::movie`].
    Movies(Vec<(String, f64, BandwidthClass)>),
    /// The Figures 5–7 corpus: eight 4-track objects (one parity group
    /// each) at 1 MB/s, so one cluster of five disks runs exactly one
    /// read slot per disk per cycle.
    FigureCorpus,
}

/// The server shape a scenario runs against.
#[derive(Debug, Clone)]
pub struct ScenarioTopology {
    /// Disks for the clustered schemes (SR/SG/NC; a multiple of `c`).
    pub disks: usize,
    /// Disks for Improved-bandwidth (a multiple of `c − 1`).
    pub ib_disks: usize,
    /// Parity-group size `C`.
    pub c: usize,
    /// Registered objects.
    pub objects: ObjectSet,
    /// Non-clustered transition policy.
    pub nc_policy: TransitionPolicy,
    /// Non-clustered buffer servers (`K_NC`).
    pub nc_buffer_servers: usize,
    /// Improved-bandwidth reserved slots per disk.
    pub ib_reserved_slots: usize,
    /// Improved-bandwidth adaptive parity prefetch.
    pub ib_parity_prefetch: bool,
    /// Synthetic track payload bytes (verified end to end).
    pub track_bytes: usize,
}

impl ScenarioTopology {
    /// The standard drill topology: 10 disks (8 for IB), `C = 5`, a
    /// 1-minute feature and a 0.3-minute short (MPEG-1), verified
    /// 128-byte tracks.
    #[must_use]
    pub fn standard() -> Self {
        ScenarioTopology {
            disks: 10,
            ib_disks: 8,
            c: 5,
            objects: ObjectSet::Movies(vec![
                ("feature".to_string(), 1.0, BandwidthClass::Mpeg1),
                ("short".to_string(), 0.3, BandwidthClass::Mpeg1),
            ]),
            nc_policy: TransitionPolicy::Delayed,
            nc_buffer_servers: 3,
            ib_reserved_slots: 1,
            ib_parity_prefetch: false,
            track_bytes: 128,
        }
    }

    /// The Figures 6/7 topology: one cluster of five disks, one read
    /// slot per disk per cycle, one buffer server, and the figures'
    /// eight single-group objects.
    #[must_use]
    pub fn figure(policy: TransitionPolicy) -> Self {
        ScenarioTopology {
            disks: 5,
            ib_disks: 8,
            c: 5,
            objects: ObjectSet::FigureCorpus,
            nc_policy: policy,
            nc_buffer_servers: 1,
            ib_reserved_slots: 1,
            ib_parity_prefetch: false,
            track_bytes: 128,
        }
    }

    /// Build a server of this shape for `scheme`.
    pub fn build(&self, scheme: SchemeKind) -> Result<MultimediaServer, ServerError> {
        let disks = if scheme == SchemeKind::ImprovedBandwidth {
            self.ib_disks
        } else {
            self.disks
        };
        let mut b = ServerBuilder::new(scheme)
            .disks(disks)
            .parity_group(self.c)
            .transition_policy(self.nc_policy)
            .buffer_servers(self.nc_buffer_servers)
            .reserved_slots(self.ib_reserved_slots)
            .parity_prefetch(self.ib_parity_prefetch)
            .data_mode(DataMode::Verified {
                track_bytes: self.track_bytes,
            })
            .parallelism(Parallelism::Sequential);
        match &self.objects {
            ObjectSet::Movies(movies) => {
                for (name, minutes, class) in movies {
                    b = b.movie(name.clone(), *minutes, *class);
                }
            }
            ObjectSet::FigureCorpus => {
                for oid in 0..8u64 {
                    b = b.object(MediaObject::new(
                        ObjectId(oid),
                        format!("obj{oid}"),
                        4,
                        BandwidthClass::Custom(mms_disk::Bandwidth::from_megabytes(1.0)),
                    ));
                }
            }
        }
        Ok(b.build()?)
    }
}

/// A scenario bound to its topology and the schemes it applies to.
#[derive(Debug, Clone)]
pub struct ScenarioCase {
    /// The script and its invariants.
    pub scenario: Scenario,
    /// The server shape.
    pub topology: ScenarioTopology,
    /// Schemes the scenario is defined for.
    pub schemes: Vec<SchemeKind>,
}

/// Executes [`ScenarioCase`]s deterministically.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner {
    parallelism: Parallelism,
    fast_forward: bool,
}

impl ScenarioRunner {
    /// A runner fanning scheme runs out over `parallelism` workers.
    #[must_use]
    pub fn new(parallelism: Parallelism) -> Self {
        ScenarioRunner {
            parallelism,
            fast_forward: false,
        }
    }

    /// Fast-forward quiescent stretches between scripted events with
    /// [`mms_sim::Simulator::advance_quiescent`]. Reports are observably
    /// identical to per-cycle execution — the event-horizon equivalence
    /// suite pins this — the run is just faster.
    #[must_use]
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Run `case` for every scheme it names, in scheme order. Reports
    /// are bit-identical for every [`Parallelism`] setting.
    #[must_use]
    pub fn run_case(&self, case: &ScenarioCase) -> Vec<ScenarioReport> {
        par_map_indexed_min(self.parallelism, case.schemes.len(), 2, |i| {
            self.run(case, case.schemes[i])
        })
    }

    /// Run `case` for one scheme. Unexpected execution errors (a script
    /// naming a bad object, a simulation failure) are reported as
    /// violations rather than panics, so a corpus sweep always yields a
    /// full set of reports.
    #[must_use]
    pub fn run(&self, case: &ScenarioCase, scheme: SchemeKind) -> ScenarioReport {
        let scenario = &case.scenario;
        let mut report = ScenarioReport::new(scenario.name, scheme);
        let mut server = match case.topology.build(scheme) {
            Ok(s) => s,
            Err(e) => {
                report.violations.push(format!("build failed: {e}"));
                return report;
            }
        };

        // Expand the stochastic overlay deterministically: the master
        // seed is split per scheme (SplitMix64), so each scheme sees
        // its own reproducible fault process regardless of thread
        // count or which other schemes run.
        if let Some(st) = scenario.stochastic {
            let scheme_index = SchemeKind::ALL
                .iter()
                .position(|&s| s == scheme)
                .expect("scheme in ALL") as u64;
            let mut rng =
                StdRng::seed_from_u64(SeedSequence::new(scenario.seed).seed(scheme_index));
            let t_cyc = server.cycle_config().t_cyc();
            let rel = ReliabilityParams {
                mttf: ReliabilityParams::paper().mttf,
                mttr: Time::from_secs(t_cyc.as_secs() * st.mttr_cycles as f64),
            };
            let schedule = FailureSchedule::stochastic(
                &mut rng,
                server.simulator().disks().len(),
                rel,
                t_cyc,
                st.horizon_cycles,
                st.acceleration,
            );
            server.simulator_mut().set_failures(schedule);
        }

        let mut events = scenario.events.clone();
        events.sort_by_key(ScenarioEvent::cycle);
        let objects = server.objects().to_vec();

        // The internal recorder needs Info to harvest mode transitions;
        // if an ambient collector wants more (e.g. Debug cycle spans for
        // a flight recording), match it so nothing is lost in transit.
        let level = mms_telemetry::current_max_level().map_or(mms_telemetry::Level::Info, |l| {
            l.max(mms_telemetry::Level::Info)
        });
        let recorder = mms_telemetry::Recorder::new(level);
        let guard = recorder.install();
        let max_cycles = scenario.horizon.max_cycles();
        let mut ev_ix = 0;
        let mut rebuild_started_at: Option<u64> = None;
        let mut last_rebuild_done: Option<u64> = None;
        loop {
            let now = server.cycle();
            while ev_ix < events.len() && events[ev_ix].cycle() <= now {
                self.dispatch(&events[ev_ix], &mut server, &objects, &mut report);
                if matches!(
                    events[ev_ix],
                    ScenarioEvent::RebuildParity { .. } | ScenarioEvent::RebuildTertiary { .. }
                ) {
                    rebuild_started_at.get_or_insert(now);
                }
                ev_ix += 1;
            }
            if now >= max_cycles {
                break;
            }
            if matches!(scenario.horizon, Horizon::Drain { .. })
                && ev_ix == events.len()
                && server.active_streams() == 0
                && server.simulator().rebuilds().active().is_empty()
                && server.simulator().metrics().cycles > 0
            {
                break;
            }
            // Between scripted events nothing external can perturb the
            // schedule, so the stretch up to the next event (or the
            // horizon) is a fast-forward candidate. Tertiary staging
            // advances only through `server.step`, so the fast path
            // stays off while the librarian has work.
            if self.fast_forward && server.staging().queue().is_empty() {
                let next_event = events
                    .get(ev_ix)
                    .map_or(max_cycles, |e| e.cycle().min(max_cycles));
                match server.simulator_mut().advance_quiescent(next_event) {
                    Ok(n) if n > 0 => continue,
                    Ok(_) => {}
                    Err(e) => {
                        report.violations.push(format!("cycle {now}: {e}"));
                        break;
                    }
                }
            }
            let rebuilds_before = server.simulator().metrics().rebuilds_completed;
            if let Err(e) = server.step() {
                report.violations.push(format!("cycle {now}: {e}"));
                break;
            }
            if server.simulator().metrics().rebuilds_completed > rebuilds_before {
                last_rebuild_done = Some(server.cycle());
            }
            if let Some(ib) = server.simulator().scheduler().as_improved() {
                for c in ib.last_shift_path() {
                    let c = u64::from(c.0);
                    if !report.shift_clusters.contains(&c) {
                        report.shift_clusters.push(c);
                    }
                }
            }
        }
        drop(guard);

        let m = server.metrics();
        report.cycles = m.cycles;
        report.finished = m.streams_finished;
        report.dropped = m.service_degradations;
        report.active_at_end = server.active_streams() as u64;
        report.tracks_lost = m.total_hiccups();
        report.reconstructed = m.reconstructed;
        // `fail_disk_now` counts catastrophes for immediate injections
        // too; subtract the typed losses so `catastrophes` covers only
        // scheduled (step-path) faults, as documented on the report.
        report.catastrophes = m.catastrophes.saturating_sub(report.data_loss.len() as u64);
        report.rebuilds_completed = m.rebuilds_completed;
        let (events, registry) = recorder.into_parts();
        report.transitions = transitions_from_events(&events);
        report.degraded_cycles = degraded_cycles(&report.transitions, report.cycles);
        report.rebuild_duration = match (rebuild_started_at, last_rebuild_done) {
            (Some(s), Some(e)) => Some(e.saturating_sub(s)),
            _ => None,
        };
        report.violations.extend(scenario.evaluate(&report));
        // Forward the run's telemetry to any ambient collector (the
        // guard is already dropped, so this reaches e.g. mms-ctl's
        // recorder). Absorption happens whole-run at a time, in the
        // caller's invocation order, so the combined stream stays
        // byte-identical at every thread count.
        mms_telemetry::dispatch_absorb(events, &registry);
        for violation in &report.violations {
            mms_telemetry::event!(
                mms_telemetry::Level::Error,
                "check_violation",
                scenario = scenario.name,
                scheme = scheme.abbrev(),
                message = violation.clone(),
            );
        }
        report
    }

    fn dispatch(
        &self,
        event: &ScenarioEvent,
        server: &mut MultimediaServer,
        objects: &[ObjectId],
        report: &mut ScenarioReport,
    ) {
        match *event {
            ScenarioEvent::Admit { object, cycle } => {
                let Some(&oid) = objects.get(object) else {
                    report
                        .violations
                        .push(format!("cycle {cycle}: no object at index {object}"));
                    return;
                };
                match server.admit(oid) {
                    Ok(_) => report.admitted += 1,
                    Err(ServerError::Admission(_)) => report.rejected += 1,
                    Err(e) => report.violations.push(format!("cycle {cycle}: {e}")),
                }
            }
            ScenarioEvent::Fault(fe) => match server.inject(fe) {
                Ok(_) => {}
                Err(ServerError::DataLoss { tracks }) => report.data_loss.push(DataLossRecord {
                    cycle: fe.cycle(),
                    disk: fe.disk(),
                    tracks,
                }),
                Err(e) => report.violations.push(format!("cycle {}: {e}", fe.cycle())),
            },
            ScenarioEvent::RebuildParity { cycle, disk } => {
                if let Err(e) = server.start_parity_rebuild(disk) {
                    report.violations.push(format!("cycle {cycle}: {e}"));
                } else {
                    report.rebuilds_started += 1;
                }
            }
            ScenarioEvent::RebuildTertiary {
                cycle,
                disk,
                tracks_per_cycle,
            } => {
                if let Err(e) = server.start_tertiary_rebuild(disk, tracks_per_cycle) {
                    report.violations.push(format!("cycle {cycle}: {e}"));
                } else {
                    report.rebuilds_started += 1;
                }
            }
        }
    }
}

/// All four schemes, for corpus cases with no scheme restriction.
fn all_schemes() -> Vec<SchemeKind> {
    SchemeKind::ALL.to_vec()
}

fn admit(cycle: u64, object: usize) -> ScenarioEvent {
    ScenarioEvent::Admit { cycle, object }
}

fn fail(cycle: u64, disk: u32) -> ScenarioEvent {
    ScenarioEvent::Fault(FailureEvent::fail(cycle, DiskId(disk)))
}

fn fail_mid(cycle: u64, disk: u32) -> ScenarioEvent {
    ScenarioEvent::Fault(FailureEvent::fail_mid_cycle(cycle, DiskId(disk)))
}

fn repair(cycle: u64, disk: u32) -> ScenarioEvent {
    ScenarioEvent::Fault(FailureEvent::repair(cycle, DiskId(disk)))
}

/// The NC figure-transition case (Figures 6/7): the exact admission
/// pattern of `crates/sched/tests/figures_nc.rs` driven through the
/// full simulator, losing exactly `tracks` tracks.
fn nc_figure_case(policy: TransitionPolicy, tracks: u64) -> ScenarioCase {
    let (name, summary) = match policy {
        TransitionPolicy::Simple => (
            "nc-transition-simple",
            "Fig. 6: NC simple transition loses exactly 6 tracks",
        ),
        TransitionPolicy::Delayed => (
            "nc-transition-delayed",
            "Fig. 7: NC delayed transition loses exactly 3 tracks",
        ),
    };
    let mut s = Scenario::new(name, summary);
    s.seed = 6 + tracks;
    s.horizon = Horizon::Drain { max_cycles: 60 };
    s.events = vec![
        admit(1, 0), // U
        admit(2, 1), // W
        admit(3, 2), // Y
        admit(4, 3), // A starts at the failure cycle itself
        fail(4, 2),  // disk 2 dies just before cycle 4 (figure cycle 1)
        admit(5, 4), // C
        admit(6, 5), // E
        admit(7, 6), // G
        admit(8, 7), // I
    ];
    s.expectations = vec![
        Expectation::all(Check::LostTracksExactly(tracks)),
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::AllStreamsFinish),
    ];
    ScenarioCase {
        scenario: s,
        topology: ScenarioTopology::figure(policy),
        schemes: vec![SchemeKind::NonClustered],
    }
}

/// The named scenario corpus (the `mms-ctl scenario` registry).
///
/// `quick` shortens the stochastic soak so CI smoke runs stay fast;
/// every deterministic scenario is identical in both modes.
#[must_use]
pub fn corpus(quick: bool) -> Vec<ScenarioCase> {
    let mut cases = Vec::new();
    let std_topo = ScenarioTopology::standard;

    // 1. No faults at all: every scheme plays clean.
    let mut s = Scenario::new("baseline-clean", "no faults; every stream plays losslessly");
    s.events = vec![admit(0, 0)];
    s.expectations = vec![
        Expectation::all(Check::NoLostTracks),
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::NoDroppedStreams),
        Expectation::all(Check::AllStreamsFinish),
    ];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    // 2. One cycle-boundary failure mid-movie.
    let mut s = Scenario::new(
        "single-fault",
        "one disk dies mid-movie; SR/SG/IB mask it, NC loses its bounded transition set",
    );
    s.events = vec![admit(0, 0), fail(3, 1)];
    s.expectations = vec![
        Expectation::for_scheme(SchemeKind::StreamingRaid, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::StaggeredGroup, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::ImprovedBandwidth, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::NonClustered, Check::LostTracksAtMost(2)),
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::NoDroppedStreams),
        Expectation::all(Check::AllStreamsFinish),
    ];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    // 3. The mid-cycle (unmaskable for IB) variant.
    let mut s = Scenario::new(
        "mid-cycle-fault",
        "failure after the read schedule committed; only IB takes the one unmaskable hiccup",
    );
    s.events = vec![admit(0, 0), fail_mid(4, 1)];
    s.expectations = vec![
        Expectation::for_scheme(SchemeKind::StreamingRaid, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::StaggeredGroup, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::ImprovedBandwidth, Check::LostTracksExactly(1)),
        Expectation::for_scheme(SchemeKind::NonClustered, Check::LostTracksAtMost(2)),
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::AllStreamsFinish),
    ];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    // 4. Section 4's adaptive parity prefetch masks even the mid-cycle
    //    case under light load.
    let mut s = Scenario::new(
        "ib-prefetch-mid-cycle",
        "parity prefetch on: IB masks even a mid-cycle failure",
    );
    s.events = vec![admit(0, 0), fail_mid(4, 1)];
    s.expectations = vec![
        Expectation::all(Check::NoLostTracks),
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::AllStreamsFinish),
    ];
    let mut topo = std_topo();
    topo.ib_parity_prefetch = true;
    cases.push(ScenarioCase {
        scenario: s,
        topology: topo,
        schemes: vec![SchemeKind::ImprovedBandwidth],
    });

    // 5. Failure followed by repair: degraded mode ends, no residue.
    let mut s = Scenario::new(
        "fail-and-repair",
        "fail one disk, repair it 40 cycles later; service recovers fully",
    );
    s.events = vec![admit(0, 0), fail(3, 1), repair(43, 1)];
    s.expectations = vec![
        Expectation::for_scheme(SchemeKind::StreamingRaid, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::StaggeredGroup, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::ImprovedBandwidth, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::NonClustered, Check::LostTracksAtMost(2)),
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::AllStreamsFinish),
    ];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    // 6–7. The NC transition figures, through the full simulator.
    cases.push(nc_figure_case(TransitionPolicy::Simple, 6));
    cases.push(nc_figure_case(TransitionPolicy::Delayed, 3));

    // 8. Second failure inside one parity group: typed data loss,
    //    never a panic.
    let mut s = Scenario::new(
        "double-fault-same-group",
        "two failures in one parity group; every scheme reports typed data loss",
    );
    s.events = vec![admit(0, 0), fail(3, 1), fail(6, 2)];
    s.expectations = vec![Expectation::all(Check::DataLoss)];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    // 9. Two failures in different clusters: safe for the clustered
    //    schemes, catastrophic for IB whose 8-disk ring has only two
    //    (hence mutually adjacent) clusters.
    let mut s = Scenario::new(
        "double-fault-cross-group",
        "failures in two clusters; SR/SG/NC survive, IB's adjacency rule loses data",
    );
    s.events = vec![admit(0, 0), fail(3, 1), fail(6, 6)];
    s.expectations = vec![
        Expectation::for_scheme(SchemeKind::StreamingRaid, Check::NoCatastrophe),
        Expectation::for_scheme(SchemeKind::StreamingRaid, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::StaggeredGroup, Check::NoCatastrophe),
        Expectation::for_scheme(SchemeKind::StaggeredGroup, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::NonClustered, Check::NoCatastrophe),
        Expectation::for_scheme(SchemeKind::NonClustered, Check::LostTracksAtMost(4)),
        Expectation::for_scheme(SchemeKind::ImprovedBandwidth, Check::DataLoss),
    ];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    // 10. NC buffer-server exhaustion: the Eq. 6 degradation of
    //     service.
    let mut s = Scenario::new(
        "buffer-exhaustion",
        "K_NC = 1 and failures in two clusters; the second degraded cluster sheds streams",
    );
    s.events = vec![admit(0, 0), admit(1, 0), fail(6, 1), fail(6, 6)];
    s.expectations = vec![
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::DroppedStreams),
    ];
    let mut topo = std_topo();
    topo.nc_buffer_servers = 1;
    cases.push(ScenarioCase {
        scenario: s,
        topology: topo,
        schemes: vec![SchemeKind::NonClustered],
    });

    // 11. A second failure landing during a (slow, tertiary) rebuild.
    let mut s = Scenario::new(
        "fail-during-rebuild",
        "disk fails during another disk's tape rebuild; same group, typed data loss",
    );
    s.events = vec![
        admit(0, 0),
        fail(3, 1),
        ScenarioEvent::RebuildTertiary {
            cycle: 6,
            disk: DiskId(1),
            tracks_per_cycle: 1,
        },
        fail(12, 2),
    ];
    s.expectations = vec![Expectation::all(Check::DataLoss)];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    // 12. Background parity rebuild under live delivery load.
    let mut s = Scenario::new(
        "rebuild-under-load",
        "parity rebuild from idle slots while a stream plays; completes without slowing it",
    );
    s.events = vec![
        admit(0, 0),
        fail(3, 1),
        ScenarioEvent::RebuildParity {
            cycle: 6,
            disk: DiskId(1),
        },
    ];
    s.expectations = vec![
        Expectation::all(Check::RebuildCompletes),
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::AllStreamsFinish),
        Expectation::for_scheme(SchemeKind::StreamingRaid, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::StaggeredGroup, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::ImprovedBandwidth, Check::NoLostTracks),
        Expectation::for_scheme(SchemeKind::NonClustered, Check::LostTracksAtMost(2)),
    ];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    // 13. IB's "shift to the right" cascade is observable.
    let mut s = Scenario::new(
        "shift-cascade",
        "IB degraded mode shifts displaced load through the cluster ring",
    );
    s.events = vec![admit(0, 0), admit(0, 1), fail(4, 1)];
    s.expectations = vec![
        Expectation::all(Check::ShiftCascade),
        Expectation::all(Check::NoLostTracks),
        Expectation::all(Check::NoCatastrophe),
        Expectation::all(Check::AllStreamsFinish),
    ];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: vec![SchemeKind::ImprovedBandwidth],
    });

    // 14. Stochastic soak: accelerated failure/repair processes from
    //     the pre-split seed; exercises every mode without asserting a
    //     specific loss (the deterministic scenarios do that).
    let mut s = Scenario::new(
        "stochastic-soak",
        "seeded stochastic failure/repair storm; bit-identical at any thread count",
    );
    let horizon = if quick { 120 } else { 400 };
    s.seed = 0xdecade;
    s.horizon = Horizon::Fixed(horizon);
    s.stochastic = Some(StochasticFaults {
        acceleration: 1.5e6,
        mttr_cycles: 20,
        horizon_cycles: horizon,
    });
    s.events = vec![admit(0, 0), admit(1, 1), admit(40, 1), admit(60, 0)];
    cases.push(ScenarioCase {
        scenario: s,
        topology: std_topo(),
        schemes: all_schemes(),
    });

    cases
}

/// Look up one corpus case by scenario name.
#[must_use]
pub fn find(name: &str, quick: bool) -> Option<ScenarioCase> {
    corpus(quick).into_iter().find(|c| c.scenario.name == name)
}

/// Run the whole corpus (or one named scenario) and render every
/// report, returning the rendered text and whether every invariant
/// held. The text is bit-identical for every thread count, and —
/// because fast-forwarded runs are observably identical — for either
/// value of `fast_forward`.
#[must_use]
pub fn run_corpus_rendered(
    parallelism: Parallelism,
    quick: bool,
    only: Option<&str>,
    fast_forward: bool,
) -> (String, bool) {
    let cases: Vec<ScenarioCase> = corpus(quick)
        .into_iter()
        .filter(|c| only.is_none_or(|n| c.scenario.name == n))
        .collect();
    let jobs: Vec<(usize, SchemeKind)> = cases
        .iter()
        .enumerate()
        .flat_map(|(i, c)| c.schemes.iter().map(move |&s| (i, s)))
        .collect();
    let runner = ScenarioRunner::new(parallelism).with_fast_forward(fast_forward);
    let reports = par_map_indexed_min(parallelism, jobs.len(), 2, |j| {
        let (case_ix, scheme) = jobs[j];
        runner.run(&cases[case_ix], scheme)
    });
    let mut out = String::new();
    let mut all_passed = true;
    let mut last_case = usize::MAX;
    for (report, &(case_ix, _)) in reports.iter().zip(&jobs) {
        if case_ix != last_case {
            out.push_str(&format!(
                "== {} — {}\n",
                cases[case_ix].scenario.name, cases[case_ix].scenario.summary
            ));
            last_case = case_ix;
        }
        out.push_str(&report.render());
        all_passed &= report.passed();
    }
    let verdict = if all_passed {
        "corpus: all invariants held"
    } else {
        "corpus: INVARIANT VIOLATIONS"
    };
    out.push_str(verdict);
    out.push('\n');
    (out, all_passed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_nonempty() {
        let cases = corpus(true);
        assert!(cases.len() >= 12, "corpus shrank to {}", cases.len());
        let mut names: Vec<&str> = cases.iter().map(|c| c.scenario.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate scenario names");
        assert!(find("single-fault", true).is_some());
        assert!(find("no-such-scenario", true).is_none());
    }

    #[test]
    fn every_topology_builds_for_its_schemes() {
        for case in corpus(true) {
            for &scheme in &case.schemes {
                case.topology
                    .build(scheme)
                    .unwrap_or_else(|e| panic!("{}/{scheme:?}: {e}", case.scenario.name));
            }
        }
    }
}
