//! The unified public error type for [`MultimediaServer`].
//!
//! Before this type, each subsystem surfaced its own enum — [`SimError`]
//! from the simulator, [`AdmissionError`] from admission control,
//! [`CatalogError`] from the catalog, [`RetireError`] from purging, and
//! [`BuildError`] from construction — and callers juggling a server had
//! to import all five. [`ServerError`] wraps them under one
//! [`std::error::Error`] with lossless `From` conversions; the inner
//! enums stay public (and re-exported from the crate root) so existing
//! pattern-matching code keeps compiling.
//!
//! [`MultimediaServer`]: crate::MultimediaServer

use crate::builder::BuildError;
use mms_disk::DiskError;
use mms_layout::CatalogError;
use mms_sched::{AdmissionError, RetireError};
use mms_sim::SimError;
use std::fmt;

/// Anything a [`MultimediaServer`](crate::MultimediaServer) operation
/// can fail with.
///
/// Admission rejections nested inside a [`SimError`] are flattened to
/// [`ServerError::Admission`], so callers match one variant per cause
/// regardless of which layer reported it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The simulator's disk layer refused an operation (down disk,
    /// slot overload, unknown disk).
    Sim(SimError),
    /// An admission was rejected.
    Admission(AdmissionError),
    /// The catalog refused an object (duplicate, no space).
    Catalog(CatalogError),
    /// An object could not be retired.
    Retire(RetireError),
    /// The server could not be constructed.
    Build(BuildError),
    /// A fault made data unrecoverable: a second disk failed inside an
    /// already-degraded parity group's span, so `tracks` data tracks
    /// have no surviving reconstruction path (the paper's
    /// *catastrophic failure*). The failure **was** applied — the
    /// scheduler is in catastrophic mode and a tertiary-storage rebuild
    /// is the only way back.
    DataLoss {
        /// Data tracks lost (parity tracks excluded — they carry no
        /// payload of their own).
        tracks: u64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Sim(e) => write!(f, "simulation error: {e}"),
            ServerError::Admission(e) => write!(f, "admission error: {e}"),
            ServerError::Catalog(e) => write!(f, "catalog error: {e}"),
            ServerError::Retire(e) => write!(f, "retire error: {e}"),
            ServerError::Build(e) => write!(f, "build error: {e}"),
            ServerError::DataLoss { tracks } => {
                write!(
                    f,
                    "catastrophic failure: {tracks} data tracks unrecoverable"
                )
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Sim(e) => Some(e),
            ServerError::Admission(e) => Some(e),
            ServerError::Catalog(e) => Some(e),
            ServerError::Retire(e) => Some(e),
            ServerError::Build(e) => Some(e),
            ServerError::DataLoss { .. } => None,
        }
    }
}

impl From<SimError> for ServerError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Admission(a) => ServerError::Admission(a),
            other => ServerError::Sim(other),
        }
    }
}

impl From<AdmissionError> for ServerError {
    fn from(e: AdmissionError) -> Self {
        ServerError::Admission(e)
    }
}

impl From<CatalogError> for ServerError {
    fn from(e: CatalogError) -> Self {
        ServerError::Catalog(e)
    }
}

impl From<RetireError> for ServerError {
    fn from(e: RetireError) -> Self {
        ServerError::Retire(e)
    }
}

impl From<BuildError> for ServerError {
    fn from(e: BuildError) -> Self {
        ServerError::Build(e)
    }
}

impl From<DiskError> for ServerError {
    fn from(e: DiskError) -> Self {
        ServerError::Sim(SimError::Disk(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn sim_admission_errors_flatten() {
        let e: ServerError = SimError::Admission(AdmissionError::Catastrophic).into();
        assert_eq!(e, ServerError::Admission(AdmissionError::Catastrophic));
    }

    #[test]
    fn display_and_source_cover_every_variant() {
        let variants: Vec<ServerError> = vec![
            DiskError::NoSuchDisk {
                disk: mms_disk::DiskId(7),
            }
            .into(),
            AdmissionError::Catastrophic.into(),
            CatalogError::Duplicate {
                id: mms_layout::ObjectId(1),
            }
            .into(),
            RetireError::NotFound {
                object: mms_layout::ObjectId(1),
            }
            .into(),
            BuildError::EmptyCatalog.into(),
            ServerError::DataLoss { tracks: 9 },
        ];
        for v in &variants {
            assert!(!v.to_string().is_empty());
            match v {
                ServerError::DataLoss { .. } => assert!(v.source().is_none()),
                _ => assert!(v.source().is_some(), "{v}"),
            }
        }
        assert!(variants[5].to_string().contains("9 data tracks"));
    }
}
