//! Scheme-erased scheduler.

use mms_disk::DiskId;
use mms_layout::ObjectId;
use mms_sched::{
    AdmissionError, CycleConfig, CyclePlan, FailureReport, ImprovedScheduler,
    NonClusteredScheduler, PlanStability, SchemeKind, SchemeScheduler, StaggeredScheduler,
    StreamId, StreamInfo, StreamingRaidScheduler,
};

/// A scheduler for any of the four schemes, so [`crate::MultimediaServer`]
/// is a single concrete type.
///
/// An enum (rather than `Box<dyn SchemeScheduler>`) keeps the concrete
/// schedulers inspectable — e.g. the Non-clustered buffer-server pool —
/// without downcasting.
#[derive(Debug)]
pub enum AnyScheduler {
    /// Streaming RAID.
    StreamingRaid(StreamingRaidScheduler),
    /// Staggered-group.
    Staggered(StaggeredScheduler),
    /// Non-clustered with buffer pool.
    NonClustered(NonClusteredScheduler),
    /// Improved-bandwidth.
    Improved(ImprovedScheduler),
}

macro_rules! delegate {
    ($self:ident, $s:ident => $body:expr) => {
        match $self {
            AnyScheduler::StreamingRaid($s) => $body,
            AnyScheduler::Staggered($s) => $body,
            AnyScheduler::NonClustered($s) => $body,
            AnyScheduler::Improved($s) => $body,
        }
    };
}

impl AnyScheduler {
    /// The Non-clustered scheduler, if that is the configured scheme.
    #[must_use]
    pub fn as_non_clustered(&self) -> Option<&NonClusteredScheduler> {
        match self {
            AnyScheduler::NonClustered(s) => Some(s),
            _ => None,
        }
    }

    /// The Improved-bandwidth scheduler, if that is the configured scheme.
    #[must_use]
    pub fn as_improved(&self) -> Option<&ImprovedScheduler> {
        match self {
            AnyScheduler::Improved(s) => Some(s),
            _ => None,
        }
    }

    /// Source disks and track count for rebuilding `disk` from parity:
    /// the other disks of its cluster (whose surviving group members and
    /// parity XOR back to the lost contents), plus — for the improved
    /// layout — the next cluster's disks, which host this cluster's
    /// parity blocks.
    #[must_use]
    pub fn rebuild_spec(&self, disk: DiskId) -> (Vec<DiskId>, u64) {
        use mms_layout::Layout;
        fn cluster_sources(
            geo: &mms_layout::Geometry,
            disk: DiskId,
            include_next: bool,
        ) -> Vec<DiskId> {
            let cluster = geo.cluster_of(disk);
            let mut v: Vec<DiskId> = geo
                .cluster_disks(cluster)
                .into_iter()
                .filter(|&d| d != disk)
                .collect();
            if include_next {
                v.extend(geo.cluster_disks(geo.next_cluster(cluster)));
            }
            v
        }
        match self {
            AnyScheduler::StreamingRaid(s) => {
                let geo = s.catalog().layout().geometry();
                (
                    cluster_sources(geo, disk, false),
                    s.catalog().blocks_on_disk(disk).len() as u64,
                )
            }
            AnyScheduler::Staggered(s) => {
                let geo = s.catalog().layout().geometry();
                (
                    cluster_sources(geo, disk, false),
                    s.catalog().blocks_on_disk(disk).len() as u64,
                )
            }
            AnyScheduler::NonClustered(s) => {
                let geo = s.catalog().layout().geometry();
                (
                    cluster_sources(geo, disk, false),
                    s.catalog().blocks_on_disk(disk).len() as u64,
                )
            }
            AnyScheduler::Improved(s) => {
                let geo = s.catalog().layout().geometry();
                (
                    cluster_sources(geo, disk, true),
                    s.catalog().blocks_on_disk(disk).len() as u64,
                )
            }
        }
    }
}

impl AnyScheduler {
    /// Register a newly staged object in whichever scheme's catalog.
    pub fn register_object(
        &mut self,
        object: mms_layout::MediaObject,
    ) -> Result<(), mms_layout::CatalogError> {
        delegate!(self, s => s.register_object(object))
    }

    /// Retire an object from whichever scheme's catalog.
    pub fn retire_object(&mut self, object: ObjectId) -> Result<(), mms_sched::RetireError> {
        delegate!(self, s => s.retire_object(object))
    }
}

impl SchemeScheduler for AnyScheduler {
    fn scheme(&self) -> SchemeKind {
        delegate!(self, s => s.scheme())
    }

    fn config(&self) -> &CycleConfig {
        delegate!(self, s => s.config())
    }

    fn admit(&mut self, object: ObjectId, at_cycle: u64) -> Result<StreamId, AdmissionError> {
        delegate!(self, s => s.admit(object, at_cycle))
    }

    fn stream_capacity(&self) -> usize {
        delegate!(self, s => s.stream_capacity())
    }

    fn active_streams(&self) -> usize {
        delegate!(self, s => s.active_streams())
    }

    fn stream_info(&self, id: StreamId) -> Option<StreamInfo> {
        delegate!(self, s => s.stream_info(id))
    }

    fn release(&mut self, id: StreamId) -> bool {
        delegate!(self, s => s.release(id))
    }

    fn plan_cycle_into(&mut self, cycle: u64, plan: &mut CyclePlan) {
        delegate!(self, s => s.plan_cycle_into(cycle, plan))
    }

    fn on_disk_failure(&mut self, disk: DiskId, cycle: u64, mid_cycle: bool) -> FailureReport {
        delegate!(self, s => s.on_disk_failure(disk, cycle, mid_cycle))
    }

    fn on_disk_repair(&mut self, disk: DiskId, cycle: u64) {
        delegate!(self, s => s.on_disk_repair(disk, cycle))
    }

    fn buffer_in_use(&self) -> usize {
        delegate!(self, s => s.buffer_in_use())
    }

    fn buffer_high_water(&self) -> usize {
        delegate!(self, s => s.buffer_high_water())
    }

    fn plan_stability(&self, cycle: u64) -> PlanStability {
        delegate!(self, s => s.plan_stability(cycle))
    }

    fn fast_forward(&mut self, cycles: u64) {
        delegate!(self, s => s.fast_forward(cycles))
    }

    fn plan_epoch(&self) -> u64 {
        delegate!(self, s => s.plan_epoch())
    }
}
