//! End-to-end observability drills: the flight recorder's black-box
//! dump is byte-identical at every thread count and replays a stream's
//! causal timeline, and the [`HealthModel`]'s degraded-exposure clock
//! agrees with the scenario engine's own mode-transition accounting
//! (the live analogue of the paper's Eq. 6 MTTDS integrand).

use mms_server::scenario::{find, ScenarioRunner};
use mms_server::telemetry::{
    FlightRecorder, FlightSnapshot, HealthConfig, HealthModel, Level, Recorder,
};
use mms_server::Parallelism;
use std::num::NonZeroUsize;

fn threads(n: usize) -> Parallelism {
    Parallelism::Threads(NonZeroUsize::new(n).expect("thread count is nonzero"))
}

/// Run the double-fault corpus case under an ambient Debug recorder and
/// return the flight recorder's dump bytes.
fn double_fault_flight_dump(par: Parallelism) -> Vec<u8> {
    let case = find("double-fault-same-group", true).expect("corpus has the double-fault case");
    let recorder = Recorder::new(Level::Debug);
    let reports = {
        let _guard = recorder.install();
        ScenarioRunner::new(par).run_case(&case)
    };
    assert!(
        reports.iter().all(|r| r.passed()),
        "double-fault case must pass for every scheme"
    );
    // Capacity large enough to keep the whole run: eviction is tested
    // in the telemetry crate; here we want the full causal record.
    let mut flight = FlightRecorder::new(1 << 16);
    for event in recorder.take_events() {
        flight.record(event);
    }
    assert!(
        flight.triggered(),
        "the typed data-loss error must arm the flight recorder"
    );
    let mut out = Vec::new();
    flight.dump(&mut out).expect("dump to a Vec cannot fail");
    out
}

#[test]
fn flight_dump_is_byte_identical_across_thread_counts() {
    let seq = double_fault_flight_dump(Parallelism::Sequential);
    assert_eq!(seq, double_fault_flight_dump(threads(2)));
    assert_eq!(seq, double_fault_flight_dump(threads(8)));
}

#[test]
fn flight_dump_replays_a_stream_timeline() {
    let dump = double_fault_flight_dump(Parallelism::Sequential);
    let text = String::from_utf8(dump).expect("dump is valid UTF-8");
    let snap = FlightSnapshot::parse(&text).expect("dump must parse back");
    assert_eq!(snap.trigger.as_deref(), Some("data_loss"));
    assert_eq!(snap.len, snap.records.len());

    // The black box holds the loss verdicts (one per scheme) …
    let losses = snap.records.iter().filter(|r| r.name == "data_loss");
    assert_eq!(losses.count(), 4, "all four schemes lose data");

    // … and the causal chain for any admitted stream: the `admit`
    // anchor first, stamped before the failure cycles.
    let admit = snap
        .records
        .iter()
        .find(|r| r.name == "admit")
        .expect("admissions are on the record");
    let stream = admit
        .field("stream")
        .and_then(|v| v.as_u64())
        .expect("admit events carry the stream id");
    let timeline: Vec<&str> = snap
        .stream_records(stream)
        .map(|r| r.name.as_str())
        .collect();
    assert_eq!(timeline.first(), Some(&"admit"), "{timeline:?}");
    assert!(
        snap.records
            .iter()
            .filter(|r| r.mentions_stream(stream))
            .all(|r| r.cycle >= admit.cycle),
        "nothing mentions a stream before its admission"
    );
}

#[test]
fn health_model_matches_the_scenario_engines_degraded_accounting() {
    let case = find("nc-transition-simple", true).expect("corpus has the Fig. 6 case");
    let recorder = Recorder::new(Level::Info);
    let report = {
        let _guard = recorder.install();
        ScenarioRunner::new(Parallelism::Sequential).run(&case, case.schemes[0])
    };
    assert!(report.passed(), "{:?}", report.violations);

    let mut health = HealthModel::new(HealthConfig::default());
    for event in &recorder.take_events() {
        health.observe(event);
    }
    health.finish(report.cycles);

    assert!(report.degraded_cycles > 0, "Fig. 6 spends time degraded");
    assert_eq!(
        health.degraded_cycles(),
        report.degraded_cycles,
        "the streaming tracker and the post-hoc report must agree"
    );
    // Default config: t_cyc = 1 s, so exposure seconds == cluster-cycles.
    assert_eq!(
        health.degraded_exposure_secs(),
        report.degraded_cycles as f64
    );
    assert_eq!(
        health.hiccups(),
        report.tracks_lost,
        "Fig. 6 loses 6 tracks"
    );
    assert_eq!(health.data_loss_events(), 0, "degraded, never catastrophic");
}
