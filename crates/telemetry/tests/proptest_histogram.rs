//! Property tests for the histogram invariants the JSONL exporter and
//! dashboard rely on.

use mms_telemetry::Histogram;
use proptest::prelude::*;

fn bounds_strategy() -> impl Strategy<Value = Vec<f64>> {
    // Strictly ascending positive bounds, 1..=8 of them.
    proptest::collection::vec(0.001f64..1e6, 1..=8).prop_map(|mut v| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup();
        v
    })
}

proptest! {
    /// Bucket counts plus overflow always sum to the sample count.
    #[test]
    fn bucket_counts_sum_to_sample_count(
        bounds in bounds_strategy(),
        samples in proptest::collection::vec(-1e6f64..1e7, 0..200),
    ) {
        let mut h = Histogram::new(&bounds);
        for &s in &samples {
            h.observe(s);
        }
        let bucketed: u64 = h.counts().iter().sum();
        prop_assert_eq!(bucketed + h.overflow(), h.count());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Merging histograms with identical layouts preserves the invariant
    /// and is exact: the merge equals observing both sample sets into one
    /// histogram.
    #[test]
    fn merge_preserves_invariant_and_is_exact(
        bounds in bounds_strategy(),
        a in proptest::collection::vec(-1e6f64..1e7, 0..100),
        b in proptest::collection::vec(-1e6f64..1e7, 0..100),
    ) {
        let mut ha = Histogram::new(&bounds);
        let mut hb = Histogram::new(&bounds);
        let mut combined = Histogram::new(&bounds);
        for &s in &a {
            ha.observe(s);
            combined.observe(s);
        }
        for &s in &b {
            hb.observe(s);
            combined.observe(s);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.counts(), combined.counts());
        prop_assert_eq!(ha.overflow(), combined.overflow());
        prop_assert_eq!(ha.count(), combined.count());
        let bucketed: u64 = ha.counts().iter().sum();
        prop_assert_eq!(bucketed + ha.overflow(), ha.count());
    }

    /// Each sample lands in exactly one bucket: the first whose bound
    /// contains it.
    #[test]
    fn sample_lands_in_first_containing_bucket(
        bounds in bounds_strategy(),
        sample in -1e6f64..1e7,
    ) {
        let mut h = Histogram::new(&bounds);
        h.observe(sample);
        match bounds.iter().position(|&b| sample <= b) {
            Some(i) => {
                prop_assert_eq!(h.counts()[i], 1);
                prop_assert_eq!(h.overflow(), 0);
            }
            None => {
                prop_assert_eq!(h.counts().iter().sum::<u64>(), 0);
                prop_assert_eq!(h.overflow(), 1);
            }
        }
    }
}
