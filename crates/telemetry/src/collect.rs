//! The collector interface and the thread-local collector stack.
//!
//! Installing a collector is scoped and stack-shaped: [`install`]
//! returns a guard; the macros dispatch to the top of the stack. With
//! the stack empty (the default everywhere) every macro reduces to one
//! thread-local flag read — the no-op fast path. Compiled without the
//! `enabled` feature, dispatch functions are empty and the optimizer
//! removes the call sites entirely.

use crate::event::EventRecord;
use crate::registry::{Labels, Registry};
use crate::Level;
#[cfg(feature = "enabled")]
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A telemetry sink: receives events and metric operations from the
/// macros. Implementations are single-threaded (installed per thread,
/// or per job in a worker pool) — that is what keeps the hot path
/// lock-free and the merged output deterministic.
pub trait Collect {
    /// The most verbose level this collector wants. Records above it are
    /// never built.
    fn max_level(&self) -> Level;

    /// Receive an event or span boundary.
    fn record(&self, event: EventRecord);

    /// Add to a counter.
    fn counter(&self, name: &'static str, labels: Labels, delta: u64);

    /// Set a gauge.
    fn gauge(&self, name: &'static str, labels: Labels, value: f64);

    /// Record a histogram sample.
    fn histogram(&self, name: &'static str, labels: Labels, value: f64);

    /// Record a streaming-quantile (p50/p95/p99) sample. Defaulted to a
    /// no-op so existing collectors keep compiling; collectors that own
    /// a [`Registry`] override it.
    fn quantile(&self, name: &'static str, labels: Labels, value: f64) {
        let _ = (name, labels, value);
    }

    /// Absorb the output of a finished parallel job: replay `events` in
    /// order, then merge `registry`. The default implementation replays
    /// events only; collectors that own a [`Registry`] (like
    /// [`crate::Recorder`]) override this with an exact merge.
    fn absorb(&self, events: Vec<EventRecord>, registry: &Registry) {
        let _ = registry;
        for e in events {
            self.record(e);
        }
    }
}

#[cfg(feature = "enabled")]
thread_local! {
    static STACK: RefCell<Vec<Rc<dyn Collect>>> = const { RefCell::new(Vec::new()) };
    /// Cached `(stack non-empty, top max_level)` for the fast path.
    static TOP_LEVEL: Cell<Option<Level>> = const { Cell::new(None) };
}

/// Pops the collector installed by the matching [`install`] call.
#[must_use = "dropping the guard immediately uninstalls the collector"]
#[derive(Debug)]
pub struct CollectorGuard {
    _private: (),
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.pop();
            TOP_LEVEL.with(|t| t.set(s.last().map(|c| c.max_level())));
        });
    }
}

/// Install `collector` on this thread's stack until the returned guard
/// drops. Nested installs shadow outer ones.
pub fn install(collector: Rc<dyn Collect>) -> CollectorGuard {
    #[cfg(feature = "enabled")]
    STACK.with(|s| {
        TOP_LEVEL.with(|t| t.set(Some(collector.max_level())));
        s.borrow_mut().push(collector);
    });
    #[cfg(not(feature = "enabled"))]
    let _ = collector;
    CollectorGuard { _private: () }
}

/// Whether any collector is installed on this thread.
#[inline]
#[must_use]
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        TOP_LEVEL.with(|t| t.get().is_some())
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// The installed collector's max level, if one is installed.
#[inline]
#[must_use]
pub fn current_max_level() -> Option<Level> {
    #[cfg(feature = "enabled")]
    {
        TOP_LEVEL.with(|t| t.get())
    }
    #[cfg(not(feature = "enabled"))]
    {
        None
    }
}

/// Whether a record at `level` would reach the installed collector.
/// The macros call this before building fields, so disabled levels cost
/// nothing but this check.
#[inline]
#[must_use]
pub fn enabled(level: Level) -> bool {
    match current_max_level() {
        Some(max) => level <= max,
        None => false,
    }
}

#[cfg(feature = "enabled")]
fn with_top<R>(f: impl FnOnce(&Rc<dyn Collect>) -> R) -> Option<R> {
    STACK.with(|s| s.borrow().last().map(f))
}

/// Dispatch an event to the installed collector (top of stack).
pub fn dispatch_event(event: EventRecord) {
    #[cfg(feature = "enabled")]
    with_top(|c| c.record(event));
    #[cfg(not(feature = "enabled"))]
    let _ = event;
}

/// Dispatch a counter increment.
pub fn dispatch_counter(name: &'static str, labels: Labels, delta: u64) {
    #[cfg(feature = "enabled")]
    with_top(|c| c.counter(name, labels, delta));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, labels, delta);
}

/// Dispatch a gauge write.
pub fn dispatch_gauge(name: &'static str, labels: Labels, value: f64) {
    #[cfg(feature = "enabled")]
    with_top(|c| c.gauge(name, labels, value));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, labels, value);
}

/// Dispatch a histogram observation.
pub fn dispatch_histogram(name: &'static str, labels: Labels, value: f64) {
    #[cfg(feature = "enabled")]
    with_top(|c| c.histogram(name, labels, value));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, labels, value);
}

/// Dispatch a streaming-quantile observation.
pub fn dispatch_quantile(name: &'static str, labels: Labels, value: f64) {
    #[cfg(feature = "enabled")]
    with_top(|c| c.quantile(name, labels, value));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, labels, value);
}

/// Hand a finished parallel job's captured telemetry to the installed
/// collector (no-op if none). Parallel layers call this once per job,
/// in job index order, which is what makes traced parallel runs
/// bit-identical to sequential ones.
pub fn dispatch_absorb(events: Vec<EventRecord>, registry: &Registry) {
    #[cfg(feature = "enabled")]
    with_top(|c| c.absorb(events, registry));
    #[cfg(not(feature = "enabled"))]
    let _ = (events, registry);
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn stack_install_and_shadowing() {
        assert!(!active());
        assert!(!enabled(Level::Error));
        let outer = Recorder::new(Level::Info);
        let _g1 = install(outer.handle());
        assert!(active());
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        {
            let inner = Recorder::new(Level::Trace);
            let _g2 = install(inner.handle());
            assert!(enabled(Level::Trace));
            crate::event!(Level::Debug, "inner_only");
            assert_eq!(inner.take_events().len(), 1);
        }
        // Back to the outer collector and its filter.
        assert!(!enabled(Level::Debug));
        crate::event!(Level::Info, "outer");
        assert_eq!(outer.take_events().len(), 1);
    }

    #[test]
    fn no_collector_means_no_dispatch() {
        // Must not panic, must not leak anywhere.
        crate::event!(Level::Error, "nobody_listens", x = 1u64);
        crate::counter!("c", 1);
        assert_eq!(current_max_level(), None);
    }
}
