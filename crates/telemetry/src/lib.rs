//! # mms-telemetry — the workspace's flight recorder
//!
//! A zero-external-dependency observability substrate shared by every
//! layer of the server, from the disk model up to the CLI:
//!
//! * **Metrics registry** — [`Registry`] holds counters, gauges, and
//!   fixed-bucket [`Histogram`]s keyed by static name plus a sorted
//!   label set ([`Labels`]): scheme, cluster, disk, mode, …
//! * **Tracing** — [`span!`] and [`event!`] macros with [`Level`]s
//!   dispatch to a thread-local stack of [`Collect`]ors. With no
//!   collector installed (the default) every macro is a single
//!   thread-local flag check; compiled without the `enabled` feature
//!   they vanish entirely.
//! * **Streaming quantiles** — [`P2Quantile`], the O(1)-memory P²
//!   estimator, so long runs report latency/stall percentiles without
//!   per-event sample vectors.
//! * **Exporters** — JSON-lines emission of events and metric
//!   snapshots ([`jsonl`]), Prometheus text exposition ([`prom`]),
//!   Chrome/Perfetto trace JSON ([`perfetto`]), a [`Snapshot`] struct
//!   for programmatic inspection, and an ASCII [`dashboard`] renderer
//!   in the style of `mms_sim::trace`.
//! * **Forensics** — [`FlightRecorder`], a fixed-capacity black box of
//!   the newest events with deterministic virtual-time stamps, dumped
//!   as replayable JSONL on data loss or check violations.
//! * **Health** — [`HealthModel`], a streaming SLO tracker: stall-budget
//!   burn, rebuild ETA, and degraded-exposure seconds as `health.*`
//!   gauges plus a dashboard panel.
//!
//! ## Determinism contract
//!
//! The workspace's parallel layer (`mms-exec`) runs every job under its
//! own [`Recorder`] and merges the captured events and metrics **in job
//! index order** ([`Collect::absorb`]). Everything recorded at
//! [`Level::Debug`] or above is therefore bit-identical for any thread
//! count, exactly like the results themselves. Scheduling-dependent
//! diagnostics (wall-clock timings, per-worker queue depths) are
//! confined to [`Level::Trace`] and documented as non-deterministic.
//!
//! ## Quickstart
//!
//! ```
//! use mms_telemetry::{event, span, counter, Level, Recorder};
//!
//! let recorder = Recorder::new(Level::Debug);
//! {
//!     let _guard = recorder.install();
//!     let _cycle = span!(Level::Debug, "cycle", cycle = 0u64);
//!     event!(Level::Info, "disk_failure", disk = 2u64);
//!     counter!("sim.delivered", 5, scheme = "SR");
//! }
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counters.len(), 1);
//! let mut out = Vec::new();
//! mms_telemetry::jsonl::write_all(&mut out, &recorder.take_events(), &snapshot).unwrap();
//! assert!(String::from_utf8(out).unwrap().contains("\"disk_failure\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collect;
pub mod dashboard;
mod event;
mod flight;
mod health;
pub(crate) mod json;
pub mod jsonl;
mod macros;
pub mod perfetto;
pub mod prom;
mod quantile;
mod recorder;
mod registry;

pub use collect::{
    active, current_max_level, dispatch_absorb, dispatch_counter, dispatch_event, dispatch_gauge,
    dispatch_histogram, dispatch_quantile, enabled, install, Collect, CollectorGuard,
};
pub use event::{EventKind, EventRecord, SpanGuard, Value};
pub use flight::{
    FlightRecorder, FlightSnapshot, OwnedRecord, OwnedValue, ParseFlightError, StampedRecord,
    VirtualClock,
};
pub use health::{HealthConfig, HealthModel};
pub use quantile::{P2Quantile, QuantileSet};
pub use recorder::Recorder;
pub use registry::{
    Histogram, LabelValue, Labels, MetricKey, MetricValue, Registry, Snapshot, DEFAULT_BOUNDS,
};

use std::fmt;
use std::str::FromStr;

/// Severity / verbosity of an event or span, least verbose first.
///
/// A collector with `max_level = Info` sees `Error`, `Warn`, and `Info`
/// records and filters out `Debug` and `Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable conditions (catastrophic failures).
    Error,
    /// Service-affecting conditions (hiccups, disk failures).
    Warn,
    /// Mode transitions, rebuild completions, batch summaries.
    Info,
    /// Per-cycle spans and per-trial events. Still deterministic.
    Debug,
    /// Scheduling-dependent diagnostics: wall-clock timings, per-worker
    /// stats. **Not** deterministic across thread counts.
    Trace,
}

impl Level {
    /// The level's lowercase name, as used in JSONL output and CLI flags.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a [`Level`] out of a CLI flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid level {:?}: expected error|warn|info|debug|trace",
            self.0
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            _ => Err(ParseLevelError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_is_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn level_parses_cli_spellings() {
        assert_eq!("info".parse(), Ok(Level::Info));
        assert_eq!("WARN".parse(), Ok(Level::Warn));
        assert_eq!(" trace ".parse(), Ok(Level::Trace));
        assert!("loud".parse::<Level>().is_err());
        assert_eq!(Level::Debug.to_string(), "debug");
    }

    #[test]
    fn level_round_trips_through_as_str() {
        for level in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(level.as_str().parse::<Level>(), Ok(level));
            assert_eq!(level.to_string().parse::<Level>(), Ok(level));
        }
    }

    #[test]
    fn parse_level_error_reports_the_offending_string() {
        let err = "LOUD ".parse::<Level>().expect_err("must not parse");
        let message = err.to_string();
        assert!(message.contains("\"LOUD \""), "{message}");
        assert!(message.contains("expected error|warn|info|debug|trace"));
    }
}
