//! Minimal hand-rolled JSON serialization (the workspace vendors no
//! serde). Output is deterministic: `f64` uses Rust's shortest-roundtrip
//! `Display`, strings escape the JSON control set, and callers emit keys
//! in a fixed order.

use std::io::{self, Write};

/// Write `s` as a JSON string literal (with surrounding quotes).
pub fn write_str<W: Write>(out: &mut W, s: &str) -> io::Result<()> {
    out.write_all(b"\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_all(b"\"")
}

/// Write an `f64` as a JSON number. Non-finite values (which JSON cannot
/// represent) are emitted as string literals `"inf"` / `"-inf"` /
/// `"nan"` rather than producing invalid JSON.
pub fn write_f64<W: Write>(out: &mut W, v: f64) -> io::Result<()> {
    if v.is_finite() {
        // Display gives the shortest representation that round-trips,
        // and is deterministic — integral values print without a dot,
        // which is still a valid JSON number.
        write!(out, "{v}")
    } else if v.is_nan() {
        out.write_all(b"\"nan\"")
    } else if v > 0.0 {
        out.write_all(b"\"inf\"")
    } else {
        out.write_all(b"\"-inf\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_json(s: &str) -> String {
        let mut out = Vec::new();
        write_str(&mut out, s).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn f64_json(v: f64) -> String {
        let mut out = Vec::new();
        write_f64(&mut out, v).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(str_json("plain"), "\"plain\"");
        assert_eq!(str_json("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(str_json("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(str_json("\u{1}"), "\"\\u0001\"");
        assert_eq!(str_json("ünïcode"), "\"ünïcode\"");
    }

    #[test]
    fn floats_round_trip_and_nonfinite_are_strings() {
        assert_eq!(f64_json(1.5), "1.5");
        assert_eq!(f64_json(3.0), "3");
        assert_eq!(f64_json(0.1), "0.1");
        assert_eq!(f64_json(f64::INFINITY), "\"inf\"");
        assert_eq!(f64_json(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(f64_json(f64::NAN), "\"nan\"");
    }
}
