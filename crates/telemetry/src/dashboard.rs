//! ASCII dashboard: render a metric [`Snapshot`] as aligned tables and
//! histogram bars, in the style of `mms_sim::trace`.

use crate::registry::{Histogram, MetricKey, Snapshot};
use std::fmt::Write as _;

const BAR_WIDTH: usize = 32;

fn key_column(keys: impl Iterator<Item = String>) -> usize {
    keys.map(|k| k.len()).max().unwrap_or(0).max(8)
}

fn render_histogram(out: &mut String, key: &MetricKey, h: &Histogram) {
    let _ = writeln!(
        out,
        "{key}  count {}  sum {:.3}  mean {:.3}  min {:.3}  max {:.3}",
        h.count(),
        h.sum(),
        h.mean(),
        h.min().unwrap_or(0.0),
        h.max().unwrap_or(0.0),
    );
    let peak = h
        .counts()
        .iter()
        .copied()
        .chain(std::iter::once(h.overflow()))
        .max()
        .unwrap_or(0)
        .max(1);
    let mut lower = f64::NEG_INFINITY;
    for (&bound, &count) in h.bounds().iter().zip(h.counts()) {
        let bar = "#".repeat((count as usize * BAR_WIDTH) / peak as usize);
        let _ = writeln!(out, "  ({lower:>9.2}, {bound:>9.2}]  {count:>8}  {bar}");
        lower = bound;
    }
    let bar = "#".repeat((h.overflow() as usize * BAR_WIDTH) / peak as usize);
    let _ = writeln!(
        out,
        "  ({lower:>9.2}, {:>9}]  {:>8}  {bar}",
        "+inf",
        h.overflow()
    );
}

/// Render `snapshot` as an ASCII dashboard: a counters table, a gauges
/// table, one bar chart per histogram, then a percentile table for the
/// streaming quantile sets. Returns an empty string for an empty
/// snapshot.
#[must_use]
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        return out;
    }
    if !snapshot.counters.is_empty() {
        let width = key_column(snapshot.counters.iter().map(|(k, _)| k.to_string()));
        let _ = writeln!(out, "counters");
        let _ = writeln!(out, "{}", "-".repeat(width + 12));
        for (key, value) in &snapshot.counters {
            let _ = writeln!(out, "{:<width$}  {value:>10}", key.to_string());
        }
    }
    if !snapshot.gauges.is_empty() {
        let width = key_column(snapshot.gauges.iter().map(|(k, _)| k.to_string()));
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "gauges");
        let _ = writeln!(out, "{}", "-".repeat(width + 12));
        for (key, value) in &snapshot.gauges {
            let _ = writeln!(out, "{:<width$}  {value:>10.3}", key.to_string());
        }
    }
    if !snapshot.histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "histograms");
        let width = key_column(snapshot.histograms.iter().map(|(k, _)| k.to_string()));
        let _ = writeln!(out, "{}", "-".repeat(width + 12));
        for (key, h) in &snapshot.histograms {
            render_histogram(&mut out, key, h);
        }
    }
    if !snapshot.quantiles.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "quantiles");
        let width = key_column(snapshot.quantiles.iter().map(|(k, _)| k.to_string()));
        let _ = writeln!(out, "{}", "-".repeat(width + 12));
        for (key, q) in &snapshot.quantiles {
            let _ = writeln!(
                out,
                "{:<width$}  count {:>8}  p50 {:>10.3}  p95 {:>10.3}  p99 {:>10.3}",
                key.to_string(),
                q.count(),
                q.p50().unwrap_or(0.0),
                q.p95().unwrap_or(0.0),
                q.p99().unwrap_or(0.0),
            );
        }
    }
    out
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::{counter, gauge, histogram, quantile, Level, Recorder};

    #[test]
    fn renders_all_four_sections() {
        let rec = Recorder::new(Level::Info);
        {
            let _g = rec.install();
            counter!("sim.delivered", 92, scheme = "SR");
            counter!("sim.hiccups", 6, reason = "failed-disk");
            gauge!("rebuild.progress", 0.5, disk = 2u64);
            for v in [0.3, 4.0, 4.5, 2000.0] {
                histogram!("disk.service_ms", v, disk = 0u64);
            }
            for v in [1.0, 2.0, 10.0] {
                quantile!("workload.wait_cycles", v, scheme = "SR");
            }
        }
        let text = render(&rec.snapshot());
        assert!(text.contains("counters"), "{text}");
        assert!(text.contains("sim.delivered{scheme=SR}"), "{text}");
        assert!(text.contains("92"), "{text}");
        assert!(text.contains("gauges"), "{text}");
        assert!(text.contains("rebuild.progress{disk=2}"), "{text}");
        assert!(text.contains("histograms"), "{text}");
        assert!(text.contains("count 4"), "{text}");
        assert!(text.contains("+inf"), "{text}");
        // Two samples share the (2, 5] bucket → the longest bar.
        let full_bar = "#".repeat(32);
        assert!(text.contains(&full_bar), "{text}");
        assert!(text.contains("quantiles"), "{text}");
        assert!(text.contains("workload.wait_cycles{scheme=SR}"), "{text}");
        assert!(text.contains("p95"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&Snapshot::default()), "");
    }
}
