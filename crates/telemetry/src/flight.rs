//! The flight recorder: a fixed-capacity black box of recent events.
//!
//! Long scenario runs emit far more events than anyone wants to keep,
//! but the *last few thousand* records before a data loss or invariant
//! violation are exactly the forensic record the paper's failure-window
//! analysis needs (the degraded/rebuild interval of Figs. 6–9).
//! [`FlightRecorder`] retains the newest `capacity` records in a
//! pre-allocated ring, stamping each with a deterministic virtual time —
//! the simulation cycle plus a per-cycle sequence number
//! ([`VirtualClock`]) — and dumps a replayable JSONL snapshot when
//! triggered by an `Error`-level record (data loss, check violation) or
//! an explicit request.
//!
//! Determinism: the stamp is a pure function of the event stream, and
//! the workspace's parallel layer absorbs per-job event streams in job
//! index order, so a dump is byte-identical at any thread count.
//!
//! The dump is parsed back by [`FlightSnapshot::parse`] — the same
//! hand-rolled JSON subset the rest of the crate emits, no serde.

use crate::event::{EventKind, EventRecord, Value};
use crate::json;
use crate::Level;
use std::fmt;
use std::io::{self, Write};

/// Deterministic virtual timestamps for an event stream: the current
/// simulation cycle (read from `cycle` span opens) plus a sequence
/// number counting records within that cycle in stream order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    cycle: u64,
    seq: u32,
}

impl VirtualClock {
    /// A clock at cycle 0, sequence 0.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock { cycle: 0, seq: 0 }
    }

    /// Stamp one event: returns `(cycle, seq)`. A `cycle` span open
    /// carrying a `cycle` field advances the clock and resets the
    /// sequence, so the span-open record itself is `(new_cycle, 0)`.
    pub fn stamp(&mut self, event: &EventRecord) -> (u64, u32) {
        if event.kind == EventKind::SpanOpen && event.name == "cycle" {
            if let Some(Value::U64(c)) = event.field("cycle") {
                self.cycle = *c;
                self.seq = 0;
            }
        }
        let stamp = (self.cycle, self.seq);
        self.seq = self.seq.saturating_add(1);
        stamp
    }
}

/// One retained record: the event plus its virtual timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedRecord {
    /// Simulation cycle the record belongs to.
    pub cycle: u64,
    /// Order within the cycle.
    pub seq: u32,
    /// The event itself.
    pub record: EventRecord,
}

/// A fixed-capacity ring buffer of the newest [`StampedRecord`]s.
///
/// Construction pre-allocates every slot; [`record`](FlightRecorder::record)
/// is allocation-free (it moves the event into a slot and never resizes
/// the ring), which is what lets the recorder ride along on the
/// simulation's hot path. An `Error`-level record arms the trigger
/// automatically; [`trigger`](FlightRecorder::trigger) arms it manually.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<Option<StampedRecord>>,
    /// Next slot to write.
    head: usize,
    /// Populated slots (saturates at capacity).
    len: usize,
    clock: VirtualClock,
    /// Total records ever seen, including overwritten ones.
    recorded: u64,
    trigger: Option<&'static str>,
}

impl FlightRecorder {
    /// A recorder retaining the newest `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "flight recorder capacity must be at least one record"
        );
        FlightRecorder {
            ring: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            clock: VirtualClock::new(),
            recorded: 0,
            trigger: None,
        }
    }

    /// Retain one event, stamping it with the virtual clock. The oldest
    /// record is overwritten once the ring is full. An `Error`-level
    /// event arms the trigger with the event's name (first one wins).
    pub fn record(&mut self, event: EventRecord) {
        let (cycle, seq) = self.clock.stamp(&event);
        if self.trigger.is_none() && event.level == Level::Error {
            self.trigger = Some(event.name);
        }
        self.recorded += 1;
        self.ring[self.head] = Some(StampedRecord {
            cycle,
            seq,
            record: event,
        });
        self.head = (self.head + 1) % self.ring.len();
        if self.len < self.ring.len() {
            self.len += 1;
        }
    }

    /// Arm the trigger manually (e.g. from a CLI flag). An already-armed
    /// trigger keeps its original reason.
    pub fn trigger(&mut self, reason: &'static str) {
        if self.trigger.is_none() {
            self.trigger = Some(reason);
        }
    }

    /// Why the recorder triggered, if it did.
    #[must_use]
    pub fn trigger_reason(&self) -> Option<&'static str> {
        self.trigger
    }

    /// Whether the trigger is armed (a dump is warranted).
    #[must_use]
    pub fn triggered(&self) -> bool {
        self.trigger.is_some()
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Currently retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total records ever fed, including those already overwritten.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &StampedRecord> {
        let cap = self.ring.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).filter_map(move |i| self.ring[(start + i) % cap].as_ref())
    }

    /// Write the snapshot as JSONL: one `flight` header line, then the
    /// retained records oldest-first, each an event line extended with
    /// its `cycle`/`seq` stamp. [`FlightSnapshot::parse`] reads it back.
    pub fn dump<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write!(
            out,
            "{{\"t\":\"flight\",\"capacity\":{},\"len\":{},\"recorded\":{},\"trigger\":",
            self.ring.len(),
            self.len,
            self.recorded
        )?;
        match self.trigger {
            Some(reason) => json::write_str(out, reason)?,
            None => out.write_all(b"null")?,
        }
        out.write_all(b"}\n")?;
        for rec in self.iter() {
            write_stamped(out, rec)?;
        }
        Ok(())
    }
}

fn write_stamped<W: Write>(out: &mut W, rec: &StampedRecord) -> io::Result<()> {
    let e = &rec.record;
    write!(
        out,
        "{{\"t\":\"{}\",\"cycle\":{},\"seq\":{},\"level\":\"{}\",\"target\":",
        e.kind.as_str(),
        rec.cycle,
        rec.seq,
        e.level.as_str()
    )?;
    json::write_str(out, e.target)?;
    out.write_all(b",\"name\":")?;
    json::write_str(out, e.name)?;
    if e.kind != EventKind::SpanClose {
        out.write_all(b",\"fields\":{")?;
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            json::write_str(out, k)?;
            out.write_all(b":")?;
            match v {
                Value::U64(x) => write!(out, "{x}")?,
                Value::I64(x) => write!(out, "{x}")?,
                Value::F64(x) => json::write_f64(out, *x)?,
                Value::Bool(x) => write!(out, "{x}")?,
                Value::Str(s) => json::write_str(out, s)?,
            }
        }
        out.write_all(b"}")?;
    }
    out.write_all(b"}\n")
}

/// An owned field value parsed back from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl fmt::Display for OwnedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwnedValue::U64(v) => write!(f, "{v}"),
            OwnedValue::I64(v) => write!(f, "{v}"),
            OwnedValue::F64(v) => write!(f, "{v}"),
            OwnedValue::Bool(v) => write!(f, "{v}"),
            OwnedValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl OwnedValue {
    /// The value as a `u64`, when it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            OwnedValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

/// One record read back from a dump.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedRecord {
    /// Simulation cycle stamp.
    pub cycle: u64,
    /// Order within the cycle.
    pub seq: u32,
    /// `event`, `span_open`, or `span_close`.
    pub kind: String,
    /// Severity name.
    pub level: String,
    /// Emitting module.
    pub target: String,
    /// Event or span name.
    pub name: String,
    /// Named fields, in emission order.
    pub fields: Vec<(String, OwnedValue)>,
}

impl OwnedRecord {
    /// Look up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Whether the record mentions stream/session `id` (a `stream` or
    /// `session` field equal to it).
    #[must_use]
    pub fn mentions_stream(&self, id: u64) -> bool {
        self.field("stream").and_then(OwnedValue::as_u64) == Some(id)
            || self.field("session").and_then(OwnedValue::as_u64) == Some(id)
    }
}

/// A parsed flight-recorder dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSnapshot {
    /// Ring capacity at dump time.
    pub capacity: usize,
    /// Records retained in the dump.
    pub len: usize,
    /// Total records the recorder ever saw.
    pub recorded: u64,
    /// Trigger reason, when the dump was triggered.
    pub trigger: Option<String>,
    /// The retained records, oldest first.
    pub records: Vec<OwnedRecord>,
}

impl FlightSnapshot {
    /// Parse a dump produced by [`FlightRecorder::dump`].
    ///
    /// # Errors
    /// Returns a [`ParseFlightError`] naming the offending line when the
    /// text is not a well-formed dump.
    pub fn parse(text: &str) -> Result<FlightSnapshot, ParseFlightError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| ParseFlightError::new(1, "empty snapshot"))?;
        let obj = parse_object_line(header, 1)?;
        if obj.get("t").and_then(Json::as_str) != Some("flight") {
            return Err(ParseFlightError::new(
                1,
                "first line is not a flight header",
            ));
        }
        let capacity = obj
            .get_u64("capacity")
            .ok_or_else(|| ParseFlightError::new(1, "header is missing `capacity`"))?
            as usize;
        let len = obj
            .get_u64("len")
            .ok_or_else(|| ParseFlightError::new(1, "header is missing `len`"))?
            as usize;
        let recorded = obj
            .get_u64("recorded")
            .ok_or_else(|| ParseFlightError::new(1, "header is missing `recorded`"))?;
        let trigger = match obj.get("trigger") {
            Some(Json::Str(s)) => Some(s.to_string()),
            Some(Json::Null) | None => None,
            Some(_) => return Err(ParseFlightError::new(1, "`trigger` must be string or null")),
        };
        let mut records = Vec::with_capacity(len);
        for (ix, line) in lines {
            let lineno = ix + 1;
            if line.trim().is_empty() {
                continue;
            }
            let obj = parse_object_line(line, lineno)?;
            let need_str = |key: &str| {
                obj.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| {
                        ParseFlightError::new(lineno, format!("record is missing `{key}`"))
                    })
            };
            let kind = need_str("t")?;
            let level = need_str("level")?;
            let target = need_str("target")?;
            let name = need_str("name")?;
            let cycle = obj
                .get_u64("cycle")
                .ok_or_else(|| ParseFlightError::new(lineno, "record is missing `cycle`"))?;
            let seq = obj
                .get_u64("seq")
                .ok_or_else(|| ParseFlightError::new(lineno, "record is missing `seq`"))?
                as u32;
            let fields = match obj.get("fields") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_owned_value()))
                    .collect(),
                None => Vec::new(),
                Some(_) => return Err(ParseFlightError::new(lineno, "`fields` must be an object")),
            };
            records.push(OwnedRecord {
                cycle,
                seq,
                kind,
                level,
                target,
                name,
                fields,
            });
        }
        Ok(FlightSnapshot {
            capacity,
            len,
            recorded,
            trigger,
            records,
        })
    }

    /// The records mentioning stream/session `id`, oldest first.
    pub fn stream_records(&self, id: u64) -> impl Iterator<Item = &OwnedRecord> {
        self.records.iter().filter(move |r| r.mentions_stream(id))
    }
}

/// Error from parsing a flight-recorder dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFlightError {
    /// 1-based line number of the malformed record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseFlightError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseFlightError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseFlightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flight snapshot line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseFlightError {}

/// The JSON subset this crate emits: objects, strings, numbers, bools,
/// null. (Flight lines never contain arrays.)
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Null,
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn to_owned_value(&self) -> OwnedValue {
        match self {
            Json::Str(s) => OwnedValue::Str(s.to_string()),
            Json::U64(v) => OwnedValue::U64(*v),
            Json::I64(v) => OwnedValue::I64(*v),
            Json::F64(v) => OwnedValue::F64(*v),
            Json::Bool(v) => OwnedValue::Bool(*v),
            Json::Null => OwnedValue::Str(String::new()),
            Json::Obj(_) => OwnedValue::Str(String::new()),
        }
    }
}

/// Key lookup helpers over a parsed object.
struct JsonObj(Vec<(String, Json)>);

impl JsonObj {
    fn get(&self, key: &str) -> Option<&Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Json::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

fn parse_object_line(line: &str, lineno: usize) -> Result<JsonObj, ParseFlightError> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
        lineno,
    };
    let value = cur.parse_value()?;
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(ParseFlightError::new(lineno, "trailing characters"));
    }
    match value {
        Json::Obj(pairs) => Ok(JsonObj(pairs)),
        _ => Err(ParseFlightError::new(lineno, "line is not a JSON object")),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    lineno: usize,
}

impl Cursor<'_> {
    fn err(&self, message: impl Into<String>) -> ParseFlightError {
        ParseFlightError::new(self.lineno, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseFlightError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseFlightError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseFlightError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseFlightError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseFlightError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape in string")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseFlightError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("malformed number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.err("malformed number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn event(level: Level, name: &'static str, fields: Vec<(&'static str, Value)>) -> EventRecord {
        EventRecord {
            level,
            target: "test",
            name,
            kind: EventKind::Event,
            fields,
        }
    }

    fn cycle_open(cycle: u64) -> EventRecord {
        EventRecord {
            level: Level::Debug,
            target: "test",
            name: "cycle",
            kind: EventKind::SpanOpen,
            fields: vec![("cycle", Value::U64(cycle))],
        }
    }

    #[test]
    fn virtual_clock_follows_cycle_spans() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.stamp(&event(Level::Info, "pre", vec![])), (0, 0));
        assert_eq!(clock.stamp(&cycle_open(7)), (7, 0));
        assert_eq!(clock.stamp(&event(Level::Info, "a", vec![])), (7, 1));
        assert_eq!(clock.stamp(&event(Level::Info, "b", vec![])), (7, 2));
        assert_eq!(clock.stamp(&cycle_open(8)), (8, 0));
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(event(Level::Info, "n", vec![("i", Value::U64(i))]));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded(), 5);
        let kept: Vec<u64> = fr
            .iter()
            .filter_map(|r| match r.record.field("i") {
                Some(Value::U64(v)) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest records are overwritten");
    }

    #[test]
    fn error_records_arm_the_trigger() {
        let mut fr = FlightRecorder::new(4);
        fr.record(event(Level::Warn, "hiccup", vec![]));
        assert!(!fr.triggered());
        fr.record(event(Level::Error, "data_loss", vec![]));
        fr.record(event(Level::Error, "late_loss", vec![]));
        assert_eq!(fr.trigger_reason(), Some("data_loss"), "first error wins");
    }

    #[test]
    fn dump_parse_round_trips() {
        let mut fr = FlightRecorder::new(8);
        fr.record(cycle_open(3));
        fr.record(event(
            Level::Warn,
            "hiccup",
            vec![
                ("stream", Value::U64(5)),
                ("reason", Value::from("failed-disk")),
                ("ratio", Value::F64(0.5)),
                ("late", Value::Bool(true)),
                ("delta", Value::I64(-2)),
            ],
        ));
        fr.record(event(
            Level::Error,
            "data_loss",
            vec![("tracks", Value::U64(6))],
        ));
        let mut out = Vec::new();
        fr.dump(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let snap = FlightSnapshot::parse(&text).unwrap();
        assert_eq!(snap.capacity, 8);
        assert_eq!(snap.len, 3);
        assert_eq!(snap.recorded, 3);
        assert_eq!(snap.trigger.as_deref(), Some("data_loss"));
        assert_eq!(snap.records.len(), 3);
        let hic = &snap.records[1];
        assert_eq!(hic.cycle, 3);
        assert_eq!(hic.seq, 1);
        assert_eq!(hic.name, "hiccup");
        assert_eq!(hic.field("stream"), Some(&OwnedValue::U64(5)));
        assert_eq!(
            hic.field("reason"),
            Some(&OwnedValue::Str("failed-disk".to_string()))
        );
        assert_eq!(hic.field("ratio"), Some(&OwnedValue::F64(0.5)));
        assert_eq!(hic.field("late"), Some(&OwnedValue::Bool(true)));
        assert_eq!(hic.field("delta"), Some(&OwnedValue::I64(-2)));
        assert!(hic.mentions_stream(5));
        assert_eq!(snap.stream_records(5).count(), 1);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        assert!(FlightSnapshot::parse("").is_err());
        assert!(FlightSnapshot::parse("{\"t\":\"event\"}").is_err());
        let good_header =
            "{\"t\":\"flight\",\"capacity\":4,\"len\":0,\"recorded\":0,\"trigger\":null}";
        let err = FlightSnapshot::parse(&format!("{good_header}\nnot json"))
            .expect_err("malformed second line must fail");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut fr = FlightRecorder::new(2);
        fr.record(event(
            Level::Info,
            "odd",
            vec![("s", Value::from(String::from("a\"b\\c\nd\te\u{1}")))],
        ));
        let mut out = Vec::new();
        fr.dump(&mut out).unwrap();
        let snap = FlightSnapshot::parse(&String::from_utf8(out).unwrap()).unwrap();
        assert_eq!(
            snap.records[0].field("s"),
            Some(&OwnedValue::Str("a\"b\\c\nd\te\u{1}".to_string()))
        );
    }
}
