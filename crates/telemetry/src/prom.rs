//! Prometheus text-exposition exporter for a metric [`Snapshot`].
//!
//! Emits the classic text format (version 0.0.4): one `# TYPE` line per
//! metric name, then one sample line per label set. Counters export
//! as-is, gauges as gauges, histograms as cumulative `_bucket` series
//! plus `_sum`/`_count`, and streaming quantile sets as summaries with
//! `quantile` labels. Metric names are sanitized to the Prometheus
//! charset (`[a-zA-Z0-9_:]`, so `sim.delivered` becomes
//! `sim_delivered`).
//!
//! The output is a pure function of the (key-ordered) snapshot, so it
//! is byte-identical at any thread count.

use crate::quantile::QuantileSet;
use crate::registry::{Histogram, Labels, MetricKey, Snapshot};
use std::io::{self, Write};

/// Write `name` with every non-Prometheus character replaced by `_`.
fn write_name<W: Write>(out: &mut W, name: &str) -> io::Result<()> {
    for c in name.chars() {
        let c = if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            c
        } else {
            '_'
        };
        write!(out, "{c}")?;
    }
    Ok(())
}

/// Write a label value as a quoted, escaped Prometheus string.
fn write_label_str<W: Write>(out: &mut W, s: &str) -> io::Result<()> {
    out.write_all(b"\"")?;
    for c in s.chars() {
        match c {
            '\\' => out.write_all(b"\\\\")?,
            '"' => out.write_all(b"\\\"")?,
            '\n' => out.write_all(b"\\n")?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_all(b"\"")
}

/// Write `{k="v",…}`, appending `extra` last; nothing for no labels.
fn write_labels<W: Write>(
    out: &mut W,
    labels: &Labels,
    extra: Option<(&str, &str)>,
) -> io::Result<()> {
    if labels.is_empty() && extra.is_none() {
        return Ok(());
    }
    out.write_all(b"{")?;
    let mut first = true;
    for (k, v) in labels.pairs() {
        if !first {
            out.write_all(b",")?;
        }
        first = false;
        write!(out, "{k}=")?;
        write_label_str(out, &v.to_string())?;
    }
    if let Some((k, v)) = extra {
        if !first {
            out.write_all(b",")?;
        }
        write!(out, "{k}=")?;
        write_label_str(out, v)?;
    }
    out.write_all(b"}")
}

/// Write an `f64` sample value in Prometheus spelling (`+Inf`, `-Inf`,
/// `NaN` for non-finite values).
fn write_num<W: Write>(out: &mut W, v: f64) -> io::Result<()> {
    if v.is_finite() {
        write!(out, "{v}")
    } else if v.is_nan() {
        out.write_all(b"NaN")
    } else if v > 0.0 {
        out.write_all(b"+Inf")
    } else {
        out.write_all(b"-Inf")
    }
}

/// Emit a `# TYPE` line the first time `name` appears in its section.
fn type_line<'a, W: Write>(
    out: &mut W,
    last: &mut Option<&'a str>,
    name: &'a str,
    kind: &str,
) -> io::Result<()> {
    if *last != Some(name) {
        *last = Some(name);
        out.write_all(b"# TYPE ")?;
        write_name(out, name)?;
        writeln!(out, " {kind}")?;
    }
    Ok(())
}

fn write_histogram<W: Write>(out: &mut W, key: &MetricKey, h: &Histogram) -> io::Result<()> {
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds().iter().zip(h.counts()) {
        cumulative += count;
        write_name(out, &key.name)?;
        out.write_all(b"_bucket")?;
        let le = format!("{bound}");
        write_labels(out, &key.labels, Some(("le", le.as_str())))?;
        writeln!(out, " {cumulative}")?;
    }
    cumulative += h.overflow();
    write_name(out, &key.name)?;
    out.write_all(b"_bucket")?;
    write_labels(out, &key.labels, Some(("le", "+Inf")))?;
    writeln!(out, " {cumulative}")?;
    write_name(out, &key.name)?;
    out.write_all(b"_sum")?;
    write_labels(out, &key.labels, None)?;
    out.write_all(b" ")?;
    write_num(out, h.sum())?;
    out.write_all(b"\n")?;
    write_name(out, &key.name)?;
    out.write_all(b"_count")?;
    write_labels(out, &key.labels, None)?;
    writeln!(out, " {}", h.count())
}

fn write_quantiles<W: Write>(out: &mut W, key: &MetricKey, q: &QuantileSet) -> io::Result<()> {
    for (tag, value) in [("0.5", q.p50()), ("0.95", q.p95()), ("0.99", q.p99())] {
        let Some(value) = value else { continue };
        write_name(out, &key.name)?;
        write_labels(out, &key.labels, Some(("quantile", tag)))?;
        out.write_all(b" ")?;
        write_num(out, value)?;
        out.write_all(b"\n")?;
    }
    write_name(out, &key.name)?;
    out.write_all(b"_sum")?;
    write_labels(out, &key.labels, None)?;
    out.write_all(b" ")?;
    write_num(out, q.sum())?;
    out.write_all(b"\n")?;
    write_name(out, &key.name)?;
    out.write_all(b"_count")?;
    write_labels(out, &key.labels, None)?;
    writeln!(out, " {}", q.count())
}

/// Write `snapshot` in Prometheus text-exposition format: counters,
/// gauges, histograms, then quantile summaries, each key-ordered.
///
/// # Errors
/// Propagates I/O errors from `out`.
pub fn write_snapshot<W: Write>(out: &mut W, snapshot: &Snapshot) -> io::Result<()> {
    let mut last: Option<&str> = None;
    for (key, value) in &snapshot.counters {
        type_line(out, &mut last, &key.name, "counter")?;
        write_name(out, &key.name)?;
        write_labels(out, &key.labels, None)?;
        writeln!(out, " {value}")?;
    }
    let mut last: Option<&str> = None;
    for (key, value) in &snapshot.gauges {
        type_line(out, &mut last, &key.name, "gauge")?;
        write_name(out, &key.name)?;
        write_labels(out, &key.labels, None)?;
        out.write_all(b" ")?;
        write_num(out, *value)?;
        out.write_all(b"\n")?;
    }
    let mut last: Option<&str> = None;
    for (key, h) in &snapshot.histograms {
        type_line(out, &mut last, &key.name, "histogram")?;
        write_histogram(out, key, h)?;
    }
    let mut last: Option<&str> = None;
    for (key, q) in &snapshot.quantiles {
        type_line(out, &mut last, &key.name, "summary")?;
        write_quantiles(out, key, q)?;
    }
    Ok(())
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::{counter, gauge, histogram, quantile, Level, Recorder};

    fn export(rec: &Recorder) -> String {
        let mut out = Vec::new();
        write_snapshot(&mut out, &rec.snapshot()).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn golden_export_covers_every_metric_kind() {
        let rec = Recorder::new(Level::Info);
        rec.set_buckets("disk.service_ms", &[1.0, 10.0]);
        {
            let _g = rec.install();
            counter!("sim.delivered", 92, scheme = "SR");
            gauge!("rebuild.progress", 0.5, disk = 2u64);
            for v in [0.5, 5.0, 100.0] {
                histogram!("disk.service_ms", v, disk = 0u64);
            }
            for v in [1.0, 2.0, 3.0] {
                quantile!("workload.wait_cycles", v, scheme = "SR");
            }
        }
        let golden = "\
# TYPE sim_delivered counter
sim_delivered{scheme=\"SR\"} 92
# TYPE rebuild_progress gauge
rebuild_progress{disk=\"2\"} 0.5
# TYPE disk_service_ms histogram
disk_service_ms_bucket{disk=\"0\",le=\"1\"} 1
disk_service_ms_bucket{disk=\"0\",le=\"10\"} 2
disk_service_ms_bucket{disk=\"0\",le=\"+Inf\"} 3
disk_service_ms_sum{disk=\"0\"} 105.5
disk_service_ms_count{disk=\"0\"} 3
# TYPE workload_wait_cycles summary
workload_wait_cycles{scheme=\"SR\",quantile=\"0.5\"} 2
workload_wait_cycles{scheme=\"SR\",quantile=\"0.95\"} 3
workload_wait_cycles{scheme=\"SR\",quantile=\"0.99\"} 3
workload_wait_cycles_sum{scheme=\"SR\"} 6
workload_wait_cycles_count{scheme=\"SR\"} 3
";
        let got = export(&rec);
        assert_eq!(got, golden, "got:\n{got}");
    }

    #[test]
    fn export_is_deterministic_and_escaped() {
        let run = || {
            let rec = Recorder::new(Level::Info);
            {
                let _g = rec.install();
                counter!("z.last", 1);
                counter!("a.first", 2, mode = String::from("de\"graded"));
            }
            export(&rec)
        };
        let text = run();
        assert_eq!(text, run());
        assert!(text.contains("a_first{mode=\"de\\\"graded\"} 2"), "{text}");
        assert!(text.find("a_first").unwrap() < text.find("z_last").unwrap());
    }
}
