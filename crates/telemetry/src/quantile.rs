//! Streaming quantile estimation: the P² algorithm.
//!
//! Long simulations need latency and stall percentiles without keeping
//! a per-event sample vector — a million-session day would otherwise
//! hold millions of waits in memory just to report a p95 at the end.
//! [`P2Quantile`] is the piecewise-parabolic estimator of Jain &
//! Chlamtac (CACM 1985): five markers track the running minimum, the
//! target quantile, two flanking quantiles, and the maximum, adjusting
//! marker heights by fitting a parabola through their neighbours as
//! observations stream past. State is five `(position, height)` pairs —
//! O(1) memory and O(1) time per observation, no allocation after
//! construction.
//!
//! Accuracy: for smooth distributions the estimate converges to within
//! a fraction of a percentile of the exact order statistic (see the
//! `tracks_exact_quantiles_on_uniform` test for the bound this
//! workspace holds itself to). The first four observations are stored
//! exactly, so small samples report true order statistics.

/// A streaming estimator for one quantile `q ∈ (0, 1)`.
///
/// Feed observations with [`observe`](P2Quantile::observe); read the
/// current estimate with [`value`](P2Quantile::value). Below five
/// observations the estimate is the exact nearest-rank order statistic;
/// from the fifth observation on, the five P² markers take over.
///
/// Determinism: the estimate is a pure function of the observation
/// sequence — no clocks, no randomness — so parallel jobs that feed
/// identical streams produce bit-identical estimators.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    /// The target quantile in `(0, 1)`.
    q: f64,
    /// Marker heights `h_0..h_4` (current estimates of the min, the
    /// flanking quantiles, `q` itself at index 2, and the max).
    heights: [f64; 5],
    /// Actual marker positions `n_0..n_4` (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions `n'_0..n'_4`.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl P2Quantile {
    /// An estimator for quantile `q`.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be inside (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    #[must_use]
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations fed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation. O(1), allocation-free.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "P2Quantile observations must be finite");
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_unstable_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Locate the cell k with h_k <= x < h_{k+1}, widening the
        // extreme markers when x falls outside them.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            if x > self.heights[4] {
                self.heights[4] = x;
            }
            3
        } else {
            let mut cell = 0;
            for i in 1..4 {
                if x >= self.heights[i] {
                    cell = i;
                }
            }
            cell
        };

        // Every marker right of the cell moved one rank up; all desired
        // positions drift by their increments.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Nudge the three interior markers toward their desired ranks,
        // preferring the parabolic height and falling back to linear
        // interpolation when the parabola would break monotonicity.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let room_right = self.positions[i + 1] - self.positions[i] > 1.0;
            let room_left = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && room_right) || (d <= -1.0 && room_left) {
                let s = d.signum();
                let h = self.parabolic(i, s);
                self.heights[i] = if self.heights[i - 1] < h && h < self.heights[i + 1] {
                    h
                } else {
                    self.linear(i, s)
                };
                self.positions[i] += s;
            }
        }
    }

    /// Piecewise-parabolic prediction of marker `i`'s height after a
    /// shift of `s` (±1) ranks.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback prediction toward the neighbour in direction `s`.
    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` before any observation.
    ///
    /// With fewer than five observations this is the exact nearest-rank
    /// order statistic of what has been seen.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as usize;
        if n < 5 {
            let mut seen = self.heights;
            let seen = &mut seen[..n];
            seen.sort_unstable_by(f64::total_cmp);
            let rank = (self.q * n as f64).ceil() as usize;
            return Some(seen[rank.clamp(1, n) - 1]);
        }
        Some(self.heights[2])
    }
}

/// Cap on replayed observations when merging mismatched estimator
/// states, keeping [`QuantileSet::merge`] O(1) per absorb.
const MERGE_REPLAY_CAP: u64 = 1024;

/// The registry's standard percentile set: p50, p95, and p99 of one
/// metric, each a streaming [`P2Quantile`], plus exact `count`/`sum`.
///
/// This is what the [`quantile!`](crate::quantile) macro records into.
/// Merging (for parallel absorption) is exact for `count` and `sum`;
/// the estimator states are approximated by replaying the other set's
/// current estimates — the same coarsening compromise
/// [`Histogram::merge`](crate::Histogram::merge) makes for mismatched
/// bucket layouts. Per-job metric keys usually differ by a `scheme`
/// label, so in practice merges concatenate rather than blend.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSet {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    count: u64,
    sum: f64,
}

impl QuantileSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        QuantileSet {
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            count: 0,
            sum: 0.0,
        }
    }

    /// Feed one observation into all three estimators. O(1),
    /// allocation-free.
    pub fn observe(&mut self, x: f64) {
        self.p50.observe(x);
        self.p95.observe(x);
        self.p99.observe(x);
        self.count += 1;
        self.sum += x;
    }

    /// Current p50 estimate, or `None` before any observation.
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.p50.value()
    }

    /// Current p95 estimate.
    #[must_use]
    pub fn p95(&self) -> Option<f64> {
        self.p95.value()
    }

    /// Current p99 estimate.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.p99.value()
    }

    /// Observations fed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merge `other` into `self`. `count` and `sum` combine exactly;
    /// estimator states are approximated by replaying `other`'s current
    /// estimates (capped), which drags each marker toward the combined
    /// distribution without keeping samples.
    pub fn merge(&mut self, other: &QuantileSet) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let replays = other.count.min(MERGE_REPLAY_CAP);
        for (mine, theirs) in [
            (&mut self.p50, &other.p50),
            (&mut self.p95, &other.p95),
            (&mut self.p99, &other.p99),
        ] {
            if let Some(v) = theirs.value() {
                for _ in 0..replays {
                    mine.observe(v);
                }
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

impl Default for QuantileSet {
    fn default() -> Self {
        QuantileSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64, inlined so the estimator tests are pinned to a fixed
    /// observation stream independent of any RNG crate.
    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn small_samples_are_exact_order_statistics() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), None);
        for (i, x) in [5.0, 1.0, 4.0, 2.0].iter().enumerate() {
            p.observe(*x);
            assert_eq!(p.count(), i as u64 + 1);
        }
        // Median of {1, 2, 4, 5} by nearest rank: ceil(0.5·4) = rank 2.
        assert_eq!(p.value(), Some(2.0));
    }

    #[test]
    fn tracks_exact_quantiles_on_uniform() {
        // The error bound this workspace holds the estimator to:
        // within 0.02 (absolute, on U(0,1)) of the exact order
        // statistic for p50/p90/p95/p99 at n = 20_000.
        let mut state = 0x00C0_FFEE_u64;
        let samples: Vec<f64> = (0..20_000).map(|_| splitmix(&mut state)).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        for q in [0.5, 0.9, 0.95, 0.99] {
            let mut p = P2Quantile::new(q);
            for &x in &samples {
                p.observe(x);
            }
            let got = p.value().unwrap();
            let want = exact_quantile(&sorted, q);
            assert!(
                (got - want).abs() < 0.02,
                "q={q}: estimated {got}, exact {want}"
            );
        }
    }

    #[test]
    fn tracks_skewed_exponential_tail() {
        // Exponential(1) via inverse CDF: a heavy-ish tail stresses the
        // parabolic adjustment more than uniform does.
        let mut state = 7u64;
        let samples: Vec<f64> = (0..50_000)
            .map(|_| -(1.0 - splitmix(&mut state)).ln())
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let mut p = P2Quantile::new(0.95);
        for &x in &samples {
            p.observe(x);
        }
        let got = p.value().unwrap();
        let want = exact_quantile(&sorted, 0.95); // ≈ ln 20 ≈ 3.0
        assert!(
            (got - want).abs() / want < 0.05,
            "estimated {got}, exact {want}"
        );
    }

    #[test]
    fn constant_stream_collapses_to_the_constant() {
        let mut p = P2Quantile::new(0.9);
        for _ in 0..1000 {
            p.observe(42.0);
        }
        assert_eq!(p.value(), Some(42.0));
    }

    #[test]
    fn monotone_stream_stays_in_range() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_000 {
            p.observe(f64::from(i));
        }
        let v = p.value().unwrap();
        // True median of 0..10000 is ~5000; P² on a drifting stream
        // lags but must stay within the observed range and same order.
        assert!(v > 2000.0 && v < 8000.0, "{v}");
    }

    #[test]
    #[should_panic(expected = "inside (0, 1)")]
    fn rejects_quantile_one() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn quantile_set_tracks_all_three_percentiles() {
        let mut q = QuantileSet::new();
        assert_eq!(q.p50(), None);
        for i in 1..=100u32 {
            q.observe(f64::from(i));
        }
        assert_eq!(q.count(), 100);
        assert_eq!(q.sum(), 5050.0);
        let p50 = q.p50().unwrap();
        let p99 = q.p99().unwrap();
        assert!((p50 - 50.0).abs() < 5.0, "{p50}");
        assert!(p99 > 90.0 && p99 <= 100.0, "{p99}");
    }

    #[test]
    fn quantile_set_merge_is_exact_for_count_and_sum() {
        let mut a = QuantileSet::new();
        let mut b = QuantileSet::new();
        for i in 0..50 {
            a.observe(f64::from(i));
            b.observe(f64::from(i) + 100.0);
        }
        let b_p50 = b.p50().unwrap();
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(
            a.sum(),
            (0..50).map(f64::from).sum::<f64>() * 2.0 + 100.0 * 50.0
        );
        // The replayed estimate drags the median toward b's range.
        let merged = a.p50().unwrap();
        assert!(merged > 25.0 && merged <= b_p50, "{merged}");
        // Merging into an empty set copies exactly.
        let mut empty = QuantileSet::new();
        empty.merge(&b);
        assert_eq!(empty, b);
        // Merging an empty set is a no-op.
        let before = b.clone();
        b.merge(&QuantileSet::new());
        assert_eq!(b, before);
    }
}
