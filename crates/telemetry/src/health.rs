//! The health model: a streaming SLO tracker over the event stream.
//!
//! The paper's reliability argument is about exposure windows: while a
//! cluster runs degraded, a second failure in the wrong place loses
//! data (the MTTDS analysis of Eq. 6). [`HealthModel`] watches the
//! event stream a simulation already emits — `cycle` spans, `hiccup`
//! events, `mode_transition` events, `rebuild_started` events, and
//! `Error`-level records — and maintains three live signals:
//!
//! * **stall-budget burn** — hiccups per kilocycle against a budget,
//!   with a first-crossing alert cycle;
//! * **rebuild ETA** — cycles until the active rebuild completes, from
//!   the observed progress rate;
//! * **degraded exposure** — cumulative cluster-cycles (and seconds, at
//!   `T_cyc` seconds per cycle) spent in a non-normal mode: the live
//!   integrand of the paper's data-loss exposure.
//!
//! [`observe`](HealthModel::observe) is allocation-free per event so the
//! model can ride on the hot path; the degraded-cycle accounting matches
//! `mms_sim::scenario::degraded_cycles` exactly (keep-first on repeated
//! non-normal transitions, close on return to `normal`).

use crate::event::{EventKind, EventRecord, Value};
use crate::registry::{LabelValue, Labels, Registry};
use crate::Level;
use std::fmt::Write as _;

/// Tunables for the health model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Seconds per service cycle (`T_cyc`), converting cycles to
    /// wall-clock exposure. The default of 1.0 makes exposure seconds
    /// numerically equal to degraded cluster-cycles.
    pub t_cyc_secs: f64,
    /// Allowed hiccups per 1000 cycles before the stall alert fires.
    pub hiccups_per_kcycle: f64,
    /// Burn-rate multiple of the budget that fires the stall alert
    /// (1.0 = alert exactly at budget).
    pub burn_alert: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            t_cyc_secs: 1.0,
            hiccups_per_kcycle: 1.0,
            burn_alert: 1.0,
        }
    }
}

/// Streaming per-scheme SLO tracker. Feed it the event stream (in
/// order) with [`observe`](HealthModel::observe), close open intervals
/// with [`finish`](HealthModel::finish), then read the signals or
/// [`publish_to`](HealthModel::publish_to) them as `health.*` gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthModel {
    config: HealthConfig,
    /// Latest cycle seen (from `cycle` spans or event `cycle` fields).
    cycle: u64,
    hiccups: u64,
    data_loss_events: u64,
    /// Degraded cluster-cycles from intervals already closed.
    closed_degraded: u64,
    /// `(scheme_key, cluster, start_cycle)` for clusters currently
    /// degraded. The scheme key distinguishes same-numbered clusters
    /// when one stream carries several schemes' events (a corpus
    /// fan-out); single-scheme streams collapse to one key.
    open_since: Vec<(u64, u64, u64)>,
    stall_alert_at: Option<u64>,
    loss_alert_at: Option<u64>,
    rebuild_started_at: Option<u64>,
    rebuild_progress: f64,
    rebuild_progress_cycle: u64,
}

impl HealthModel {
    /// A model with the given configuration.
    #[must_use]
    pub fn new(config: HealthConfig) -> Self {
        HealthModel {
            config,
            cycle: 0,
            hiccups: 0,
            data_loss_events: 0,
            closed_degraded: 0,
            open_since: Vec::with_capacity(64),
            stall_alert_at: None,
            loss_alert_at: None,
            rebuild_started_at: None,
            rebuild_progress: 0.0,
            rebuild_progress_cycle: 0,
        }
    }

    /// Feed one event. Allocation-free; events the model does not watch
    /// cost two comparisons.
    pub fn observe(&mut self, event: &EventRecord) {
        if event.kind == EventKind::SpanOpen && event.name == "cycle" {
            if let Some(Value::U64(c)) = event.field("cycle") {
                self.cycle = (*c).max(self.cycle);
            }
            return;
        }
        if event.kind != EventKind::Event {
            return;
        }
        if let Some(c) = event_cycle(event) {
            self.cycle = c.max(self.cycle);
        }
        if event.level == Level::Error {
            self.data_loss_events += 1;
            if self.loss_alert_at.is_none() {
                self.loss_alert_at = Some(self.cycle);
            }
            return;
        }
        match event.name {
            "hiccup" => {
                self.hiccups += 1;
                if self.stall_alert_at.is_none() && self.burn_rate() >= self.config.burn_alert {
                    self.stall_alert_at = Some(self.cycle);
                }
            }
            "mode_transition" => {
                let cluster = match event.field("cluster") {
                    Some(Value::U64(c)) => *c,
                    Some(Value::I64(c)) => *c as u64,
                    _ => return,
                };
                let scheme = match event.field("scheme") {
                    Some(Value::Str(s)) => fnv1a(s.as_bytes()),
                    _ => 0,
                };
                let cycle = event_cycle(event).unwrap_or(self.cycle);
                let to_normal = matches!(event.field("to"), Some(Value::Str(s)) if s == "normal");
                let open = self
                    .open_since
                    .iter()
                    .position(|&(s, c, _)| s == scheme && c == cluster);
                if to_normal {
                    if let Some(ix) = open {
                        let (_, _, start) = self.open_since.swap_remove(ix);
                        self.closed_degraded += cycle.saturating_sub(start);
                    }
                } else if open.is_none() {
                    // Keep-first: a deeper transition while already
                    // degraded does not restart the interval.
                    self.open_since.push((scheme, cluster, cycle));
                }
            }
            "rebuild_started" => {
                self.rebuild_started_at = Some(event_cycle(event).unwrap_or(self.cycle));
                self.rebuild_progress = 0.0;
                self.rebuild_progress_cycle = self.rebuild_started_at.unwrap_or(0);
            }
            _ => {}
        }
    }

    /// Report the latest rebuild progress (a fraction in `[0, 1]`) as of
    /// `cycle`, e.g. from the `rebuild.progress` gauge.
    pub fn observe_progress(&mut self, cycle: u64, progress: f64) {
        self.cycle = cycle.max(self.cycle);
        self.rebuild_progress = progress;
        self.rebuild_progress_cycle = cycle;
    }

    /// Close every open degraded interval at `end_cycle` (intervals
    /// still open when the run stops count up to its end, exactly like
    /// the scenario report's accounting).
    pub fn finish(&mut self, end_cycle: u64) {
        self.cycle = end_cycle.max(self.cycle);
        while let Some((_, _, start)) = self.open_since.pop() {
            self.closed_degraded += end_cycle.saturating_sub(start);
        }
    }

    /// Latest cycle observed.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Hiccups observed so far.
    #[must_use]
    pub fn hiccups(&self) -> u64 {
        self.hiccups
    }

    /// `Error`-level records observed (data loss, check violations).
    #[must_use]
    pub fn data_loss_events(&self) -> u64 {
        self.data_loss_events
    }

    /// Cumulative degraded cluster-cycles: closed intervals plus any
    /// still-open interval counted up to the current cycle.
    #[must_use]
    pub fn degraded_cycles(&self) -> u64 {
        let open: u64 = self
            .open_since
            .iter()
            .map(|&(_, _, start)| self.cycle.saturating_sub(start))
            .sum();
        self.closed_degraded + open
    }

    /// Degraded exposure in seconds: degraded cluster-cycles scaled by
    /// `T_cyc`.
    #[must_use]
    pub fn degraded_exposure_secs(&self) -> f64 {
        self.degraded_cycles() as f64 * self.config.t_cyc_secs
    }

    /// Clusters currently degraded.
    #[must_use]
    pub fn degraded_clusters(&self) -> usize {
        self.open_since.len()
    }

    /// Observed stall rate in hiccups per kilocycle.
    #[must_use]
    pub fn stall_rate_per_kcycle(&self) -> f64 {
        let cycles = self.cycle.max(1);
        self.hiccups as f64 * 1000.0 / cycles as f64
    }

    /// Stall-budget burn rate: observed rate over budget (1.0 = exactly
    /// on budget).
    #[must_use]
    pub fn burn_rate(&self) -> f64 {
        if self.config.hiccups_per_kcycle <= 0.0 {
            return if self.hiccups == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        self.stall_rate_per_kcycle() / self.config.hiccups_per_kcycle
    }

    /// Cycle at which the stall burn first crossed the alert threshold.
    #[must_use]
    pub fn stall_alert_cycle(&self) -> Option<u64> {
        self.stall_alert_at
    }

    /// Cycle of the first `Error`-level record.
    #[must_use]
    pub fn data_loss_cycle(&self) -> Option<u64> {
        self.loss_alert_at
    }

    /// Estimated cycles until the active rebuild completes, from the
    /// observed progress rate. `None` without an active rebuild or any
    /// progress to extrapolate from.
    #[must_use]
    pub fn rebuild_eta_cycles(&self) -> Option<f64> {
        let start = self.rebuild_started_at?;
        let p = self.rebuild_progress;
        if p <= 0.0 {
            return None;
        }
        if p >= 1.0 {
            return Some(0.0);
        }
        let elapsed = self.rebuild_progress_cycle.saturating_sub(start).max(1);
        Some(elapsed as f64 * (1.0 - p) / p)
    }

    /// Write the `health.*` gauges for `scheme` into `registry`.
    pub fn publish_to(&self, registry: &mut Registry, scheme: &str) {
        let labels = || Labels::new(vec![("scheme", LabelValue::Str(scheme.to_string().into()))]);
        registry.gauge_set("health.hiccups", labels(), self.hiccups as f64);
        registry.gauge_set("health.stall_burn_rate", labels(), self.burn_rate());
        registry.gauge_set(
            "health.degraded_cycles",
            labels(),
            self.degraded_cycles() as f64,
        );
        registry.gauge_set(
            "health.degraded_exposure_secs",
            labels(),
            self.degraded_exposure_secs(),
        );
        registry.gauge_set(
            "health.data_loss_events",
            labels(),
            self.data_loss_events as f64,
        );
        if let Some(eta) = self.rebuild_eta_cycles() {
            registry.gauge_set("health.rebuild_eta_cycles", labels(), eta);
        }
    }

    /// Synthesized alert events for thresholds crossed during the run,
    /// ready to append to an event stream (JSONL export or flight
    /// recorder).
    #[must_use]
    pub fn alert_records(&self) -> Vec<EventRecord> {
        let mut out = Vec::new();
        if let Some(cycle) = self.stall_alert_at {
            out.push(EventRecord {
                level: Level::Warn,
                target: module_path!(),
                name: "health_alert",
                kind: EventKind::Event,
                fields: vec![
                    ("kind", Value::from("stall_budget_burn")),
                    ("cycle", Value::U64(cycle)),
                    ("burn", Value::F64(self.burn_rate())),
                ],
            });
        }
        if let Some(cycle) = self.loss_alert_at {
            out.push(EventRecord {
                level: Level::Warn,
                target: module_path!(),
                name: "health_alert",
                kind: EventKind::Event,
                fields: vec![
                    ("kind", Value::from("data_loss")),
                    ("cycle", Value::U64(cycle)),
                    ("events", Value::U64(self.data_loss_events)),
                ],
            });
        }
        out
    }

    /// An ASCII dashboard panel summarizing the signals.
    #[must_use]
    pub fn panel(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "health");
        let _ = writeln!(out, "{}", "-".repeat(40));
        let _ = writeln!(out, "cycles observed       {:>12}", self.cycle);
        let _ = writeln!(
            out,
            "hiccups               {:>12}  ({:.3}/kcycle, burn {:.2}x)",
            self.hiccups,
            self.stall_rate_per_kcycle(),
            self.burn_rate()
        );
        let _ = writeln!(
            out,
            "degraded exposure     {:>12}  cluster-cycles ({:.1} s)",
            self.degraded_cycles(),
            self.degraded_exposure_secs()
        );
        match self.rebuild_eta_cycles() {
            Some(eta) => {
                let _ = writeln!(out, "rebuild ETA           {eta:>12.1}  cycles");
            }
            None => {
                let _ = writeln!(out, "rebuild ETA           {:>12}", "-");
            }
        }
        match self.stall_alert_at {
            Some(c) => {
                let _ = writeln!(out, "stall alert           {c:>12}  (first crossing)");
            }
            None => {
                let _ = writeln!(out, "stall alert           {:>12}", "none");
            }
        }
        match self.loss_alert_at {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "data loss             {c:>12}  ({} error record(s))",
                    self.data_loss_events
                );
            }
            None => {
                let _ = writeln!(out, "data loss             {:>12}", "none");
            }
        }
        out
    }
}

impl Default for HealthModel {
    fn default() -> Self {
        HealthModel::new(HealthConfig::default())
    }
}

/// An event's `cycle` field, accepting both integer encodings.
/// FNV-1a over the scheme label: a deterministic, allocation-free key
/// for telling schemes apart in the open-interval table.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn event_cycle(event: &EventRecord) -> Option<u64> {
    match event.field("cycle") {
        Some(Value::U64(c)) => Some(*c),
        Some(Value::I64(c)) => Some(*c as u64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, fields: Vec<(&'static str, Value)>) -> EventRecord {
        EventRecord {
            level: Level::Info,
            target: "test",
            name,
            kind: EventKind::Event,
            fields,
        }
    }

    fn transition(cycle: u64, cluster: u64, to: &'static str) -> EventRecord {
        ev(
            "mode_transition",
            vec![
                ("cycle", Value::U64(cycle)),
                ("cluster", Value::U64(cluster)),
                ("from", Value::from("normal")),
                ("to", Value::from(to)),
            ],
        )
    }

    #[test]
    fn degraded_intervals_close_on_normal() {
        let mut h = HealthModel::default();
        h.observe(&transition(10, 0, "degraded"));
        h.observe(&transition(12, 1, "degraded"));
        // Keep-first: deeper transition does not restart cluster 0.
        h.observe(&transition(14, 0, "rebuild"));
        h.observe(&transition(20, 0, "normal"));
        assert_eq!(h.degraded_clusters(), 1);
        h.finish(30);
        // Cluster 0: 20 - 10 = 10; cluster 1 open: 30 - 12 = 18.
        assert_eq!(h.degraded_cycles(), 28);
        assert_eq!(h.degraded_exposure_secs(), 28.0);
    }

    #[test]
    fn stall_burn_crosses_once() {
        let mut h = HealthModel::new(HealthConfig {
            t_cyc_secs: 1.0,
            hiccups_per_kcycle: 100.0,
            burn_alert: 1.0,
        });
        let mut hic = ev("hiccup", vec![("cycle", Value::U64(0))]);
        hic.level = Level::Warn;
        // 100/kcycle budget at cycle 50 means 5 hiccups cross it.
        for cycle in [10u64, 20, 30, 40, 50] {
            let mut e = hic.clone();
            e.fields[0].1 = Value::U64(cycle);
            h.observe(&e);
        }
        assert_eq!(h.hiccups(), 5);
        assert!(h.burn_rate() >= 1.0);
        assert_eq!(h.stall_alert_cycle(), Some(10), "first crossing is kept");
        assert_eq!(h.alert_records().len(), 1);
    }

    #[test]
    fn error_records_count_as_data_loss() {
        let mut h = HealthModel::default();
        let mut e = ev("data_loss", vec![("cycle", Value::U64(7))]);
        e.level = Level::Error;
        h.observe(&e);
        assert_eq!(h.data_loss_events(), 1);
        assert_eq!(h.data_loss_cycle(), Some(7));
        let alerts = h.alert_records();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].name, "health_alert");
    }

    #[test]
    fn rebuild_eta_extrapolates_progress() {
        let mut h = HealthModel::default();
        h.observe(&ev(
            "rebuild_started",
            vec![("cycle", Value::U64(100)), ("disk", Value::U64(3))],
        ));
        assert_eq!(h.rebuild_eta_cycles(), None, "no progress yet");
        h.observe_progress(120, 0.25);
        // 20 cycles bought 25%; 75% remains → 60 cycles.
        let eta = h.rebuild_eta_cycles().expect("progress seen");
        assert!((eta - 60.0).abs() < 1e-9, "{eta}");
        h.observe_progress(180, 1.0);
        assert_eq!(h.rebuild_eta_cycles(), Some(0.0));
    }

    #[test]
    fn publish_writes_health_gauges() {
        let mut h = HealthModel::default();
        h.observe(&transition(5, 0, "degraded"));
        h.finish(15);
        let mut reg = Registry::new();
        h.publish_to(&mut reg, "NC");
        let labels = Labels::new(vec![("scheme", LabelValue::Str("NC".to_string().into()))]);
        assert_eq!(reg.gauge("health.degraded_cycles", &labels), Some(10.0));
        assert_eq!(
            reg.gauge("health.degraded_exposure_secs", &labels),
            Some(10.0)
        );
    }

    #[test]
    fn panel_renders_every_signal() {
        let mut h = HealthModel::default();
        h.observe(&transition(5, 0, "degraded"));
        h.finish(15);
        let text = h.panel();
        assert!(text.contains("health"), "{text}");
        assert!(text.contains("degraded exposure"), "{text}");
        assert!(text.contains("rebuild ETA"), "{text}");
        assert!(text.contains("10"), "{text}");
    }
}
