//! The standard in-memory collector: buffers events and owns a
//! [`Registry`].

use crate::collect::{self, Collect, CollectorGuard};
use crate::event::EventRecord;
use crate::registry::{Labels, Registry, Snapshot};
use crate::Level;
use std::cell::RefCell;
use std::rc::Rc;

struct Inner {
    max_level: Level,
    events: RefCell<Vec<EventRecord>>,
    registry: RefCell<Registry>,
}

impl Collect for Inner {
    fn max_level(&self) -> Level {
        self.max_level
    }

    fn record(&self, event: EventRecord) {
        if event.level <= self.max_level {
            self.events.borrow_mut().push(event);
        }
    }

    fn counter(&self, name: &'static str, labels: Labels, delta: u64) {
        self.registry.borrow_mut().counter_add(name, labels, delta);
    }

    fn gauge(&self, name: &'static str, labels: Labels, value: f64) {
        self.registry.borrow_mut().gauge_set(name, labels, value);
    }

    fn histogram(&self, name: &'static str, labels: Labels, value: f64) {
        self.registry
            .borrow_mut()
            .histogram_observe(name, labels, value);
    }

    fn quantile(&self, name: &'static str, labels: Labels, value: f64) {
        self.registry
            .borrow_mut()
            .quantile_observe(name, labels, value);
    }

    fn absorb(&self, events: Vec<EventRecord>, registry: &Registry) {
        self.events
            .borrow_mut()
            .extend(events.into_iter().filter(|e| e.level <= self.max_level));
        self.registry.borrow_mut().merge(registry);
    }
}

/// An in-memory collector: events accumulate in arrival order, metrics
/// in a [`Registry`]. Clone-cheap (`Rc` inside); clones share the same
/// buffers.
///
/// This is the collector `mms-exec` creates per parallel job and the one
/// `mms-ctl` installs for `--telemetry`.
#[derive(Clone)]
pub struct Recorder {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("max_level", &self.inner.max_level)
            .field("events", &self.inner.events.borrow().len())
            .finish()
    }
}

impl Recorder {
    /// A recorder that keeps records up to and including `max_level`.
    #[must_use]
    pub fn new(max_level: Level) -> Self {
        Recorder {
            inner: Rc::new(Inner {
                max_level,
                events: RefCell::new(Vec::new()),
                registry: RefCell::new(Registry::new()),
            }),
        }
    }

    /// This recorder as an installable collector handle.
    #[must_use]
    pub fn handle(&self) -> Rc<dyn Collect> {
        self.inner.clone()
    }

    /// Install this recorder on the current thread's collector stack;
    /// it receives records until the guard drops.
    pub fn install(&self) -> CollectorGuard {
        collect::install(self.handle())
    }

    /// Pre-register histogram bucket bounds for `name` (see
    /// [`Registry::set_buckets`]).
    pub fn set_buckets(&self, name: &'static str, bounds: &[f64]) {
        self.inner.registry.borrow_mut().set_buckets(name, bounds);
    }

    /// Number of buffered events.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.inner.events.borrow().len()
    }

    /// Drain the buffered events, leaving the buffer empty.
    #[must_use]
    pub fn take_events(&self) -> Vec<EventRecord> {
        self.inner.events.take()
    }

    /// A key-ordered copy of the current metrics.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.inner.registry.borrow().snapshot()
    }

    /// Run `f` with mutable access to the underlying registry. Post-run
    /// publishers (e.g. [`HealthModel::publish_to`](crate::HealthModel::publish_to))
    /// use this to add derived metrics before the final snapshot.
    pub fn with_registry_mut(&self, f: impl FnOnce(&mut Registry)) {
        f(&mut self.inner.registry.borrow_mut());
    }

    /// Extract the buffered events and the registry as owned (and
    /// `Send`) data, emptying this recorder. This is how a worker thread
    /// returns a job's telemetry to the caller for in-order absorption.
    #[must_use]
    pub fn into_parts(self) -> (Vec<EventRecord>, Registry) {
        (self.inner.events.take(), self.inner.registry.take())
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::{counter, event, gauge, histogram, span};

    #[test]
    fn records_respect_max_level() {
        let rec = Recorder::new(Level::Info);
        let _g = rec.install();
        event!(Level::Warn, "kept");
        event!(Level::Debug, "filtered");
        drop(_g);
        let events = rec.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "kept");
    }

    #[test]
    fn spans_nest_strictly() {
        let rec = Recorder::new(Level::Debug);
        {
            let _g = rec.install();
            let _outer = span!(Level::Debug, "outer", cycle = 1u64);
            {
                let _inner = span!(Level::Debug, "inner");
                event!(Level::Info, "mid");
            }
        }
        let names: Vec<_> = rec.take_events().iter().map(|e| (e.name, e.kind)).collect();
        use crate::EventKind::*;
        assert_eq!(
            names,
            vec![
                ("outer", SpanOpen),
                ("inner", SpanOpen),
                ("mid", Event),
                ("inner", SpanClose),
                ("outer", SpanClose),
            ]
        );
    }

    #[test]
    fn metrics_land_in_registry() {
        let rec = Recorder::new(Level::Info);
        let _g = rec.install();
        counter!("sim.delivered", 5, scheme = "SR");
        counter!("sim.delivered", 2, scheme = "SR");
        gauge!("rebuild.progress", 0.5, disk = 2u64);
        histogram!("disk.service_ms", 12.0, disk = 0u64);
        drop(_g);
        let snap = rec.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].1, 7);
        assert_eq!(snap.gauges[0].1, 0.5);
        assert_eq!(snap.histograms[0].1.count(), 1);
    }

    #[test]
    fn absorb_replays_in_order_and_merges_metrics() {
        // Simulate two "jobs", absorb them in index order, and check the
        // ambient recorder sees the concatenation.
        let job = |tag: &'static str| {
            let r = Recorder::new(Level::Debug);
            {
                let _g = r.install();
                event!(Level::Debug, "job", tag = tag);
                counter!("jobs", 1);
            }
            r.into_parts()
        };
        let (e0, r0) = job("a");
        let (e1, r1) = job("b");

        let ambient = Recorder::new(Level::Debug);
        {
            let _g = ambient.install();
            crate::dispatch_absorb(e0, &r0);
            crate::dispatch_absorb(e1, &r1);
        }
        let events = ambient.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].field("tag").unwrap().to_string(), "a");
        assert_eq!(events[1].field("tag").unwrap().to_string(), "b");
        assert_eq!(
            ambient.snapshot().counters[0].1,
            2,
            "counters sum across absorbed jobs"
        );
    }

    #[test]
    fn into_parts_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let rec = Recorder::new(Level::Info);
        let parts = rec.into_parts();
        assert_send(&parts);
    }
}
