//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! keyed by static name plus a sorted label set.

use crate::quantile::QuantileSet;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// A label value. Restricted to totally ordered types so label sets can
/// key a `BTreeMap` (no floats).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelValue {
    /// Unsigned integer (disk ids, cluster ids, cycle stamps).
    U64(u64),
    /// String (scheme abbreviations, mode names, loss reasons).
    Str(Cow<'static, str>),
    /// Boolean.
    Bool(bool),
}

impl fmt::Display for LabelValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelValue::U64(v) => write!(f, "{v}"),
            LabelValue::Str(v) => write!(f, "{v}"),
            LabelValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! label_from_uint {
    ($($t:ty),*) => {
        $(impl From<$t> for LabelValue {
            fn from(v: $t) -> Self {
                LabelValue::U64(v as u64)
            }
        })*
    };
}

label_from_uint!(u64, u32, u16, u8, usize);

impl From<bool> for LabelValue {
    fn from(v: bool) -> Self {
        LabelValue::Bool(v)
    }
}

impl From<&'static str> for LabelValue {
    fn from(v: &'static str) -> Self {
        LabelValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for LabelValue {
    fn from(v: String) -> Self {
        LabelValue::Str(Cow::Owned(v))
    }
}

/// A sorted set of `key = value` labels. Construction sorts by key, so
/// two label sets written in different orders compare equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels(Vec<(&'static str, LabelValue)>);

impl Labels {
    /// The empty label set.
    #[must_use]
    pub fn empty() -> Self {
        Labels(Vec::new())
    }

    /// Build from `(key, value)` pairs; sorts by key.
    #[must_use]
    pub fn new(mut pairs: Vec<(&'static str, LabelValue)>) -> Self {
        pairs.sort_by_key(|(k, _)| *k);
        Labels(pairs)
    }

    /// The sorted pairs.
    #[must_use]
    pub fn pairs(&self) -> &[(&'static str, LabelValue)] {
        &self.0
    }

    /// Look up one label.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&LabelValue> {
        self.0.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Whether there are no labels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return Ok(());
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// A metric's identity: name plus labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// The metric name (dotted, e.g. `sim.delivered`).
    pub name: Cow<'static, str>,
    /// The label set.
    pub labels: Labels,
}

impl MetricKey {
    /// Build a key.
    #[must_use]
    pub fn new(name: &'static str, labels: Labels) -> Self {
        MetricKey {
            name: Cow::Borrowed(name),
            labels,
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.labels)
    }
}

/// Default histogram bucket bounds: a log-ish ladder that covers
/// sub-millisecond service times up to multi-second stalls. Values
/// beyond the last bound land in the implicit `+inf` bucket.
pub const DEFAULT_BOUNDS: &[f64] = &[
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
];

/// A fixed-bucket histogram. Bucket `i` counts samples `x ≤ bounds[i]`
/// (cumulative-style assignment per sample: each sample increments
/// exactly one bucket, the first whose bound contains it); samples above
/// every bound increment the overflow bucket. The bucket counts
/// therefore always sum to [`Histogram::count`].
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending bucket bounds.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram with [`DEFAULT_BOUNDS`].
    #[must_use]
    pub fn default_bounds() -> Self {
        Histogram::new(DEFAULT_BOUNDS)
    }

    /// Record one sample.
    ///
    /// Bucket edges are **inclusive upper bounds**: a sample lands in
    /// the first bucket `i` with `value <= bounds[i]`, so a value
    /// exactly on a boundary counts in the bucket the boundary closes
    /// (e.g. with bounds `[1.0, 10.0]`, `observe(1.0)` increments
    /// bucket 0 and `observe(10.0)` increments bucket 1). Samples
    /// strictly above the last bound increment the overflow (`+inf`)
    /// bucket. This matches Prometheus `le` semantics, which is what
    /// lets the Prometheus exporter emit cumulative buckets without
    /// re-binning.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The bucket bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, aligned with [`bounds`](Histogram::bounds).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples above the last bound (the `+inf` bucket).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merge another histogram into this one. The bucket layouts must
    /// match (they do for same-named metrics recorded by this crate's
    /// macros); mismatched layouts fall back to re-observing the other's
    /// mean, which preserves `count` and `sum` but coarsens buckets.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
            self.overflow += other.overflow;
            self.count += other.count;
            self.sum += other.sum;
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        } else {
            let mean = other.mean();
            for _ in 0..other.count {
                self.observe(mean);
            }
        }
    }
}

/// One metric's exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Last-written gauge.
    Gauge(f64),
    /// Distribution.
    Histogram(Histogram),
}

/// The metrics store. Single-threaded by design: each collector owns its
/// own registry and parallel layers merge registries in job index order
/// (see [`Registry::merge`]), so no lock sits on the hot path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
    quantiles: BTreeMap<MetricKey, QuantileSet>,
    /// Bucket bounds to use for histograms created by name, when a
    /// metric wants something other than [`DEFAULT_BOUNDS`].
    buckets: BTreeMap<&'static str, Vec<f64>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Pre-register bucket bounds for histograms named `name`. Must be
    /// called before the first observation of that metric to take
    /// effect.
    pub fn set_buckets(&mut self, name: &'static str, bounds: &[f64]) {
        self.buckets.insert(name, bounds.to_vec());
    }

    /// Add to a counter.
    pub fn counter_add(&mut self, name: &'static str, labels: Labels, delta: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += delta;
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &'static str, labels: Labels, value: f64) {
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    /// Record a histogram sample.
    pub fn histogram_observe(&mut self, name: &'static str, labels: Labels, value: f64) {
        let key = MetricKey::new(name, labels);
        self.histograms
            .entry(key)
            .or_insert_with(|| match self.buckets.get(name) {
                Some(bounds) => Histogram::new(bounds),
                None => Histogram::default_bounds(),
            })
            .observe(value);
    }

    /// Record a sample into the p50/p95/p99 streaming-quantile set.
    pub fn quantile_observe(&mut self, name: &'static str, labels: Labels, value: f64) {
        self.quantiles
            .entry(MetricKey::new(name, labels))
            .or_default()
            .observe(value);
    }

    /// A counter's current value (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &Labels) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k.name == name && &k.labels == labels)
            .map_or(0, |(_, v)| *v)
    }

    /// Sum of a counter across all label sets.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// A gauge's current value.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &Labels) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.name == name && &k.labels == labels)
            .map(|(_, v)| *v)
    }

    /// A histogram, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &Labels) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k.name == name && &k.labels == labels)
            .map(|(_, v)| v)
    }

    /// A quantile set, if any sample was recorded.
    #[must_use]
    pub fn quantile(&self, name: &str, labels: &Labels) -> Option<&QuantileSet> {
        self.quantiles
            .iter()
            .find(|(k, _)| k.name == name && &k.labels == labels)
            .map(|(_, v)| v)
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.quantiles.is_empty()
    }

    /// Merge `other` into `self`: counters and histogram buckets sum;
    /// gauges take `other`'s value (last-writer-wins, so merging in job
    /// index order reproduces a sequential run exactly).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        for (k, q) in &other.quantiles {
            match self.quantiles.get_mut(k) {
                Some(mine) => mine.merge(q),
                None => {
                    self.quantiles.insert(k.clone(), q.clone());
                }
            }
        }
    }

    /// An ordered, point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            quantiles: self
                .quantiles
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time, key-ordered copy of a [`Registry`] — the unit the
/// JSONL exporter and the dashboard consume. Key order makes the export
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counters, key-ordered.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauges, key-ordered.
    pub gauges: Vec<(MetricKey, f64)>,
    /// Histograms, key-ordered.
    pub histograms: Vec<(MetricKey, Histogram)>,
    /// Streaming p50/p95/p99 sets, key-ordered.
    pub quantiles: Vec<(MetricKey, QuantileSet)>,
}

impl Snapshot {
    /// Whether the snapshot holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.quantiles.is_empty()
    }

    /// Sum of a counter across every label set (0 if absent).
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name.as_ref() == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// A counter's value for an exact label set (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &Labels) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k.name.as_ref() == name && &k.labels == labels)
            .map_or(0, |(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: Vec<(&'static str, LabelValue)>) -> Labels {
        Labels::new(pairs)
    }

    #[test]
    fn labels_sort_and_compare() {
        let a = labels(vec![("b", 1u64.into()), ("a", "x".into())]);
        let b = labels(vec![("a", "x".into()), ("b", 1u64.into())]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "{a=x,b=1}");
        assert_eq!(a.get("b"), Some(&LabelValue::U64(1)));
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut r = Registry::new();
        let sr = labels(vec![("scheme", "SR".into())]);
        let nc = labels(vec![("scheme", "NC".into())]);
        r.counter_add("delivered", sr.clone(), 3);
        r.counter_add("delivered", sr.clone(), 2);
        r.counter_add("delivered", nc.clone(), 1);
        assert_eq!(r.counter("delivered", &sr), 5);
        assert_eq!(r.counter("delivered", &nc), 1);
        assert_eq!(r.counter_total("delivered"), 6);
        assert_eq!(r.counter("other", &sr), 0);
    }

    #[test]
    fn gauges_take_last_write() {
        let mut r = Registry::new();
        r.gauge_set("progress", Labels::empty(), 0.25);
        r.gauge_set("progress", Labels::empty(), 0.75);
        assert_eq!(r.gauge("progress", &Labels::empty()), Some(0.75));
    }

    #[test]
    fn histogram_buckets_sum_to_count() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 50.0, 7.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts(), &[2, 2]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>() + h.overflow(), h.count());
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(50.0));
        assert!((h.mean() - 12.3).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        // Exactly on the first boundary: closes bucket 0.
        h.observe(1.0);
        assert_eq!(h.counts(), &[1, 0]);
        // Exactly on the last boundary: closes bucket 1, not overflow.
        h.observe(10.0);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.overflow(), 0);
        // The first value strictly above the last bound overflows.
        h.observe(10.0 + f64::EPSILON * 16.0);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>() + h.overflow(), h.count());
    }

    #[test]
    fn quantiles_register_and_merge() {
        let mut r = Registry::new();
        for v in [1.0, 2.0, 3.0] {
            r.quantile_observe("wait", Labels::empty(), v);
        }
        assert_eq!(r.quantile("wait", &Labels::empty()).unwrap().count(), 3);
        assert!(!r.is_empty());
        let mut other = Registry::new();
        other.quantile_observe("wait", Labels::empty(), 9.0);
        r.merge(&other);
        assert_eq!(r.quantile("wait", &Labels::empty()).unwrap().count(), 4);
        let snap = r.snapshot();
        assert_eq!(snap.quantiles.len(), 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn histogram_merge_matching_layout_is_exact() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        let mut b = Histogram::new(&[1.0, 10.0]);
        a.observe(0.5);
        b.observe(5.0);
        b.observe(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.max(), Some(100.0));
    }

    #[test]
    fn registry_merge_is_order_sensitive_only_for_gauges() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("n", Labels::empty(), 1);
        b.counter_add("n", Labels::empty(), 2);
        a.gauge_set("g", Labels::empty(), 1.0);
        b.gauge_set("g", Labels::empty(), 2.0);
        a.histogram_observe("h", Labels::empty(), 3.0);
        b.histogram_observe("h", Labels::empty(), 4.0);
        a.merge(&b);
        assert_eq!(a.counter("n", &Labels::empty()), 3);
        assert_eq!(a.gauge("g", &Labels::empty()), Some(2.0));
        assert_eq!(a.histogram("h", &Labels::empty()).unwrap().count(), 2);
    }

    #[test]
    fn custom_buckets_apply_to_named_histograms() {
        let mut r = Registry::new();
        r.set_buckets("latency", &[2.0]);
        r.histogram_observe("latency", Labels::empty(), 1.0);
        let h = r.histogram("latency", &Labels::empty()).unwrap();
        assert_eq!(h.bounds(), &[2.0]);
    }

    #[test]
    fn snapshot_is_key_ordered() {
        let mut r = Registry::new();
        r.counter_add("z", Labels::empty(), 1);
        r.counter_add("a", Labels::empty(), 1);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0.name, "a");
        assert_eq!(s.counters[1].0.name, "z");
        assert!(!s.is_empty());
    }
}
