//! Chrome/Perfetto `trace_event` JSON exporter for an event stream.
//!
//! Converts the spans and events a run recorded into the JSON array
//! format `chrome://tracing` and [ui.perfetto.dev] load directly: span
//! opens become `"B"` (begin) records, span closes `"E"` (end), and
//! point events thread-scoped instants (`"i"`). Timestamps are virtual:
//! one simulation cycle maps to one million ticks (a "second" on the
//! trace timeline) plus the per-cycle sequence number from
//! [`VirtualClock`], so the trace is a pure
//! function of the event stream and byte-identical at any thread count.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::event::{EventKind, EventRecord, Value};
use crate::flight::VirtualClock;
use crate::json;
use std::io::{self, Write};

/// Virtual trace ticks per simulation cycle.
const TICKS_PER_CYCLE: u64 = 1_000_000;

fn write_args<W: Write>(out: &mut W, fields: &[(&'static str, Value)]) -> io::Result<()> {
    out.write_all(b",\"args\":{")?;
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        json::write_str(out, k)?;
        out.write_all(b":")?;
        match v {
            Value::U64(x) => write!(out, "{x}")?,
            Value::I64(x) => write!(out, "{x}")?,
            Value::F64(x) => json::write_f64(out, *x)?,
            Value::Bool(x) => write!(out, "{x}")?,
            Value::Str(s) => json::write_str(out, s)?,
        }
    }
    out.write_all(b"}")
}

/// Write `events` as a Chrome `trace_event` JSON document.
///
/// # Errors
/// Propagates I/O errors from `out`.
pub fn write_trace<W: Write>(out: &mut W, events: &[EventRecord]) -> io::Result<()> {
    out.write_all(b"{\"traceEvents\":[")?;
    let mut clock = VirtualClock::new();
    let mut first = true;
    for event in events {
        let (cycle, seq) = clock.stamp(event);
        let ts = cycle * TICKS_PER_CYCLE + u64::from(seq);
        if first {
            out.write_all(b"\n")?;
            first = false;
        } else {
            out.write_all(b",\n")?;
        }
        out.write_all(b"{\"name\":")?;
        json::write_str(out, event.name)?;
        out.write_all(b",\"cat\":")?;
        json::write_str(out, event.target)?;
        match event.kind {
            EventKind::SpanOpen => {
                write!(out, ",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":0")?;
                write_args(out, &event.fields)?;
            }
            EventKind::SpanClose => {
                write!(out, ",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":0")?;
            }
            EventKind::Event => {
                write!(
                    out,
                    ",\"ph\":\"i\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"s\":\"t\""
                )?;
                write_args(out, &event.fields)?;
            }
        }
        out.write_all(b"}")?;
    }
    out.write_all(b"\n]}\n")
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::{event, span, Level, Recorder};

    fn export(rec: &Recorder) -> String {
        let mut out = Vec::new();
        write_trace(&mut out, &rec.take_events()).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn golden_trace_pairs_spans_and_marks_instants() {
        let rec = Recorder::new(Level::Debug);
        {
            let _g = rec.install();
            let _cycle = span!(Level::Debug, "cycle", cycle = 2u64);
            event!(Level::Warn, "hiccup", stream = 5u64);
        }
        let golden = format!(
            "{{\"traceEvents\":[\n\
             {{\"name\":\"cycle\",\"cat\":\"{t}\",\"ph\":\"B\",\"ts\":2000000,\"pid\":0,\"tid\":0,\"args\":{{\"cycle\":2}}}},\n\
             {{\"name\":\"hiccup\",\"cat\":\"{t}\",\"ph\":\"i\",\"ts\":2000001,\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{{\"stream\":5}}}},\n\
             {{\"name\":\"cycle\",\"cat\":\"{t}\",\"ph\":\"E\",\"ts\":2000002,\"pid\":0,\"tid\":0}}\n\
             ]}}\n",
            t = module_path!()
        );
        assert_eq!(export(&rec), golden);
    }

    #[test]
    fn empty_stream_is_a_valid_document() {
        assert_eq!(
            export(&Recorder::new(Level::Info)),
            "{\"traceEvents\":[\n]}\n"
        );
    }
}
