//! JSON-lines export: one JSON object per line, first the event stream
//! in record order, then one snapshot line per metric.
//!
//! ## Schema
//!
//! Event/span lines:
//!
//! ```json
//! {"t":"event","level":"warn","target":"mms_sim::simulator","name":"hiccup","fields":{"cycle":4,"reason":"failed-disk"}}
//! {"t":"span_open","level":"debug","target":"mms_sim::simulator","name":"cycle","fields":{"cycle":4}}
//! {"t":"span_close","level":"debug","target":"mms_sim::simulator","name":"cycle"}
//! ```
//!
//! Metric lines (from a [`Snapshot`], key-ordered and therefore
//! deterministic):
//!
//! ```json
//! {"t":"counter","name":"sim.delivered","labels":{"scheme":"SR"},"value":92}
//! {"t":"gauge","name":"rebuild.progress","labels":{"disk":2},"value":0.5}
//! {"t":"histogram","name":"disk.service_ms","labels":{"disk":0},"count":12,"sum":130.1,"min":2.5,"max":19.9,"bounds":[…],"counts":[…],"overflow":0}
//! {"t":"quantile","name":"workload.wait_cycles","labels":{"scheme":"SR"},"count":40,"sum":91.5,"p50":1.5,"p95":6,"p99":9}
//! ```

use crate::event::{EventKind, EventRecord, Value};
use crate::json;
use crate::registry::{Histogram, LabelValue, Labels, MetricKey, Snapshot};
use std::io::{self, Write};

fn write_value<W: Write>(out: &mut W, v: &Value) -> io::Result<()> {
    match v {
        Value::U64(v) => write!(out, "{v}"),
        Value::I64(v) => write!(out, "{v}"),
        Value::F64(v) => json::write_f64(out, *v),
        Value::Bool(v) => write!(out, "{v}"),
        Value::Str(s) => json::write_str(out, s),
    }
}

fn write_label_value<W: Write>(out: &mut W, v: &LabelValue) -> io::Result<()> {
    match v {
        LabelValue::U64(v) => write!(out, "{v}"),
        LabelValue::Str(s) => json::write_str(out, s),
        LabelValue::Bool(v) => write!(out, "{v}"),
    }
}

fn write_labels<W: Write>(out: &mut W, labels: &Labels) -> io::Result<()> {
    out.write_all(b"{")?;
    for (i, (k, v)) in labels.pairs().iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        json::write_str(out, k)?;
        out.write_all(b":")?;
        write_label_value(out, v)?;
    }
    out.write_all(b"}")
}

fn write_metric_head<W: Write>(out: &mut W, kind: &str, key: &MetricKey) -> io::Result<()> {
    write!(out, "{{\"t\":\"{kind}\",\"name\":")?;
    json::write_str(out, &key.name)?;
    out.write_all(b",\"labels\":")?;
    write_labels(out, &key.labels)
}

/// Write one event or span boundary as a JSONL line (with trailing
/// newline).
pub fn write_event<W: Write>(out: &mut W, event: &EventRecord) -> io::Result<()> {
    write!(
        out,
        "{{\"t\":\"{}\",\"level\":\"{}\",\"target\":",
        event.kind.as_str(),
        event.level.as_str()
    )?;
    json::write_str(out, event.target)?;
    out.write_all(b",\"name\":")?;
    json::write_str(out, event.name)?;
    if event.kind != EventKind::SpanClose {
        out.write_all(b",\"fields\":{")?;
        for (i, (k, v)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            json::write_str(out, k)?;
            out.write_all(b":")?;
            write_value(out, v)?;
        }
        out.write_all(b"}")?;
    }
    out.write_all(b"}\n")
}

fn write_histogram_body<W: Write>(out: &mut W, h: &Histogram) -> io::Result<()> {
    write!(out, ",\"count\":{},\"sum\":", h.count())?;
    json::write_f64(out, h.sum())?;
    if let (Some(min), Some(max)) = (h.min(), h.max()) {
        out.write_all(b",\"min\":")?;
        json::write_f64(out, min)?;
        out.write_all(b",\"max\":")?;
        json::write_f64(out, max)?;
    }
    out.write_all(b",\"bounds\":[")?;
    for (i, b) in h.bounds().iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        json::write_f64(out, *b)?;
    }
    out.write_all(b"],\"counts\":[")?;
    for (i, c) in h.counts().iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write!(out, "{c}")?;
    }
    write!(out, "],\"overflow\":{}", h.overflow())
}

/// Write every metric in `snapshot` as JSONL lines: counters, then
/// gauges, then histograms, then quantile sets, each key-ordered.
pub fn write_snapshot<W: Write>(out: &mut W, snapshot: &Snapshot) -> io::Result<()> {
    for (key, value) in &snapshot.counters {
        write_metric_head(out, "counter", key)?;
        writeln!(out, ",\"value\":{value}}}")?;
    }
    for (key, value) in &snapshot.gauges {
        write_metric_head(out, "gauge", key)?;
        out.write_all(b",\"value\":")?;
        json::write_f64(out, *value)?;
        out.write_all(b"}\n")?;
    }
    for (key, h) in &snapshot.histograms {
        write_metric_head(out, "histogram", key)?;
        write_histogram_body(out, h)?;
        out.write_all(b"}\n")?;
    }
    for (key, q) in &snapshot.quantiles {
        write_metric_head(out, "quantile", key)?;
        write!(out, ",\"count\":{},\"sum\":", q.count())?;
        json::write_f64(out, q.sum())?;
        for (tag, value) in [("p50", q.p50()), ("p95", q.p95()), ("p99", q.p99())] {
            write!(out, ",\"{tag}\":")?;
            match value {
                Some(v) => json::write_f64(out, v)?,
                None => out.write_all(b"null")?,
            }
        }
        out.write_all(b"}\n")?;
    }
    Ok(())
}

/// Write the full export: the event stream in record order, then the
/// metric snapshot. This is the format `mms-ctl --telemetry` produces.
pub fn write_all<W: Write>(
    out: &mut W,
    events: &[EventRecord],
    snapshot: &Snapshot,
) -> io::Result<()> {
    for event in events {
        write_event(out, event)?;
    }
    write_snapshot(out, snapshot)
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::{counter, event, gauge, histogram, span, Level, Recorder};

    fn export(rec: &Recorder) -> String {
        let mut out = Vec::new();
        write_all(&mut out, &rec.take_events(), &rec.snapshot()).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn lines_are_valid_looking_json_objects() {
        let rec = Recorder::new(Level::Debug);
        {
            let _g = rec.install();
            let _s = span!(Level::Debug, "cycle", cycle = 4u64);
            event!(Level::Warn, "hiccup", reason = "failed-disk", track = "Y1");
            counter!("sim.delivered", 92, scheme = "SR");
            gauge!("rebuild.progress", 0.5, disk = 2u64);
            histogram!("disk.service_ms", 11.9, disk = 0u64);
        }
        let text = export(&rec);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "open, event, close, 3 metric lines");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"t\":\"span_open\""));
        assert!(lines[1].contains("\"reason\":\"failed-disk\""));
        assert!(lines[2].contains("\"t\":\"span_close\""));
        assert!(!lines[2].contains("fields"), "close lines carry no fields");
        assert!(lines[3].contains("\"t\":\"counter\"") && lines[3].contains("\"value\":92"));
        assert!(lines[4].contains("\"labels\":{\"disk\":2}"));
        assert!(lines[5].contains("\"overflow\":0"));
    }

    #[test]
    fn quantile_lines_carry_all_three_percentiles() {
        let rec = Recorder::new(Level::Info);
        {
            let _g = rec.install();
            for v in [1.0, 2.0, 3.0] {
                crate::quantile!("wait", v, scheme = "SR");
            }
        }
        let text = export(&rec);
        assert!(
            text.contains(
                "{\"t\":\"quantile\",\"name\":\"wait\",\"labels\":{\"scheme\":\"SR\"},\
                 \"count\":3,\"sum\":6,\"p50\":2,\"p95\":3,\"p99\":3}"
            ),
            "{text}"
        );
    }

    #[test]
    fn histogram_line_counts_sum_to_count() {
        let rec = Recorder::new(Level::Info);
        {
            let _g = rec.install();
            for v in [0.1, 3.0, 2000.0] {
                histogram!("svc", v);
            }
        }
        let text = export(&rec);
        assert!(text.contains("\"count\":3"));
        assert!(text.contains("\"overflow\":1"));
    }

    #[test]
    fn export_is_deterministic() {
        let run = || {
            let rec = Recorder::new(Level::Debug);
            {
                let _g = rec.install();
                counter!("z.last", 1);
                counter!("a.first", 2, scheme = "NC");
                event!(Level::Info, "e", x = 1.25f64);
            }
            export(&rec)
        };
        assert_eq!(run(), run());
        // Counters export in key order regardless of write order.
        let text = run();
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z);
    }
}
