//! Event records: what the tracing macros hand to a collector.

use crate::{collect, Level};
use std::borrow::Cow;
use std::fmt;

/// A field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (static or owned).
    Str(Cow<'static, str>),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::$variant(v as $cast)
            }
        })*
    };
}

value_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    u8 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(Cow::Borrowed(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Cow::Owned(v))
    }
}

/// What kind of record an [`EventRecord`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A point-in-time event.
    Event,
    /// A span opened (its fields were captured at open).
    SpanOpen,
    /// A span closed. Open/close pairs nest strictly, so the span tree
    /// can be reconstructed from record order alone — no span ids, which
    /// keeps merged streams from parallel jobs collision-free.
    SpanClose,
}

impl EventKind {
    /// The kind's JSONL tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Event => "event",
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
        }
    }
}

/// One event or span boundary, as captured by a collector.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// The emitting module (`module_path!` at the macro site).
    pub target: &'static str,
    /// The event or span name.
    pub name: &'static str,
    /// Event, span open, or span close.
    pub kind: EventKind,
    /// Named fields, in macro-site order.
    pub fields: Vec<(&'static str, Value)>,
}

impl EventRecord {
    /// Look up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }
}

/// RAII guard emitted by [`span!`](crate::span): records `SpanOpen` on
/// creation (when the level is enabled) and the matching `SpanClose` on
/// drop.
#[must_use = "a span closes when the guard drops; bind it with `let _span = span!(…)`"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `Some` only if the open record was actually dispatched.
    open: Option<(Level, &'static str, &'static str)>,
}

impl SpanGuard {
    /// Open a span. Dispatches nothing if `level` is filtered out.
    pub fn new(
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> Self {
        if !collect::enabled(level) {
            return SpanGuard { open: None };
        }
        collect::dispatch_event(EventRecord {
            level,
            target,
            name,
            kind: EventKind::SpanOpen,
            fields,
        });
        SpanGuard {
            open: Some((level, target, name)),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((level, target, name)) = self.open.take() {
            collect::dispatch_event(EventRecord {
                level,
                target,
                name,
                kind: EventKind::SpanClose,
                fields: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-2i64), Value::I64(-2));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str(Cow::Borrowed("x")));
        assert_eq!(Value::from(1.5f64), Value::F64(1.5));
        assert_eq!(Value::from(String::from("y")).to_string(), "y");
    }

    #[test]
    fn field_lookup() {
        let e = EventRecord {
            level: Level::Info,
            target: "t",
            name: "n",
            kind: EventKind::Event,
            fields: vec![("cycle", Value::U64(4))],
        };
        assert_eq!(e.field("cycle"), Some(&Value::U64(4)));
        assert_eq!(e.field("disk"), None);
    }
}
