//! The user-facing macros. All of them hit the same fast path: one
//! thread-local check ([`enabled`](crate::enabled) /
//! [`active`](crate::active)) before any field or label is built.

/// Emit a point-in-time event.
///
/// ```
/// use mms_telemetry::{event, Level};
/// event!(Level::Info, "disk_failure", disk = 2u64, mid_cycle = false);
/// ```
///
/// Field values may be any type convertible into
/// [`Value`](crate::Value): unsigned/signed integers, floats, bools,
/// `&'static str`, or `String`.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level = $level;
        if $crate::enabled(level) {
            $crate::dispatch_event($crate::EventRecord {
                level,
                target: module_path!(),
                name: $name,
                kind: $crate::EventKind::Event,
                fields: vec![$((stringify!($key), $crate::Value::from($value))),*],
            });
        }
    }};
}

/// Open a span, returning a [`SpanGuard`](crate::SpanGuard) that closes
/// it on drop. Bind the guard (`let _span = span!(…)`) so it lives to
/// the end of the scope.
///
/// ```
/// use mms_telemetry::{span, Level};
/// let _cycle = span!(Level::Debug, "cycle", cycle = 7u64);
/// ```
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level = $level;
        let fields = if $crate::enabled(level) {
            vec![$((stringify!($key), $crate::Value::from($value))),*]
        } else {
            Vec::new()
        };
        $crate::SpanGuard::new(level, module_path!(), $name, fields)
    }};
}

/// Add `delta` to the counter `name` with the given labels.
///
/// ```
/// use mms_telemetry::counter;
/// counter!("sim.delivered", 5, scheme = "SR");
/// ```
///
/// Label values may be unsigned integers, bools, `&'static str`, or
/// `String` (see [`LabelValue`](crate::LabelValue)).
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        if $crate::active() {
            $crate::dispatch_counter(
                $name,
                $crate::Labels::new(vec![
                    $((stringify!($key), $crate::LabelValue::from($value))),*
                ]),
                $delta,
            );
        }
    }};
}

/// Set the gauge `name` with the given labels to `value` (an `f64`).
///
/// ```
/// use mms_telemetry::gauge;
/// gauge!("rebuild.progress", 0.25, disk = 2u64);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr $(, $key:ident = $value2:expr)* $(,)?) => {{
        if $crate::active() {
            $crate::dispatch_gauge(
                $name,
                $crate::Labels::new(vec![
                    $((stringify!($key), $crate::LabelValue::from($value2))),*
                ]),
                $value,
            );
        }
    }};
}

/// Record one `f64` sample into the histogram `name` with the given
/// labels.
///
/// ```
/// use mms_telemetry::histogram;
/// histogram!("disk.service_ms", 11.9, disk = 0u64);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr $(, $key:ident = $value2:expr)* $(,)?) => {{
        if $crate::active() {
            $crate::dispatch_histogram(
                $name,
                $crate::Labels::new(vec![
                    $((stringify!($key), $crate::LabelValue::from($value2))),*
                ]),
                $value,
            );
        }
    }};
}

/// Record one `f64` sample into the streaming p50/p95/p99 quantile set
/// `name` with the given labels.
///
/// ```
/// use mms_telemetry::quantile;
/// quantile!("workload.wait_cycles", 3.0, scheme = "SR");
/// ```
#[macro_export]
macro_rules! quantile {
    ($name:expr, $value:expr $(, $key:ident = $value2:expr)* $(,)?) => {{
        if $crate::active() {
            $crate::dispatch_quantile(
                $name,
                $crate::Labels::new(vec![
                    $((stringify!($key), $crate::LabelValue::from($value2))),*
                ]),
                $value,
            );
        }
    }};
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use crate::{Labels, Level, Recorder, Value};

    #[test]
    fn macros_capture_fields_and_labels() {
        let rec = Recorder::new(Level::Trace);
        {
            let _g = rec.install();
            crate::event!(Level::Warn, "hiccup", reason = "failed-disk", cycle = 4u64);
            crate::counter!("sim.hiccups", 1, reason = "failed-disk");
            crate::gauge!("sim.buffer", 3.0);
            crate::histogram!("svc", 2.5, disk = 1u64);
            crate::quantile!("wait", 4.0, scheme = "SR");
        }
        let events = rec.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].field("reason"), Some(&Value::from("failed-disk")));
        let snap = rec.snapshot();
        assert_eq!(
            snap.counters[0].0.labels.get("reason").unwrap().to_string(),
            "failed-disk"
        );
        assert_eq!(snap.gauges[0].1, 3.0);
        assert_eq!(snap.histograms[0].1.sum(), 2.5);
        assert_eq!(snap.quantiles[0].1.count(), 1);
        assert_eq!(snap.quantiles[0].1.p50(), Some(4.0));
        assert_eq!(
            rec.snapshot().counters[0].0.labels,
            Labels::new(vec![("reason", "failed-disk".into())])
        );
    }

    #[test]
    fn disabled_level_skips_field_construction() {
        let rec = Recorder::new(Level::Error);
        let _g = rec.install();
        let mut evaluated = false;
        crate::event!(
            Level::Debug,
            "quiet",
            x = {
                evaluated = true;
                1u64
            }
        );
        assert!(!evaluated, "fields must not be built for filtered levels");
        let _span = crate::span!(
            Level::Debug,
            "quiet_span",
            y = {
                evaluated = true;
                2u64
            }
        );
        assert!(!evaluated);
    }
}
