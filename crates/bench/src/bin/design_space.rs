//! Design-space explorer: the Section 5 "simple system design work" as a
//! tool. Ranks every (scheme, C) configuration by cost for a working set,
//! finds the cheapest design for a stream target, and splits a farm
//! between MPEG-1 and MPEG-2 classes (the Section 1 mixed-catalog
//! arithmetic).
//!
//! Usage: `design_space [required_streams] [mpeg1_streams] [mpeg2_streams] [threads]`
//! (threads defaults to `auto`; the sweep's output is bit-identical for
//! any thread count).

use mms_server::analysis::{
    design_space_par, partition_classes, ClassDemand, CostModel, SchemeKind, SchemeParams,
    SystemParams,
};
use mms_server::disk::Bandwidth;
use mms_server::Parallelism;

fn main() {
    let mut args = std::env::args().skip(1);
    let required: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1200.0);
    let mpeg1: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000.0);
    let mpeg2: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(650.0);
    let par: Parallelism = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(Parallelism::Auto);

    let sys = SystemParams::paper_table1();
    let model = CostModel::paper_fig9();
    let points = design_space_par(&sys, &model, 2..=10, SchemeParams::paper_fig9, par);

    println!(
        "== Ten cheapest designs for W = {:.0} GB ==\n",
        model.working_set_mb / 1000.0
    );
    println!(
        "{:<20} {:>3} {:>8} {:>9} {:>10} {:>10}",
        "scheme", "C", "disks", "streams", "buf trk", "cost $"
    );
    for p in points.iter().take(10) {
        println!(
            "{:<20} {:>3} {:>8.1} {:>9.0} {:>10.0} {:>10.0}",
            p.scheme.to_string(),
            p.c,
            p.disks,
            p.streams,
            p.buffer_tracks,
            p.cost
        );
    }

    println!("\n== Cheapest design for {required:.0} concurrent streams ==\n");
    match points.iter().find(|p| p.streams >= required) {
        Some(p) => println!(
            "{} with C = {}: ${:.0} ({:.0} streams on {:.1} disks, {:.0} buffer tracks)",
            p.scheme, p.c, p.cost, p.streams, p.disks, p.buffer_tracks
        ),
        None => println!("infeasible at this working set — buy disks beyond the catalog's needs"),
    }

    println!("\n== Farm split for {mpeg1:.0} MPEG-1 + {mpeg2:.0} MPEG-2 streams (SR, C = 5) ==\n");
    let allocs = partition_classes(
        &sys,
        SchemeKind::StreamingRaid,
        &SchemeParams::paper_tables(5),
        &[
            ClassDemand {
                b0: Bandwidth::mpeg1(),
                required_streams: mpeg1,
            },
            ClassDemand {
                b0: Bandwidth::mpeg2(),
                required_streams: mpeg2,
            },
        ],
    );
    let mut total = 0.0;
    for a in &allocs {
        println!(
            "{:>9} @ {}: {:>7.1} data disks, {:>7.1} total",
            a.required_streams, a.b0, a.data_disks, a.total_disks
        );
        total += a.total_disks;
    }
    println!("{:>10} {total:.1} disks", "farm total:");
    println!(
        "\n(Section 1's yardstick: 1000 drives ≈ 6500 MPEG-2 or 20,000 MPEG-1\nstreams, 'or some combination of the two'.)"
    );
}
