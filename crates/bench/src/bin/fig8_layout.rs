//! Reproduces Figure 8: the Improved-bandwidth layout. No dedicated
//! parity disks; the parity of cluster i's groups is distributed over the
//! disks of cluster i+1 (X0p/Y0p/Z0p staircase).

use mms_server::disk::DiskId;
use mms_server::layout::{
    BandwidthClass, BlockKind, Catalog, Geometry, ImprovedLayout, MediaObject, ObjectId,
};

fn main() {
    let geo = Geometry::improved(8, 5).unwrap();
    // Figure 8 places objects X, Y, Z starting on cluster 0 with their
    // parity staircased across cluster 1; the salt models that staircase.
    println!("Figure 8 — Improved-bandwidth layout (cluster 0: disks 0-3, cluster 1: disks 4-7)\n");
    let names = ["X", "Y", "Z"];
    print!("{:>6}", "");
    for d in 0..8 {
        print!(" {:>13}", format!("disk{d}"));
    }
    println!();
    for (i, name) in names.iter().enumerate() {
        let layout = ImprovedLayout::with_salt(geo, i as u32);
        let mut catalog = Catalog::new(layout, 10_000);
        catalog
            .add_at(
                MediaObject::new(ObjectId(i as u64), *name, 16, BandwidthClass::Mpeg1),
                0,
            )
            .unwrap();
        print!("{name:>4}: ");
        for d in 0..8u32 {
            let blocks = catalog.blocks_on_disk(DiskId(d));
            let cell: Vec<String> = blocks
                .iter()
                .map(|b| match b.kind {
                    BlockKind::Data(_) => format!("{name}{}", b.track_number(4).unwrap()),
                    BlockKind::Parity => format!("{name}{}p", b.group * 4),
                })
                .collect();
            print!(" {:>13}", cell.join(","));
        }
        println!();
    }
    println!("\nEvery disk serves data in normal operation; disk 4 is both a");
    println!("data disk for cluster 1 and the parity host for X's cluster-0");
    println!("group — the dual membership that halves the scheme's MTTF (Eq. 5).");
}
