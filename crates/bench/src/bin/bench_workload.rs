//! Stall-rate vs. utilization curves for the four schemes under the
//! heavy-traffic session engine, written to `BENCH_workload.json`.
//!
//! The grid is scheme (SR/SG/NC/IB) x offered load (fraction of the
//! scheme's admission capacity) x mode (normal, or degraded by a single
//! disk failure early in the run). Every cell runs the full session
//! lifecycle — Zipf popularity, Poisson arrivals at the load-matched
//! rate, a mean-1 VBR ladder, 10% viewer abandonment, Reject admission —
//! in `DataMode::MetadataOnly`, and reports the utilization the server
//! actually sustained against the stall (hiccup) rate its viewers saw.
//!
//! The whole grid is executed three times, at 1, 2, and 8 worker
//! threads, through `run_batch_seeded`; `bit_identical` records that all
//! three produced byte-for-byte the same numbers, which is the
//! determinism contract and must hold on any host. Cells run in
//! `StepMode::EventHorizon`: arrival-free stretches fast-forward, and
//! the equivalence suite pins that this changes no observable number.
//!
//! Usage: `bench_workload [output.json] [--quick]`
//!
//! `--quick` shrinks the per-cell horizon for CI smoke runs; the default
//! horizon offers over a million sessions across the grid (a
//! "million-session day").

use mms_server::disk::DiskId;
use mms_server::layout::{BandwidthClass, MediaObject, ObjectId};
use mms_server::sim::{
    run_batch_seeded, AdmissionPolicy, ArrivalProcess, DataMode, FailureEvent, SessionEngine,
    StepMode,
};
use mms_server::{Parallelism, Scheme, ServerBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const SCHEMES: [(Scheme, &str); 4] = [
    (Scheme::StreamingRaid, "SR"),
    (Scheme::StaggeredGroup, "SG"),
    (Scheme::NonClustered, "NC"),
    (Scheme::ImprovedBandwidth, "IB"),
];
/// Offered load as a fraction of each scheme's stream capacity; past 1.0
/// the admission policy is what separates the schemes' viewer experience.
const LOADS: [f64; 6] = [0.5, 0.7, 0.85, 1.0, 1.2, 1.5];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SEED: u64 = 1995;
const MOVIES: usize = 16;
const TRACKS: u64 = 200;
const THETA: f64 = 0.271;
const ABANDON: f64 = 0.1;
/// Mean-1 ladder: load targeting stays exact while holds still vary.
const VBR_LADDER: [f64; 3] = [0.75, 1.0, 1.25];

#[derive(Clone, Copy)]
struct Cell {
    scheme: Scheme,
    label: &'static str,
    load: f64,
    degraded: bool,
}

#[derive(Clone, PartialEq)]
struct CellResult {
    label: &'static str,
    load: f64,
    degraded: bool,
    rate: f64,
    offered: u64,
    admitted: u64,
    blocking_rate: f64,
    delivered: u64,
    hiccups: u64,
    stall_rate: f64,
    utilization: f64,
}

fn run_cell(cell: &Cell, mut rng: StdRng, cycles: u64) -> CellResult {
    let disks = if cell.scheme == Scheme::ImprovedBandwidth {
        8
    } else {
        10
    };
    let mut builder = ServerBuilder::new(cell.scheme)
        .disks(disks)
        .parity_group(5)
        .data_mode(DataMode::MetadataOnly);
    for m in 0..MOVIES {
        builder = builder.object(MediaObject::new(
            ObjectId(m as u64),
            format!("movie-{m}"),
            TRACKS,
            BandwidthClass::Mpeg1,
        ));
    }
    let mut server = builder.build().expect("grid cell builds");
    // The event-horizon fast path is observably identical to per-cycle
    // stepping (pinned by the equivalence suite), so the bench runs
    // with it on: arrival-free stretches between sessions fast-forward.
    server.set_step_mode(StepMode::EventHorizon);
    let cfg = server.cycle_config();
    let nominal = TRACKS.div_ceil(cfg.k as u64) * cfg.read_period() as u64;
    // Little's law: `load x capacity` concurrent sessions of mean hold
    // `nominal x (1 - ABANDON/2)` cycles need this many arrivals/cycle.
    let rate =
        cell.load * server.stream_capacity() as f64 / (nominal as f64 * (1.0 - ABANDON / 2.0));
    let catalog: Vec<(ObjectId, u64)> = server.objects().iter().map(|&o| (o, nominal)).collect();
    let mut engine = SessionEngine::new(
        catalog,
        THETA,
        ArrivalProcess::poisson(rate),
        AdmissionPolicy::Reject,
    )
    .with_vbr(VBR_LADDER.to_vec())
    .with_abandonment(ABANDON);

    let fail_at = cycles / 10;
    if cell.degraded {
        server
            .run_sessions(fail_at, &mut engine, &mut rng)
            .expect("warmup");
        server
            .inject(FailureEvent::fail(fail_at, DiskId(2)))
            .expect("single failure is survivable");
        server
            .run_sessions(cycles - fail_at, &mut engine, &mut rng)
            .expect("degraded run");
    } else {
        server
            .run_sessions(cycles, &mut engine, &mut rng)
            .expect("normal run");
    }

    let s = engine.stats();
    let m = server.metrics();
    let hiccups = m.total_hiccups();
    let scheduled = m.delivered + hiccups;
    CellResult {
        label: cell.label,
        load: cell.load,
        degraded: cell.degraded,
        rate,
        offered: s.offered,
        admitted: s.admitted,
        blocking_rate: s.blocking_rate(),
        delivered: m.delivered,
        hiccups,
        stall_rate: if scheduled == 0 {
            0.0
        } else {
            hiccups as f64 / scheduled as f64
        },
        utilization: m.utilization(server.cycle_config().t_cyc(), disks),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_workload.json".into());
    // 20k cycles/cell offers ~1.2M sessions over the 48-cell grid.
    let cycles: u64 = if quick { 300 } else { 20_000 };

    let grid: Vec<Cell> = SCHEMES
        .into_iter()
        .flat_map(|(scheme, label)| {
            LOADS.into_iter().flat_map(move |load| {
                [false, true].into_iter().map(move |degraded| Cell {
                    scheme,
                    label,
                    load,
                    degraded,
                })
            })
        })
        .collect();
    println!(
        "{} cells ({} schemes x {} loads x normal/degraded), {cycles} cycles each",
        grid.len(),
        SCHEMES.len(),
        LOADS.len()
    );

    let mut runs: Vec<(usize, f64, Vec<CellResult>)> = Vec::new();
    for threads in THREAD_COUNTS {
        #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
        let start = Instant::now();
        let results = run_batch_seeded(
            Parallelism::threads(threads),
            &mut StdRng::seed_from_u64(SEED),
            &grid,
            |cell, rng| run_cell(cell, rng, cycles),
        );
        let secs = start.elapsed().as_secs_f64();
        println!("{threads} thread(s): {secs:.2}s");
        runs.push((threads, secs, results));
    }
    let bit_identical = runs.iter().all(|(_, _, r)| *r == runs[0].2);
    let results = &runs[0].2;
    let offered_total: u64 = results.iter().map(|r| r.offered).sum();
    println!("sessions offered (per grid pass): {offered_total}");
    println!("bit-identical across {THREAD_COUNTS:?} threads: {bit_identical}");

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"cycles_per_cell\": {cycles},\n"));
    json.push_str(&format!(
        "  \"catalog\": \"{MOVIES} movies x {TRACKS} tracks, Zipf theta {THETA}\",\n"
    ));
    json.push_str(&format!(
        "  \"engine\": \"Poisson arrivals at load-matched rate, VBR ladder {VBR_LADDER:?}, \
         abandonment {ABANDON}, Reject admission\",\n"
    ));
    json.push_str(&format!("  \"sessions_offered_total\": {offered_total},\n"));
    json.push_str(&format!("  \"thread_counts\": {THREAD_COUNTS:?},\n"));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str("  \"seconds_per_pass\": {");
    json.push_str(
        &runs
            .iter()
            .map(|(t, s, _)| format!("\"{t}\": {s:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("},\n");
    json.push_str(
        "  \"note\": \"stall_rate = hiccups / (delivered + hiccups); utilization is the \
         busy fraction of total disk-time; degraded = one disk failed at cycles/10\",\n",
    );
    json.push_str("  \"schemes\": {\n");
    for (si, (_, label)) in SCHEMES.iter().enumerate() {
        json.push_str(&format!("    \"{label}\": {{\n"));
        for (mi, (mode, degraded)) in [("normal", false), ("degraded", true)].iter().enumerate() {
            json.push_str(&format!("      \"{mode}\": [\n"));
            let points: Vec<&CellResult> = results
                .iter()
                .filter(|r| r.label == *label && r.degraded == *degraded)
                .collect();
            for (pi, r) in points.iter().enumerate() {
                json.push_str(&format!(
                    "        {{\"load\": {:.2}, \"rate_per_cycle\": {:.4}, \"offered\": {}, \
                     \"admitted\": {}, \"blocking_rate\": {:.4}, \"utilization\": {:.4}, \
                     \"stall_rate\": {:.6}, \"delivered\": {}, \"hiccups\": {}}}{}\n",
                    r.load,
                    r.rate,
                    r.offered,
                    r.admitted,
                    r.blocking_rate,
                    r.utilization,
                    r.stall_rate,
                    r.delivered,
                    r.hiccups,
                    if pi + 1 == points.len() { "" } else { "," }
                ));
            }
            json.push_str(if mi == 0 { "      ],\n" } else { "      ]\n" });
        }
        json.push_str(if si + 1 == SCHEMES.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
    assert!(
        bit_identical,
        "determinism contract violated: results differ across thread counts"
    );
}
