//! Reproduces Figure 5: the Non-clustered scheme's normal-mode disk read
//! schedule — one track per stream per cycle, rotating across the data
//! disks, no parity reads.

use mms_bench::{figure_name_map, figure_scheduler, FIGURE_STARTS};
use mms_server::layout::ObjectId;
use mms_server::sched::{SchemeScheduler, TransitionPolicy};
use mms_server::sim::trace;

fn main() {
    let mut sched = figure_scheduler(TransitionPolicy::Simple);
    let mut plans = Vec::new();
    for t in 0..9u64 {
        for &(obj, at) in &FIGURE_STARTS {
            if at == t {
                sched.admit(ObjectId(obj), at).unwrap();
            }
        }
        plans.push(sched.plan_cycle(t));
    }
    println!("Figure 5 — Non-clustered scheme under normal operation\n");
    println!("{}", trace::render_schedule(&plans, 5, &figure_name_map()));
    println!("Disk 4 (the parity disk) is never read in normal mode; each");
    println!("stream reads one track per cycle from consecutive data disks.");
}
