//! Reproduces Figure 9: (a) total storage cost and (b) supported streams
//! versus parity-group size, for a 100 GB working set on 1 GB drives.
//!
//! Absolute dollars depend on 1995 memory/disk prices the paper does not
//! state; the default model (c_b = 100 $/MB RAM, c_d = 1 $/MB disk)
//! reproduces the published curve *shapes* and lands within ~10% of the
//! quoted cost points (see EXPERIMENTS.md).

use mms_server::analysis::{fig9_rows, CostModel, SystemParams};

fn main() {
    let sys = SystemParams::paper_table1();
    let model = CostModel::paper_fig9();
    let rows = fig9_rows(&sys, &model, 2..=10);

    println!("Figure 9(a) — total storage cost ($) vs parity group size\n");
    println!(
        "{:>3} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "C", "disks", "SR", "SG", "NC", "IB"
    );
    for r in &rows {
        println!(
            "{:>3} {:>8.1} {:>11.0} {:>11.0} {:>11.0} {:>11.0}",
            r.c, r.disks, r.cost[0], r.cost[1], r.cost[2], r.cost[3]
        );
    }

    println!("\nFigure 9(b) — number of streams vs parity group size\n");
    println!(
        "{:>3} {:>11} {:>11} {:>11} {:>11}",
        "C", "SR", "SG", "NC", "IB"
    );
    for r in &rows {
        println!(
            "{:>3} {:>11.0} {:>11.0} {:>11.0} {:>11.0}",
            r.c, r.streams[0], r.streams[1], r.streams[2], r.streams[3]
        );
    }

    println!("\nPaper's quoted points: SR ≈ $173,400 at C = 4; SG ≈ $146,600 at");
    println!("C = 10; NC ≈ $128,600 at C = 10; IB preferred only when the");
    println!("required stream count (e.g. 1500) exceeds what the others reach.");
}
