//! Steady-state simulation throughput, cycle-by-cycle vs. event-horizon
//! fast-forward, written to `BENCH_steady.json`.
//!
//! Two measurements per scheme (SR/SG/NC/IB) x load point:
//!
//! * **steady** — a fixed population of streams (a fraction of the
//!   scheme's admission capacity) plays long objects with no arrivals
//!   or departures inside the horizon. Every cycle after warm-up is
//!   quiescent, so this is the fast path's best case and the
//!   acceptance gate: event-horizon mode must sustain at least 5x the
//!   cycles/sec of per-cycle stepping for every scheme.
//! * **sessions** — Poisson arrivals at a low rate (0.02-0.10 per
//!   cycle, so 90-98% of cycles are arrival-free) over a Zipf catalog
//!   of nominal-length movies, measuring sessions finished per second
//!   of wall clock as streams churn through the server.
//!
//! Both modes of every cell run from the same seed, and the bin
//! asserts the observable outcomes (tracks read, deliveries, hiccups,
//! finishes, rejections) are identical before it reports a speedup —
//! a throughput number for a run that computed something different
//! would be meaningless.
//!
//! Usage: `bench_steady [output.json] [--quick]`
//!
//! `--quick` shrinks the horizon for CI smoke runs and skips the 5x
//! assertion (sub-second cells are timing noise); the equality
//! assertions always run.

use mms_server::layout::{BandwidthClass, MediaObject, ObjectId};
use mms_server::sim::{DataMode, StepMode, WorkloadGen};
use mms_server::{MultimediaServer, Scheme, ServerBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const SCHEMES: [(Scheme, &str); 4] = [
    (Scheme::StreamingRaid, "SR"),
    (Scheme::StaggeredGroup, "SG"),
    (Scheme::NonClustered, "NC"),
    (Scheme::ImprovedBandwidth, "IB"),
];
/// Steady-state population as a fraction of each scheme's capacity,
/// paired with the arrival rate used for the churn measurement.
const LOADS: [(f64, f64); 3] = [(0.3, 0.02), (0.6, 0.05), (0.9, 0.10)];
const SEED: u64 = 1995;
const THETA: f64 = 0.271;
const MOVIES: usize = 8;
/// Nominal catalog length for the churn cells (sessions finish and
/// free capacity); the steady cells use objects long enough that no
/// stream finishes inside the horizon.
const TRACKS: u64 = 200;

fn build(scheme: Scheme, movies: usize, tracks: u64) -> MultimediaServer {
    let disks = if scheme == Scheme::ImprovedBandwidth {
        8
    } else {
        10
    };
    let mut builder = ServerBuilder::new(scheme)
        .disks(disks)
        .parity_group(5)
        .data_mode(DataMode::MetadataOnly);
    for m in 0..movies {
        builder = builder.object(MediaObject::new(
            ObjectId(m as u64),
            format!("movie-{m}"),
            tracks,
            BandwidthClass::Mpeg1,
        ));
    }
    builder.build().expect("bench cell builds")
}

/// What a run computed, independent of how fast it computed it.
#[derive(PartialEq, Debug)]
struct Outcome {
    cycle: u64,
    tracks_read: u64,
    delivered: u64,
    hiccups: u64,
    finished: u64,
    rejected: u64,
}

fn outcome(server: &MultimediaServer, rejected: u64) -> Outcome {
    let m = server.metrics();
    Outcome {
        cycle: server.cycle(),
        tracks_read: m.tracks_read,
        delivered: m.delivered,
        hiccups: m.total_hiccups(),
        finished: m.streams_finished,
        rejected,
    }
}

/// Fixed-population run: admit the target concurrency, then let the
/// clock spin. Returns (outcome, wall seconds).
fn run_steady(scheme: Scheme, load: f64, cycles: u64, mode: StepMode) -> (Outcome, f64) {
    // One movie, sized from the scheme's own cycle geometry so that no
    // stream finishes inside the horizon: a stream consumes `k` data
    // tracks every `read_period` cycles.
    let cfg = *build(scheme, 1, 1).cycle_config();
    let tracks = cfg.k as u64 * (cycles / cfg.read_period() as u64 + 2);
    let mut server = build(scheme, 1, tracks);
    server.set_step_mode(mode);
    let target = ((server.stream_capacity() as f64 * load) as usize).max(1);
    let objects: Vec<ObjectId> = server.objects().to_vec();
    // Best-effort fill: some schemes bound admission below the nominal
    // stream capacity (per-group or buffer constraints), so take what
    // the scheme actually grants at this load point.
    for i in 0..target {
        if server.admit(objects[i % objects.len()]).is_err() {
            break;
        }
    }
    #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
    let start = Instant::now();
    server.run(cycles).expect("steady run");
    let secs = start.elapsed().as_secs_f64();
    (outcome(&server, 0), secs)
}

/// Churn run: Poisson arrivals over a Zipf catalog of finite movies.
fn run_sessions(scheme: Scheme, rate: f64, cycles: u64, mode: StepMode) -> (Outcome, f64) {
    let mut server = build(scheme, MOVIES, TRACKS);
    server.set_step_mode(mode);
    let workload = WorkloadGen::new(server.objects().to_vec(), THETA, rate);
    let mut rng = StdRng::seed_from_u64(SEED);
    #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
    let start = Instant::now();
    let rejected = server
        .run_with_workload(cycles, &workload, &mut rng)
        .expect("churn run");
    let secs = start.elapsed().as_secs_f64();
    (outcome(&server, rejected), secs)
}

struct Cell {
    label: &'static str,
    load: f64,
    rate: f64,
    steady_slow: f64,
    steady_fast: f64,
    sessions_slow: f64,
    sessions_fast: f64,
    finished: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_steady.json".into());
    let cycles: u64 = if quick { 1_500 } else { 20_000 };

    let mut cells: Vec<Cell> = Vec::new();
    for (scheme, label) in SCHEMES {
        for (load, rate) in LOADS {
            let (slow_out, steady_slow) = run_steady(scheme, load, cycles, StepMode::CycleByCycle);
            let (fast_out, steady_fast) = run_steady(scheme, load, cycles, StepMode::EventHorizon);
            assert_eq!(
                slow_out, fast_out,
                "{label} load {load}: steady outcomes diverged between step modes"
            );
            let (slow_out, sessions_slow) =
                run_sessions(scheme, rate, cycles, StepMode::CycleByCycle);
            let (fast_out, sessions_fast) =
                run_sessions(scheme, rate, cycles, StepMode::EventHorizon);
            assert_eq!(
                slow_out, fast_out,
                "{label} rate {rate}: churn outcomes diverged between step modes"
            );
            println!(
                "{label} load {load:.1}: steady {:.0} -> {:.0} cyc/s ({:.1}x), \
                 churn {:.0} -> {:.0} cyc/s",
                cycles as f64 / steady_slow,
                cycles as f64 / steady_fast,
                steady_slow / steady_fast,
                cycles as f64 / sessions_slow,
                cycles as f64 / sessions_fast,
            );
            cells.push(Cell {
                label,
                load,
                rate,
                steady_slow,
                steady_fast,
                sessions_slow,
                sessions_fast,
                finished: fast_out.finished,
            });
        }
    }

    let min_speedup = cells
        .iter()
        .map(|c| c.steady_slow / c.steady_fast)
        .fold(f64::INFINITY, f64::min);
    println!("minimum steady-state speedup across all cells: {min_speedup:.1}x");

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"cycles_per_cell\": {cycles},\n"));
    json.push_str(
        "  \"note\": \"wall-clock on a single-core container; both step modes of every cell \
         are asserted observably identical before any speedup is reported\",\n",
    );
    json.push_str(&format!("  \"min_steady_speedup\": {min_speedup:.2},\n"));
    json.push_str("  \"schemes\": {\n");
    for (si, (_, label)) in SCHEMES.iter().enumerate() {
        json.push_str(&format!("    \"{label}\": [\n"));
        let points: Vec<&Cell> = cells.iter().filter(|c| c.label == *label).collect();
        for (pi, c) in points.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"load\": {:.2}, \"steady_cycles_per_sec\": {{\"cycle_by_cycle\": \
                 {:.1}, \"event_horizon\": {:.1}, \"speedup\": {:.2}}}, \
                 \"churn_rate_per_cycle\": {:.2}, \"quiescent_fraction\": {:.3}, \
                 \"churn_cycles_per_sec\": {{\"cycle_by_cycle\": {:.1}, \"event_horizon\": \
                 {:.1}, \"speedup\": {:.2}}}, \"sessions_per_sec\": {{\"cycle_by_cycle\": \
                 {:.1}, \"event_horizon\": {:.1}}}, \"sessions_finished\": {}}}{}\n",
                c.load,
                cycles as f64 / c.steady_slow,
                cycles as f64 / c.steady_fast,
                c.steady_slow / c.steady_fast,
                c.rate,
                (-c.rate).exp(),
                cycles as f64 / c.sessions_slow,
                cycles as f64 / c.sessions_fast,
                c.sessions_slow / c.sessions_fast,
                c.finished as f64 / c.sessions_slow,
                c.finished as f64 / c.sessions_fast,
                c.finished,
                if pi + 1 == points.len() { "" } else { "," }
            ));
        }
        json.push_str(if si + 1 == SCHEMES.len() {
            "    ]\n"
        } else {
            "    ],\n"
        });
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
    if !quick {
        assert!(
            min_speedup >= 5.0,
            "acceptance: event-horizon must be >= 5x on the steady workload \
             for every scheme (got {min_speedup:.2}x)"
        );
    }
}
