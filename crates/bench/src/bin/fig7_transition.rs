//! Reproduces Figure 7: the Non-clustered scheme's *delayed* transition
//! after disk 2 fails. The paper loses only {W2, Y2} (unreconstructable)
//! plus {Y3} (displaced by A3's moved-up read) — half the simple
//! transition's damage.

use mms_bench::{figure_name_map, figure_scheduler, FIGURE_FAIL_CYCLE, FIGURE_STARTS};
use mms_server::disk::DiskId;
use mms_server::layout::{BlockKind, ObjectId};
use mms_server::sched::{SchemeScheduler, TransitionPolicy};
use mms_server::sim::trace;

fn main() {
    let mut sched = figure_scheduler(TransitionPolicy::Delayed);
    let names = figure_name_map();
    let mut plans = Vec::new();
    let mut lost = Vec::new();
    for t in 0..12u64 {
        for &(obj, at) in &FIGURE_STARTS {
            if at == t {
                sched.admit(ObjectId(obj), at).unwrap();
            }
        }
        if t == FIGURE_FAIL_CYCLE {
            sched.on_disk_failure(DiskId(2), t, false);
        }
        let plan = sched.plan_cycle(t);
        for h in &plan.hiccups {
            if let BlockKind::Data(ix) = h.addr.kind {
                lost.push(format!("{}{} ({})", names[&h.addr.object.0], ix, h.reason));
            }
        }
        plans.push(plan);
    }
    println!("Figure 7 — Non-clustered delayed transition (disk 2 fails before cycle 4)\n");
    println!("{}", trace::render_schedule(&plans, 5, &names));
    println!("lost tracks ({}): {}", lost.len(), lost.join(", "));
    println!("\npaper's Figure 7 loses exactly: W2, Y2, Y3 (3 tracks)");
    assert_eq!(
        lost.len(),
        3,
        "must reproduce the paper's three lost tracks"
    );
}
