//! Reproduces Table 3 of the paper: all six metrics for the four schemes
//! at parity-group size C = 7 (Table 1 parameters, D = 100).

fn main() {
    println!("Table 3 — results with C = 7 (Table 1 parameters, D = 100)\n");
    mms_bench::print_scheme_table(7);
    println!("\nPaper's Table 3 for comparison:");
    println!("  SR: 14.3% 14.3% 17123.3 17123.3 1125 15750");
    println!("  SG: 14.3% 14.3% 17123.3 17123.3 1035  4830");
    println!("  NC: 14.3% 14.3% 17123.3 3176862.3 1035  3254");
    println!("  IB: 14.3%  3.0%  7903.1 3176862.3 1273 15276");
}
