//! Reproduces the paper's reliability arithmetic (Sections 2-4) and
//! validates it with the Monte-Carlo failure simulator.
//!
//! Quotes being checked:
//! * §1: MTTF of some disk in a 1000-disk farm ≈ 300 hours (12 days).
//! * §2: Streaming RAID, D = 1000, C = 10: catastrophic MTTF ≈ 1100 years.
//! * §3: masking 4 concurrent failures: MTTDS > 250 million years.
//! * §4: Improved-bandwidth: ≈ 540 years "rather than 1141 years".

//!
//! Usage: `reliability_mc [trials] [threads]` — trials defaults to 400,
//! threads to `auto`. The worker pool is purely a performance knob: all
//! numbers are bit-identical for any thread count (see `mms_exec`).

use mms_server::disk::{ReliabilityParams, Time};
use mms_server::reliability::{formulas, CatastropheRule, ClusterMarkov, MonteCarlo};
use mms_server::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let par: Parallelism = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(Parallelism::Auto);
    let rel = ReliabilityParams::paper();

    println!("== Closed-form (paper's equations) ==\n");
    println!(
        "first failure among 1000 disks : {:8.1} hours (paper: ~300 h / 12 days)",
        formulas::mttf_single_pool(1000, rel).as_hours()
    );
    println!(
        "SR catastrophic, D=1000, C=10  : {:8.1} years (paper: ~1100)",
        formulas::mttf_raid(1000, 10, rel).as_years()
    );
    println!(
        "IB catastrophic, D=1000, C=10  : {:8.1} years (paper: ~540)",
        formulas::mttf_improved(1000, 10, rel).as_years()
    );
    println!(
        "MTTDS masking 4, D=1000        : {:8.2e} years (paper: >250 million)",
        formulas::mttds_shared(1000, 4, rel).as_years()
    );
    println!(
        "tables' MTTDS (k=2, D=100)     : {:8.1} years (paper: 3,176,862.3)",
        formulas::mttds_shared(100, 2, rel).as_years()
    );

    println!("\n== Exact Markov cross-check (one cluster of 10) ==\n");
    let mk = ClusterMarkov::new(10, rel);
    println!(
        "exact mean time to double fail : {:8.1} years",
        mk.mean_time_to_double_failure().as_years()
    );
    println!(
        "paper's approximation          : {:8.1} years (error {:.4}%)",
        mk.approximation().as_years(),
        (mk.mean_time_to_double_failure().as_years() - mk.approximation().as_years()).abs()
            / mk.approximation().as_years()
            * 100.0
    );

    println!(
        "\n== Monte Carlo vs formulas (accelerated lifetimes, {trials} trials, {} thread(s)) ==\n",
        par.thread_count()
    );
    // MTTF/MTTR ratio preserved; absolute scale shrunk so trials finish.
    let fast = ReliabilityParams {
        mttf: Time::from_hours(1_000.0),
        mttr: Time::from_hours(1.0),
    };
    let mut rng = StdRng::seed_from_u64(1995);
    let cases: [(&str, CatastropheRule, Time); 3] = [
        (
            "same-cluster (SR/SG/NC), D=20, C=5",
            CatastropheRule::SameCluster { c: 5 },
            formulas::mttf_raid(20, 5, fast),
        ),
        (
            "adjacent-cluster (IB), D=20, C=5",
            CatastropheRule::SameOrAdjacentCluster { c: 5 },
            formulas::mttf_improved(20, 5, fast),
        ),
        (
            "any-2-concurrent (DoS), D=30",
            CatastropheRule::AnyConcurrent { k: 1 },
            formulas::mttds_shared(30, 1, fast),
        ),
    ];
    for (label, rule, reference) in cases {
        let mc = MonteCarlo {
            d: if matches!(rule, CatastropheRule::AnyConcurrent { .. }) {
                30
            } else {
                20
            },
            rel: fast,
            rule,
        };
        let stats = mc.run_par(&mut rng, trials, par);
        println!(
            "{label:<38} MC {:>9.0} h ± {:>6.0}  formula {:>9.0} h  ratio {:.2}",
            stats.mean.as_hours(),
            stats.ci95().as_hours(),
            reference.as_hours(),
            stats.mean.as_hours() / reference.as_hours()
        );
    }

    // Paper scale, real lifetimes: D = 1000, C = 10 — the Section 2 and
    // Section 4 headline numbers measured directly. Each trial walks tens
    // of thousands of failure/repair events, so this is the section the
    // worker pool actually pays for.
    let paper_trials = trials.clamp(2, 64);
    println!(
        "\n== Monte Carlo at paper scale (D=1000, C=10, real lifetimes, {paper_trials} trials) ==\n"
    );
    let paper_cases: [(&str, CatastropheRule, Time); 2] = [
        (
            "same-cluster (SR/SG/NC)",
            CatastropheRule::SameCluster { c: 10 },
            formulas::mttf_raid(1000, 10, rel),
        ),
        (
            "adjacent-cluster (IB)",
            CatastropheRule::SameOrAdjacentCluster { c: 10 },
            formulas::mttf_improved(1000, 10, rel),
        ),
    ];
    for (label, rule, reference) in paper_cases {
        let mc = MonteCarlo { d: 1000, rel, rule };
        let stats = mc.run_par(&mut rng, paper_trials, par);
        println!(
            "{label:<38} MC {:>7.0} yr ± {:>5.0}  formula {:>7.0} yr  ratio {:.2}",
            stats.mean.as_years(),
            stats.ci95().as_years(),
            reference.as_years(),
            stats.mean.as_years() / reference.as_years()
        );
    }
    println!("\nThe simulated hitting times confirm the paper's first-order");
    println!("approximations to within Monte-Carlo noise in the MTTR << MTTF regime.");
}
