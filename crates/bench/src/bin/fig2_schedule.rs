//! Reproduces Figure 2: multiple transmission cycles per read cycle. With
//! k = 4 and k' = 1, a stream reads four tracks (X1-X4) in one read cycle
//! and transmits one per cycle over the next four — the Staggered-group
//! discipline.

use mms_server::layout::BandwidthClass;
use mms_server::sim::trace;
use mms_server::{Scheme, ServerBuilder};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = ServerBuilder::new(Scheme::StaggeredGroup)
        .disks(10)
        .parity_group(5)
        .movie("X", 0.2, BandwidthClass::Mpeg1)
        .build()?;
    let x = server.objects()[0];
    server.simulator_mut().keep_trace(12);
    server.admit(x)?;
    for _ in 0..12 {
        server.step()?;
    }
    let names = BTreeMap::from([(x.0, "X")]);
    println!("Figure 2 — k = 4 tracks per read cycle, k' = 1 per transmission cycle\n");
    println!(
        "{}",
        trace::render_schedule(server.simulator().trace(), 10, &names)
    );
    println!("deliveries (one track per cycle, lagging its read cycle):");
    for plan in server.simulator().trace() {
        println!("  {}", trace::render_deliveries(plan, &names));
    }
    Ok(())
}
