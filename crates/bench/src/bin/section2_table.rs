//! Reproduces the Section 2 in-text table: the streams-per-disk bound as
//! a function of `k` for MPEG-1 (1.5 Mb/s) and MPEG-2 (4.5 Mb/s) objects.
//!
//! Paper: ≈5% variation at 1.5 Mb/s, ≈15% at 4.5 Mb/s (values 14.7 /
//! 16.2 / 17.4).

use mms_server::analysis::section2_rows;
use mms_server::disk::Bandwidth;

fn main() {
    println!("Section 2 worked example: τ_seek = 30 ms, τ_trk = 10 ms, B = 100 KB\n");
    for (label, mbps) in [("MPEG-1 (1.5 Mb/s)", 1.5), ("MPEG-2 (4.5 Mb/s)", 4.5)] {
        let rows = section2_rows(Bandwidth::from_megabits(mbps), &[1, 2, 10]);
        println!("{label}:");
        for r in &rows {
            println!("  k = {:>2}  ->  N/D' < {:.2}", r.k, r.streams_per_disk);
        }
        let variation = (rows.last().unwrap().streams_per_disk - rows[0].streams_per_disk)
            / rows.last().unwrap().streams_per_disk;
        println!("  variation k=1..10: {:.1}%\n", variation * 100.0);
    }
}
