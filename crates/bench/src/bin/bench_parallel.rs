//! Measure the deterministic worker pool (`mms-exec`) on the three
//! workloads it backs — Monte-Carlo reliability trials, the design-space
//! sweep, and a batch simulation grid — at 1, 2, 4, and 8 threads, and
//! write the results to `BENCH_parallel.json`.
//!
//! Two things are recorded per workload:
//! * **wall-clock seconds** at each thread count (median of three runs);
//! * **bit_identical** — whether every thread count reproduced the
//!   1-thread result exactly. This is the pool's contract and must be
//!   `true` everywhere; the timings are honest measurements on whatever
//!   host runs the bin (`host_cores` records how many cores that was —
//!   speedups are only expected when it exceeds 1).
//!
//! Usage: `bench_parallel [output.json] [mc_trials]`

use mms_bench::nc_transition_losses;
use mms_server::analysis::{design_space_par, CostModel, SchemeParams, SystemParams};
use mms_server::disk::ReliabilityParams;
use mms_server::reliability::{CatastropheRule, MonteCarlo};
use mms_server::sched::TransitionPolicy;
use mms_server::sim::run_batch;
use mms_server::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Wall-clock seconds for `f` (median of three runs), plus a digest of
/// its result for the bit-identity check.
fn measure<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut digest = 0;
    let mut times: Vec<f64> = (0..3)
        .map(|_| {
            #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
            let start = Instant::now();
            digest = f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[1], digest)
}

struct Workload {
    name: &'static str,
    detail: String,
    seconds: Vec<(usize, f64)>,
    bit_identical: bool,
}

fn bench_workload<F: FnMut(Parallelism) -> u64>(
    name: &'static str,
    detail: String,
    mut job: F,
) -> Workload {
    let mut seconds = Vec::new();
    let mut digests = Vec::new();
    for threads in THREAD_COUNTS {
        let (secs, digest) = measure(|| job(Parallelism::threads(threads)));
        seconds.push((threads, secs));
        digests.push(digest);
    }
    let bit_identical = digests.iter().all(|&d| d == digests[0]);
    println!(
        "{name:<24} {}  bit-identical: {bit_identical}",
        seconds
            .iter()
            .map(|(t, s)| format!("{t}T {s:.3}s"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    Workload {
        name,
        detail,
        seconds,
        bit_identical,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_parallel.json".into());
    let mc_trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(48);

    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("host cores: {host_cores}; measuring at {THREAD_COUNTS:?} threads\n");

    let mut workloads = Vec::new();

    // 1. Monte-Carlo reliability at paper scale: D = 1000, C = 10, real
    //    lifetimes — the dominant compute in the reliability pipeline.
    let mc = MonteCarlo {
        d: 1000,
        rel: ReliabilityParams::paper(),
        rule: CatastropheRule::SameCluster { c: 10 },
    };
    workloads.push(bench_workload(
        "montecarlo_mttf",
        format!("D=1000 C=10 same-cluster rule, {mc_trials} trials, seed 1995"),
        |par| {
            let stats = mc.run_par(&mut StdRng::seed_from_u64(1995), mc_trials, par);
            stats.mean.as_secs().to_bits() ^ stats.std_error.as_secs().to_bits()
        },
    ));

    // 2. The design-space sweep. One sweep is microseconds, so time a
    //    thousand of them; the digest folds every field of every point.
    let sys = SystemParams::paper_table1();
    let model = CostModel::paper_fig9();
    const SWEEP_REPS: usize = 1000;
    workloads.push(bench_workload(
        "design_space_sweep",
        format!("C in 2..=10 x 4 schemes, {SWEEP_REPS} repetitions"),
        |par| {
            let mut digest = 0u64;
            for _ in 0..SWEEP_REPS {
                digest = design_space_par(&sys, &model, 2..=10, SchemeParams::paper_fig9, par)
                    .iter()
                    .fold(0u64, |acc, p| {
                        acc.rotate_left(7) ^ p.cost.to_bits() ^ p.streams.to_bits() ^ (p.c as u64)
                    });
            }
            digest
        },
    ));

    // 3. A batch simulation grid: the Non-clustered transition ablation
    //    (every C x failed-disk x policy cell is an independent
    //    scheduler run).
    let grid: Vec<(usize, u32, TransitionPolicy)> = [6usize, 8, 10, 12]
        .into_iter()
        .flat_map(|c| {
            (0..(c as u32 - 1)).flat_map(move |f| {
                [TransitionPolicy::Simple, TransitionPolicy::Delayed]
                    .into_iter()
                    .map(move |p| (c, f, p))
            })
        })
        .collect();
    workloads.push(bench_workload(
        "sim_batch_ablation",
        format!("NC transition grid, {} scheduler runs", grid.len()),
        |par| {
            run_batch(par, &grid, |&(c, f, policy)| {
                nc_transition_losses(c, f, policy) as u64
            })
            .iter()
            .fold(0u64, |acc, &l| acc.rotate_left(9) ^ l)
        },
    ));

    let all_identical = workloads.iter().all(|w| w.bit_identical);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"thread_counts\": {THREAD_COUNTS:?},\n"));
    json.push_str(&format!("  \"all_bit_identical\": {all_identical},\n"));
    json.push_str(&format!(
        "  \"note\": \"wall-clock medians of 3 runs; speedup = seconds at 1 thread / best; \
         parallel speedup requires host_cores > 1{}\",\n",
        if host_cores == 1 {
            " — this run used a 1-core host, so the timings document determinism and pool \
             overhead, not speedup"
        } else {
            ""
        }
    ));
    json.push_str("  \"workloads\": {\n");
    for (i, w) in workloads.iter().enumerate() {
        let t1 = w.seconds[0].1;
        let best = w
            .seconds
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        json.push_str(&format!("    \"{}\": {{\n", w.name));
        json.push_str(&format!("      \"detail\": \"{}\",\n", w.detail));
        json.push_str("      \"seconds\": {");
        json.push_str(
            &w.seconds
                .iter()
                .map(|(t, s)| format!("\"{t}\": {s:.4}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        json.push_str("},\n");
        json.push_str(&format!(
            "      \"speedup_best\": {:.2},\n",
            if best > 0.0 { t1 / best } else { 1.0 }
        ));
        json.push_str(&format!("      \"bit_identical\": {}\n", w.bit_identical));
        json.push_str(if i + 1 == workloads.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
    assert!(
        all_identical,
        "determinism contract violated: results differ across thread counts"
    );
}
