//! Reproduces Figure 4: the Staggered-group scheme's memory profile.
//!
//! (b) one stream's per-cycle occupancy is a sawtooth: C+1 tracks at its
//!     read cycle, draining one per cycle until the next read.
//! (a) C−1 staggered streams interleave those sawtooths "out of phase",
//!     peaking at C(C+1)/2 = 15 tracks — versus 2C per stream (40 for
//!     four streams) under Streaming RAID.

use mms_server::layout::{BandwidthClass, MediaObject, ObjectId};
use mms_server::sim::DataMode;
use mms_server::{MultimediaServer, Scheme, ServerBuilder};

fn build(scheme: Scheme) -> MultimediaServer {
    ServerBuilder::new(scheme)
        .disks(10)
        .parity_group(5)
        .object(MediaObject::new(
            ObjectId(0),
            "m",
            400,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::MetadataOnly)
        .build()
        .unwrap()
}

fn main() {
    // (b) One stream's sawtooth (end-of-cycle occupancy).
    let mut single = build(Scheme::StaggeredGroup);
    let m = single.objects()[0];
    single.admit(m).unwrap();
    for _ in 0..20 {
        single.step().unwrap();
    }
    println!("Figure 4(b) — one staggered-group stream (end-of-cycle tracks):\n");
    println!("cycle  tracks");
    for (t, v) in single.metrics().buffer_series.iter().enumerate().take(16) {
        println!("{t:>5}  {v:>6} {}", "#".repeat(*v));
    }
    println!(
        "\npeak within a read cycle: {} tracks (C+1 = 6: the new group incl.\nparity plus the previous group's last track in transmission)",
        single.metrics().buffer_peak
    );

    // (a) Four streams, staggered vs Streaming RAID.
    let mut sg = build(Scheme::StaggeredGroup);
    let m = sg.objects()[0];
    for _ in 0..4 {
        sg.admit(m).unwrap();
        sg.step().unwrap(); // stagger phases
    }
    for _ in 0..24 {
        sg.step().unwrap();
    }
    let mut sr = build(Scheme::StreamingRaid);
    let m = sr.objects()[0];
    for _ in 0..4 {
        sr.admit(m).unwrap();
    }
    for _ in 0..24 {
        sr.step().unwrap();
    }
    let (sg_peak, sr_peak) = (sg.metrics().buffer_peak, sr.metrics().buffer_peak);
    println!("\nFigure 4(a) — four streams, aggregate peak buffer demand:");
    println!("  Staggered-group : {sg_peak} tracks  (paper: C(C+1)/2 = 15)");
    println!("  Streaming RAID  : {sr_peak} tracks  (paper: 2C per stream = 40)");
    println!(
        "  ratio           : {:.2} — \"approximately 1/2 the memory\"",
        sg_peak as f64 / sr_peak as f64
    );
    assert_eq!(sg_peak, 15);
    assert_eq!(sr_peak, 40);
}
