//! Measure the zero-allocation data path — the word-wise XOR kernel, the
//! pooled streaming verification in [`BlockOracle`], and the simulator's
//! steady-state cycle loop — and write the results to
//! `BENCH_datapath.json`.
//!
//! Three measurements:
//! * **XOR kernel** — MB/s of the `u64`-lane [`xor_slices`] against a
//!   byte-at-a-time scalar reference loop.
//! * **Verified deliveries** — degraded-mode deliveries per second and
//!   heap allocations per delivery, for the legacy materializing path
//!   (`block` + `reconstruct_and_check`) vs the pooled streaming path
//!   (`verify_delivery`).
//! * **Simulator cycles** — heap allocations per steady-state cycle of a
//!   degraded Streaming-RAID run under `DataMode::Verified`.
//!
//! Allocations are counted by a `#[global_allocator]` shim around the
//! system allocator, so the numbers are the real heap traffic of the
//! measured section — not an estimate.
//!
//! Usage: `bench_datapath [output.json] [--quick]`
//!
//! `--quick` shrinks every workload to a smoke-test size (used by CI to
//! prove the bin runs); the committed JSON comes from a full run.

use mms_server::disk::DiskId;
use mms_server::layout::{BandwidthClass, BlockAddr, MediaObject, ObjectId};
use mms_server::parity::xor_slices;
use mms_server::sim::{BlockOracle, DataMode, FailureEvent};
use mms_server::{Scheme, ServerBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator with an allocation counter: every `alloc`/`realloc`
/// bumps [`ALLOC_COUNT`], so a section's heap traffic is the difference
/// of two counter reads.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// A real track per the paper's Table 1 (50 KB).
const TRACK_BYTES: usize = 50_000;
/// Parity-group size C = 5 ⇒ four data blocks per group.
const GROUP_C: usize = 5;

/// Byte-at-a-time XOR reference. `black_box` pins each store so the
/// optimizer cannot rewrite the loop into the very SIMD kernel it is
/// the baseline for.
fn xor_scalar_reference(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = black_box(*d ^ *s);
    }
}

struct XorResult {
    passes: usize,
    scalar_mb_per_s: f64,
    wordwise_mb_per_s: f64,
    speedup: f64,
}

fn bench_xor(quick: bool) -> XorResult {
    let passes = if quick { 64 } else { 4096 };
    let mut dst = vec![0xA5u8; TRACK_BYTES];
    let src: Vec<u8> = (0..TRACK_BYTES).map(|i| (i * 131) as u8).collect();
    let mb = (passes * TRACK_BYTES) as f64 / 1e6;

    #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
    let start = Instant::now();
    for _ in 0..passes {
        xor_scalar_reference(&mut dst, &src);
    }
    let scalar_mb_per_s = mb / start.elapsed().as_secs_f64();
    black_box(&dst);

    #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
    let start = Instant::now();
    for _ in 0..passes {
        xor_slices(&mut dst, &src);
    }
    let wordwise_mb_per_s = mb / start.elapsed().as_secs_f64();
    black_box(&dst);

    XorResult {
        passes,
        scalar_mb_per_s,
        wordwise_mb_per_s,
        speedup: wordwise_mb_per_s / scalar_mb_per_s,
    }
}

struct DeliveryResult {
    deliveries: usize,
    legacy_per_s: f64,
    legacy_allocs_per: f64,
    streaming_per_s: f64,
    streaming_allocs_per: f64,
}

/// Degraded-mode verified deliveries: every delivery reconstructs data
/// block `i % (C−1)` of a rotating group, then confirms it against the
/// stored original — the legacy path by materializing the whole group,
/// the streaming path through pooled scratch.
fn bench_deliveries(quick: bool) -> DeliveryResult {
    let deliveries = if quick { 32 } else { 2000 };
    let object = ObjectId(7);
    let tracks: u64 = 4096;
    let bpg = (GROUP_C - 1) as u32;
    let groups = tracks / u64::from(bpg);
    let mut oracle = BlockOracle::new(BTreeMap::from([(object, tracks)]), bpg, TRACK_BYTES);

    #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
    let start = Instant::now();
    let allocs_before = allocations();
    for i in 0..deliveries {
        let group = (i as u64 * 17) % groups;
        let ix = (i as u32) % bpg;
        let expected = oracle.block(BlockAddr::data(object, group, ix));
        let produced = oracle.reconstruct_and_check(object, group, ix);
        assert_eq!(produced, expected, "legacy path must round-trip");
    }
    let legacy_allocs = allocations() - allocs_before;
    let legacy_secs = start.elapsed().as_secs_f64();

    // Warm the pool and fingerprint cache, then measure the steady state.
    for i in 0..4u64 {
        oracle.verify_delivery(BlockAddr::data(object, i % groups, 0), true);
    }
    #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
    let start = Instant::now();
    let allocs_before = allocations();
    for i in 0..deliveries {
        let group = (i as u64 * 17) % groups;
        let ix = (i as u32) % bpg;
        oracle.verify_delivery(BlockAddr::data(object, group, ix), true);
    }
    let streaming_allocs = allocations() - allocs_before;
    let streaming_secs = start.elapsed().as_secs_f64();

    DeliveryResult {
        deliveries,
        legacy_per_s: deliveries as f64 / legacy_secs,
        legacy_allocs_per: legacy_allocs as f64 / deliveries as f64,
        streaming_per_s: deliveries as f64 / streaming_secs,
        streaming_allocs_per: streaming_allocs as f64 / deliveries as f64,
    }
}

struct SimResult {
    cycles: u64,
    allocs_per_cycle: f64,
}

/// Steady-state allocations per cycle of a degraded Streaming-RAID run
/// with verified synthetic content: four viewers stream one movie while
/// one disk is down, so every cycle plans, reads, reconstructs, and
/// verifies through the hoisted plan/load/pool storage.
fn bench_sim_cycles(quick: bool) -> SimResult {
    let (warmup, cycles) = if quick { (8, 16) } else { (64, 256) };
    let object = ObjectId(0);
    let mut server = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(GROUP_C)
        .object(MediaObject::new(object, "m", 20_000, BandwidthClass::Mpeg1))
        .data_mode(DataMode::Verified { track_bytes: 4096 })
        .build()
        .expect("server builds");
    for _ in 0..4 {
        server.admit(object).expect("admission");
        server.step().expect("cycle");
    }
    server
        .inject(FailureEvent::fail(server.cycle(), DiskId(1)))
        .expect("fail disk");
    for _ in 0..warmup {
        server.step().expect("cycle");
    }
    let allocs_before = allocations();
    for _ in 0..cycles {
        server.step().expect("cycle");
    }
    let allocs = allocations() - allocs_before;
    SimResult {
        cycles,
        allocs_per_cycle: allocs as f64 / cycles as f64,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_datapath.json");
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let xor = bench_xor(quick);
    println!(
        "xor kernel        scalar {:>8.1} MB/s  wordwise {:>8.1} MB/s  speedup {:.1}x",
        xor.scalar_mb_per_s, xor.wordwise_mb_per_s, xor.speedup
    );

    let del = bench_deliveries(quick);
    println!(
        "verified delivery legacy {:>8.1}/s ({:.1} allocs)  streaming {:>8.1}/s ({:.1} allocs)",
        del.legacy_per_s, del.legacy_allocs_per, del.streaming_per_s, del.streaming_allocs_per
    );

    let sim = bench_sim_cycles(quick);
    println!(
        "simulator         {:.1} allocs/cycle over {} degraded SR cycles",
        sim.allocs_per_cycle, sim.cycles
    );

    // A ratio degenerates (division by zero) precisely when the pooled
    // path wins outright; the difference stays meaningful at 0.
    let allocs_eliminated = del.legacy_allocs_per - del.streaming_allocs_per;
    let json = format!(
        "{{\n\
         \x20 \"quick\": {quick},\n\
         \x20 \"track_bytes\": {TRACK_BYTES},\n\
         \x20 \"xor_kernel\": {{\n\
         \x20   \"passes\": {passes},\n\
         \x20   \"scalar_mb_per_s\": {scalar:.1},\n\
         \x20   \"wordwise_mb_per_s\": {word:.1},\n\
         \x20   \"speedup\": {speedup:.2}\n\
         \x20 }},\n\
         \x20 \"verified_delivery\": {{\n\
         \x20   \"blocks_per_group\": {bpg},\n\
         \x20   \"deliveries\": {deliveries},\n\
         \x20   \"legacy_deliveries_per_s\": {lps:.1},\n\
         \x20   \"legacy_allocs_per_delivery\": {lal:.2},\n\
         \x20   \"streaming_deliveries_per_s\": {sps:.1},\n\
         \x20   \"streaming_allocs_per_delivery\": {sal:.2},\n\
         \x20   \"allocs_eliminated_per_delivery\": {red:.2}\n\
         \x20 }},\n\
         \x20 \"simulator\": {{\n\
         \x20   \"scheme\": \"sr\",\n\
         \x20   \"degraded\": true,\n\
         \x20   \"cycles\": {cycles},\n\
         \x20   \"allocs_per_cycle\": {apc:.2}\n\
         \x20 }}\n\
         }}\n",
        quick = quick,
        passes = xor.passes,
        scalar = xor.scalar_mb_per_s,
        word = xor.wordwise_mb_per_s,
        speedup = xor.speedup,
        bpg = GROUP_C - 1,
        deliveries = del.deliveries,
        lps = del.legacy_per_s,
        lal = del.legacy_allocs_per,
        sps = del.streaming_per_s,
        sal = del.streaming_allocs_per,
        red = allocs_eliminated,
        cycles = sim.cycles,
        apc = sim.allocs_per_cycle,
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("\nwrote {out_path}");
}
