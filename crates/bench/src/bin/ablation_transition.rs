//! Ablation: tracks lost during the Non-clustered degraded-mode
//! transition, across parity-group sizes and failed-disk positions, for
//! both transition policies. Extends Figures 6/7 beyond the paper's
//! single worked example and checks the prose formula
//! (C−k)(C−k+1)/2 against mechanically simulated losses.

use mms_server::disk::{Bandwidth, DiskId, DiskParams};
use mms_server::layout::{
    BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};
use mms_server::sched::{
    CycleConfig, NonClusteredScheduler, SchemeScheduler, TransitionPolicy,
};

/// One fully-loaded cluster of size `c` with one stream per phase, disk
/// `f` failing at the moment each phase is mid-group; returns lost tracks.
fn losses(c: usize, f: u32, policy: TransitionPolicy) -> usize {
    let geo = Geometry::clustered(c, c).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
    let bpg = c - 1;
    for i in 0..(3 * bpg) as u64 {
        catalog
            .add(MediaObject::new(
                ObjectId(i),
                format!("s{i}"),
                bpg as u64,
                BandwidthClass::Custom(Bandwidth::from_megabytes(1.0)),
            ))
            .unwrap();
    }
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabytes(1.0),
        1,
        1,
    );
    let mut sched = NonClusteredScheduler::new(cfg, catalog, policy, 1);
    let fail_at = bpg as u64;
    let mut next_obj = 0u64;
    let mut lost = 0usize;
    for t in 0..(4 * bpg as u64) {
        // One new stream starts every cycle from cycle 1 on, keeping
        // every phase busy by the time the failure strikes.
        if t >= 1 && next_obj < (3 * bpg) as u64 {
            sched.admit(ObjectId(next_obj), t).unwrap();
            next_obj += 1;
        }
        if t == fail_at {
            sched.on_disk_failure(DiskId(f), t, false);
        }
        lost += sched.plan_cycle(t).hiccups.len();
    }
    lost
}

fn main() {
    println!("Non-clustered transition losses (full load, one stream per phase)\n");
    println!(
        "{:>3} {:>6} {:>14} {:>15} {:>22}",
        "C", "disk", "simple losses", "delayed losses", "prose (C-k)(C-k+1)/2"
    );
    let mut delayed_worse = 0usize;
    for c in [4usize, 5, 6, 8] {
        for f in 0..(c as u32 - 1) {
            let simple = losses(c, f, TransitionPolicy::Simple);
            let delayed = losses(c, f, TransitionPolicy::Delayed);
            let prose = (c as i64 - f as i64) * (c as i64 - f as i64 + 1) / 2;
            let mark = if delayed > simple { " *" } else { "" };
            println!("{c:>3} {f:>6} {simple:>14} {delayed:>15} {prose:>22}{mark}");
            if delayed > simple {
                delayed_worse += 1;
            }
        }
    }
    println!("\nThis table is the *continuous-saturation* regime (admissions never");
    println!("stop). The paper's finite Figure 6/7 scenario — reproduced exactly by");
    println!("the fig6_transition/fig7_transition bins — drains after eight streams,");
    println!("leaving slack that the delayed policy exploits (6 vs 3 lost there).");
    println!("The prose formula is an approximation; the simulated counts are exact.");
    if delayed_worse > 0 {
        println!(
            "(*) at 100% load the delayed policy can lose MORE than the simple\n\
             one: it keeps salvaging every in-flight group — extra read demand\n\
             at the exact moment no spare slot exists — while the simple policy\n\
             abandons remainders up front. With any idle capacity (the paper's\n\
             setting, and the property-tested regime) delayed dominates."
        );
    }
}
