//! Ablation: tracks lost during the Non-clustered degraded-mode
//! transition, across parity-group sizes and failed-disk positions, for
//! both transition policies. Extends Figures 6/7 beyond the paper's
//! single worked example and checks the prose formula
//! (C−k)(C−k+1)/2 against mechanically simulated losses.

use mms_bench::nc_transition_losses as losses;
use mms_server::sched::TransitionPolicy;
use mms_server::sim::run_batch;
use mms_server::Parallelism;

fn main() {
    println!("Non-clustered transition losses (full load, one stream per phase)\n");
    println!(
        "{:>3} {:>6} {:>14} {:>15} {:>22}",
        "C", "disk", "simple losses", "delayed losses", "prose (C-k)(C-k+1)/2"
    );
    let mut delayed_worse = 0usize;
    // The (C, failed-disk) grid is embarrassingly parallel: fan it out
    // over the deterministic worker pool, then print in grid order.
    let grid: Vec<(usize, u32)> = [4usize, 5, 6, 8]
        .into_iter()
        .flat_map(|c| (0..(c as u32 - 1)).map(move |f| (c, f)))
        .collect();
    let results = run_batch(Parallelism::Auto, &grid, |&(c, f)| {
        (
            losses(c, f, TransitionPolicy::Simple),
            losses(c, f, TransitionPolicy::Delayed),
        )
    });
    for (&(c, f), &(simple, delayed)) in grid.iter().zip(&results) {
        let prose = (c as i64 - f as i64) * (c as i64 - f as i64 + 1) / 2;
        let mark = if delayed > simple { " *" } else { "" };
        println!("{c:>3} {f:>6} {simple:>14} {delayed:>15} {prose:>22}{mark}");
        if delayed > simple {
            delayed_worse += 1;
        }
    }
    println!("\nThis table is the *continuous-saturation* regime (admissions never");
    println!("stop). The paper's finite Figure 6/7 scenario — reproduced exactly by");
    println!("the fig6_transition/fig7_transition bins — drains after eight streams,");
    println!("leaving slack that the delayed policy exploits (6 vs 3 lost there).");
    println!("The prose formula is an approximation; the simulated counts are exact.");
    if delayed_worse > 0 {
        println!(
            "(*) at 100% load the delayed policy can lose MORE than the simple\n\
             one: it keeps salvaging every in-flight group — extra read demand\n\
             at the exact moment no spare slot exists — while the simple policy\n\
             abandons remainders up front. With any idle capacity (the paper's\n\
             setting, and the property-tested regime) delayed dominates."
        );
    }
}
