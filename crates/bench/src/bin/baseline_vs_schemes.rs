//! Quantifies Section 1's motivating claim: "without some form of fault
//! tolerance, such a system is not likely to be acceptable."
//!
//! The same movie plays through the same disk failure (repaired after the
//! paper's one-hour MTTR worth of cycles) on the unprotected baseline and
//! on all four schemes; hiccups per viewer-hour tell the story.

use mms_server::disk::{DiskId, DiskParams};
use mms_server::layout::{
    BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};
use mms_server::sched::{BaselineScheduler, CycleConfig};
use mms_server::sim::{DataMode, FailureEvent, ObjectDirectory, Simulator};
use mms_server::{Scheme, ServerBuilder};

const TRACKS: u64 = 2_000;
const FAIL_AT: u64 = 100;
const REPAIR_AT: u64 = 1_600; // ≳ 1 hour of MPEG-1 cycles (267 ms each)

fn baseline_run() -> (u64, u64) {
    let geo = Geometry::clustered(10, 5).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
    catalog
        .add(MediaObject::new(
            ObjectId(0),
            "m",
            TRACKS,
            BandwidthClass::Mpeg1,
        ))
        .unwrap();
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        mms_server::disk::Bandwidth::from_megabits(1.5),
        1,
        1,
    );
    let sched = BaselineScheduler::new(cfg, catalog);
    let dir = ObjectDirectory::new([(ObjectId(0), TRACKS)], 4);
    let mut sim = Simulator::new(
        sched,
        DiskParams::paper_table1(),
        10,
        DataMode::MetadataOnly,
        dir,
    );
    for _ in 0..4 {
        sim.admit(ObjectId(0)).unwrap();
        sim.step().unwrap();
    }
    for t in 4..2_600u64 {
        if t == FAIL_AT {
            sim.fail_disk_now(DiskId(1), false).unwrap();
        }
        if t == REPAIR_AT {
            sim.repair_disk_now(DiskId(1)).unwrap();
        }
        sim.step().unwrap();
    }
    (sim.metrics().delivered, sim.metrics().total_hiccups())
}

fn scheme_run(scheme: Scheme) -> (u64, u64) {
    let disks = if scheme == Scheme::ImprovedBandwidth {
        8
    } else {
        10
    };
    let mut server = ServerBuilder::new(scheme)
        .disks(disks)
        .parity_group(5)
        .object(MediaObject::new(
            ObjectId(0),
            "m",
            TRACKS,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::MetadataOnly)
        .build()
        .unwrap();
    // Normalize to the baseline's wall clock: its cycle is B/b0; SR and
    // IB cycles are (C−1)x longer, so they run proportionally fewer
    // cycles and the failure window lands at the same simulated time.
    let stretch = {
        let base = DiskParams::paper_table1()
            .cycle_time(1, mms_server::disk::Bandwidth::from_megabits(1.5));
        (server.cycle_config().t_cyc().as_secs() / base.as_secs()).round() as u64
    };
    for _ in 0..4 {
        server.admit(ObjectId(0)).unwrap();
        server.step().unwrap();
    }
    let cycles = 2_600 / stretch;
    let fail_at = (FAIL_AT / stretch).max(5);
    let repair_at = REPAIR_AT / stretch;
    for t in 4..cycles {
        if t == fail_at {
            server
                .inject(FailureEvent::fail(server.cycle(), DiskId(1)))
                .unwrap();
        }
        if t == repair_at {
            server.repair_disk(DiskId(1)).unwrap();
        }
        server.step().unwrap();
    }
    (server.metrics().delivered, server.metrics().total_hiccups())
}

fn main() {
    println!(
        "One disk fails at cycle {FAIL_AT} and is repaired ~1 h later; four\n\
         viewers stream a {TRACKS}-track movie throughout.\n"
    );
    println!(
        "{:<26} {:>10} {:>9} {:>12}",
        "configuration", "delivered", "hiccups", "loss rate"
    );
    let (d, h) = baseline_run();
    println!(
        "{:<26} {:>10} {:>9} {:>11.2}%",
        "no fault tolerance",
        d,
        h,
        100.0 * h as f64 / (d + h) as f64
    );
    for scheme in Scheme::ALL {
        let (d, h) = scheme_run(scheme);
        println!(
            "{:<26} {:>10} {:>9} {:>11.2}%",
            scheme.to_string(),
            d,
            h,
            100.0 * h as f64 / (d + h).max(1) as f64
        );
    }
    println!(
        "\nThe unprotected server hiccups on every rotation past the dead disk\n\
         for the entire repair window — the paper's §1 motivation, measured."
    );
}
