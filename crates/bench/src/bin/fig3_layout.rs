//! Reproduces Figure 3: the Streaming RAID data layout. Three objects
//! X, Y, Z striped over two clusters of five disks (4 data + 1 parity),
//! parity groups placed round-robin.

use mms_server::disk::DiskId;
use mms_server::layout::{
    BandwidthClass, BlockKind, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};

fn main() {
    let geo = Geometry::clustered(10, 5).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 10_000);
    let names = ["X", "Y", "Z"];
    for (i, name) in names.iter().enumerate() {
        catalog
            .add_at(
                MediaObject::new(ObjectId(i as u64), *name, 16, BandwidthClass::Mpeg1),
                0,
            )
            .unwrap();
    }
    println!("Figure 3 — Streaming RAID layout (blocks per disk, global track numbers)\n");
    print!("{:>8}", "");
    for d in 0..10 {
        let role = if geo.is_parity_disk(DiskId(d)) {
            "parity"
        } else {
            "data"
        };
        print!("{:>9}", format!("d{d}/{role}"));
    }
    println!();
    for (i, name) in names.iter().enumerate() {
        print!("{name:>6}: ");
        for d in 0..10u32 {
            let blocks = catalog.blocks_on_disk(DiskId(d));
            let cell: Vec<String> = blocks
                .iter()
                .filter(|b| b.object == ObjectId(i as u64))
                .map(|b| match b.kind {
                    BlockKind::Data(_) => format!("{name}{}", b.track_number(4).unwrap()),
                    BlockKind::Parity => format!("{name}{}p", b.group * 4),
                })
                .collect();
            print!("{:>9}", cell.join(","));
        }
        println!();
    }
    println!("\nCompare: X0..X3 on disks 0-3 with X0p on disk 4; X4..X7 on disks");
    println!("5-8 with X4p on disk 9 — the round-robin of the paper's Figure 3.");
}
