//! Ablation: the Improved-bandwidth scheme's reserved capacity `K_IB`.
//!
//! Section 4: "If the improved bandwidth system is running at capacity
//! with no idle slots, then a disk failure results in degradation of
//! service. However some small amount of idle capacity could be
//! reserved…" This sweep loads the farm to its (reserve-dependent)
//! admission limit, kills one disk, and reports what the shift to the
//! right could and could not absorb.

use mms_server::disk::DiskId;
use mms_server::layout::{BandwidthClass, MediaObject, ObjectId};
use mms_server::sim::{run_batch, DataMode, FailureEvent};
use mms_server::{Parallelism, Scheme, ServerBuilder};

fn run(reserve: usize) -> (usize, u64, u64, u64) {
    let mut server = ServerBuilder::new(Scheme::ImprovedBandwidth)
        .disks(12) // 3 clusters of 4, C = 5
        .parity_group(5)
        .reserved_slots(reserve)
        .object(MediaObject::new(
            ObjectId(0),
            "m",
            100_000,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::MetadataOnly)
        .build()
        .unwrap();
    let m = server.objects()[0];
    // Fill every admission class (streams rotate through clusters, so
    // saturation requires spreading admissions over cycles).
    let mut admitted = 0usize;
    let mut denied_streak = 0;
    while denied_streak < 4 {
        if server.admit(m).is_ok() {
            admitted += 1;
            denied_streak = 0;
        } else {
            denied_streak += 1;
            server.step().unwrap();
        }
    }
    server
        .inject(FailureEvent::fail(server.cycle(), DiskId(0)))
        .unwrap();
    server.run(40).unwrap();
    let metrics = server.metrics();
    (
        admitted,
        metrics.service_degradations,
        metrics.total_hiccups(),
        metrics.reconstructed,
    )
}

fn main() {
    println!("Improved-bandwidth reserve ablation (12 disks, C = 5, full load, one failure)\n");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>14}",
        "reserve", "admitted", "dropped", "hiccups", "reconstructed"
    );
    let reserves = [0usize, 1, 2, 4, 8];
    // Each reserve level is an independent simulation: run the bin's
    // whole sweep over the deterministic worker pool.
    let results = run_batch(Parallelism::Auto, &reserves, |&r| run(r));
    for (reserve, (admitted, dropped, hiccups, reconstructed)) in reserves.into_iter().zip(results)
    {
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>14}",
            reserve, admitted, dropped, hiccups, reconstructed
        );
    }
    println!(
        "\nZero reserve: the shift finds no idle slots and sheds load (the\n\
         paper's degradation of service). Each reserved slot per disk trades\n\
         ~N_C streams of capacity for absorption headroom — Eq. 11's\n\
         (D − K_IB) in operational form."
    );
}
