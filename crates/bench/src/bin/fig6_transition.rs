//! Reproduces Figure 6: the Non-clustered scheme's *simple* transition to
//! degraded mode after disk 2 fails. The paper's lost-track set is
//! {Y1, W2, Y2, U3, W3, Y3} — six tracks: two on the failed disk, four
//! displaced by the shift.

use mms_bench::{figure_name_map, figure_scheduler, FIGURE_FAIL_CYCLE, FIGURE_STARTS};
use mms_server::disk::DiskId;
use mms_server::layout::{BlockKind, ObjectId};
use mms_server::sched::{SchemeScheduler, TransitionPolicy};
use mms_server::sim::trace;

fn main() {
    let mut sched = figure_scheduler(TransitionPolicy::Simple);
    let names = figure_name_map();
    let mut plans = Vec::new();
    let mut lost = Vec::new();
    for t in 0..12u64 {
        for &(obj, at) in &FIGURE_STARTS {
            if at == t {
                sched.admit(ObjectId(obj), at).unwrap();
            }
        }
        if t == FIGURE_FAIL_CYCLE {
            sched.on_disk_failure(DiskId(2), t, false);
        }
        let plan = sched.plan_cycle(t);
        for h in &plan.hiccups {
            if let BlockKind::Data(ix) = h.addr.kind {
                lost.push(format!("{}{} ({})", names[&h.addr.object.0], ix, h.reason));
            }
        }
        plans.push(plan);
    }
    println!("Figure 6 — Non-clustered simple transition (disk 2 fails before cycle 4)\n");
    println!("{}", trace::render_schedule(&plans, 5, &names));
    println!("lost tracks ({}): {}", lost.len(), lost.join(", "));
    println!("\npaper's Figure 6 loses exactly: Y1, W2, Y2, U3, W3, Y3 (6 tracks)");
    assert_eq!(lost.len(), 6, "must reproduce the paper's six lost tracks");
}
