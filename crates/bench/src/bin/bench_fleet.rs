//! Fleet-tier throughput and reliability, written to `BENCH_fleet.json`.
//!
//! One 8-node fleet (chained-declustered catalog, replicated control
//! plane) runs a "million-session day": every node drives its shard of
//! the catalog through the heavy-traffic session engine in
//! `StepMode::EventHorizon`, and the default horizon offers over a
//! million session lifecycles in a single run. The same pass is
//! executed at 1, 2, and 8 worker threads; `bit_identical` records
//! that all three produced byte-for-byte the same shard report and
//! Monte-Carlo estimates, which is the determinism contract and must
//! hold on any host.
//!
//! Alongside throughput, the bench reports the fleet's node-level
//! reliability: Monte-Carlo MTTF (chained declustering dies on an
//! adjacent node pair, the node-level image of the paper's Eq. 5
//! adjacency condition) and MTTDS (the control plane masks
//! `ceil(N/2) - 1` concurrent node failures; one more stalls decrees).
//!
//! Usage: `bench_fleet [output.json] [--quick]`
//!
//! `--quick` shrinks the horizon and trial count for CI smoke runs.

use mms_fleet::{fleet_mttds, fleet_mttf, FleetBuilder, ShardReport, ShardedLoad};
use mms_server::disk::{ReliabilityParams, Time};
use mms_server::sim::{SplitMix64, StepMode};
use mms_server::Parallelism;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SEED: u64 = 1995;
const NODES: usize = 8;
const MOVIES: usize = 32;
const TRACKS: u64 = 100;
const LOAD: f64 = 0.9;
/// Node-level reliability for the Monte-Carlo estimators. Whole nodes
/// fail far more often than the paper's disks (software, power, ops);
/// more importantly the 10:1 MTTF:MTTR ratio keeps trials tractable —
/// MTTDS needs `ceil(N/2)` *concurrent* node outages, which at
/// disk-like ratios is so rare a single trial needs ~1e8 events.
const NODE_MTTF_H: f64 = 1_000.0;
const NODE_MTTR_H: f64 = 100.0;

/// Everything one pass produces; compared verbatim across thread
/// counts (f64s via `to_bits`, so "identical" means identical).
#[derive(Clone, PartialEq)]
struct PassResult {
    report: ShardReport,
    mttf_bits: u64,
    mttds_bits: u64,
}

fn run_pass(threads: usize, cycles: u64, trials: usize) -> PassResult {
    let par = Parallelism::threads(threads);
    let mut fleet = FleetBuilder::new(NODES)
        .catalog(MOVIES, TRACKS)
        .step_mode(StepMode::EventHorizon)
        .parallelism(par)
        .control_seed(SEED)
        .build()
        .expect("bench fleet geometry builds");
    let report = fleet
        .run_sharded_sessions(&ShardedLoad {
            cycles,
            load: LOAD,
            seed: SEED,
            ..ShardedLoad::default()
        })
        .expect("failure-free sharded run cannot error");
    let rel = ReliabilityParams {
        mttf: Time::from_hours(NODE_MTTF_H),
        mttr: Time::from_hours(NODE_MTTR_H),
    };
    let mut rng = SplitMix64::new(SEED);
    let mttf = fleet_mttf(NODES, rel, &mut rng, trials, par);
    let mttds = fleet_mttds(NODES, rel, &mut rng, trials, par);
    PassResult {
        report,
        mttf_bits: mttf.mean.as_hours().to_bits(),
        mttds_bits: mttds.mean.as_hours().to_bits(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".into());
    // ~30 sessions/cycle at this geometry: 50k cycles offers ~1.5M.
    let cycles: u64 = if quick { 1_500 } else { 50_000 };
    let trials: usize = if quick { 50 } else { 2_000 };
    println!(
        "fleet bench: {NODES} nodes, {MOVIES} movies x {TRACKS} tracks, load {LOAD}, \
         {cycles} cycles, {trials} Monte-Carlo trials"
    );

    let mut runs: Vec<(usize, f64, PassResult)> = Vec::new();
    for threads in THREAD_COUNTS {
        #[allow(clippy::disallowed_methods)] // benchmark timing is wall-clock by definition
        let start = Instant::now();
        let pass = run_pass(threads, cycles, trials);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{threads} thread(s): {secs:.2}s, {} session(s) offered",
            pass.report.offered
        );
        runs.push((threads, secs, pass));
    }
    let bit_identical = runs.iter().all(|(_, _, p)| *p == runs[0].2);
    let pass = &runs[0].2;
    let r = pass.report;
    let mttf_h = f64::from_bits(pass.mttf_bits);
    let mttds_h = f64::from_bits(pass.mttds_bits);
    println!("sessions offered  : {}", r.offered);
    println!("fleet MTTF        : {mttf_h:.1} h (adjacent node pair)");
    println!("fleet MTTDS       : {mttds_h:.1} h (control-plane quorum loss)");
    println!("bit-identical across {THREAD_COUNTS:?} threads: {bit_identical}");

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"nodes\": {NODES},\n"));
    json.push_str(&format!(
        "  \"catalog\": \"{MOVIES} movies x {TRACKS} tracks, chained declustering\",\n"
    ));
    json.push_str(&format!("  \"cycles\": {cycles},\n"));
    json.push_str(&format!("  \"load\": {LOAD},\n"));
    json.push_str(&format!("  \"thread_counts\": {THREAD_COUNTS:?},\n"));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str("  \"seconds_per_pass\": {");
    json.push_str(
        &runs
            .iter()
            .map(|(t, s, _)| format!("\"{t}\": {s:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("},\n");
    json.push_str("  \"sessions\": {\n");
    json.push_str(&format!("    \"offered\": {},\n", r.offered));
    json.push_str(&format!("    \"admitted\": {},\n", r.admitted));
    json.push_str(&format!("    \"rejected\": {},\n", r.rejected));
    json.push_str(&format!("    \"balked\": {},\n", r.balked));
    json.push_str(&format!("    \"released_early\": {},\n", r.released_early));
    json.push_str(&format!("    \"delivered_tracks\": {},\n", r.delivered));
    json.push_str(&format!("    \"hiccups\": {}\n", r.hiccups));
    json.push_str("  },\n");
    json.push_str("  \"reliability\": {\n");
    json.push_str(&format!("    \"node_mttf_hours\": {NODE_MTTF_H},\n"));
    json.push_str(&format!("    \"node_mttr_hours\": {NODE_MTTR_H},\n"));
    json.push_str(&format!("    \"trials\": {trials},\n"));
    json.push_str(&format!(
        "    \"fleet_mttf_hours\": {mttf_h:.1},\n    \"fleet_mttds_hours\": {mttds_h:.1}\n"
    ));
    json.push_str("  },\n");
    json.push_str(
        "  \"note\": \"one fleet-wide pass; MTTF = adjacent node pair fatal (chained \
         declustering), MTTDS = ceil(N/2) concurrent node failures stall the control plane\"\n",
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
    if !quick {
        assert!(
            r.offered >= 1_000_000,
            "horizon must offer a million-session day (got {})",
            r.offered
        );
    }
    assert!(
        bit_identical,
        "determinism contract violated: results differ across thread counts"
    );
}
