//! Reproduces Table 2 of the paper: all six metrics for the four schemes
//! at parity-group size C = 5 (Table 1 parameters, D = 100).
//!
//! Paper row (SR): 20.0% / 20.0% / 25684.9 / 25684.9 / 1041 / 10410.

fn main() {
    println!("Table 2 — results with C = 5 (Table 1 parameters, D = 100)\n");
    mms_bench::print_scheme_table(5);
    println!("\nPaper's Table 2 for comparison:");
    println!("  SR: 20.0% 20.0% 25684.9 25684.9 1041 10410");
    println!("  SG: 20.0% 20.0% 25684.9 25684.9  966  3623");
    println!("  NC: 20.0% 20.0% 25684.9 3176862.3  966  2612");
    println!("  IB: 20.0%  3.0% 11415   3176862.3 1263 10104");
}
