//! Ablation: the k′ continuum between Streaming RAID (k′ = C−1) and
//! Staggered-group (k′ = 1).
//!
//! Section 2's efficiency argument: "as k increases, the performance, in
//! terms of the number of streams that can be handled per disk,
//! increases. However, the amount of buffer space required per cycle also
//! increases linearly with k." The paper evaluates only the endpoints;
//! this sweep measures the whole trade-off curve with the
//! GroupedScheduler, for both the paper's bandwidth classes.

use mms_server::analysis::streams::streams_per_disk_bound;
use mms_server::disk::{Bandwidth, DiskParams};
use mms_server::layout::{
    BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};
use mms_server::sched::{CycleConfig, GroupedScheduler, SchemeScheduler};
use mms_server::sim::run_batch;
use mms_server::Parallelism;

const C: usize = 9; // k' ∈ {1, 2, 4, 8}

fn measured_peak(k_prime: usize, b0: Bandwidth) -> (usize, usize) {
    let geo = Geometry::clustered(C, C).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
    catalog
        .add(MediaObject::new(
            ObjectId(0),
            "m",
            400,
            BandwidthClass::Custom(b0),
        ))
        .unwrap();
    let cfg = CycleConfig::new(DiskParams::paper_table1(), b0, C - 1, k_prime);
    let mut s = GroupedScheduler::new(cfg, catalog);
    s.admit(ObjectId(0), 0).unwrap();
    for t in 0..60 {
        s.plan_cycle(t);
    }
    (s.buffer_high_water(), s.stream_capacity())
}

fn main() {
    println!("k' sweep at C = {C} (Table 1 disk; single cluster)\n");
    // The (class, k') grid is embarrassingly parallel: measure all eight
    // points over the deterministic worker pool, then print in order.
    let k_primes = [1usize, 2, 4, 8];
    let classes = [("MPEG-1 (1.5 Mb/s)", 1.5), ("MPEG-2 (4.5 Mb/s)", 4.5)];
    let grid: Vec<(f64, usize)> = classes
        .iter()
        .flat_map(|&(_, mbps)| k_primes.iter().map(move |&k| (mbps, k)))
        .collect();
    let results = run_batch(Parallelism::Auto, &grid, |&(mbps, k_prime)| {
        measured_peak(k_prime, Bandwidth::from_megabits(mbps))
    });
    let mut it = results.into_iter();
    for (label, mbps) in classes {
        let b0 = Bandwidth::from_megabits(mbps);
        println!("{label}:");
        println!(
            "{:>4} {:>14} {:>16} {:>18}",
            "k'", "buffer peak", "stream capacity", "analytic N/D'"
        );
        for k_prime in k_primes {
            let (peak, capacity) = it.next().unwrap();
            // The §2 bound for k = k' at this k'.
            let nd = streams_per_disk_bound(&DiskParams::paper_table1(), b0, k_prime, k_prime);
            println!("{k_prime:>4} {peak:>14} {capacity:>16} {nd:>18.2}");
        }
        println!();
    }
    println!(
        "Buffer peaks climb from C+1 toward 2C−1 per stream while capacity\n\
         climbs with the seek amortization — steep for MPEG-2 (the paper's\n\
         ~15% spread), shallow for MPEG-1 (~5%). The endpoints are exactly\n\
         the Staggered-group and Streaming RAID columns of Table 2."
    );
}
