//! # mms-bench — benchmark and reproduction harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run -p mms-bench --bin <name>`), plus Criterion benches for the
//! performance-critical substrate paths (`cargo bench -p mms-bench`).
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `section2_table` | §2 in-text streams/disk table |
//! | `table2` / `table3` | Tables 2 and 3 (all six metrics, four schemes) |
//! | `fig2_schedule` | Figure 2 (k/k′ read vs transmission cycles) |
//! | `fig3_layout` | Figure 3 (Streaming RAID layout) |
//! | `fig4_memory` | Figure 4 (staggered-group memory profile) |
//! | `fig5_schedule` | Figure 5 (NC normal-mode schedule) |
//! | `fig6_transition` | Figure 6 (NC simple transition) |
//! | `fig7_transition` | Figure 7 (NC delayed transition) |
//! | `fig8_layout` | Figure 8 (improved-bandwidth layout) |
//! | `fig9_cost` | Figure 9(a)+(b) cost and stream sweeps |
//! | `reliability_mc` | §2/§3/§4 MTTF quotes, formula vs Monte Carlo |
//! | `baseline_vs_schemes` | §1's no-fault-tolerance motivation, measured |
//! | `ablation_transition` | NC transition losses across C × failed disk × policy |
//! | `ablation_ib_reserve` | IB reserved capacity vs dropped streams at full load |
//! | `ablation_kprime` | the k′ continuum between SR and SG |
//! | `design_space` | §5 design exercise + §1 mixed-class farm split |

#![forbid(unsafe_code)]

use mms_server::disk::{Bandwidth, DiskId, DiskParams};
use mms_server::layout::{
    BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};
use mms_server::sched::{CycleConfig, NonClusteredScheduler, SchemeScheduler, TransitionPolicy};
use std::collections::BTreeMap;

/// Stream names used by the Figure 5/6/7 scenario.
pub const FIGURE_NAMES: [(u64, &str); 8] = [
    (0, "U"),
    (1, "W"),
    (2, "Y"),
    (3, "A"),
    (4, "C"),
    (5, "E"),
    (6, "G"),
    (7, "I"),
];

/// Admission cycles for the figure streams (mapping the figures' cycle 1
/// to scheduler cycle 4).
pub const FIGURE_STARTS: [(u64, u64); 8] = [
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 4),
    (4, 5),
    (5, 6),
    (6, 7),
    (7, 8),
];

/// The cycle at which disk 2 fails in the figure scenario (the figures'
/// "just before the start of cycle 1").
pub const FIGURE_FAIL_CYCLE: u64 = 4;

/// Build the Figures 5–7 Non-clustered scenario: one cluster of five
/// disks, one slot per disk per cycle, four-track objects.
#[must_use]
pub fn figure_scheduler(policy: TransitionPolicy) -> NonClusteredScheduler {
    let geo = Geometry::clustered(5, 5).expect("5x5 is a valid clustered geometry");
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 10_000);
    for (id, name) in FIGURE_NAMES {
        catalog
            .add(MediaObject::new(
                ObjectId(id),
                name,
                4,
                BandwidthClass::Custom(Bandwidth::from_megabytes(1.0)),
            ))
            .expect("figure objects fit the catalog and have unique ids");
    }
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabytes(1.0),
        1,
        1,
    );
    NonClusteredScheduler::new(cfg, catalog, policy, 1)
}

/// Tracks lost during the Non-clustered degraded-mode transition: one
/// fully-loaded cluster of size `c` with one stream per phase, disk `f`
/// failing while each phase is mid-group. Used by the
/// `ablation_transition` grid and the `bench_parallel` harness.
#[must_use]
pub fn nc_transition_losses(c: usize, f: u32, policy: TransitionPolicy) -> usize {
    let geo = Geometry::clustered(c, c).expect("square clustered geometry is valid for c >= 2");
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
    let bpg = c - 1;
    for i in 0..(3 * bpg) as u64 {
        catalog
            .add(MediaObject::new(
                ObjectId(i),
                format!("s{i}"),
                bpg as u64,
                BandwidthClass::Custom(Bandwidth::from_megabytes(1.0)),
            ))
            .expect("transition objects fit the catalog and have unique ids");
    }
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabytes(1.0),
        1,
        1,
    );
    let mut sched = NonClusteredScheduler::new(cfg, catalog, policy, 1);
    let fail_at = bpg as u64;
    let mut next_obj = 0u64;
    let mut lost = 0usize;
    for t in 0..(4 * bpg as u64) {
        // One new stream starts every cycle from cycle 1 on, keeping
        // every phase busy by the time the failure strikes.
        if t >= 1 && next_obj < (3 * bpg) as u64 {
            sched
                .admit(ObjectId(next_obj), t)
                .expect("one stream per phase stays within admission capacity");
            next_obj += 1;
        }
        if t == fail_at {
            sched.on_disk_failure(DiskId(f), t, false);
        }
        lost += sched.plan_cycle(t).hiccups.len();
    }
    lost
}

/// The figure name map for trace rendering.
#[must_use]
pub fn figure_name_map() -> BTreeMap<u64, &'static str> {
    FIGURE_NAMES.into_iter().collect()
}

/// Print a Table 2/3-style metrics table for parity-group size `c` to
/// stdout, returning the rows.
pub fn print_scheme_table(c: usize) -> Vec<mms_server::analysis::TableRow> {
    use mms_server::analysis::{table_rows, SchemeParams, SystemParams};
    let sys = SystemParams::paper_table1();
    let rows = table_rows(&sys, &SchemeParams::paper_tables(c));
    println!(
        "{:<20} {:>9} {:>9} {:>12} {:>14} {:>8} {:>9}",
        "scheme", "stor ovhd", "bw ovhd", "MTTF (yr)", "MTTDS (yr)", "streams", "buffers"
    );
    for row in &rows {
        println!(
            "{:<20} {:>8.1}% {:>8.1}% {:>12.1} {:>14.1} {:>8} {:>9}",
            row.scheme.to_string(),
            row.storage_overhead * 100.0,
            row.bandwidth_overhead * 100.0,
            row.mttf_years,
            row.mttds_years,
            row.streams,
            row.buffers_tracks
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_server::sched::SchemeScheduler;

    #[test]
    fn figure_scenario_builds() {
        let mut s = figure_scheduler(TransitionPolicy::Simple);
        for (obj, at) in FIGURE_STARTS.iter().take(3) {
            s.admit(ObjectId(*obj), *at).unwrap();
        }
        assert_eq!(s.active_streams(), 3);
        assert_eq!(s.config().slots_per_disk(), 1);
    }
}
