//! Full simulator step throughput: verified (real XOR over synthetic
//! bytes) vs metadata-only, on a degraded cluster so every cycle
//! reconstructs.

use criterion::{criterion_group, criterion_main, Criterion};
use mms_server::disk::DiskId;
use mms_server::layout::{BandwidthClass, MediaObject, ObjectId};
use mms_server::sim::{DataMode, FailureEvent};
use mms_server::{Scheme, ServerBuilder};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_step");
    for (label, mode) in [
        (
            "verified_50kb",
            DataMode::Verified {
                track_bytes: 50_000,
            },
        ),
        ("metadata_only", DataMode::MetadataOnly),
    ] {
        let mut server = ServerBuilder::new(Scheme::StreamingRaid)
            .disks(100)
            .parity_group(5)
            .object(MediaObject::new(
                ObjectId(0),
                "m",
                1_000_000, // long enough that streams outlive the run
                BandwidthClass::Mpeg1,
            ))
            .data_mode(mode)
            .build()
            .unwrap();
        let m = server.objects()[0];
        for _ in 0..20 {
            let _ = server.admit(m);
        }
        server
            .inject(FailureEvent::fail(server.cycle(), DiskId(1)))
            .unwrap();
        group.bench_function(label, |b| b.iter(|| server.step().unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
