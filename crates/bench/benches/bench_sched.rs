//! Scheduler cycle-planning throughput at Table-2 scale (D = 100,
//! C = 5, near-capacity stream population) for all four schemes. One
//! plan per T_cyc (0.27-1.07 s) is the real-time budget; these run in
//! microseconds to milliseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use mms_server::layout::{BandwidthClass, MediaObject, ObjectId};
use mms_server::sim::DataMode;
use mms_server::{MultimediaServer, Scheme, ServerBuilder};

fn capacity_server(scheme: Scheme) -> MultimediaServer {
    let disks = if scheme == Scheme::ImprovedBandwidth {
        96
    } else {
        100
    };
    let mut s = ServerBuilder::new(scheme)
        .disks(disks)
        .parity_group(5)
        .object(MediaObject::new(
            ObjectId(0),
            "m",
            100_000,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::MetadataOnly)
        .build()
        .unwrap();
    let m = s.objects()[0];
    // Fill to capacity, spreading admissions over cycles for balance.
    let mut denied = 0;
    while denied < 64 {
        if s.admit(m).is_err() {
            denied += 1;
            s.step().unwrap();
        }
    }
    s
}

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cycle_at_capacity");
    for scheme in Scheme::ALL {
        let mut server = capacity_server(scheme);
        group.bench_function(scheme.abbrev(), |b| {
            b.iter(|| server.step().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
