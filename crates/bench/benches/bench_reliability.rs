//! Monte-Carlo reliability trial rate: one trial simulates the full
//! failure/repair history of a disk farm until catastrophe.

use criterion::{criterion_group, criterion_main, Criterion};
use mms_server::disk::{ReliabilityParams, Time};
use mms_server::reliability::{CatastropheRule, MonteCarlo};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_reliability(c: &mut Criterion) {
    let fast = ReliabilityParams {
        mttf: Time::from_hours(1_000.0),
        mttr: Time::from_hours(1.0),
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mc = MonteCarlo {
        d: 20,
        rel: fast,
        rule: CatastropheRule::SameCluster { c: 5 },
    };
    c.bench_function("mc_trial_same_cluster_d20", |b| {
        b.iter(|| mc.trial(&mut rng))
    });
}

criterion_group!(benches, bench_reliability);
criterion_main!(benches);
