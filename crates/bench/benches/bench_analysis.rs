//! Analytical-model evaluation cost: generating the paper's tables and
//! the Figure 9 sweep (these back the `table2`/`table3`/`fig9_cost`
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use mms_server::analysis::{fig9_rows, table_rows, CostModel, SchemeParams, SystemParams};

fn bench_analysis(c: &mut Criterion) {
    let sys = SystemParams::paper_table1();
    c.bench_function("table_rows_c5", |b| {
        b.iter(|| table_rows(&sys, &SchemeParams::paper_tables(5)))
    });
    let model = CostModel::paper_fig9();
    c.bench_function("fig9_sweep_2_to_10", |b| {
        b.iter(|| fig9_rows(&sys, &model, 2..=10))
    });
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
