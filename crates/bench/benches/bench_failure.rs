//! Failure-handling latency: how long a scheduler takes to compute its
//! reaction to a disk failure at Table-2 scale. Observation 2 gives the
//! XOR a whole cycle of slack; the *planning* must be similarly cheap for
//! the degraded switch to be seamless.

use criterion::{criterion_group, criterion_main, Criterion};
use mms_server::disk::{Bandwidth, DiskId, DiskParams};
use mms_server::layout::{
    BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};
use mms_server::sched::{CycleConfig, NonClusteredScheduler, SchemeScheduler, TransitionPolicy};

fn loaded_nc(policy: TransitionPolicy) -> (NonClusteredScheduler, u64) {
    let geo = Geometry::clustered(100, 5).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 1_000_000);
    catalog
        .add(MediaObject::new(
            ObjectId(0),
            "m",
            1_000_000,
            BandwidthClass::Mpeg1,
        ))
        .unwrap();
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabits(1.5),
        1,
        1,
    );
    let mut s = NonClusteredScheduler::new(cfg, catalog, policy, 5);
    // Fill to capacity (Table 2's 966-ish streams).
    let mut t = 0u64;
    let mut denied = 0;
    while denied < 8 {
        if s.admit(ObjectId(0), t).is_ok() {
            denied = 0;
        } else {
            denied += 1;
            s.plan_cycle(t);
            t += 1;
        }
    }
    (s, t)
}

fn bench_failure(c: &mut Criterion) {
    let mut group = c.benchmark_group("nc_failure_transition");
    for policy in [TransitionPolicy::Simple, TransitionPolicy::Delayed] {
        group.bench_function(format!("{policy:?}"), |b| {
            b.iter_batched(
                || loaded_nc(policy),
                |(mut s, next_cycle)| {
                    let _ = s.on_disk_failure(DiskId(2), next_cycle, false);
                    s
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_failure);
criterion_main!(benches);
