//! Layout and catalog throughput: block placement is on the per-cycle
//! planning path (every read resolves one), and catalog registration is
//! the tertiary staging path.

use criterion::{criterion_group, criterion_main, Criterion};
use mms_server::layout::{
    BandwidthClass, Catalog, ClusteredLayout, Geometry, ImprovedLayout, Layout, MediaObject,
    ObjectId,
};

fn bench_layout(c: &mut Criterion) {
    let clustered = ClusteredLayout::new(Geometry::clustered(1000, 10).unwrap());
    let improved = ImprovedLayout::new(Geometry::improved(999, 10).unwrap());
    c.bench_function("placement_clustered_1000_disks", |b| {
        let mut g = 0u64;
        b.iter(|| {
            g = g.wrapping_add(1);
            std::hint::black_box(clustered.data_placement(7, g, (g % 9) as u32))
        })
    });
    c.bench_function("placement_improved_999_disks", |b| {
        let mut g = 0u64;
        b.iter(|| {
            g = g.wrapping_add(1);
            std::hint::black_box(improved.parity_placement(7, g))
        })
    });
    c.bench_function("catalog_register_90min_movie", |b| {
        let mut next = 0u64;
        let mut catalog = Catalog::new(clustered, u64::MAX);
        b.iter(|| {
            let obj = MediaObject::new(
                ObjectId(next),
                "m",
                20_250, // 90-minute MPEG-1 feature
                BandwidthClass::Mpeg1,
            );
            next += 1;
            catalog.add(obj).unwrap();
        })
    });
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
