//! XOR codec throughput: the feasibility basis of Observation 2 ("the
//! exclusive OR calculations can be carried out in a short enough time
//! that the reconstructed data can be delivered to the viewer with no
//! interruption"). A 50 KB track at MPEG-1 rate must be reconstructed in
//! well under its 267 ms cycle; this bench shows the codec is orders of
//! magnitude faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mms_server::parity::{codec, Block, XorAccumulator};

fn bench_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("parity");
    for &members in &[4usize, 9] {
        let track = 50_000usize; // 50 KB tracks, as in Table 1
        let blocks: Vec<Block> = (0..members as u64)
            .map(|i| Block::synthetic(1, i, track))
            .collect();
        let parity = codec::parity_of(blocks.iter());
        group.throughput(Throughput::Bytes((track * members) as u64));
        group.bench_with_input(
            BenchmarkId::new("encode_group", members),
            &blocks,
            |b, blocks| b.iter(|| codec::parity_of(blocks.iter())),
        );
        group.bench_with_input(
            BenchmarkId::new("reconstruct_one", members),
            &(blocks.clone(), parity.clone()),
            |b, (blocks, parity)| b.iter(|| codec::reconstruct(1, blocks, parity).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("delayed_accumulate", members),
            &blocks,
            |b, blocks| {
                b.iter(|| {
                    let mut acc = XorAccumulator::new(track);
                    for blk in &blocks[..members - 1] {
                        acc.absorb(blk);
                    }
                    acc.finish_reconstruct([&blocks[members - 1]], &parity)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parity);
criterion_main!(benches);
