//! The `k′` continuum between Streaming RAID and Staggered-group.
//!
//! Section 2 generalizes the cycle: "if `k` disk storage units are read in
//! a cycle for a stream, where `k` is an integer multiple of `k′`, then
//! the data read in one 'read cycle' is delivered in the next `k/k′`
//! cycles" (Figure 2), and notes that the buffer-vs-bandwidth trade-offs
//! of intermediate groupings are studied in the GSS work it cites [3].
//! The paper then evaluates only the endpoints: `k′ = C−1` (Streaming
//! RAID) and `k′ = 1` (Staggered-group).
//!
//! [`GroupedScheduler`] fills in the middle: one scheduler parameterized
//! by `k′ | C−1`, reading a full parity group per read cycle (so failure
//! masking is exactly SR/SG's) and transmitting `k′` tracks per cycle.
//! Larger `k′` buys slot efficiency (fewer, longer cycles amortize the
//! seek) at the price of buffer space; the `ablation_kprime` bench sweeps
//! it.

use crate::cycle::CycleConfig;
use crate::plan::{CyclePlan, Delivery, LossReason, LostBlock, PlannedRead, ReadPurpose};
use crate::streams::{StreamId, StreamInfo};
use crate::traits::{AdmissionError, FailureReport, PlanStability, SchemeKind, SchemeScheduler};
use mms_buffer::{BufferPool, OwnerId};
use mms_disk::DiskId;
use mms_layout::{Catalog, ClusterId, ClusteredLayout, Layout, ObjectId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-stream state.
#[derive(Debug, Clone)]
struct GrStream {
    object: ObjectId,
    start_cluster: u32,
    groups: u64,
    tracks: u64,
    start_cycle: u64,
    class: (u32, u32),
    delivered: u64,
    lost: u64,
    reconstructed: Option<u32>,
    hiccups: Vec<u32>,
    parity_held: bool,
}

/// A grouped-sweeping-style scheduler: whole-group reads every `k/k′`
/// cycles, `k′` tracks transmitted per cycle. `k′ = C−1` reproduces
/// Streaming RAID's timing; `k′ = 1` reproduces Staggered-group's.
#[derive(Debug)]
pub struct GroupedScheduler {
    config: CycleConfig,
    catalog: Catalog<ClusteredLayout>,
    streams: BTreeMap<StreamId, GrStream>,
    failed: BTreeMap<ClusterId, BTreeSet<u32>>,
    buffers: BufferPool,
    next_stream: u64,
    next_cycle: u64,
    /// Plan epoch: bumped by admit/release/failure/repair (see
    /// [`SchemeScheduler::plan_epoch`]).
    epoch: u64,
    /// Reusable per-cycle id snapshot (plan_cycle_into must not allocate).
    ids_scratch: Vec<StreamId>,
    /// Recycled hiccup vectors: each read cycle swaps a stream's old
    /// hiccup list for a pooled one instead of allocating.
    hiccup_pool: Vec<Vec<u32>>,
}

impl GroupedScheduler {
    /// Build a scheduler with the given `k′` (must divide `C−1`).
    ///
    /// # Panics
    /// Panics unless `config.k = C−1` and `config.k_prime` divides it.
    #[must_use]
    pub fn new(config: CycleConfig, catalog: Catalog<ClusteredLayout>) -> Self {
        let c = catalog.layout().geometry().group_size() as usize;
        assert_eq!(config.k, c - 1, "grouped scheduling reads whole groups");
        assert_eq!(
            (c - 1) % config.k_prime,
            0,
            "k' must divide C−1 so read cycles align with group boundaries"
        );
        GroupedScheduler {
            config,
            catalog,
            streams: BTreeMap::new(),
            failed: BTreeMap::new(),
            buffers: BufferPool::unbounded(),
            next_stream: 0,
            next_cycle: 0,
            epoch: 0,
            ids_scratch: Vec::new(),
            hiccup_pool: Vec::new(),
        }
    }

    /// The catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog<ClusteredLayout> {
        &self.catalog
    }

    fn period(&self) -> u64 {
        self.config.read_period() as u64
    }

    fn blocks_in_group(&self, tracks: u64, g: u64) -> u32 {
        let bpg = u64::from(self.catalog.layout().blocks_per_group());
        (tracks - g * bpg).min(bpg) as u32
    }

    fn class_of(&self, h: u32, at_cycle: u64) -> (u32, u32) {
        let period = self.period();
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        let r = (at_cycle % period) as u32;
        let q = at_cycle / period;
        (r, ((u64::from(h) + nc - (q % nc)) % nc) as u32)
    }
}

impl SchemeScheduler for GroupedScheduler {
    fn scheme(&self) -> SchemeKind {
        // The endpoints are the named schemes; report by timing.
        if self.config.k_prime == self.config.k {
            SchemeKind::StreamingRaid
        } else {
            SchemeKind::StaggeredGroup
        }
    }

    fn config(&self) -> &CycleConfig {
        &self.config
    }

    fn admit(&mut self, object: ObjectId, at_cycle: u64) -> Result<StreamId, AdmissionError> {
        assert!(at_cycle >= self.next_cycle, "cannot admit into the past");
        let placed = self
            .catalog
            .get(object)
            .map_err(|_| AdmissionError::UnknownObject { object })?;
        let class = self.class_of(placed.start_cluster, at_cycle);
        let period = self.period();
        let load = self
            .streams
            .values()
            .filter(|s| s.class == class && s.start_cycle + s.groups * period > at_cycle)
            .count();
        if load >= self.config.slots_per_disk() {
            return Err(AdmissionError::AtCapacity {
                active: self.streams.len(),
                limit: self.stream_capacity(),
            });
        }
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.epoch += 1;
        self.streams.insert(
            id,
            GrStream {
                object,
                start_cluster: placed.start_cluster,
                groups: placed.groups,
                tracks: placed.object.tracks,
                start_cycle: at_cycle,
                class,
                delivered: 0,
                lost: 0,
                reconstructed: None,
                hiccups: Vec::new(),
                parity_held: false,
            },
        );
        Ok(id)
    }

    fn stream_capacity(&self) -> usize {
        self.config.slots_per_disk()
            * self.config.read_period()
            * self.catalog.layout().geometry().clusters() as usize
    }

    fn active_streams(&self) -> usize {
        self.streams.len()
    }

    fn stream_info(&self, id: StreamId) -> Option<StreamInfo> {
        self.streams.get(&id).map(|s| StreamInfo {
            id,
            object: s.object,
            admitted_at: s.start_cycle,
            groups: s.groups,
            next_group: (self.next_cycle.saturating_sub(s.start_cycle) / self.period())
                .min(s.groups),
            delivered_tracks: s.delivered,
            lost_tracks: s.lost,
        })
    }

    fn release(&mut self, id: StreamId) -> bool {
        let period = self.period();
        let Some(st) = self.streams.get_mut(&id) else {
            return false;
        };
        self.epoch += 1;
        // Group g is read at `start + g·period`, so the resident count
        // is the ceiling of the elapsed span over the period.
        let elapsed = self.next_cycle.saturating_sub(st.start_cycle);
        let read = elapsed.div_ceil(period);
        if read == 0 {
            // Nothing read yet: retire immediately. Admission counts
            // live streams directly, so no class bookkeeping to undo.
            self.streams.remove(&id);
            self.buffers.free_all(OwnerId(id.0));
            return true;
        }
        // Truncate to what was read; the in-flight group drains and the
        // normal finish path in pass 2 retires the stream.
        st.groups = st.groups.min(read);
        true
    }

    fn plan_cycle_into(&mut self, cycle: u64, plan: &mut CyclePlan) {
        assert_eq!(cycle, self.next_cycle, "cycles must be planned in order");
        self.next_cycle += 1;
        plan.reset(cycle);
        let layout = *self.catalog.layout();
        let geometry = *layout.geometry();
        let period = self.period();
        let k_prime = self.config.k_prime as u64;

        // Snapshot stream ids into the reusable scratch so the passes
        // can mutate `self.streams` without holding a borrow on it.
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        ids.extend(self.streams.keys().copied());

        // Pass 1 — whole-group reads at each stream's read cycles.
        for id in ids.iter().copied() {
            // Copy the scalar fields instead of cloning the entry: the
            // hiccups vector makes a full clone allocate under failures.
            let (object, start_cluster, groups, tracks, start_cycle) = {
                let s = &self.streams[&id];
                (s.object, s.start_cluster, s.groups, s.tracks, s.start_cycle)
            };
            if cycle < start_cycle || !(cycle - start_cycle).is_multiple_of(period) {
                continue;
            }
            let g = (cycle - start_cycle) / period;
            if g >= groups {
                continue;
            }
            let blocks = self.blocks_in_group(tracks, g);
            let cluster = layout.data_cluster(start_cluster, g);
            let failed = self.failed.get(&cluster);
            let parity_pos = geometry.disks_per_cluster() - 1;
            let parity_ok = failed.is_none_or(|f| !f.contains(&parity_pos));
            let mut reconstructed = None;
            let mut hiccups = self.hiccup_pool.pop().unwrap_or_default();
            hiccups.clear();
            let mut reads = 0usize;
            for i in 0..blocks {
                let p = layout.data_placement(start_cluster, g, i);
                let pos = geometry.position_in_cluster(p.disk);
                if failed.is_some_and(|f| f.contains(&pos)) {
                    if failed.map_or(0, std::collections::BTreeSet::len) == 1 && parity_ok {
                        reconstructed = Some(i);
                    } else {
                        hiccups.push(i);
                    }
                } else {
                    plan.push_read(
                        p.disk,
                        PlannedRead {
                            stream: id,
                            addr: mms_layout::BlockAddr::data(object, g, i),
                            purpose: ReadPurpose::Delivery,
                        },
                    );
                    reads += 1;
                }
            }
            if parity_ok {
                let pp = layout.parity_placement(start_cluster, g);
                plan.push_read(
                    pp.disk,
                    PlannedRead {
                        stream: id,
                        addr: mms_layout::BlockAddr::parity(object, g),
                        purpose: ReadPurpose::Parity,
                    },
                );
                reads += 1;
            }
            self.buffers
                .alloc(OwnerId(id.0), reads)
                .expect("unbounded pool never refuses an allocation");
            let st = self
                .streams
                .get_mut(&id)
                .expect("stream id snapshot only holds live streams");
            st.parity_held = parity_ok && reconstructed.is_none();
            st.reconstructed = reconstructed;
            let retired = std::mem::replace(&mut st.hiccups, hiccups);
            self.hiccup_pool.push(retired);
        }

        // Pass 2 — deliver k' tracks per cycle, offset one cycle after
        // the read cycle, and free per delivery.
        for id in ids.iter().copied() {
            // Scalar copies again: the mutable re-borrow in the loop body
            // must not overlap a borrow of the stream entry.
            let Some((object, groups, tracks, start_cycle)) = self
                .streams
                .get(&id)
                .map(|s| (s.object, s.groups, s.tracks, s.start_cycle))
            else {
                continue;
            };
            if cycle < start_cycle + 1 {
                continue;
            }
            let rel = cycle - start_cycle - 1;
            let g = rel / period;
            if g >= groups {
                continue;
            }
            let blocks = self.blocks_in_group(tracks, g);
            let first = (rel % period) * k_prime;
            for i in first..(first + k_prime).min(u64::from(blocks)) {
                let i = i as u32;
                let addr = mms_layout::BlockAddr::data(object, g, i);
                let st = self
                    .streams
                    .get_mut(&id)
                    .expect("pass 2 checks the stream is still live above");
                if st.hiccups.contains(&i) {
                    plan.hiccups.push(LostBlock {
                        stream: id,
                        addr,
                        reason: LossReason::FailedDisk,
                        delivery_cycle: cycle,
                    });
                    st.lost += 1;
                } else {
                    plan.deliveries.push(Delivery {
                        stream: id,
                        addr,
                        reconstructed: st.reconstructed == Some(i),
                    });
                    st.delivered += 1;
                    self.buffers
                        .free(OwnerId(id.0), 1)
                        .expect("every delivered block was allocated at its read cycle");
                }
                if g + 1 == st.groups && u64::from(i) + 1 >= u64::from(blocks) {
                    plan.finished.push(id);
                    self.streams.remove(&id);
                    self.buffers.free_all(OwnerId(id.0));
                    break;
                }
            }
        }

        // End of cycle: release parity for groups fully read this cycle
        // (once resident, the group no longer needs it). Refill the
        // snapshot: pass 2 may have retired streams.
        ids.clear();
        ids.extend(self.streams.keys().copied());
        for id in ids.iter().copied() {
            let s = self
                .streams
                .get(&id)
                .expect("stream id snapshot only holds live streams");
            if cycle >= s.start_cycle
                && (cycle - s.start_cycle).is_multiple_of(period)
                && s.parity_held
            {
                let st = self
                    .streams
                    .get_mut(&id)
                    .expect("stream id snapshot only holds live streams");
                st.parity_held = false;
                self.buffers
                    .free(OwnerId(id.0), 1)
                    .expect("parity_held implies a parity buffer is allocated");
            }
        }
        self.ids_scratch = ids;
    }

    fn on_disk_failure(&mut self, disk: DiskId, _cycle: u64, _mid_cycle: bool) -> FailureReport {
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        self.epoch += 1;
        let entry = self.failed.entry(cluster).or_default();
        entry.insert(pos);
        FailureReport {
            degraded_clusters: vec![cluster],
            catastrophic: entry.len() >= 2,
            ..FailureReport::default()
        }
    }

    fn on_disk_repair(&mut self, disk: DiskId, _cycle: u64) {
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        self.epoch += 1;
        if let Some(set) = self.failed.get_mut(&cluster) {
            set.remove(&pos);
            if set.is_empty() {
                self.failed.remove(&cluster);
            }
        }
    }

    fn buffer_in_use(&self) -> usize {
        self.buffers.in_use()
    }

    fn buffer_high_water(&self) -> usize {
        self.buffers.high_water()
    }

    fn plan_stability(&self, cycle: u64) -> PlanStability {
        // Whole-group reads recur every `read_period` cycles over a
        // rotation of N_C clusters.
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        let period = self.period() * nc;
        if !self.failed.is_empty() {
            return PlanStability { period, stable: 0 };
        }
        let mut stable = u64::MAX;
        for s in self.streams.values() {
            if cycle <= s.start_cycle {
                return PlanStability { period, stable: 0 };
            }
            // End the window before the final (possibly partial) group
            // is read at start + (groups − 1)·read_period.
            let final_read = s.start_cycle + (s.groups - 1) * self.period();
            stable = stable.min(final_read.saturating_sub(cycle));
        }
        PlanStability { period, stable }
    }

    fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(self.failed.is_empty(), "fast_forward in degraded mode");
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        debug_assert_eq!(cycles % (self.period() * nc), 0, "not a whole rotation");
        self.next_cycle += cycles;
        // k' tracks delivered per stream per steady cycle; parity is
        // released at the end of each read cycle, so the pending fields
        // are quiescent.
        let k_prime = self.config.k_prime as u64;
        for s in self.streams.values_mut() {
            s.delivered += cycles * k_prime;
        }
    }

    fn plan_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_disk::{Bandwidth, DiskParams};
    use mms_layout::{BandwidthClass, Geometry, MediaObject};

    /// C = 9 gives k' ∈ {1, 2, 4, 8}: a real sweep range.
    fn make(k_prime: usize) -> GroupedScheduler {
        let geo = Geometry::clustered(9, 9).unwrap();
        let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
        catalog
            .add(MediaObject::new(
                ObjectId(0),
                "m",
                240,
                BandwidthClass::Mpeg1,
            ))
            .unwrap();
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            8,
            k_prime,
        );
        GroupedScheduler::new(cfg, catalog)
    }

    #[test]
    fn endpoints_match_named_schemes() {
        assert_eq!(make(8).scheme(), SchemeKind::StreamingRaid);
        assert_eq!(make(1).scheme(), SchemeKind::StaggeredGroup);
        assert_eq!(make(4).scheme(), SchemeKind::StaggeredGroup);
    }

    #[test]
    fn every_k_prime_delivers_everything() {
        for k_prime in [1usize, 2, 4, 8] {
            let mut s = make(k_prime);
            let id = s.admit(ObjectId(0), 0).unwrap();
            let mut delivered = 0u64;
            let mut t = 0;
            while s.stream_info(id).is_some() {
                delivered += s.plan_cycle(t).deliveries.len() as u64;
                t += 1;
                assert!(t < 10_000, "k'={k_prime} never finished");
            }
            assert_eq!(delivered, 240, "k'={k_prime}");
        }
    }

    #[test]
    fn buffer_peak_grows_with_k_prime() {
        // Per stream, peak occupancy interpolates between the SG and SR
        // endpoints: more tracks per transmission cycle means more of the
        // group is resident at once for less time.
        let mut peaks = Vec::new();
        for k_prime in [1usize, 2, 4, 8] {
            let mut s = make(k_prime);
            s.admit(ObjectId(0), 0).unwrap();
            for t in 0..40 {
                s.plan_cycle(t);
            }
            peaks.push(s.buffer_high_water());
        }
        for w in peaks.windows(2) {
            assert!(w[1] >= w[0], "{peaks:?}");
        }
        // SG endpoint: C + 1 = 10. SR endpoint: 2C − 1 = 17 — one less
        // than the StreamingRaidScheduler's 2C because this scheduler
        // releases parity as soon as the group is resident (the paper's
        // 2C count holds it through delivery; both are valid bookkeeping,
        // the paper's being the conservative one).
        assert_eq!(peaks[0], 10, "{peaks:?}");
        assert_eq!(peaks[3], 17, "{peaks:?}");
    }

    #[test]
    fn slot_efficiency_grows_with_k_prime() {
        // Longer cycles amortize the seek: slots per read-period rise
        // with k' (the §2 efficiency argument behind large k).
        let mut per_stream_capacity = Vec::new();
        for k_prime in [1usize, 2, 4, 8] {
            let s = make(k_prime);
            per_stream_capacity.push(s.stream_capacity());
        }
        for w in per_stream_capacity.windows(2) {
            assert!(w[1] >= w[0], "{per_stream_capacity:?}");
        }
    }

    #[test]
    fn failures_are_masked_at_every_k_prime() {
        for k_prime in [1usize, 2, 4, 8] {
            let mut s = make(k_prime);
            let id = s.admit(ObjectId(0), 0).unwrap();
            s.on_disk_failure(DiskId(3), 0, false);
            let mut t = 0;
            let mut reconstructed = 0;
            while s.stream_info(id).is_some() {
                let p = s.plan_cycle(t);
                assert!(p.hiccups.is_empty(), "k'={k_prime} cycle {t}");
                reconstructed += p.deliveries.iter().filter(|d| d.reconstructed).count();
                t += 1;
                assert!(t < 10_000);
            }
            assert!(reconstructed > 0, "k'={k_prime}");
        }
    }
}
