//! Stream identity and bookkeeping shared by all schedulers.

use mms_layout::ObjectId;
use std::fmt;

/// Identifier of an active stream. "We will use the term *stream* to refer
/// to the delivery of a given object at a given time. So two deliveries of
/// the same object but offset in time are two different streams."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Public snapshot of a stream's progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamInfo {
    /// The stream.
    pub id: StreamId,
    /// The object being delivered.
    pub object: ObjectId,
    /// Cycle at which delivery was admitted.
    pub admitted_at: u64,
    /// Parity groups of the object in total.
    pub groups: u64,
    /// Next parity group to read (== `groups` when reading is done).
    pub next_group: u64,
    /// Data tracks delivered so far.
    pub delivered_tracks: u64,
    /// Data tracks lost to failures so far (hiccups experienced).
    pub lost_tracks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(StreamId(42).to_string(), "s42");
    }
}
