//! The no-redundancy baseline the paper's Section 1 argues against.
//!
//! "Given the architecture illustrated in Figure 1, a disk failure does
//! not result in data loss … However, a disk failure can result in
//! interruption of requests in progress. … a single disk failure can
//! cause multiple hiccups in the display of many objects. These hiccups
//! will repeat at regular intervals each time an object being displayed
//! needs data from the failed disk. … Therefore, without some form of
//! fault tolerance, such a system is not likely to be acceptable."
//!
//! [`BaselineScheduler`] is that strawman: simple striping over **all**
//! disks with no parity at all (`k = k' = 1`, like the Non-clustered
//! scheme's normal mode, but with nothing to fall back on). Every block
//! on a failed disk is a hiccup, repeating every rotation until repair —
//! the quantitative foil for every scheme in the comparison benches.

use crate::cycle::CycleConfig;
use crate::plan::{CyclePlan, Delivery, LossReason, LostBlock, PlannedRead, ReadPurpose};
use crate::streams::{StreamId, StreamInfo};
use crate::traits::{AdmissionError, FailureReport, PlanStability, SchemeKind, SchemeScheduler};
use mms_buffer::{BufferPool, OwnerId};
use mms_disk::DiskId;
use mms_layout::{BlockAddr, Catalog, ClusteredLayout, Layout, ObjectId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-stream state. All fields are scalars, so the snapshot taken by
/// `plan_cycle_into` is a plain copy — no heap traffic on the hot path.
#[derive(Debug, Clone, Copy)]
struct BlStream {
    object: ObjectId,
    start_cluster: u32,
    groups: u64,
    tracks: u64,
    start_cycle: u64,
    class: (u32, u32),
    delivered: u64,
    lost: u64,
}

/// The unprotected striped server (no parity reads, no reconstruction,
/// no degraded mode — failures simply punch holes in delivery).
///
/// Uses the same clustered layout as SR/SG/NC so comparisons are
/// apples-to-apples; the dedicated parity disks exist on the layout but
/// are never read, exactly as they would be absent in a truly parity-free
/// layout (the data-disk schedule is identical either way).
#[derive(Debug)]
pub struct BaselineScheduler {
    config: CycleConfig,
    catalog: Catalog<ClusteredLayout>,
    streams: BTreeMap<StreamId, BlStream>,
    failed_disks: BTreeSet<DiskId>,
    buffers: BufferPool,
    next_stream: u64,
    next_cycle: u64,
    /// Plan epoch: bumped by admit/release/failure/repair (see
    /// [`SchemeScheduler::plan_epoch`]).
    epoch: u64,
    /// Reusable per-cycle id snapshot (plan_cycle_into must not allocate).
    ids_scratch: Vec<StreamId>,
}

impl BaselineScheduler {
    /// Build over a populated catalog; requires `k = k' = 1`.
    ///
    /// # Panics
    /// Panics unless `k = k' = 1`.
    #[must_use]
    pub fn new(config: CycleConfig, catalog: Catalog<ClusteredLayout>) -> Self {
        assert_eq!(config.k, 1, "baseline uses k = 1");
        assert_eq!(config.k_prime, 1, "baseline uses k' = 1");
        BaselineScheduler {
            config,
            catalog,
            streams: BTreeMap::new(),
            failed_disks: BTreeSet::new(),
            buffers: BufferPool::unbounded(),
            next_stream: 0,
            next_cycle: 0,
            epoch: 0,
            ids_scratch: Vec::new(),
        }
    }

    /// The catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog<ClusteredLayout> {
        &self.catalog
    }

    fn bpg(&self) -> u64 {
        u64::from(self.catalog.layout().blocks_per_group())
    }

    fn class_of(&self, h: u32, at_cycle: u64) -> (u32, u32) {
        let period = self.bpg();
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        let r = (at_cycle % period) as u32;
        let q = at_cycle / period;
        ((r), ((u64::from(h) + nc - (q % nc)) % nc) as u32)
    }
}

impl SchemeScheduler for BaselineScheduler {
    fn scheme(&self) -> SchemeKind {
        // Reported as Non-clustered's layout kin; the distinction that
        // matters (no parity at all) shows in the metrics.
        SchemeKind::NonClustered
    }

    fn config(&self) -> &CycleConfig {
        &self.config
    }

    fn admit(&mut self, object: ObjectId, at_cycle: u64) -> Result<StreamId, AdmissionError> {
        assert!(at_cycle >= self.next_cycle, "cannot admit into the past");
        let placed = self
            .catalog
            .get(object)
            .map_err(|_| AdmissionError::UnknownObject { object })?;
        let class = self.class_of(placed.start_cluster, at_cycle);
        let bpg = self.bpg();
        let load = self
            .streams
            .values()
            .filter(|s| s.class == class && s.start_cycle + s.groups * bpg > at_cycle)
            .count();
        if load >= self.config.slots_per_disk() {
            return Err(AdmissionError::AtCapacity {
                active: self.streams.len(),
                limit: self.stream_capacity(),
            });
        }
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.epoch += 1;
        self.streams.insert(
            id,
            BlStream {
                object,
                start_cluster: placed.start_cluster,
                groups: placed.groups,
                tracks: placed.object.tracks,
                start_cycle: at_cycle,
                class,
                delivered: 0,
                lost: 0,
            },
        );
        Ok(id)
    }

    fn stream_capacity(&self) -> usize {
        self.config.slots_per_disk()
            * self.bpg() as usize
            * self.catalog.layout().geometry().clusters() as usize
    }

    fn active_streams(&self) -> usize {
        self.streams.len()
    }

    fn stream_info(&self, id: StreamId) -> Option<StreamInfo> {
        self.streams.get(&id).map(|s| StreamInfo {
            id,
            object: s.object,
            admitted_at: s.start_cycle,
            groups: s.groups,
            next_group: (self.next_cycle.saturating_sub(s.start_cycle) / self.bpg()).min(s.groups),
            delivered_tracks: s.delivered,
            lost_tracks: s.lost,
        })
    }

    fn release(&mut self, id: StreamId) -> bool {
        let bpg = self.bpg();
        let Some(st) = self.streams.get_mut(&id) else {
            return false;
        };
        self.epoch += 1;
        // One block is read per cycle, `bpg` cycles per group, so the
        // started-group count is the ceiling of the elapsed span.
        let elapsed = self.next_cycle.saturating_sub(st.start_cycle);
        let started = elapsed.div_ceil(bpg);
        if started == 0 {
            // Nothing read yet: retire immediately. Admission counts
            // live streams directly, so no class bookkeeping to undo.
            self.streams.remove(&id);
            self.buffers.free_all(OwnerId(id.0));
            return true;
        }
        // Truncate to the started group; its remaining blocks drain and
        // the normal finish path retires the stream.
        st.groups = st.groups.min(started);
        true
    }

    fn plan_cycle_into(&mut self, cycle: u64, plan: &mut CyclePlan) {
        assert_eq!(cycle, self.next_cycle, "cycles must be planned in order");
        self.next_cycle += 1;
        plan.reset(cycle);
        let layout = *self.catalog.layout();
        let bpg = self.bpg();

        // Snapshot stream ids into the reusable scratch so the loops can
        // mutate `self.streams` without holding a borrow on it.
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        ids.extend(self.streams.keys().copied());
        // Reads: one block per stream per cycle; a block on a failed
        // disk is simply not read — the hiccup surfaces at delivery
        // time next cycle when the same placement check fails again.
        for id in ids.iter().copied() {
            let s = self.streams[&id];
            if cycle < s.start_cycle {
                continue;
            }
            let rel = cycle - s.start_cycle;
            let (g, i) = (rel / bpg, (rel % bpg) as u32);
            if g >= s.groups {
                continue;
            }
            let blocks = (s.tracks - g * bpg).min(bpg) as u32;
            if i >= blocks {
                continue;
            }
            let p = layout.data_placement(s.start_cluster, g, i);
            let addr = BlockAddr::data(s.object, g, i);
            if !self.failed_disks.contains(&p.disk) {
                plan.push_read(
                    p.disk,
                    PlannedRead {
                        stream: id,
                        addr,
                        purpose: ReadPurpose::Delivery,
                    },
                );
                self.buffers
                    .alloc(OwnerId(id.0), 1)
                    .expect("unbounded pool never refuses an allocation");
            }
        }

        // Deliveries: the block read last cycle.
        for id in ids.iter().copied() {
            let Some(s) = self.streams.get(&id).copied() else {
                continue;
            };
            if cycle < s.start_cycle + 1 {
                continue;
            }
            let rel = cycle - s.start_cycle - 1;
            let (g, i) = (rel / bpg, (rel % bpg) as u32);
            if g >= s.groups {
                continue;
            }
            let blocks = (s.tracks - g * bpg).min(bpg) as u32;
            if i < blocks {
                let addr = BlockAddr::data(s.object, g, i);
                let p = layout.data_placement(s.start_cluster, g, i);
                let st = self
                    .streams
                    .get_mut(&id)
                    .expect("stream id snapshot only holds live streams");
                if self.failed_disks.contains(&p.disk) {
                    // The read last cycle failed: hiccup, repeating every
                    // time the stream rotates back onto the dead disk.
                    plan.hiccups.push(LostBlock {
                        stream: id,
                        addr,
                        reason: LossReason::FailedDisk,
                        delivery_cycle: cycle,
                    });
                    st.lost += 1;
                } else {
                    plan.deliveries.push(Delivery {
                        stream: id,
                        addr,
                        reconstructed: false,
                    });
                    st.delivered += 1;
                    self.buffers
                        .free(OwnerId(id.0), 1)
                        .expect("every delivered block was allocated last cycle");
                }
            }
            if g + 1 == s.groups && i + 1 >= blocks {
                plan.finished.push(id);
                self.streams.remove(&id);
                self.buffers.free_all(OwnerId(id.0));
            }
        }
        self.ids_scratch = ids;
    }

    fn on_disk_failure(&mut self, disk: DiskId, _cycle: u64, _mid_cycle: bool) -> FailureReport {
        self.epoch += 1;
        self.failed_disks.insert(disk);
        FailureReport {
            // No parity: any data on the disk is unreadable until repair;
            // the paper calls the no-redundancy data outage what it is.
            catastrophic: true,
            ..FailureReport::default()
        }
    }

    fn on_disk_repair(&mut self, disk: DiskId, _cycle: u64) {
        self.epoch += 1;
        self.failed_disks.remove(&disk);
    }

    fn buffer_in_use(&self) -> usize {
        self.buffers.in_use()
    }

    fn buffer_high_water(&self) -> usize {
        self.buffers.high_water()
    }

    fn plan_stability(&self, cycle: u64) -> PlanStability {
        // One block per cycle, `bpg` cycles per group, rotating over N_C
        // clusters: the disk pattern repeats every bpg · N_C cycles.
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        let period = self.bpg() * nc;
        if !self.failed_disks.is_empty() {
            return PlanStability { period, stable: 0 };
        }
        let mut stable = u64::MAX;
        for s in self.streams.values() {
            if cycle <= s.start_cycle {
                return PlanStability { period, stable: 0 };
            }
            // End before the final (possibly partial) group starts
            // reading at start + (groups − 1)·bpg.
            let final_read = s.start_cycle + (s.groups - 1) * self.bpg();
            stable = stable.min(final_read.saturating_sub(cycle));
        }
        PlanStability { period, stable }
    }

    fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(self.failed_disks.is_empty(), "fast_forward while failed");
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        debug_assert_eq!(cycles % (self.bpg() * nc), 0, "not a whole rotation");
        self.next_cycle += cycles;
        // One track delivered per stream per steady cycle.
        for s in self.streams.values_mut() {
            s.delivered += cycles;
        }
    }

    fn plan_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_disk::{Bandwidth, DiskParams};
    use mms_layout::{BandwidthClass, Geometry, MediaObject};

    fn make(tracks: u64) -> BaselineScheduler {
        let geo = Geometry::clustered(10, 5).unwrap();
        let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
        catalog
            .add(MediaObject::new(
                ObjectId(0),
                "m",
                tracks,
                BandwidthClass::Mpeg1,
            ))
            .unwrap();
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            1,
            1,
        );
        BaselineScheduler::new(cfg, catalog)
    }

    #[test]
    fn fault_free_baseline_is_identical_to_nc_normal_mode() {
        let mut s = make(16);
        let id = s.admit(ObjectId(0), 0).unwrap();
        let mut delivered = 0;
        for t in 0..18 {
            let p = s.plan_cycle(t);
            assert!(p.hiccups.is_empty());
            delivered += p.deliveries.len();
            // One read per active stream per cycle, 2 buffers peak.
            assert!(p.total_reads() <= 1);
        }
        assert_eq!(delivered, 16);
        assert_eq!(s.buffer_high_water(), 2);
        assert!(s.stream_info(id).is_none());
    }

    #[test]
    fn failure_hiccups_repeat_every_rotation() {
        // "These hiccups will repeat at regular intervals each time an
        // object being displayed needs data from the failed disk."
        let mut s = make(40); // 10 groups, 5 on each cluster
        s.admit(ObjectId(0), 0).unwrap();
        s.on_disk_failure(DiskId(1), 0, false);
        let mut hiccup_cycles = Vec::new();
        for t in 0..42 {
            let p = s.plan_cycle(t);
            if !p.hiccups.is_empty() {
                hiccup_cycles.push(t);
            }
        }
        // Disk 1 holds block 1 of every cluster-0 group: groups 0, 2, 4,
        // 6, 8 → read cycles 1, 9, 17, 25, 33 → hiccups one cycle later,
        // every 8 cycles (the rotation period over two clusters).
        assert_eq!(hiccup_cycles, vec![2, 10, 18, 26, 34]);
    }

    #[test]
    fn repair_stops_the_bleeding() {
        let mut s = make(40);
        s.admit(ObjectId(0), 0).unwrap();
        s.on_disk_failure(DiskId(1), 0, false);
        for t in 0..12 {
            s.plan_cycle(t);
        }
        s.on_disk_repair(DiskId(1), 12);
        let mut hiccups = 0;
        for t in 12..42 {
            hiccups += s.plan_cycle(t).hiccups.len();
        }
        assert_eq!(hiccups, 0);
    }

    #[test]
    fn every_failure_is_reported_catastrophic() {
        let mut s = make(8);
        assert!(s.on_disk_failure(DiskId(0), 0, false).catastrophic);
    }
}
